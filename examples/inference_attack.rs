//! What a curious SDC learns — WATCH vs PISA.
//!
//! The paper's threat model (§III-B): the SDC is honest-but-curious and
//! "may attempt to infer private operation data of PUs and SUs from the
//! information communicated". This example mounts those inferences
//! concretely against the plaintext baseline (total success) and
//! against PISA's encrypted messages (chance-level success).
//!
//! Run with:
//! ```sh
//! cargo run --release -p pisa-core --example inference_attack
//! ```

use pisa::adversary;
use pisa::prelude::*;
use pisa::{PuClient, StpServer, SuClient, SuId};
use pisa_watch::{PuInput, SuRequest, WatchSdc};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1337);
    let cfg = SystemConfig::small_test();

    println!("=== attack surface: plaintext WATCH ===\n");
    let mut watch = WatchSdc::new(cfg.watch().clone());
    watch.pu_update(0, PuInput::tuned(cfg.watch(), BlockId(12), Channel(1)));
    watch.pu_update(1, PuInput::tuned(cfg.watch(), BlockId(3), Channel(2)));

    println!("curious SDC reads its own budget matrix:");
    for (ch, b) in adversary::infer_pu_channels(&watch) {
        println!("  -> a TV viewer at {b} is watching {ch}");
    }

    let request = SuRequest::with_power_dbm(cfg.watch(), BlockId(17), &[Channel(0)], 20.0);
    let f = request.f_matrix(cfg.watch());
    let block = adversary::infer_su_block(&f).expect("profile peaks");
    let eirp = adversary::infer_su_eirp_mw(cfg.watch(), &f).expect("profile peaks");
    println!("\ncurious SDC reads one SU request:");
    println!("  -> the SU sits in {block} and radiates {eirp:.1} mW (true: block#17, 100 mW)");

    println!("\n=== the same attacks against PISA ===\n");
    let stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let mut su = SuClient::new(SuId(0), BlockId(17), &cfg, &mut rng);
    let e = pisa_watch::compute_e_matrix(cfg.watch());
    let mut pu = PuClient::new(0, BlockId(12));

    let runs = 50;
    let mut su_hits = 0;
    let mut pu_hits = 0;
    for _ in 0..runs {
        let req = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
        if adversary::guess_su_block_from_ciphertexts(&req) == Some(BlockId(17)) {
            su_hits += 1;
        }
        let upd = pu.tune(Some(Channel(1)), &cfg, &e, stp.public_key(), &mut rng);
        if adversary::guess_pu_channel_from_ciphertexts(&upd) == Some(Channel(1)) {
            pu_hits += 1;
        }
    }
    println!(
        "SU-block triangulation on ciphertexts: {su_hits}/{runs} hits (chance: {:.0}/{runs})",
        runs as f64 / cfg.blocks() as f64
    );
    println!(
        "PU-channel detection on ciphertexts:   {pu_hits}/{runs} hits (chance: {:.0}/{runs})",
        runs as f64 / cfg.channels() as f64
    );
    println!("\nsemantic security reduces the curious SDC to guessing.");
}
