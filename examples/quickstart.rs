//! Quickstart: one PU, one SU, one privacy-preserving decision.
//!
//! Run with:
//! ```sh
//! cargo run --release -p pisa-core --example quickstart
//! ```

use pisa::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // A small deterministic deployment: 4 channels × 25 blocks,
    // 384-bit Paillier keys (use SystemConfig::paper() for Table I).
    let config = SystemConfig::small_test();
    println!(
        "setting up PISA: {} channels × {} blocks, {}-bit Paillier keys",
        config.channels(),
        config.blocks(),
        config.paillier_bits()
    );
    let mut system = PisaSystem::setup(config, &mut rng);

    // A TV receiver in block 12 tunes to channel 1. Its update is C
    // indistinguishable ciphertexts — the SDC cannot tell which channel.
    system.pu_update(0, BlockId(12), Some(Channel(1)), &mut rng);
    println!("PU at block 12 tuned (channel hidden from the SDC)");

    // An SU one block away asks for full power on the same channel.
    let su = system.register_su(BlockId(13), &mut rng);
    let outcome = system.request(su, &[Channel(1)], &mut rng);
    println!(
        "SU at block 13, full power on ch1: {} (license {} / serial {})",
        if outcome.granted { "GRANTED" } else { "DENIED" },
        outcome.license.fingerprint(),
        outcome.license.serial,
    );
    assert!(!outcome.granted, "full power next to an active PU");

    // The same SU on an unwatched channel: granted.
    let outcome = system.request(su, &[Channel(0)], &mut rng);
    println!(
        "SU at block 13, full power on ch0: {}",
        if outcome.granted { "GRANTED" } else { "DENIED" },
    );
    assert!(outcome.granted);

    println!(
        "traffic: request {} KiB, SDC→STP {} KiB, response {} bytes",
        outcome.request_bytes / 1024,
        outcome.sdc_to_stp_bytes / 1024,
        outcome.response_bytes,
    );
    println!("done — no party but the SU ever saw a plaintext decision.");
}
