//! The SU location-privacy vs. time trade-off of §VI-A: request
//! preparation and SDC processing cost scale linearly with the number of
//! blocks the SU's encrypted matrix covers.
//!
//! Run with:
//! ```sh
//! cargo run --release -p pisa-core --example privacy_tradeoff
//! ```

use pisa::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let config = SystemConfig::small_test();
    let blocks = config.blocks();
    let mut system = PisaSystem::setup(config, &mut rng);

    // The SU sits in block 2 so every prefix region ≥ 5 contains it.
    let su = system.register_su(BlockId(2), &mut rng);

    println!("location privacy vs. cost (SU at block 2, {blocks} blocks total)\n");
    println!(
        "{:>14} {:>10} {:>14} {:>14} {:>12}",
        "region", "privacy", "request", "round time", "bytes/full"
    );

    let mut rows = Vec::new();
    for region in [5usize, 10, 15, 20, blocks] {
        system.set_su_privacy(su, LocationPrivacy::Region(region));
        let start = Instant::now();
        let outcome = system.request(su, &[Channel(0)], &mut rng);
        let elapsed = start.elapsed();
        let privacy = region as f64 / blocks as f64;
        println!(
            "{:>8} blocks {:>9.0}% {:>10} KiB {:>11.0} ms {:>11.0}%",
            region,
            privacy * 100.0,
            outcome.request_bytes / 1024,
            elapsed.as_secs_f64() * 1000.0,
            100.0 * outcome.request_bytes as f64 / (outcome.request_bytes as f64 / privacy),
        );
        rows.push((region, outcome.request_bytes, elapsed));
        assert!(outcome.granted);
    }

    // The paper's claim: asymptotically linear. Check bytes exactly and
    // time roughly (2x region ⇒ ~2x bytes).
    let bytes_per_block_0 = rows[0].1 as f64 / rows[0].0 as f64;
    for &(region, bytes, _) in &rows[1..] {
        let per_block = bytes as f64 / region as f64;
        let ratio = per_block / bytes_per_block_0;
        assert!(
            (0.9..1.1).contains(&ratio),
            "request bytes not linear in region: {ratio}"
        );
    }
    println!("\nrequest size is exactly linear in the exposed region —");
    println!(
        "full location privacy costs {}x the 5-block region.",
        blocks / 5
    );
}
