//! A metropolitan scenario: many TV viewers churning through channels
//! while WiFi secondaries continuously request spectrum — the workload
//! the paper's introduction motivates (viewers switch virtual channels
//! 2.3–2.7 times per hour; WATCH reclaims the spectrum they are not
//! using, and PISA does it without anyone learning who watches what).
//!
//! Run with:
//! ```sh
//! cargo run --release -p pisa-core --example metro_area
//! ```

use pisa::prelude::*;
use pisa_watch::{PuInput, SuRequest, WatchSdc};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

const HOURS: usize = 4;
const NUM_PUS: u64 = 12;
const NUM_SUS: usize = 6;

fn main() {
    let mut rng = StdRng::seed_from_u64(2017);
    let config = SystemConfig::small_test();
    let watch_cfg = config.watch().clone();
    let channels = config.channels();
    let blocks = config.blocks();

    println!("metro area: {NUM_PUS} TV receivers, {NUM_SUS} WiFi secondaries");
    println!("            {channels} channels x {blocks} blocks, {HOURS} simulated hours\n");

    let mut system = PisaSystem::setup(config, &mut rng);
    // A plaintext WATCH mirror shows what a *non*-private SDC would see,
    // and doubles as a ground-truth check.
    let mut mirror = WatchSdc::new(watch_cfg.clone());

    // Register the population.
    let pu_blocks: Vec<BlockId> = (0..NUM_PUS)
        .map(|i| BlockId((i as usize * 7) % blocks))
        .collect();
    let su_ids: Vec<_> = (0..NUM_SUS)
        .map(|i| system.register_su(BlockId((i * 5 + 2) % blocks), &mut rng))
        .collect();
    let su_blocks: Vec<BlockId> = (0..NUM_SUS)
        .map(|i| BlockId((i * 5 + 2) % blocks))
        .collect();

    let mut grants = 0usize;
    let mut denials = 0usize;
    let mut mismatches = 0usize;
    let mut tvws_denials = 0usize; // what a whole-channel-exclusion model would deny

    for hour in 0..HOURS {
        // ~2.5 channel switches per PU per hour (paper §VI-A).
        for (i, &block) in pu_blocks.iter().enumerate() {
            for _ in 0..2 + (rng.next_u64() % 2) as usize {
                let tuned = if rng.next_u64() % 8 == 0 {
                    None // viewer turns the set off
                } else {
                    Some(Channel((rng.next_u64() as usize) % channels))
                };
                system.pu_update(i as u64, block, tuned, &mut rng);
                let input = match tuned {
                    Some(c) => PuInput::tuned(&watch_cfg, block, c),
                    None => PuInput::off(block),
                };
                mirror.pu_update(i as u64, input);
            }
        }

        // Each SU tries a couple of channels at moderate power.
        for (i, &su) in su_ids.iter().enumerate() {
            for _ in 0..2 {
                let ch = Channel((rng.next_u64() as usize) % channels);
                let power_dbm = -45.0 + (rng.next_u64() % 35) as f64;
                let request = SuRequest::with_power_dbm(&watch_cfg, su_blocks[i], &[ch], power_dbm);
                let outcome = system.request_with(su, &request, &mut rng).unwrap();
                let truth = mirror.process_request(&request);
                if outcome.granted != truth.is_granted() {
                    mismatches += 1;
                }
                if outcome.granted {
                    grants += 1;
                } else {
                    denials += 1;
                }
                // TVWS-style baseline: deny whenever ANY receiver is on
                // the channel anywhere.
                let channel_active = (0..NUM_PUS).any(|p| {
                    mirror.n_matrix().get(ch.0, pu_blocks[p as usize].0)
                        != mirror.e_matrix().get(ch.0, pu_blocks[p as usize].0)
                });
                if channel_active {
                    tvws_denials += 1;
                }
            }
        }
        println!(
            "hour {hour}: {} active PUs, cumulative grants {grants} / denials {denials}",
            mirror.active_pus()
        );
    }

    // How often do PUs actually trigger encrypted updates? Viewers zap
    // virtual channels ~2.5×/hour (paper §VI-A, [16]), but only
    // physical-channel crossings reach the SDC.
    let lineup = pisa_radio::viewer::ChannelLineup::uniform(channels, 4);
    let model = pisa_radio::viewer::ViewerModel::paper_average();
    let mut churn = pisa_radio::viewer::ChurnStats::default();
    for _ in 0..NUM_PUS {
        let (stats, _) = pisa_radio::viewer::simulate_viewer(
            &mut rng,
            &lineup,
            &model,
            24,
            pisa_radio::viewer::VirtualChannel(0),
        );
        churn.virtual_switches += stats.virtual_switches;
        churn.physical_switches += stats.physical_switches;
    }
    println!(
        "\nviewer churn over 24 h × {NUM_PUS} PUs: {} zaps, {} encrypted updates ({:.0}%)",
        churn.virtual_switches,
        churn.physical_switches,
        100.0 * churn.update_fraction()
    );

    let total = grants + denials;
    println!("\n==== results over {total} requests ====");
    println!(
        "PISA grants:            {grants:>4} ({:.0}%)",
        100.0 * grants as f64 / total as f64
    );
    println!("PISA denials:           {denials:>4}");
    println!(
        "TVWS-model denials:     {tvws_denials:>4} (whole-channel exclusion would deny these)"
    );
    println!("encrypted/plaintext decision mismatches: {mismatches}");
    assert_eq!(mismatches, 0, "PISA must match plaintext WATCH exactly");
    println!("\nPISA reclaimed the spectrum fine-grained WATCH reclaims — privately.");
}
