//! The paper's §VI-B SDR experiment, end to end: two SUs and one PU on
//! WiFi channel 6 (2.437 GHz), four scenarios, with the spectrum
//! decision made by the privacy-preserving protocol and the "air"
//! provided by the signal-level simulator (Figures 7–11).
//!
//! Run with:
//! ```sh
//! cargo run --release -p pisa-core --example sdr_experiment
//! ```

use pisa::prelude::*;
use pisa_radio::airsim::{AirSim, Node};
use pisa_radio::grid::Point;
use pisa_watch::SuRequest;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2437);

    // The testbed: PU at the origin, SU1 at 3 m, SU2 at 40 m — the
    // unequal distances behind Figure 8's two amplitudes.
    let mut air = AirSim::wifi_channel6();
    let su1_node = air.add_node(Node::usrp("SU1", Point { x: 3.0, y: 0.0 }));
    let su2_node = air.add_node(Node::usrp("SU2", Point { x: 40.0, y: 0.0 }));
    let pu_node = air.add_node(Node::usrp("PU", Point { x: 0.0, y: 0.0 }));
    println!("testbed on channel 6 ({} MHz)\n", air.freq_mhz());

    let config = SystemConfig::small_test();
    let watch_cfg = config.watch().clone();
    let mut system = PisaSystem::setup(config, &mut rng);

    // ── Scenario 1: the channel is free; both SUs transmit. ──────────
    println!("scenario 1: PU monitors while SU1 and SU2 transmit");
    air.transmit(su1_node, 0.0, 120.0);
    air.transmit(su2_node, 200.0, 120.0);
    for p in air.observe(pu_node) {
        println!(
            "  PU hears {} at t={:>5.0} µs  amplitude {:.5}  ({:.1} dBm)",
            p.from, p.time_us, p.amplitude, p.rx_power_dbm
        );
    }

    // ── Scenario 2: the PU claims the channel. ────────────────────────
    println!("\nscenario 2: PU tunes in — sends its encrypted update to the SDC");
    system.pu_update(0, BlockId(0), Some(Channel(0)), &mut rng);
    air.clear_schedule();
    println!("  SDC budget updated (it cannot tell which channel)");

    // ── Scenario 3: both SUs request the channel. ─────────────────────
    println!("\nscenario 3: SU1 and SU2 send encrypted transmission requests");
    let su1 = system.register_su(BlockId(1), &mut rng);
    let su2 = system.register_su(BlockId(24), &mut rng);
    let req1 = SuRequest::full_power(&watch_cfg, BlockId(1), &[Channel(0)]);
    let req2 = SuRequest::with_power_dbm(&watch_cfg, BlockId(24), &[Channel(0)], -30.0);
    let out1 = system.request_with(su1, &req1, &mut rng).unwrap();
    let out2 = system.request_with(su2, &req2, &mut rng).unwrap();
    println!(
        "  requests acknowledged ({} KiB each)",
        out1.request_bytes / 1024
    );

    // ── Scenario 4: decisions arrive; the granted SU transmits. ───────
    println!("\nscenario 4: decisions (known only to each SU)");
    println!("  SU1 (full power,  3 m): {}", verdict(out1.granted));
    println!("  SU2 (-30 dBm,   40 m): {}", verdict(out2.granted));
    assert!(!out1.granted && out2.granted);

    if out2.granted {
        for i in 0..11 {
            air.transmit(su2_node, i as f64 * 1800.0, 300.0);
        }
    }
    let seen = air.observe(pu_node);
    println!(
        "\n  PU observes {} packets in 20 ms, all from {} (Figure 9)",
        seen.len(),
        seen[0].from
    );
    assert_eq!(seen.len(), 11);
    println!("\nexperiment complete: the non-interfering SU shares the active channel.");
}

fn verdict(granted: bool) -> &'static str {
    if granted {
        "GRANTED — valid license signature recovered"
    } else {
        "DENIED — garbled signature, license invalid"
    }
}
