//! Sweep-harness tests.
//!
//! Tier 1 runs a small smoke sweep and replays any checked-in
//! regression cases. Tier 2 (`--ignored`, run by the CI sim-sweep
//! lane and before release) drives the full 1008-storm grid.

use pisa::EngineConfig;
use pisa_net::FaultPlan;
use pisa_sim::{check_storm, run_sweep, Fidelity, SimConfig, SweepConfig};
use std::time::Duration;

fn template() -> SimConfig {
    SimConfig::modeled(16)
        .with_engine(EngineConfig::default().with_timeout(Duration::from_millis(50)))
}

#[test]
fn smoke_sweep_is_clean() {
    let config = SweepConfig {
        seed: 0x53ed,
        session_counts: vec![16, 48],
        fault_rates: vec![0.0, 0.1, 0.3],
        seeds_per_cell: 2,
        fidelity: Fidelity::Modeled,
        template: template(),
        determinism_every: 5,
    };
    let report = run_sweep(&config);
    assert_eq!(report.storms, 12);
    assert!(report.determinism_checks >= 2);
    assert!(
        report.clean(),
        "smoke sweep found failures:\n{}",
        report
            .failures
            .iter()
            .map(|f| f.to_line())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Replays `tests/data/sim_regression_seeds.txt` — storms that once
/// violated an invariant, shrunk by the sweep harness. Each must now
/// pass `check_storm`. When a sweep fails, append the shrunk
/// `RegressionCase::to_line()` output here with the fix.
#[test]
fn regression_seeds_replay_clean() {
    let data = include_str!("data/sim_regression_seeds.txt");
    for line in data.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields.len(), 6, "malformed regression line: {line:?}");
        let seed: u64 = fields[0].parse().expect("seed");
        let sus: u32 = fields[1].parse().expect("sus");
        let plan = FaultPlan::none()
            .with_drop(fields[2].parse().expect("drop"))
            .with_duplicate(fields[3].parse().expect("duplicate"))
            .with_reorder(fields[4].parse().expect("reorder"))
            .with_corrupt(fields[5].parse().expect("corrupt"));
        let mut config = template();
        config.sus = sus;
        config.plan = plan;
        if let Err(reason) = check_storm(seed, &config) {
            panic!("regression seed {seed} failed again: {reason}");
        }
    }
}

/// Tier 2: the full grid — 3 session counts × 4 fault rates ×
/// 84 seeds = 1008 storms, with periodic byte-determinism probes.
/// Zero panics, zero invariant violations, every storm quiesces.
///
/// Run with:
/// `cargo test -p pisa-sim --test sim_sweep --release -- --ignored`
#[test]
#[ignore = "tier-2: ~1000 storms, run in release via the CI sim-sweep lane"]
fn thousand_storm_sweep_is_clean() {
    let config = SweepConfig {
        seed: 2017,
        session_counts: vec![16, 64, 256],
        fault_rates: vec![0.0, 0.05, 0.15, 0.3],
        seeds_per_cell: 84,
        fidelity: Fidelity::Modeled,
        template: template(),
        determinism_every: 97,
    };
    let report = run_sweep(&config);
    assert_eq!(report.storms, 1008);
    assert_eq!(report.sessions, 84 * 4 * (16 + 64 + 256));
    assert!(report.determinism_checks >= 10);
    assert!(
        report.clean(),
        "tier-2 sweep found {} failure(s) — shrunk cases below; append them \
         to tests/data/sim_regression_seeds.txt alongside the fix:\n{}",
        report.failures.len(),
        report
            .failures
            .iter()
            .map(|f| f.to_line())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
