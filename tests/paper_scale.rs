//! Paper-scale (Table I) runs — expensive, so ignored by default:
//!
//! ```sh
//! cargo test --release -p pisa-core --test paper_scale -- --ignored
//! ```

use pisa::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The full Table I shape (C=100, B=600) at a reduced key size so the
/// run finishes in minutes rather than the hour the 2048-bit prototype
/// needs. Exercises every code path at true matrix scale.
#[test]
#[ignore = "several minutes; run explicitly with --ignored --release"]
fn table1_shape_full_matrix() {
    let mut rng = StdRng::seed_from_u64(0x9a9e7);
    let cfg = SystemConfig::paper_scaled(256);
    assert_eq!(cfg.channels(), 100);
    assert_eq!(cfg.blocks(), 600);

    let mut system = PisaSystem::setup(cfg, &mut rng);
    // A modest PU population.
    for i in 0..10u64 {
        system.pu_update(
            i,
            BlockId((i as usize * 61) % 600),
            Some(Channel((i as usize * 7) % 100)),
            &mut rng,
        );
    }
    let su = system.register_su(BlockId(300), &mut rng);
    let outcome = system.request(su, &[Channel(7)], &mut rng);
    // 100 × 600 entries at 256-bit keys: the request is 64 B × 60 000.
    assert_eq!(outcome.request_bytes, 60_000 * 64 + 64);
    // Decision matches the plaintext oracle.
    let mut mirror = pisa_watch::WatchSdc::new(system.config().watch().clone());
    for i in 0..10u64 {
        mirror.pu_update(
            i,
            pisa_watch::PuInput::tuned(
                system.config().watch(),
                BlockId((i as usize * 61) % 600),
                Channel((i as usize * 7) % 100),
            ),
        );
    }
    let request =
        pisa_watch::SuRequest::full_power(system.config().watch(), BlockId(300), &[Channel(7)]);
    assert_eq!(
        outcome.granted,
        mirror.process_request(&request).is_granted()
    );
}

/// The true 2048-bit Table II keygen at paper scale — slow but bounded.
#[test]
#[ignore = "tens of seconds; run explicitly with --ignored --release"]
fn paper_keygen_2048() {
    let mut rng = StdRng::seed_from_u64(0x2048);
    let stp = pisa::StpServer::new(&mut rng, 2048);
    assert_eq!(stp.public_key().key_bits(), 2048);
    assert_eq!(stp.public_key().ciphertext_bytes(), 512);
}
