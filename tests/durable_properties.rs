//! Property tests for the durability layer: snapshot → restore round
//! trips (byte-identical re-snapshot, identical protocol decisions) and
//! adversarial robustness — a restore fed truncated, bit-flipped or
//! garbage bytes must error, never panic and never pre-allocate
//! unbounded memory from an attacker-controlled count.

use pisa::durable::Checkpoint;
use pisa::trace::StormTrace;
use pisa::{PisaMessage, SdcServer, StormFixture, SuClient, SystemConfig};
use pisa_crypto::paillier::PaillierPublicKey;
use pisa_crypto::rsa::RsaPublicKey;
use pisa_net::codec::{CodecError, Writer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// The phase-2 RNG seed the fixture's baseline response was produced
/// with; a restored SDC run with the same seed must reproduce it.
const BASELINE_SEED: u64 = 0xd5c;

/// A storm frozen mid-protocol: the SDC has ingested the PU update and
/// blinded one SU's request (phase 1 pending), then snapshotted — the
/// exact state a crash between the sign test and the signature release
/// leaves behind. Built once; keygen dominates the cost.
struct Fixture {
    cfg: SystemConfig,
    pk_g: PaillierPublicKey,
    su: SuClient,
    signing: RsaPublicKey,
    /// Snapshot taken *after* phase 1: contributions + pending ε.
    snapshot: Vec<u8>,
    /// The STP's key-converted reply the resumed SDC must pair with
    /// the restored ε vector.
    stp_reply: pisa::StpToSdcMsg,
    /// Whether the original (uncrashed) SDC granted the request.
    baseline_granted: bool,
    /// The original SDC's encoded phase-2 response at `BASELINE_SEED`.
    baseline_response: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(2017);
        let StormFixture {
            mut sus,
            mut sdc,
            stp,
        } = pisa::storm_fixture(2, 2017).expect("fixture construction is infallible here");
        let cfg = sdc.config().clone();
        let (mut su, channels) = sus.remove(0);
        let request = su.build_request(&cfg, stp.public_key(), &channels, &mut rng);
        let to_stp = sdc
            .process_request_phase1(&request, &mut rng)
            .expect("well-formed fixture request");
        let snapshot = sdc.snapshot().expect("in-range state snapshots").to_vec();
        let (stp_reply, _obs) = stp
            .key_convert(&to_stp, &mut rng)
            .expect("registered SU key-converts");

        let mut brng = StdRng::seed_from_u64(BASELINE_SEED);
        let response = sdc
            .process_request_phase2(&stp_reply, su.public_key(), &mut brng)
            .expect("pending state completes phase 2");
        let signing = sdc.signing_public_key().clone();
        let baseline_granted = su.handle_response(&response, &signing);
        let baseline_response = PisaMessage::SdcResponse(response)
            .encode()
            .expect("response encodes")
            .to_vec();
        Fixture {
            cfg,
            pk_g: stp.public_key().clone(),
            su,
            signing,
            snapshot,
            stp_reply,
            baseline_granted,
            baseline_response,
        }
    })
}

fn restore_fixture_sdc() -> SdcServer {
    let f = fixture();
    SdcServer::restore(f.cfg.clone(), f.pk_g.clone(), &f.snapshot)
        .expect("the fixture's own snapshot restores")
}

/// Starts a malicious snapshot frame: valid v2 header (version, issuer,
/// serial, signing-key parts, ciphertext width) so the decoder reaches
/// the attacker-controlled sections the tests target.
fn malicious_header() -> Writer {
    let mut w = Writer::new();
    w.put_u8(2); // SNAPSHOT_VERSION
    w.put_bytes(b"sdc.evil").expect("tiny field");
    w.put_u64(1);
    w.put_bytes(&[0x03]).expect("tiny field"); // rsa n
    w.put_bytes(&[0x01]).expect("tiny field"); // rsa d
    let ct_bytes = u32::try_from(fixture().pk_g.ciphertext_bytes()).expect("small width");
    w.put_u32(ct_bytes);
    w
}

/// The `count = u32::MAX` prealloc bomb: the declared PU-contribution
/// count must be bounded by the bytes actually present *before* any
/// `with_capacity`, so the decode errors in microseconds instead of
/// attempting a multi-gigabyte allocation.
#[test]
fn contribution_count_bomb_is_rejected_before_allocation() {
    let f = fixture();
    let mut w = malicious_header();
    w.put_u32(u32::MAX);
    let frame = w.finish();
    match SdcServer::restore(f.cfg.clone(), f.pk_g.clone(), &frame) {
        Err(CodecError::Oversized(declared, _)) => assert_eq!(declared, u64::from(u32::MAX)),
        other => panic!("count bomb must be Oversized, got {other:?}"),
    }
}

/// The same bomb on the v2 pending-session count.
#[test]
fn pending_count_bomb_is_rejected_before_allocation() {
    let f = fixture();
    let mut w = malicious_header();
    w.put_u32(0); // no contributions
    w.put_u32(u32::MAX); // pending sessions
    let frame = w.finish();
    match SdcServer::restore(f.cfg.clone(), f.pk_g.clone(), &frame) {
        Err(CodecError::Oversized(declared, _)) => assert_eq!(declared, u64::from(u32::MAX)),
        other => panic!("pending bomb must be Oversized, got {other:?}"),
    }
}

/// A contribution whose block lies outside the configured grid must be
/// rejected with the same validation the live `handle_pu_update` path
/// enforces — a restored matrix must never hold state the running
/// server could not have accepted.
#[test]
fn out_of_grid_contribution_block_is_rejected() {
    let f = fixture();
    let ct_bytes = f.pk_g.ciphertext_bytes();
    let mut w = malicious_header();
    w.put_u32(1);
    w.put_u64(7); // PU id
    w.put_u64(f.cfg.blocks() as u64); // first invalid block index
    w.put_u32(u32::try_from(f.cfg.channels()).expect("small grid"));
    w.put_raw(&vec![1u8; f.cfg.channels() * ct_bytes]);
    w.put_u32(0); // no pending sessions
    let frame = w.finish();
    assert!(
        matches!(
            SdcServer::restore(f.cfg.clone(), f.pk_g.clone(), &frame),
            Err(CodecError::Invalid(_))
        ),
        "out-of-grid block must be CodecError::Invalid"
    );
}

/// Duplicate (or merely non-increasing) PU ids must be rejected: a
/// last-wins `HashMap` collapse would silently disagree with the
/// snapshot's own entry count.
#[test]
fn duplicate_pu_ids_are_rejected() {
    let f = fixture();
    let ct_bytes = f.pk_g.ciphertext_bytes();
    let mut w = malicious_header();
    w.put_u32(2);
    for _ in 0..2 {
        w.put_u64(5); // same id twice
        w.put_u64(0);
        w.put_u32(u32::try_from(f.cfg.channels()).expect("small grid"));
        w.put_raw(&vec![1u8; f.cfg.channels() * ct_bytes]);
    }
    w.put_u32(0);
    let frame = w.finish();
    assert!(
        matches!(
            SdcServer::restore(f.cfg.clone(), f.pk_g.clone(), &frame),
            Err(CodecError::Invalid(_))
        ),
        "duplicate PU ids must be CodecError::Invalid"
    );
}

/// A pending entry with a corrupted ε byte (neither Keep nor Flip)
/// must fail closed: a fabricated ε would silently unblind eq. (16)
/// into garbage on the live path.
#[test]
fn tampered_epsilon_byte_is_rejected() {
    let f = fixture();
    let mut w = malicious_header();
    w.put_u32(0); // no contributions
    w.put_u32(1); // one pending session
    w.put_u32(9); // SU id
    w.put_raw(&[0u8; 32]); // request digest
    w.put_u64(1); // license serial
    w.put_u64(1); // region_blocks
    w.put_u32(u32::try_from(f.cfg.channels()).expect("small grid"));
    let mut eps = vec![0u8; f.cfg.channels()];
    eps[0] = 7; // not a SignFlip
    w.put_raw(&eps);
    let frame = w.finish();
    assert!(
        matches!(
            SdcServer::restore(f.cfg.clone(), f.pk_g.clone(), &frame),
            Err(CodecError::Invalid(_))
        ),
        "tampered ε must be CodecError::Invalid"
    );
}

/// Restoring the fixture snapshot and completing phase 2 at the
/// baseline seed reproduces the original (uncrashed) SDC's response
/// byte for byte — the strongest form of "the crash was invisible".
#[test]
fn resumed_phase2_reproduces_the_uncrashed_response() {
    let f = fixture();
    let mut sdc = restore_fixture_sdc();
    assert_eq!(sdc.pending_sessions(), 1, "pending ε survives the crash");
    let mut rng = StdRng::seed_from_u64(BASELINE_SEED);
    let response = sdc
        .process_request_phase2(&f.stp_reply, f.su.public_key(), &mut rng)
        .expect("restored pending state completes phase 2");
    let encoded = PisaMessage::SdcResponse(response)
        .encode()
        .expect("encodes");
    assert_eq!(encoded.as_ref(), &f.baseline_response[..]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Restore → re-snapshot is the identity on bytes, and the restored
    /// server is deterministic: two copies resumed from the same
    /// snapshot complete phase 2 identically under the same randomness,
    /// and reach the *same decision* as the uncrashed baseline under
    /// any randomness (the grant depends only on plaintext budgets).
    #[test]
    fn snapshot_restore_roundtrips_and_decisions_survive(seed in any::<u64>()) {
        let f = fixture();
        let mut a = restore_fixture_sdc();
        let mut b = restore_fixture_sdc();
        let resnap = a.snapshot().expect("re-snapshot");
        prop_assert_eq!(resnap.as_ref(), &f.snapshot[..]);
        prop_assert_eq!(a.pending_sessions(), 1);

        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let ra = a
            .process_request_phase2(&f.stp_reply, f.su.public_key(), &mut rng_a)
            .expect("restored copy A completes");
        let rb = b
            .process_request_phase2(&f.stp_reply, f.su.public_key(), &mut rng_b)
            .expect("restored copy B completes");
        let ea = PisaMessage::SdcResponse(ra).encode().expect("encodes");
        let eb = PisaMessage::SdcResponse(rb).encode().expect("encodes");
        // Same snapshot + same randomness must agree byte for byte.
        prop_assert_eq!(&ea, &eb);

        let PisaMessage::SdcResponse(decoded) = PisaMessage::decode(&ea).expect("canonical response")
        else {
            panic!("a phase-2 reply must decode as SdcResponse");
        };
        // The decision must not depend on post-crash randomness.
        prop_assert_eq!(
            f.su.handle_response(&decoded, &f.signing),
            f.baseline_granted
        );
    }

    /// Truncating the snapshot anywhere yields an error, never a panic:
    /// every section length is validated against the bytes present.
    #[test]
    fn truncated_snapshot_always_errors(cut_seed in any::<usize>()) {
        let f = fixture();
        let cut = cut_seed % f.snapshot.len();
        prop_assert!(
            SdcServer::restore(f.cfg.clone(), f.pk_g.clone(), &f.snapshot[..cut]).is_err()
        );
    }

    /// Flipping any single bit of the snapshot never panics the restore
    /// path — it either errors or restores some self-consistent server.
    #[test]
    fn bit_flipped_snapshot_never_panics(bit_seed in any::<usize>()) {
        let f = fixture();
        let mut frame = f.snapshot.clone();
        let bit = bit_seed % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        let _ = SdcServer::restore(f.cfg.clone(), f.pk_g.clone(), &frame);
    }

    /// Arbitrary garbage never panics any durable decoder: the SDC
    /// snapshot, the checkpoint container, or the storm-trace file.
    #[test]
    fn garbage_never_panics_any_durable_decoder(
        frame in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let f = fixture();
        let _ = SdcServer::restore(f.cfg.clone(), f.pk_g.clone(), &frame);
        let _ = Checkpoint::decode(&frame);
        let _ = StormTrace::decode(&frame);
    }

    /// The checkpoint container itself round-trips and rejects any
    /// single-bit corruption via its SHA-256 trailer.
    #[test]
    fn checkpoint_container_detects_every_bit_flip(
        generation in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        bit_seed in any::<usize>(),
    ) {
        let mut ckpt = Checkpoint::new(generation);
        ckpt.push_section(1, bytes::Bytes::copy_from_slice(&payload));
        let encoded = ckpt.encode().expect("well-formed checkpoint encodes");
        let back = Checkpoint::decode(&encoded).expect("clean bytes decode");
        prop_assert_eq!(back.generation(), generation);
        prop_assert_eq!(back.section(1), Some(&payload[..]));

        let mut flipped = encoded.to_vec();
        let bit = bit_seed % (flipped.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            Checkpoint::decode(&flipped).is_err(),
            "a flipped checkpoint must fail its integrity check"
        );
    }
}
