//! Golden-trace regression gate: the storm traces checked into
//! `tests/data/` were recorded with `pisa trace --record`; every build
//! must replay them byte-for-byte. Any divergence means the protocol's
//! wire behaviour changed — either revert the change or re-record the
//! goldens *deliberately* (and say so in the commit).

use pisa::trace::{record_storm, replay_storm, ReplayReport, StormTrace};

/// The checked-in golden traces, relative to the workspace root (the
/// core crate's manifest lives two levels down).
const GOLDENS: &[(&str, u32, u64)] = &[
    ("trace_s2_2017.trc", 2, 2017),
    ("trace_s4_2017.trc", 4, 2017),
];

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data")
        .join(name)
}

#[test]
fn golden_traces_replay_byte_identically() {
    for &(name, sessions, seed) in GOLDENS {
        let path = golden_path(name);
        let file = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("golden trace {} unreadable: {e}", path.display()));
        let trace = StormTrace::decode(&file)
            .unwrap_or_else(|e| panic!("golden trace {name} failed to decode: {e}"));
        assert_eq!(trace.sessions, sessions, "{name}: session count drifted");
        assert_eq!(trace.seed, seed, "{name}: seed drifted");
        assert!(!trace.records.is_empty(), "{name}: empty trace");

        let report = replay_storm(&trace)
            .unwrap_or_else(|e| panic!("golden trace {name} failed to replay: {e}"));
        assert!(
            report.matches(),
            "{name}: replay diverged at record {:?} ({} recorded, {} replayed)",
            report.divergence,
            report.recorded,
            report.replayed,
        );
    }
}

/// Recording the same `(sessions, seed)` twice is bit-reproducible —
/// the property that makes golden traces meaningful at all.
#[test]
fn recording_is_deterministic() {
    let (a, outcomes_a) = record_storm(2, 99).expect("record");
    let (b, outcomes_b) = record_storm(2, 99).expect("record again");
    assert_eq!(a.encode().expect("encodes"), b.encode().expect("encodes"));
    assert_eq!(outcomes_a, outcomes_b);
}

/// A recorded trace replays against itself with a clean report.
#[test]
fn fresh_recording_replays_clean() {
    let (trace, outcomes) = record_storm(3, 7).expect("record");
    assert_eq!(outcomes.len(), 3);
    assert!(
        outcomes.iter().all(|o| o.granted.is_some()),
        "a quiet-network storm decides every session"
    );
    let report = replay_storm(&trace).expect("replay");
    assert_eq!(
        report,
        ReplayReport {
            recorded: trace.records.len(),
            replayed: trace.records.len(),
            divergence: None,
        }
    );
}
