//! PISA ⇔ plaintext-WATCH equivalence: the encrypted pipeline must
//! reach exactly the decision the plaintext baseline reaches, and the
//! SDC's encrypted budget matrix must track the plaintext one.

use pisa::prelude::*;
use pisa_radio::BlockId;
use pisa_watch::{PuInput, SuRequest, WatchSdc};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Drives the same scenario through both systems and compares.
struct TwinSystems {
    pisa: PisaSystem,
    watch: WatchSdc,
    rng: StdRng,
}

impl TwinSystems {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SystemConfig::small_test();
        let pisa = PisaSystem::setup(cfg.clone(), &mut rng);
        let watch = WatchSdc::new(cfg.watch().clone());
        TwinSystems { pisa, watch, rng }
    }

    fn pu_update(&mut self, id: u64, block: BlockId, channel: Option<Channel>) {
        self.pisa.pu_update(id, block, channel, &mut self.rng);
        let input = match channel {
            Some(c) => PuInput::tuned(self.pisa.config().watch(), block, c),
            None => PuInput::off(block),
        };
        self.watch.pu_update(id, input);
    }

    fn check_request(&mut self, su: pisa::SuId, request: &SuRequest) {
        let encrypted = self
            .pisa
            .request_with(su, request, &mut self.rng)
            .expect("protocol runs");
        let plaintext = self.watch.process_request(request);
        assert_eq!(
            encrypted.granted,
            plaintext.is_granted(),
            "encrypted and plaintext decisions diverged for request at {:?} on {:?}",
            request.block(),
            request.requested_channels(),
        );
    }

    fn check_n_matrix(&self) {
        // The STP can decrypt pk_G material: audit that Ñ == N.
        let decrypted = self
            .pisa
            .stp()
            .audit_decrypt_matrix(self.pisa.sdc().n_matrix());
        assert_eq!(&decrypted, self.watch.n_matrix(), "Ñ diverged from N");
    }
}

#[test]
fn budget_matrix_tracks_plaintext_through_updates() {
    let mut twins = TwinSystems::new(100);
    twins.check_n_matrix(); // initial: N = E

    twins.pu_update(0, BlockId(12), Some(Channel(1)));
    twins.check_n_matrix();

    twins.pu_update(1, BlockId(3), Some(Channel(0)));
    twins.check_n_matrix();

    twins.pu_update(0, BlockId(12), Some(Channel(2))); // switch
    twins.check_n_matrix();

    twins.pu_update(1, BlockId(3), None); // off
    twins.check_n_matrix();
}

#[test]
fn decisions_match_on_targeted_scenarios() {
    let mut twins = TwinSystems::new(101);
    twins.pu_update(0, BlockId(12), Some(Channel(1)));
    let cfg = twins.pisa.config().watch().clone();
    let su = twins.pisa.register_su(BlockId(13), &mut twins.rng);

    for request in [
        SuRequest::full_power(&cfg, BlockId(13), &[Channel(1)]),
        SuRequest::full_power(&cfg, BlockId(13), &[Channel(0)]),
        SuRequest::with_power_dbm(&cfg, BlockId(13), &[Channel(1)], -40.0),
        SuRequest::with_power_dbm(&cfg, BlockId(13), &[Channel(1)], 10.0),
        SuRequest::full_power(&cfg, BlockId(13), &[Channel(0), Channel(1), Channel(2)]),
    ] {
        twins.check_request(su, &request);
    }
}

#[test]
fn decisions_match_on_randomized_scenarios() {
    // Randomized PU placements and SU requests; every decision must
    // agree. This is the paper's core correctness claim: PISA "realizes
    // the same function as WATCH".
    let mut twins = TwinSystems::new(102);
    let cfg = twins.pisa.config().watch().clone();
    let blocks = cfg.blocks();
    let channels = cfg.channels();

    // Three PUs at random positions/channels.
    for id in 0..3u64 {
        let block = BlockId((twins.rng.next_u64() as usize) % blocks);
        let channel = Channel((twins.rng.next_u64() as usize) % channels);
        twins.pu_update(id, block, Some(channel));
    }
    twins.check_n_matrix();

    let su_block = BlockId(7);
    let su = twins.pisa.register_su(su_block, &mut twins.rng);
    for _ in 0..6 {
        let channel = Channel((twins.rng.next_u64() as usize) % channels);
        let power_dbm = -40.0 + (twins.rng.next_u64() % 76) as f64; // −40…35 dBm
        let request = SuRequest::with_power_dbm(&cfg, su_block, &[channel], power_dbm);
        twins.check_request(su, &request);
    }
}

#[test]
fn borderline_power_sweep_finds_the_same_threshold() {
    // Sweep SU power upward: both systems must flip from grant to deny
    // at the same step.
    let mut twins = TwinSystems::new(103);
    twins.pu_update(0, BlockId(12), Some(Channel(0)));
    let cfg = twins.pisa.config().watch().clone();
    let su = twins.pisa.register_su(BlockId(14), &mut twins.rng);

    let mut flips = Vec::new();
    let mut last = None;
    for power_dbm in (-30..=36).step_by(6) {
        let request = SuRequest::with_power_dbm(&cfg, BlockId(14), &[Channel(0)], power_dbm as f64);
        let enc = twins
            .pisa
            .request_with(su, &request, &mut twins.rng)
            .unwrap()
            .granted;
        let plain = twins.watch.process_request(&request).is_granted();
        assert_eq!(enc, plain, "diverged at {power_dbm} dBm");
        if last == Some(!enc) || last.is_none() {
            flips.push((power_dbm, enc));
        }
        last = Some(enc);
    }
    // The sweep must contain both outcomes (grant at low power, deny at
    // high power) — otherwise the threshold test is vacuous.
    assert!(flips.iter().any(|&(_, g)| g), "no grant in sweep");
    assert!(flips.iter().any(|&(_, g)| !g), "no denial in sweep");
}

#[test]
fn multi_pu_same_block_aggregates_consistently() {
    // Two PUs in the same block on different channels; the encrypted
    // aggregate must match the plaintext one entry-for-entry.
    let mut twins = TwinSystems::new(104);
    twins.pu_update(0, BlockId(8), Some(Channel(0)));
    twins.pu_update(1, BlockId(8), Some(Channel(2)));
    twins.check_n_matrix();

    let cfg = twins.pisa.config().watch().clone();
    let su = twins.pisa.register_su(BlockId(9), &mut twins.rng);
    twins.check_request(su, &SuRequest::full_power(&cfg, BlockId(9), &[Channel(0)]));
    twins.check_request(su, &SuRequest::full_power(&cfg, BlockId(9), &[Channel(2)]));
    twins.check_request(su, &SuRequest::full_power(&cfg, BlockId(9), &[Channel(1)]));
}

#[test]
fn reaggregation_matches_incremental_budget() {
    // The literal eqs. (9)–(10) rebuild and the incremental path must
    // produce identical encrypted budgets (same plaintexts; the public
    // Ẽ base is deterministic, so ciphertexts match entry-for-entry
    // after decryption).
    let mut rng = StdRng::seed_from_u64(105);
    let cfg = SystemConfig::small_test();
    let mut stp = pisa::StpServer::new(&mut rng, cfg.paillier_bits());
    let mut sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc", &mut rng);
    let _ = &mut stp;

    let e = sdc.e_matrix().clone();
    for (i, (b, c)) in [(3usize, 0usize), (7, 2), (12, 1)].iter().enumerate() {
        let mut pu = pisa::PuClient::new(i as u64, BlockId(*b));
        let msg = pu.tune(Some(Channel(*c)), &cfg, &e, stp.public_key(), &mut rng);
        sdc.handle_pu_update(i as u64, msg).unwrap();
    }
    let incremental = stp.audit_decrypt_matrix(sdc.n_matrix());
    sdc.reaggregate_budget();
    let rebuilt = stp.audit_decrypt_matrix(sdc.n_matrix());
    assert_eq!(incremental, rebuilt);
    assert_eq!(sdc.registered_pus(), 3);
}
