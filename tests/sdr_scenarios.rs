//! The paper's §VI-B SDR experiment (Figures 7–11), reproduced over the
//! signal-level simulator: two SUs and one PU share one channel; after
//! the PU claims it, exactly the SU that will not disturb the PU is
//! granted — and only through the privacy-preserving protocol.

use pisa::prelude::*;
use pisa_radio::airsim::{AirSim, Node};
use pisa_radio::grid::Point;
use pisa_watch::SuRequest;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The testbed layout: PU at the origin, SU1 close by (strong received
/// signal), SU2 farther away (weak), matching the unequal distances of
/// Figure 7/8.
fn testbed() -> (AirSim, usize, usize, usize) {
    let mut sim = AirSim::wifi_channel6();
    let su1 = sim.add_node(Node::usrp("SU1", Point { x: 3.0, y: 0.0 }));
    let su2 = sim.add_node(Node::usrp("SU2", Point { x: 40.0, y: 0.0 }));
    let pu = sim.add_node(Node::usrp("PU", Point { x: 0.0, y: 0.0 }));
    (sim, su1, su2, pu)
}

#[test]
fn scenario1_both_sus_transmit_with_distinct_amplitudes() {
    // Figure 8: PU monitors while SU1/SU2 transmit; the two packets
    // arrive with clearly different amplitudes because of distance.
    let (mut sim, su1, su2, pu) = testbed();
    sim.transmit(su1, 0.0, 120.0);
    sim.transmit(su2, 200.0, 120.0);
    let seen = sim.observe(pu);
    assert_eq!(seen.len(), 2);
    assert_eq!(seen[0].from, "SU1");
    assert_eq!(seen[1].from, "SU2");
    assert!(
        seen[0].amplitude > 2.0 * seen[1].amplitude,
        "amplitudes: {} vs {}",
        seen[0].amplitude,
        seen[1].amplitude
    );
}

#[test]
fn scenario2_pu_claims_channel() {
    // The PU sends its (encrypted) update; the SDC's budget matrix
    // changes — modeled at protocol level: after the update, a co-located
    // full-power request flips from granted to denied.
    let mut r = StdRng::seed_from_u64(301);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    let su = system.register_su(BlockId(1), &mut r);

    assert!(system.request(su, &[Channel(0)], &mut r).granted);
    system.pu_update(0, BlockId(0), Some(Channel(0)), &mut r);
    assert!(!system.request(su, &[Channel(0)], &mut r).granted);
}

#[test]
fn scenario3_and_4_only_the_harmless_su_is_granted() {
    // Scenario 3: both SUs request the PU's channel. Scenario 4: the
    // SDC (blindly!) grants exactly the one whose interference at the PU
    // stays under budget. SU1 is adjacent to the PU; SU2 is far away and
    // asks for modest power.
    let mut r = StdRng::seed_from_u64(302);
    let cfg = SystemConfig::small_test();
    let mut system = PisaSystem::setup(cfg.clone(), &mut r);
    system.pu_update(0, BlockId(0), Some(Channel(0)), &mut r);

    let su1 = system.register_su(BlockId(1), &mut r); // 10 m from PU
    let su2 = system.register_su(BlockId(24), &mut r); // ~57 m away

    let req1 = SuRequest::full_power(cfg.watch(), BlockId(1), &[Channel(0)]);
    let req2 = SuRequest::with_power_dbm(cfg.watch(), BlockId(24), &[Channel(0)], -30.0);

    let out1 = system.request_with(su1, &req1, &mut r).unwrap();
    let out2 = system.request_with(su2, &req2, &mut r).unwrap();

    assert!(!out1.granted, "SU1 beside the PU must be denied");
    assert!(out2.granted, "far, quiet SU2 must be granted");

    // Ground truth agrees (the decision was made blindly but correctly).
    let mut watch = pisa_watch::WatchSdc::new(cfg.watch().clone());
    watch.pu_update(
        0,
        pisa_watch::PuInput::tuned(cfg.watch(), BlockId(0), Channel(0)),
    );
    assert!(watch.process_request(&req1).is_denied());
    assert!(watch.process_request(&req2).is_granted());
}

#[test]
fn scenario4_granted_su_transmits_visibly() {
    // After the grant, SU2 transmits its packet burst (the "11 packets
    // within 20 ms" of Figure 9) and the PU observes exactly SU2's
    // packets, none from the denied SU1.
    let (mut sim, _su1, su2, pu) = testbed();
    for i in 0..11 {
        sim.transmit(su2, i as f64 * 1800.0, 300.0);
    }
    let seen = sim.observe(pu);
    assert_eq!(seen.len(), 11);
    assert!(seen.iter().all(|p| p.from == "SU2"));
    // All 11 packets fall within a 20 ms window.
    let last = seen.last().unwrap();
    assert!(last.time_us + last.duration_us <= 20_000.0);
}

#[test]
fn full_timeline_replay() {
    // The four scenarios in sequence on one simulator + one protocol
    // instance, as the experiment ran them.
    let mut r = StdRng::seed_from_u64(303);
    let cfg = SystemConfig::small_test();
    let mut system = PisaSystem::setup(cfg.clone(), &mut r);
    let (mut sim, su1_node, su2_node, pu_node) = testbed();

    // Scenario 1: free channel, both SUs transmit.
    sim.transmit(su1_node, 0.0, 100.0);
    sim.transmit(su2_node, 150.0, 100.0);
    assert_eq!(sim.observe(pu_node).len(), 2);

    // Scenario 2: PU claims the channel (encrypted update).
    system.pu_update(0, BlockId(0), Some(Channel(0)), &mut r);
    sim.clear_schedule();

    // Scenario 3: both SUs request.
    let su1 = system.register_su(BlockId(1), &mut r);
    let su2 = system.register_su(BlockId(24), &mut r);
    let req1 = SuRequest::full_power(cfg.watch(), BlockId(1), &[Channel(0)]);
    let req2 = SuRequest::with_power_dbm(cfg.watch(), BlockId(24), &[Channel(0)], -30.0);
    let out1 = system.request_with(su1, &req1, &mut r).unwrap();
    let out2 = system.request_with(su2, &req2, &mut r).unwrap();

    // Scenario 4: only the granted SU transmits.
    if out1.granted {
        sim.transmit(su1_node, 0.0, 100.0);
    }
    if out2.granted {
        for i in 0..11 {
            sim.transmit(su2_node, i as f64 * 1800.0, 300.0);
        }
    }
    let seen = sim.observe(pu_node);
    assert_eq!(seen.len(), 11, "exactly SU2's burst is on the air");
    assert!(seen.iter().all(|p| p.from == "SU2"));
}
