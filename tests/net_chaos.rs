//! Chaos test for the networked storm: the 16-session drop / duplicate
//! / reorder scenario from `tests/chaos.rs`, but with SDC, STP and the
//! SU swarm as three independent service loops over real loopback
//! sockets. The chaos invariant must hold across process boundaries:
//! socket-layer faults can cost time, never change a grant/deny
//! decision reached by the fault-free in-memory engine on the same
//! seed.

use pisa::{run_memory_baseline, run_su_storm, EngineConfig, NetStormOpts, SdcService, StpService};
use pisa_net::{FaultConfig, FaultPlan};
use std::time::Duration;

const SESSIONS: u32 = 16;
const SEED: u64 = 0xc0a5;

/// Launches the STP and SDC service loops on ephemeral loopback ports
/// and runs the SU swarm against them with `--halt` semantics, so the
/// shutdown cascade tears the whole deployment down at the end.
fn loopback_storm(opts: &NetStormOpts) -> pisa::EngineReport {
    let stp = StpService::bind(opts, "127.0.0.1:0").expect("bind stp");
    let stp_addr = stp.local_addr().expect("stp addr").to_string();
    let stp_thread = std::thread::spawn(move || stp.run());

    let sdc = SdcService::bind(opts, "127.0.0.1:0", &stp_addr).expect("bind sdc");
    let sdc_addr = sdc.local_addr().expect("sdc addr").to_string();
    let sdc_thread = std::thread::spawn(move || sdc.run());

    let report = run_su_storm(opts, &sdc_addr, true).expect("su storm");

    // The halt frame cascaded SU → SDC → STP: both services drain and
    // hand back their final server state.
    let _sdc_server = sdc_thread.join().expect("sdc service joined");
    let _stp_server = stp_thread.join().expect("stp service joined");
    report
}

#[test]
fn sixteen_sessions_survive_socket_drop_duplicate_reorder() {
    // Same knobs as the in-memory chaos suite: 10% drop/dup/reorder per
    // directed link, a deadline wide enough to absorb 15 other
    // sessions' crypto queueing on the SDC, and a deep retry budget.
    // No corruption here — with `corrupt_possible` every denial burns a
    // retry (a flipped bit and a deny are indistinguishable by design),
    // so strict decision equality needs the corruption-free plan.
    let mut opts = NetStormOpts::new(SESSIONS, SEED);
    opts.engine = EngineConfig::default()
        .with_timeout(Duration::from_millis(1500))
        .with_max_retries(12);
    opts.faults = Some(
        FaultConfig::new(0xfa17).with_default_plan(
            FaultPlan::none()
                .with_drop(0.10)
                .with_duplicate(0.10)
                .with_reorder(0.10),
        ),
    );

    let baseline = run_memory_baseline(&opts).expect("baseline");
    assert!(baseline.all_completed(), "fault-free run must complete");
    let decisions = baseline.decisions();
    // The scenario must exercise both outcomes, or decision equality
    // below would be vacuous.
    assert!(decisions.iter().any(|(_, g)| *g == Some(true)));
    assert!(decisions.iter().any(|(_, g)| *g == Some(false)));

    let report = loopback_storm(&opts);

    assert!(report.all_completed(), "{:?}", report.outcomes);
    assert_eq!(
        report.decisions(),
        decisions,
        "socket faults changed a grant/deny decision"
    );

    // The chaos actually happened on the SU process's outbound link
    // (its metrics only see SU→SDC; the servers inject their own).
    let faults_seen = report.metrics.fault_totals();
    assert!(
        faults_seen.dropped + faults_seen.duplicated + faults_seen.reordered > 0,
        "no socket fault ever fired under 10% chaos: {faults_seen:?}"
    );
    let sessions = report.metrics.session_totals();
    assert!(
        sessions.retries > 0 || sessions.rejected > 0,
        "no session ever retried or rejected under 10% loss: {sessions:?}"
    );
}

#[test]
fn clean_loopback_storm_matches_memory_engine_exactly() {
    // Without faults the networked storm is a pure transport swap: the
    // decisions and the decision *order* must match the in-memory run.
    let mut opts = NetStormOpts::new(8, SEED);
    opts.engine = EngineConfig::default().with_timeout(Duration::from_secs(5));

    let baseline = run_memory_baseline(&opts).expect("baseline");
    let report = loopback_storm(&opts);

    assert!(report.all_completed(), "{:?}", report.outcomes);
    assert_eq!(report.decisions(), baseline.decisions());
    // A clean network absorbs zero faults.
    let faults_seen = report.metrics.fault_totals();
    assert_eq!(faults_seen.dropped, 0);
    assert_eq!(faults_seen.corrupted, 0);
}
