//! Privacy properties: what each party can (not) learn.
//!
//! These tests pin the observable guarantees of Lemma V.1: the STP's
//! view is statistically independent of the true indicator signs, the
//! SDC's view is ciphertext-only and size-invariant, and only the
//! right SU can read its decision.

use pisa::prelude::*;
use pisa_watch::SuRequest;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn stp_observed_signs_are_independent_of_decision() {
    // ε ∈ {−1,+1} uniformly flips every blinded value, so across many
    // requests the STP's observed sign for a *fixed* true-positive entry
    // must be ~50/50. We run the same granted request repeatedly and
    // count positive observations per entry.
    let mut r = rng(200);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    let su = system.register_su(BlockId(5), &mut r);

    let rounds = 60;
    let entries = system.config().channels() * system.config().blocks();
    let mut positive_counts = vec![0u32; entries];
    for _ in 0..rounds {
        let outcome = system.request(su, &[Channel(0)], &mut r);
        assert!(outcome.granted);
        for (i, v) in outcome.stp_observation.v_values.iter().enumerate() {
            if v.is_positive() {
                positive_counts[i] += 1;
            }
        }
    }
    // Aggregate balance: overall positive fraction near 1/2.
    let total_positive: u32 = positive_counts.iter().sum();
    let frac = total_positive as f64 / (rounds * entries as u32) as f64;
    assert!(
        (0.45..0.55).contains(&frac),
        "STP sees biased signs: {frac:.3}"
    );
    // No entry is deterministic (always / never positive) — that would
    // leak its true sign to the STP.
    for (i, &c) in positive_counts.iter().enumerate() {
        assert!(
            c > 0 && c < rounds,
            "entry {i} leaks its sign to the STP ({c}/{rounds} positive)"
        );
    }
}

#[test]
fn stp_view_statistics_match_between_grant_and_deny() {
    // The STP must not be able to tell a granted request from a denied
    // one: compare the positive-sign fraction of its view across both.
    let mut r = rng(201);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    system.pu_update(0, BlockId(12), Some(Channel(1)), &mut r);
    let su = system.register_su(BlockId(13), &mut r);

    let mut fractions = Vec::new();
    for channel in [Channel(1), Channel(0)] {
        // Channel 1 → denied, channel 0 → granted.
        let mut positives = 0usize;
        let mut total = 0usize;
        for _ in 0..30 {
            let outcome = system.request(su, &[channel], &mut r);
            for v in &outcome.stp_observation.v_values {
                total += 1;
                if v.is_positive() {
                    positives += 1;
                }
            }
        }
        fractions.push(positives as f64 / total as f64);
    }
    let diff = (fractions[0] - fractions[1]).abs();
    assert!(
        diff < 0.05,
        "grant/deny distinguishable from STP sign fractions: {fractions:?}"
    );
}

#[test]
fn request_size_is_independent_of_content() {
    // The SDC sees the same number of same-width ciphertexts whatever
    // the SU's power, channel set or position — its view leaks nothing
    // through size.
    let mut r = rng(202);
    let cfg = SystemConfig::small_test();
    let mut system = PisaSystem::setup(cfg.clone(), &mut r);
    let su_a = system.register_su(BlockId(0), &mut r);
    let su_b = system.register_su(BlockId(24), &mut r);

    let quiet = SuRequest::with_power_dbm(cfg.watch(), BlockId(0), &[Channel(0)], -30.0);
    let loud = SuRequest::full_power(
        cfg.watch(),
        BlockId(24),
        &[Channel(0), Channel(1), Channel(2), Channel(3)],
    );
    let a = system.request_with(su_a, &quiet, &mut r).unwrap();
    let b = system.request_with(su_b, &loud, &mut r).unwrap();
    assert_eq!(a.request_bytes, b.request_bytes);
    assert_eq!(a.response_bytes, b.response_bytes);
}

#[test]
fn response_size_is_independent_of_decision() {
    let mut r = rng(203);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    system.pu_update(0, BlockId(12), Some(Channel(1)), &mut r);
    let su = system.register_su(BlockId(13), &mut r);

    let denied = system.request(su, &[Channel(1)], &mut r);
    let granted = system.request(su, &[Channel(0)], &mut r);
    assert!(!denied.granted && granted.granted);
    assert_eq!(denied.response_bytes, granted.response_bytes);
    assert_eq!(denied.sdc_to_stp_bytes, granted.sdc_to_stp_bytes);
}

#[test]
fn pu_update_size_is_independent_of_channel_and_state() {
    // Figure 4: a PU update is always C ciphertexts — whether tuning in,
    // switching or turning off, and regardless of which channel.
    let mut r = rng(204);
    let cfg = SystemConfig::small_test();
    let stp = pisa::StpServer::new(&mut r, cfg.paillier_bits());
    let sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc", &mut r);
    let e = sdc.e_matrix().clone();
    let mut pu = pisa::PuClient::new(0, BlockId(7));

    let mut sizes = Vec::new();
    for ch in [Some(Channel(0)), Some(Channel(3)), None, Some(Channel(1))] {
        let msg = pu.tune(ch, &cfg, &e, stp.public_key(), &mut r);
        sizes.push(pisa_net::WireSize::wire_bytes(&msg));
        assert_eq!(msg.w_column.len(), cfg.channels());
    }
    assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes: {sizes:?}");
}

#[test]
fn wrong_su_cannot_read_the_decision() {
    // The response is encrypted under pk_j; another SU's key recovers
    // garbage that fails license verification.
    let mut r = rng(205);
    let cfg = SystemConfig::small_test();
    let mut stp = pisa::StpServer::new(&mut r, cfg.paillier_bits());
    let mut sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc", &mut r);

    let mut alice = pisa::SuClient::new(pisa::SuId(0), BlockId(5), &cfg, &mut r);
    let eve = pisa::SuClient::new(pisa::SuId(1), BlockId(6), &cfg, &mut r);
    stp.register_su(pisa::SuId(0), alice.public_key().clone());
    stp.register_su(pisa::SuId(1), eve.public_key().clone());

    let request = alice.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut r);
    let to_stp = sdc.process_request_phase1(&request, &mut r).unwrap();
    let (to_sdc, _) = stp.key_convert(&to_stp, &mut r).unwrap();
    let alice_pk = stp.su_key(pisa::SuId(0)).unwrap().clone();
    let response = sdc
        .process_request_phase2(&to_sdc, &alice_pk, &mut r)
        .unwrap();

    assert!(alice.handle_response(&response, sdc.signing_public_key()));
    assert!(
        !eve.handle_response(&response, sdc.signing_public_key()),
        "Eve decrypted Alice's decision"
    );
}

#[test]
fn denied_su_cannot_forge_a_license() {
    // A denied SU holds the license document and a garbled signature;
    // it must not be able to turn that into a valid signature (RSA-FDH
    // unforgeability smoke test: perturbations don't verify).
    let mut r = rng(206);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    system.pu_update(0, BlockId(12), Some(Channel(1)), &mut r);
    let su = system.register_su(BlockId(13), &mut r);
    let outcome = system.request(su, &[Channel(1)], &mut r);
    assert!(!outcome.granted);

    // Try a few trivial forgeries of the (unknown) signature.
    let pk = system.sdc().signing_public_key().clone();
    for guess in 0u64..50 {
        let sig = pisa_crypto::rsa::Signature(pisa_bigint::Ubig::from(guess));
        assert!(outcome.license.verify(&pk, &sig).is_err());
    }
}

#[test]
fn identical_requests_produce_distinct_ciphertext_streams() {
    // Semantic-security smoke test across the full protocol: running
    // the same request twice must never reuse a ciphertext anywhere.
    let mut r = rng(207);
    let cfg = SystemConfig::small_test();
    let mut stp = pisa::StpServer::new(&mut r, cfg.paillier_bits());
    let mut sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc", &mut r);
    let mut su = pisa::SuClient::new(pisa::SuId(0), BlockId(5), &cfg, &mut r);
    stp.register_su(pisa::SuId(0), su.public_key().clone());

    let req1 = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut r);
    let req2 = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut r);
    for (a, b) in req1
        .f_matrix
        .ciphertexts()
        .iter()
        .zip(req2.f_matrix.ciphertexts())
    {
        assert_ne!(a, b);
    }
    let v1 = sdc.process_request_phase1(&req1, &mut r).unwrap();
    let v2 = sdc.process_request_phase1(&req2, &mut r).unwrap();
    for (a, b) in v1
        .v_matrix
        .ciphertexts()
        .iter()
        .zip(v2.v_matrix.ciphertexts())
    {
        assert_ne!(a, b);
    }
}

#[test]
fn stp_cannot_rank_indicator_magnitudes() {
    // Protocol-level check of the log-uniform blinding: across repeated
    // identical requests, the STP's observed |V| for a given entry
    // varies over many octaves, so magnitudes cannot be compared across
    // entries or rounds.
    let mut r = rng(208);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    let su = system.register_su(BlockId(5), &mut r);

    let mut bit_lengths = Vec::new();
    for _ in 0..20 {
        let outcome = system.request(su, &[Channel(0)], &mut r);
        // Track entry 0 (same plaintext indicator every round).
        bit_lengths.push(outcome.stp_observation.v_values[0].magnitude().bit_len());
    }
    let min = *bit_lengths.iter().min().unwrap();
    let max = *bit_lengths.iter().max().unwrap();
    assert!(
        max - min > 8,
        "blinded magnitudes too stable ({min}..{max}): the STP could fingerprint entries"
    );
}

#[test]
fn collusion_breaks_privacy_as_assumed() {
    // Lemma V.1 assumes the SDC and STP do NOT collude. This test shows
    // the assumption is necessary: if the SDC hands its budget matrix to
    // the STP, every PU channel falls out immediately.
    let mut r = rng(209);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    system.pu_update(0, BlockId(12), Some(Channel(1)), &mut r);

    // Colluding STP decrypts the SDC's Ñ…
    let n = system.stp().audit_decrypt_matrix(system.sdc().n_matrix());
    // …and reads the PU's channel as the entry differing from E.
    let e = system.sdc().e_matrix();
    let leaked: Vec<_> = n
        .iter()
        .filter(|&(c, b, v)| v != e.get(c, b))
        .map(|(c, b, _)| (c, b))
        .collect();
    assert_eq!(leaked, vec![(1, 12)], "collusion must reveal the PU");
}
