//! Chaos test for the concurrent session engine: many simultaneous SU
//! sessions over a network injecting deterministic drop / duplicate /
//! reorder (and, separately, corruption) faults must finish with
//! *exactly* the grant/deny decisions of the fault-free run under the
//! same seeds — retries re-send the identical encrypted request and the
//! SDC's attempt-scoped caching makes recomputation idempotent, so
//! faults can cost time but never change an answer.

use pisa::prelude::*;
use pisa::{run_storm, EngineConfig, EngineReport};
use pisa_net::{FaultConfig, FaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const SESSIONS: u32 = 16;

/// Builds an identical system for every call with the same seed: the
/// SDC with one PU tuned in, the STP with every SU registered, and one
/// single-channel request per SU. Some SUs land next to the PU on its
/// channel (denied), the rest don't (granted) — the decision mix is
/// part of what the chaos run must preserve.
fn build_system(n_sus: u32, seed: u64) -> (Vec<(SuClient, Vec<Channel>)>, SdcServer, StpServer) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SystemConfig::small_test();
    let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let mut sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.chaos", &mut rng);

    let mut pu = PuClient::new(0, BlockId(0));
    let e = sdc.e_matrix().clone();
    let update = pu.tune(Some(Channel(0)), &cfg, &e, stp.public_key(), &mut rng);
    sdc.handle_pu_update(pu.id(), update).unwrap();

    let sus = (0..n_sus)
        .map(|i| {
            let block = BlockId(i as usize % cfg.blocks());
            let channel = Channel(i as usize % cfg.channels());
            let su = SuClient::new(SuId(i), block, &cfg, &mut rng);
            stp.register_su(su.id(), su.public_key().clone());
            (su, vec![channel])
        })
        .collect();
    (sus, sdc, stp)
}

fn baseline(n_sus: u32, seed: u64) -> EngineReport {
    let (sus, sdc, stp) = build_system(n_sus, seed);
    let engine = EngineConfig::default().with_timeout(Duration::from_secs(5));
    let (report, _, _) = run_storm(sus, sdc, stp, None, &engine, seed).unwrap();
    assert!(report.all_completed(), "fault-free run must complete");
    report
}

#[test]
fn sixteen_sessions_survive_drop_duplicate_reorder() {
    let seed = 0xc0a5;
    let clean = baseline(SESSIONS, seed);
    let decisions = clean.decisions();
    // The scenario must exercise both outcomes, or decision equality
    // below would be vacuous.
    assert!(decisions.iter().any(|(_, g)| *g == Some(true)));
    assert!(decisions.iter().any(|(_, g)| *g == Some(false)));

    let (sus, sdc, stp) = build_system(SESSIONS, seed);
    let faults = FaultConfig::new(0xfa17).with_default_plan(
        FaultPlan::none()
            .with_drop(0.10)
            .with_duplicate(0.10)
            .with_reorder(0.10),
    );
    // The base deadline must absorb queueing behind 15 other sessions'
    // crypto on one SDC thread, or spurious timeouts snowball into a
    // retry storm; real losses then cost 1.5–12 s each, bounded by the
    // 8× backoff cap.
    let engine = EngineConfig::default()
        .with_timeout(Duration::from_millis(1500))
        .with_max_retries(12);
    let (report, _, _) = run_storm(sus, sdc, stp, Some(faults), &engine, seed).unwrap();

    assert!(report.all_completed(), "{:?}", report.outcomes);
    assert_eq!(
        report.decisions(),
        decisions,
        "faults changed a grant/deny decision"
    );

    // The chaos actually happened, and the engine's resilience counters
    // surfaced it through NetMetrics.
    let faults_seen = report.metrics.fault_totals();
    assert!(faults_seen.dropped > 0, "{faults_seen:?}");
    assert!(faults_seen.duplicated > 0, "{faults_seen:?}");
    assert!(faults_seen.reordered > 0, "{faults_seen:?}");
    let sessions = report.metrics.session_totals();
    assert!(
        sessions.retries > 0 || sessions.rejected > 0,
        "no session ever retried or rejected under 10% loss: {sessions:?}"
    );
    // Per-session counters are attributable, not just aggregated.
    assert!(!report.metrics.session_snapshot().is_empty());
}

#[test]
fn corruption_is_rejected_not_trusted() {
    let seed = 0xc0a6;
    let clean = baseline(6, seed);

    let (sus, sdc, stp) = build_system(6, seed);
    let faults = FaultConfig::new(0x0bad)
        .with_default_plan(FaultPlan::none().with_drop(0.05).with_corrupt(0.15));
    let engine = EngineConfig::default()
        .with_timeout(Duration::from_millis(800))
        .with_max_retries(12);
    let (report, _, _) = run_storm(sus, sdc, stp, Some(faults), &engine, seed).unwrap();

    assert!(report.all_completed(), "{:?}", report.outcomes);
    assert_eq!(
        report.decisions(),
        clean.decisions(),
        "a flipped bit changed a grant/deny decision"
    );
    let faults_seen = report.metrics.fault_totals();
    assert!(
        faults_seen.corrupted + faults_seen.corrupt_dropped > 0,
        "{faults_seen:?}"
    );
}

/// Observability must be close to free: the 16-session chaos storm
/// with spans + counters enabled may cost at most 3% more wall time
/// than the identical run with them disabled. Min-of-N is used on
/// both sides to shed scheduler noise; the workload itself is
/// Paillier-bound, so span bookkeeping is far off the critical path.
/// Soak lane (ignored): two timed release-mode storms per round.
#[test]
#[ignore]
fn observability_overhead_is_under_three_percent() {
    const ROUNDS: usize = 3;
    let seed = 0xc0a7;

    let timed_storm = |observe: bool| {
        pisa_obs::set_enabled(observe);
        if observe {
            pisa_obs::reset();
        }
        let (sus, sdc, stp) = build_system(SESSIONS, seed);
        let engine = EngineConfig::default().with_timeout(Duration::from_secs(5));
        let start = std::time::Instant::now();
        let (report, _, _) = run_storm(sus, sdc, stp, None, &engine, seed).unwrap();
        let elapsed = start.elapsed();
        pisa_obs::set_enabled(false);
        assert!(report.all_completed());
        elapsed
    };

    // Warm-up pass so allocator/page-cache effects don't bias the
    // first measured configuration.
    timed_storm(false);

    let mut off = Duration::MAX;
    let mut on = Duration::MAX;
    for _ in 0..ROUNDS {
        off = off.min(timed_storm(false));
        on = on.min(timed_storm(true));
    }
    assert!(!pisa_obs::report().spans.is_empty(), "no spans recorded");

    let overhead = on.as_secs_f64() / off.as_secs_f64() - 1.0;
    assert!(
        overhead < 0.03,
        "observability overhead {:.2}% exceeds 3% (off {off:?}, on {on:?})",
        overhead * 100.0
    );
}
