//! End-to-end protocol tests: the full Figure 3 / Figure 5 flow.

use pisa::prelude::*;
use pisa_net::LatencyModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn empty_system_grants_everything() {
    let mut r = rng(1);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    let su = system.register_su(BlockId(0), &mut r);
    for c in 0..4 {
        let outcome = system.request(su, &[Channel(c)], &mut r);
        assert!(outcome.granted, "channel {c} must be granted with no PUs");
    }
}

#[test]
fn su_next_to_active_pu_is_denied() {
    let mut r = rng(2);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    system.pu_update(0, BlockId(12), Some(Channel(1)), &mut r);

    let su = system.register_su(BlockId(13), &mut r);
    let denied = system.request(su, &[Channel(1)], &mut r);
    assert!(!denied.granted, "full power beside an active PU");

    // Same SU, different channel: fine.
    let granted = system.request(su, &[Channel(0)], &mut r);
    assert!(granted.granted, "unwatched channel must be granted");
}

#[test]
fn pu_switching_frees_the_old_channel() {
    let mut r = rng(3);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    let su = system.register_su(BlockId(13), &mut r);

    system.pu_update(0, BlockId(12), Some(Channel(1)), &mut r);
    assert!(!system.request(su, &[Channel(1)], &mut r).granted);

    // The PU switches channels: channel 1 opens up, channel 2 closes.
    system.pu_update(0, BlockId(12), Some(Channel(2)), &mut r);
    assert!(system.request(su, &[Channel(1)], &mut r).granted);
    assert!(!system.request(su, &[Channel(2)], &mut r).granted);

    // The PU turns off entirely: everything opens up.
    system.pu_update(0, BlockId(12), None, &mut r);
    assert!(system.request(su, &[Channel(2)], &mut r).granted);
}

#[test]
fn low_power_su_is_granted_where_full_power_is_denied() {
    let mut r = rng(4);
    let cfg = SystemConfig::small_test();
    let mut system = PisaSystem::setup(cfg.clone(), &mut r);
    system.pu_update(0, BlockId(12), Some(Channel(1)), &mut r);
    let su = system.register_su(BlockId(13), &mut r);

    let full = system.request(su, &[Channel(1)], &mut r);
    assert!(!full.granted);

    let quiet =
        pisa_watch::SuRequest::with_power_dbm(cfg.watch(), BlockId(13), &[Channel(1)], -40.0);
    let outcome = system.request_with(su, &quiet, &mut r).unwrap();
    assert!(outcome.granted, "a -40 dBm whisper cannot hurt the PU");
}

#[test]
fn multiple_sus_independent_decisions() {
    let mut r = rng(5);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    system.pu_update(0, BlockId(0), Some(Channel(0)), &mut r);

    let near = system.register_su(BlockId(1), &mut r);
    let far = system.register_su(BlockId(24), &mut r);

    let near_outcome = system.request(near, &[Channel(0)], &mut r);
    let far_outcome = system.request(far, &[Channel(0)], &mut r);
    assert!(!near_outcome.granted, "SU one block from the PU");
    // The far SU is ~32 blocks of 10 m away; whether it is granted
    // depends on the propagation budget — what matters here is that the
    // two decisions are independent and the near one is denied.
    assert_ne!(near_outcome.license.serial, far_outcome.license.serial);
}

#[test]
fn response_sizes_match_shape() {
    // Request is C×B ciphertexts; response is one ciphertext + license.
    let mut r = rng(6);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    let su = system.register_su(BlockId(5), &mut r);
    let outcome = system.request(su, &[Channel(0)], &mut r);

    let cfg = system.config();
    let ct_bytes = 2 * cfg.paillier_bits() / 8;
    let expected_request = cfg.channels() * cfg.blocks() * ct_bytes;
    assert!(outcome.request_bytes >= expected_request);
    assert!(outcome.request_bytes < expected_request + 1024);
    assert!(outcome.response_bytes < 2 * ct_bytes + 256);
    // SDC↔STP traffic is symmetric in entry count.
    assert_eq!(outcome.sdc_to_stp_bytes, outcome.stp_to_sdc_bytes);
}

#[test]
fn network_execution_matches_direct_decision() {
    let mut r = rng(7);
    let cfg = SystemConfig::small_test();

    // Direct.
    let mut direct = PisaSystem::setup(cfg.clone(), &mut r);
    direct.pu_update(0, BlockId(12), Some(Channel(1)), &mut r);
    let su_id = direct.register_su(BlockId(13), &mut r);
    let direct_outcome = direct.request(su_id, &[Channel(1)], &mut r);

    // Over the simulated network with independent parties.
    let mut r2 = rng(8);
    let mut stp = pisa::StpServer::new(&mut r2, cfg.paillier_bits());
    let mut sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.net", &mut r2);
    let mut pu = pisa::PuClient::new(0, BlockId(12));
    let e = sdc.e_matrix().clone();
    let update = pu.tune(Some(Channel(1)), &cfg, &e, stp.public_key(), &mut r2);
    sdc.handle_pu_update(0, update).unwrap();

    let mut su = pisa::SuClient::new(pisa::SuId(0), BlockId(13), &cfg, &mut r2);
    stp.register_su(pisa::SuId(0), su.public_key().clone());

    let (run, _sdc, _stp) =
        pisa::run_request_over_network(&mut su, sdc, stp, &[Channel(1)], LatencyModel::lan(), 1234)
            .unwrap();

    assert_eq!(run.outcome.granted, direct_outcome.granted);
    assert_eq!(run.metrics.total_messages(), 4);
    assert!(run.estimated_network_time.as_nanos() > 0);
}

#[test]
fn refreshed_request_reaches_same_decision() {
    let mut r = rng(9);
    let cfg = SystemConfig::small_test();
    let mut stp = pisa::StpServer::new(&mut r, cfg.paillier_bits());
    let mut sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc", &mut r);
    let mut su = pisa::SuClient::new(pisa::SuId(0), BlockId(5), &cfg, &mut r);
    stp.register_su(pisa::SuId(0), su.public_key().clone());

    // First request: fresh encryption.
    let first = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut r);
    let to_stp = sdc.process_request_phase1(&first, &mut r).unwrap();
    let (to_sdc, _) = stp.key_convert(&to_stp, &mut r).unwrap();
    let su_pk = stp.su_key(pisa::SuId(0)).unwrap().clone();
    let resp1 = sdc.process_request_phase2(&to_sdc, &su_pk, &mut r).unwrap();
    let granted1 = su.handle_response(&resp1, sdc.signing_public_key());

    // Second request: re-randomized refresh of the cached matrix.
    let refreshed = su.refresh_request(stp.public_key(), &mut r);
    let to_stp = sdc.process_request_phase1(&refreshed, &mut r).unwrap();
    let (to_sdc, _) = stp.key_convert(&to_stp, &mut r).unwrap();
    let resp2 = sdc.process_request_phase2(&to_sdc, &su_pk, &mut r).unwrap();
    let granted2 = su.handle_response(&resp2, sdc.signing_public_key());

    assert_eq!(granted1, granted2);
    // Licenses bind to the *ciphertexts*, so the digests must differ.
    assert_ne!(resp1.license.request_digest, resp2.license.request_digest);
}

#[test]
fn license_binds_su_identity() {
    let mut r = rng(10);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    let su_a = system.register_su(BlockId(3), &mut r);
    let su_b = system.register_su(BlockId(4), &mut r);
    let a = system.request(su_a, &[Channel(0)], &mut r);
    let b = system.request(su_b, &[Channel(0)], &mut r);
    assert_eq!(a.license.su_id, su_a);
    assert_eq!(b.license.su_id, su_b);
    assert_ne!(a.license.serial, b.license.serial);
}

#[test]
fn region_restricted_request_still_correct() {
    let mut r = rng(11);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    system.pu_update(0, BlockId(2), Some(Channel(1)), &mut r);

    // SU at block 3, privacy region = first 10 blocks (covers both).
    let su = system.register_su(BlockId(3), &mut r);
    system.set_su_privacy(su, pisa::LocationPrivacy::Region(10));

    let denied = system.request(su, &[Channel(1)], &mut r);
    assert!(!denied.granted, "PU in region must still be protected");
    let granted = system.request(su, &[Channel(3)], &mut r);
    assert!(granted.granted);

    // And the request was proportionally smaller than a full one.
    let full_entries = system.config().channels() * system.config().blocks();
    let region_entries = system.config().channels() * 10;
    let ct = 2 * system.config().paillier_bits() / 8;
    assert!(denied.request_bytes < region_entries * ct + 1024);
    assert!(denied.request_bytes < full_entries * ct / 2);
}

#[test]
fn many_pus_aggregate() {
    let mut r = rng(12);
    let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut r);
    // Five PUs on distinct blocks, all watching channel 0.
    for (i, b) in [0usize, 4, 12, 20, 24].iter().enumerate() {
        system.pu_update(i as u64, BlockId(*b), Some(Channel(0)), &mut r);
    }
    let su = system.register_su(BlockId(12), &mut r);
    assert!(!system.request(su, &[Channel(0)], &mut r).granted);
    assert!(system.request(su, &[Channel(1)], &mut r).granted);
}

#[test]
fn full_round_through_real_serialization() {
    // Every message crosses a genuine encode → bytes → decode boundary;
    // the decision must be unchanged and frame sizes must match the
    // analytic accounting used everywhere else.
    let mut r = rng(13);
    let cfg = SystemConfig::small_test();
    let mut stp = pisa::StpServer::new(&mut r, cfg.paillier_bits());
    let mut sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.wire", &mut r);
    let mut pu = pisa::PuClient::new(0, BlockId(12));
    let e = sdc.e_matrix().clone();

    let hop = |m: pisa::PisaMessage| -> pisa::PisaMessage {
        let frame = m.encode().unwrap();
        pisa::PisaMessage::decode(&frame).expect("well-formed frame")
    };

    // PU update over the wire.
    let update = pu.tune(Some(Channel(1)), &cfg, &e, stp.public_key(), &mut r);
    let pisa::PisaMessage::PuUpdate(update) = hop(pisa::PisaMessage::PuUpdate(update)) else {
        unreachable!()
    };
    sdc.handle_pu_update(0, update).unwrap();

    // Request over the wire.
    let mut su = pisa::SuClient::new(pisa::SuId(0), BlockId(13), &cfg, &mut r);
    stp.register_su(pisa::SuId(0), su.public_key().clone());
    let request = su.build_request(&cfg, stp.public_key(), &[Channel(1)], &mut r);
    let request_frame_len = pisa::PisaMessage::SuRequest(request.clone())
        .encode()
        .unwrap()
        .len();
    let pisa::PisaMessage::SuRequest(request) = hop(pisa::PisaMessage::SuRequest(request)) else {
        unreachable!()
    };
    // The frame really is dominated by C×B_region padded ciphertexts.
    let ct = 2 * cfg.paillier_bits() / 8;
    assert!(request_frame_len >= cfg.channels() * cfg.blocks() * ct);

    let to_stp = sdc.process_request_phase1(&request, &mut r).unwrap();
    let pisa::PisaMessage::SdcToStp(to_stp) = hop(pisa::PisaMessage::SdcToStp(to_stp)) else {
        unreachable!()
    };
    let (to_sdc, _) = stp.key_convert(&to_stp, &mut r).unwrap();
    let pisa::PisaMessage::StpToSdc(to_sdc) = hop(pisa::PisaMessage::StpToSdc(to_sdc)) else {
        unreachable!()
    };
    let su_pk = stp.su_key(pisa::SuId(0)).unwrap().clone();
    let response = sdc.process_request_phase2(&to_sdc, &su_pk, &mut r).unwrap();
    let pisa::PisaMessage::SdcResponse(response) = hop(pisa::PisaMessage::SdcResponse(response))
    else {
        unreachable!()
    };

    // Full power beside the active PU: denied, through real bytes.
    assert!(!su.handle_response(&response, sdc.signing_public_key()));
}

#[test]
fn concurrent_sus_interleave_correctly() {
    // Four SUs request simultaneously over one network; the SDC's
    // per-SU pending state must keep interleaved phase-1/phase-2
    // exchanges straight, and each SU must get its own correct decision.
    let mut r = rng(14);
    let cfg = SystemConfig::small_test();
    let mut stp = pisa::StpServer::new(&mut r, cfg.paillier_bits());
    let mut sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.mt", &mut r);

    // PU on channel 1 at block 12.
    let mut pu = pisa::PuClient::new(0, BlockId(12));
    let e = sdc.e_matrix().clone();
    let update = pu.tune(Some(Channel(1)), &cfg, &e, stp.public_key(), &mut r);
    sdc.handle_pu_update(0, update).unwrap();

    // SUs: two colliding with the PU (blocks 11, 13 on ch1 → denied),
    // two elsewhere (ch0/ch2 → granted).
    let mut sus = Vec::new();
    let expectations = [
        (BlockId(11), Channel(1), false),
        (BlockId(13), Channel(1), false),
        (BlockId(0), Channel(0), true),
        (BlockId(24), Channel(2), true),
    ];
    for (i, &(block, ch, _)) in expectations.iter().enumerate() {
        let su = pisa::SuClient::new(pisa::SuId(i as u32), block, &cfg, &mut r);
        stp.register_su(pisa::SuId(i as u32), su.public_key().clone());
        sus.push((su, vec![ch]));
    }

    let (outcomes, _sdc, _stp) = pisa::run_concurrent_requests(sus, sdc, stp, 0xc0c0).unwrap();
    assert_eq!(outcomes.len(), 4);
    for (id, granted) in outcomes {
        let expected = expectations[id.0 as usize].2;
        assert_eq!(granted, expected, "{id} decision");
    }
}

#[test]
fn sdc_snapshot_restore_preserves_behaviour() {
    // Crash-recovery: an SDC restored from a snapshot reaches the same
    // decisions, verifies with the same signing key, and continues the
    // license serial sequence.
    let mut r = rng(15);
    let cfg = SystemConfig::small_test();
    let mut stp = pisa::StpServer::new(&mut r, cfg.paillier_bits());
    let mut sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.snap", &mut r);

    let mut pu = pisa::PuClient::new(0, BlockId(12));
    let e = sdc.e_matrix().clone();
    let update = pu.tune(Some(Channel(1)), &cfg, &e, stp.public_key(), &mut r);
    sdc.handle_pu_update(0, update).unwrap();

    let mut su = pisa::SuClient::new(pisa::SuId(0), BlockId(13), &cfg, &mut r);
    stp.register_su(pisa::SuId(0), su.public_key().clone());
    let before = pisa::run_request_direct(&mut su, &mut sdc, &stp, &[Channel(1)], &mut r).unwrap();
    assert!(!before.granted);

    // Crash + restore.
    let frame = sdc.snapshot().unwrap();
    drop(sdc);
    let mut restored =
        pisa::SdcServer::restore(cfg.clone(), stp.public_key().clone(), &frame).unwrap();
    assert_eq!(restored.registered_pus(), 1);

    // Budget state survived: same denial on ch1, grant on ch0.
    let after =
        pisa::run_request_direct(&mut su, &mut restored, &stp, &[Channel(1)], &mut r).unwrap();
    assert!(!after.granted);
    let open =
        pisa::run_request_direct(&mut su, &mut restored, &stp, &[Channel(0)], &mut r).unwrap();
    assert!(open.granted, "restored SDC must still grant clean channels");

    // Serial numbers continue past the pre-crash value.
    assert!(after.license.serial > before.license.serial);
    // Same signing key: SU verified responses without re-fetching keys.
    assert!(restored.signing_public_key() == &sdc_key(&frame, &cfg, &stp));
}

/// Re-restores the snapshot to extract the signing key independently.
fn sdc_key(
    frame: &[u8],
    cfg: &SystemConfig,
    stp: &pisa::StpServer,
) -> pisa_crypto::rsa::RsaPublicKey {
    pisa::SdcServer::restore(cfg.clone(), stp.public_key().clone(), frame)
        .unwrap()
        .signing_public_key()
        .clone()
}

#[test]
fn snapshot_rejects_corruption() {
    let mut r = rng(16);
    let cfg = SystemConfig::small_test();
    let stp = pisa::StpServer::new(&mut r, cfg.paillier_bits());
    let sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc", &mut r);
    let frame = sdc.snapshot().unwrap();

    // Wrong version byte.
    let mut bad = frame.to_vec();
    bad[0] = 99;
    assert!(pisa::SdcServer::restore(cfg.clone(), stp.public_key().clone(), &bad).is_err());
    // Truncation.
    assert!(pisa::SdcServer::restore(
        cfg.clone(),
        stp.public_key().clone(),
        &frame[..frame.len() / 2]
    )
    .is_err());
    // Trailing garbage.
    let mut long = frame.to_vec();
    long.push(0);
    assert!(pisa::SdcServer::restore(cfg, stp.public_key().clone(), &long).is_err());
}

#[test]
fn parallel_processing_matches_sequential_decisions() {
    // The multi-threaded SDC phase 1 and STP conversion must reach the
    // same decisions as the sequential paths (different ciphertexts —
    // fresh blinds — identical semantics).
    let mut r = rng(17);
    let cfg = SystemConfig::small_test();
    let mut stp = pisa::StpServer::new(&mut r, cfg.paillier_bits());
    let mut sdc = pisa::SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.par", &mut r);
    let mut pu = pisa::PuClient::new(0, BlockId(12));
    let e = sdc.e_matrix().clone();
    let update = pu.tune(Some(Channel(1)), &cfg, &e, stp.public_key(), &mut r);
    sdc.handle_pu_update(0, update).unwrap();

    let mut su = pisa::SuClient::new(pisa::SuId(0), BlockId(13), &cfg, &mut r);
    stp.register_su(pisa::SuId(0), su.public_key().clone());
    let su_pk = stp.su_key(pisa::SuId(0)).unwrap().clone();

    for (ch, expected) in [(Channel(1), false), (Channel(0), true)] {
        let request = su.build_request(&cfg, stp.public_key(), &[ch], &mut r);
        let to_stp = sdc
            .process_request_phase1_parallel(&request, 4, &mut r)
            .unwrap();
        let (to_sdc, obs) = stp.key_convert_parallel(&to_stp, 4, &mut r).unwrap();
        assert_eq!(obs.v_values.len(), to_stp.v_matrix.len());
        let response = sdc.process_request_phase2(&to_sdc, &su_pk, &mut r).unwrap();
        let granted = su.handle_response(&response, sdc.signing_public_key());
        assert_eq!(granted, expected, "parallel decision on {ch}");
    }
}
