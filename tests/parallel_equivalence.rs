//! Parallel/sequential equivalence: the multi-threaded SDC and STP
//! paths must be *byte-identical* to the sequential ones — same wire
//! frames, same grant/deny — for any thread count. Both paths derive
//! per-entry randomness from a single RNG draw, so this holds exactly,
//! not just statistically.

use pisa::prelude::*;
use pisa::PisaMessage;
use pisa_radio::tv::Channel;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [1, 2, 8];

struct Fixture {
    cfg: SystemConfig,
    stp: StpServer,
    sdc: SdcServer,
    su: SuClient,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SystemConfig::small_test();
    let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.par", &mut rng);
    let su = SuClient::new(SuId(0), BlockId(3), &cfg, &mut rng);
    stp.register_su(su.id(), su.public_key().clone());
    Fixture { cfg, stp, sdc, su }
}

#[test]
fn phase1_parallel_is_byte_identical_to_sequential() {
    let mut f = fixture(0xe401);
    let mut rng = StdRng::seed_from_u64(0x11);
    let request =
        f.su.build_request(&f.cfg, f.stp.public_key(), &[Channel(0)], &mut rng);

    let sequential = f
        .sdc
        .process_request_phase1(&request, &mut StdRng::seed_from_u64(0x22))
        .unwrap();
    let seq_bytes = PisaMessage::SdcToStp(sequential).encode();

    for threads in THREADS {
        let parallel = f
            .sdc
            .process_request_phase1_parallel(&request, threads, &mut StdRng::seed_from_u64(0x22))
            .unwrap();
        assert_eq!(
            PisaMessage::SdcToStp(parallel).encode(),
            seq_bytes,
            "phase 1 diverged with {threads} threads"
        );
    }
}

#[test]
fn key_convert_parallel_is_byte_identical_to_sequential() {
    let mut f = fixture(0xe402);
    let mut rng = StdRng::seed_from_u64(0x33);
    let request =
        f.su.build_request(&f.cfg, f.stp.public_key(), &[Channel(1)], &mut rng);
    let query = f.sdc.process_request_phase1(&request, &mut rng).unwrap();

    let (sequential, seq_obs) = f
        .stp
        .key_convert(&query, &mut StdRng::seed_from_u64(0x44))
        .unwrap();
    let seq_bytes = PisaMessage::StpToSdc(sequential).encode();

    for threads in THREADS {
        let (parallel, obs) = f
            .stp
            .key_convert_parallel(&query, threads, &mut StdRng::seed_from_u64(0x44))
            .unwrap();
        assert_eq!(
            PisaMessage::StpToSdc(parallel).encode(),
            seq_bytes,
            "key conversion diverged with {threads} threads"
        );
        assert_eq!(obs.v_values, seq_obs.v_values, "{threads} threads");
    }
}

/// One full round on a freshly built fixture, so every call sees the
/// same license serial (it is monotone per SDC) and the entire response
/// — including the gated ciphertext `G̃` — is byte-comparable.
fn run_round(
    fixture_seed: u64,
    with_pu: bool,
    channels: &[Channel],
    phase1: impl FnOnce(&mut SdcServer, &pisa::SuRequestMsg, &mut StdRng) -> pisa::SdcToStpMsg,
    convert: impl FnOnce(&StpServer, &pisa::SdcToStpMsg, &mut StdRng) -> pisa::StpToSdcMsg,
) -> (bytes::Bytes, bool) {
    let mut f = fixture(fixture_seed);
    if with_pu {
        // A PU on the SU's channel right next door: the budget goes
        // negative and the request must be denied — on every path.
        let mut rng = StdRng::seed_from_u64(0x99);
        let mut pu = PuClient::new(0, BlockId(2));
        let e = f.sdc.e_matrix().clone();
        let pk_g = f.stp.public_key().clone();
        let update = pu.tune(Some(Channel(0)), &f.cfg, &e, &pk_g, &mut rng);
        f.sdc.handle_pu_update(pu.id(), update).unwrap();
    }
    let request = f.su.build_request(
        &f.cfg,
        f.stp.public_key(),
        channels,
        &mut StdRng::seed_from_u64(0x55),
    );
    let su_pk = f.stp.su_key(f.su.id()).unwrap().clone();

    let query = phase1(&mut f.sdc, &request, &mut StdRng::seed_from_u64(0x66));
    let reply = convert(&f.stp, &query, &mut StdRng::seed_from_u64(0x77));
    let response = f
        .sdc
        .process_request_phase2(&reply, &su_pk, &mut StdRng::seed_from_u64(0x88))
        .unwrap();
    let granted = f.su.handle_response(&response, f.sdc.signing_public_key());
    (PisaMessage::SdcResponse(response).encode(), granted)
}

fn assert_round_parity(fixture_seed: u64, with_pu: bool, expect_granted: bool) {
    let channels = [Channel(0)];
    let (seq_bytes, seq_granted) = run_round(
        fixture_seed,
        with_pu,
        &channels,
        |sdc, req, rng| sdc.process_request_phase1(req, rng).unwrap(),
        |stp, q, rng| stp.key_convert(q, rng).unwrap().0,
    );
    assert_eq!(seq_granted, expect_granted);

    for threads in THREADS {
        let (par_bytes, par_granted) = run_round(
            fixture_seed,
            with_pu,
            &channels,
            |sdc, req, rng| {
                sdc.process_request_phase1_parallel(req, threads, rng)
                    .unwrap()
            },
            |stp, q, rng| stp.key_convert_parallel(q, threads, rng).unwrap().0,
        );
        assert_eq!(
            par_bytes, seq_bytes,
            "response frame diverged with {threads} threads"
        );
        assert_eq!(
            par_granted, seq_granted,
            "decision diverged with {threads} threads"
        );
    }
}

#[test]
fn parallel_round_grants_like_sequential() {
    assert_round_parity(0xe403, false, true);
}

#[test]
fn parallel_round_denies_like_sequential() {
    assert_round_parity(0xe404, true, false);
}
