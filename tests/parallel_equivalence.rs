//! Parallel/sequential equivalence: the multi-threaded SDC and STP
//! paths must be *byte-identical* to the sequential ones — same wire
//! frames, same grant/deny — for any thread count. Both paths derive
//! per-entry randomness from a single RNG draw, so this holds exactly,
//! not just statistically.

use pisa::prelude::*;
use pisa::PisaMessage;
use pisa_radio::tv::Channel;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [1, 2, 8];

struct Fixture {
    cfg: SystemConfig,
    stp: StpServer,
    sdc: SdcServer,
    su: SuClient,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SystemConfig::small_test();
    let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.par", &mut rng);
    let su = SuClient::new(SuId(0), BlockId(3), &cfg, &mut rng);
    stp.register_su(su.id(), su.public_key().clone());
    Fixture { cfg, stp, sdc, su }
}

#[test]
fn phase1_parallel_is_byte_identical_to_sequential() {
    let mut f = fixture(0xe401);
    let mut rng = StdRng::seed_from_u64(0x11);
    let request =
        f.su.build_request(&f.cfg, f.stp.public_key(), &[Channel(0)], &mut rng);

    let sequential = f
        .sdc
        .process_request_phase1(&request, &mut StdRng::seed_from_u64(0x22))
        .unwrap();
    let seq_bytes = PisaMessage::SdcToStp(sequential).encode().unwrap();

    for threads in THREADS {
        let parallel = f
            .sdc
            .process_request_phase1_parallel(&request, threads, &mut StdRng::seed_from_u64(0x22))
            .unwrap();
        assert_eq!(
            PisaMessage::SdcToStp(parallel).encode().unwrap(),
            seq_bytes,
            "phase 1 diverged with {threads} threads"
        );
    }
}

#[test]
fn key_convert_parallel_is_byte_identical_to_sequential() {
    let mut f = fixture(0xe402);
    let mut rng = StdRng::seed_from_u64(0x33);
    let request =
        f.su.build_request(&f.cfg, f.stp.public_key(), &[Channel(1)], &mut rng);
    let query = f.sdc.process_request_phase1(&request, &mut rng).unwrap();

    let (sequential, seq_obs) = f
        .stp
        .key_convert(&query, &mut StdRng::seed_from_u64(0x44))
        .unwrap();
    let seq_bytes = PisaMessage::StpToSdc(sequential).encode().unwrap();

    for threads in THREADS {
        let (parallel, obs) = f
            .stp
            .key_convert_parallel(&query, threads, &mut StdRng::seed_from_u64(0x44))
            .unwrap();
        assert_eq!(
            PisaMessage::StpToSdc(parallel).encode().unwrap(),
            seq_bytes,
            "key conversion diverged with {threads} threads"
        );
        assert_eq!(obs.v_values, seq_obs.v_values, "{threads} threads");
    }
}

/// One full round on a freshly built fixture, so every call sees the
/// same license serial (it is monotone per SDC) and the entire response
/// — including the gated ciphertext `G̃` — is byte-comparable.
fn run_round(
    fixture_seed: u64,
    with_pu: bool,
    channels: &[Channel],
    phase1: impl FnOnce(&mut SdcServer, &pisa::SuRequestMsg, &mut StdRng) -> pisa::SdcToStpMsg,
    convert: impl FnOnce(&StpServer, &pisa::SdcToStpMsg, &mut StdRng) -> pisa::StpToSdcMsg,
) -> (bytes::Bytes, bool) {
    let mut f = fixture(fixture_seed);
    if with_pu {
        // A PU on the SU's channel right next door: the budget goes
        // negative and the request must be denied — on every path.
        let mut rng = StdRng::seed_from_u64(0x99);
        let mut pu = PuClient::new(0, BlockId(2));
        let e = f.sdc.e_matrix().clone();
        let pk_g = f.stp.public_key().clone();
        let update = pu.tune(Some(Channel(0)), &f.cfg, &e, &pk_g, &mut rng);
        f.sdc.handle_pu_update(pu.id(), update).unwrap();
    }
    let request = f.su.build_request(
        &f.cfg,
        f.stp.public_key(),
        channels,
        &mut StdRng::seed_from_u64(0x55),
    );
    let su_pk = f.stp.su_key(f.su.id()).unwrap().clone();

    let query = phase1(&mut f.sdc, &request, &mut StdRng::seed_from_u64(0x66));
    let reply = convert(&f.stp, &query, &mut StdRng::seed_from_u64(0x77));
    let response = f
        .sdc
        .process_request_phase2(&reply, &su_pk, &mut StdRng::seed_from_u64(0x88))
        .unwrap();
    let granted = f.su.handle_response(&response, f.sdc.signing_public_key());
    (
        PisaMessage::SdcResponse(response).encode().unwrap(),
        granted,
    )
}

fn assert_round_parity(fixture_seed: u64, with_pu: bool, expect_granted: bool) {
    let channels = [Channel(0)];
    let (seq_bytes, seq_granted) = run_round(
        fixture_seed,
        with_pu,
        &channels,
        |sdc, req, rng| sdc.process_request_phase1(req, rng).unwrap(),
        |stp, q, rng| stp.key_convert(q, rng).unwrap().0,
    );
    assert_eq!(seq_granted, expect_granted);

    for threads in THREADS {
        let (par_bytes, par_granted) = run_round(
            fixture_seed,
            with_pu,
            &channels,
            |sdc, req, rng| {
                sdc.process_request_phase1_parallel(req, threads, rng)
                    .unwrap()
            },
            |stp, q, rng| stp.key_convert_parallel(q, threads, rng).unwrap().0,
        );
        assert_eq!(
            par_bytes, seq_bytes,
            "response frame diverged with {threads} threads"
        );
        assert_eq!(
            par_granted, seq_granted,
            "decision diverged with {threads} threads"
        );
    }
}

#[test]
fn parallel_round_grants_like_sequential() {
    assert_round_parity(0xe403, false, true);
}

#[test]
fn parallel_round_denies_like_sequential() {
    assert_round_parity(0xe404, true, false);
}

// ---------------------------------------------------------------------
// Simulator-vs-threaded equivalence: the virtual-time storm must agree
// with the thread-per-party storm wherever the latter is deterministic
// (no faults, no timeouts): same per-SU decisions, same attempt counts,
// same wire traffic.
// ---------------------------------------------------------------------

/// The canonical storm population (same recipe as `pisa storm` /
/// `run_sim_storm`): one PU at block 0 on channel 0, SU `i` at block
/// `i % blocks` requesting channel `i % channels`.
fn storm_population(seed: u64, n: u32) -> (Vec<(SuClient, Vec<Channel>)>, SdcServer, StpServer) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SystemConfig::small_test();
    let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let mut sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.storm", &mut rng);
    let mut pu = PuClient::new(0, BlockId(0));
    let e = sdc.e_matrix().clone();
    let update = pu.tune(Some(Channel(0)), &cfg, &e, stp.public_key(), &mut rng);
    sdc.handle_pu_update(pu.id(), update).unwrap();
    let clients = (0..n)
        .map(|i| {
            let su = SuClient::new(SuId(i), BlockId(i as usize % cfg.blocks()), &cfg, &mut rng);
            stp.register_su(su.id(), su.public_key().clone());
            (su, vec![Channel(i as usize % cfg.channels())])
        })
        .collect();
    (clients, sdc, stp)
}

#[test]
fn sim_storm_matches_threaded_storm() {
    use pisa::{run_storm, EngineConfig};
    use pisa_sim::run_sim_storm_with;
    use std::time::Duration;

    let seed = 0xe405;
    let n = 12;
    // A timeout far beyond any crypto latency, so the threaded run is
    // deterministic: no spurious timeouts, exactly one attempt per SU.
    let engine = EngineConfig::default().with_timeout(Duration::from_secs(120));

    let (clients, sdc, stp) = storm_population(seed, n);
    let (threaded, _, _) = run_storm(clients, sdc, stp, None, &engine, seed).unwrap();
    assert!(threaded.all_completed());

    let (clients, sdc, stp) = storm_population(seed, n);
    let sim = run_sim_storm_with(clients, sdc, stp, None, &engine, seed, 0.0).unwrap();
    assert!(sim.all_terminal());
    assert_eq!(sim.fidelity, "real");

    // Identical per-SU decisions and attempt counts.
    let mut threaded_dec: Vec<(u32, Option<bool>, u32)> = threaded
        .outcomes
        .iter()
        .map(|o| (o.su_id.0, o.granted, o.attempts))
        .collect();
    threaded_dec.sort_unstable();
    let mut sim_dec: Vec<(u32, Option<bool>, u32)> = sim
        .outcomes
        .iter()
        .map(|o| (o.su, o.granted, o.attempts))
        .collect();
    sim_dec.sort_unstable();
    assert_eq!(sim_dec, threaded_dec, "per-SU decisions diverged");
    assert!(
        sim_dec
            .iter()
            .all(|&(_, granted, attempts)| granted.is_some() && attempts == 1),
        "a fault-free storm decides every session on the first attempt"
    );
    // Both grant and deny paths exercised (PU sits on channel 0).
    assert!(sim_dec.iter().any(|&(_, g, _)| g == Some(true)));
    assert!(sim_dec.iter().any(|&(_, g, _)| g == Some(false)));

    // Identical wire traffic: the virtual network moved the same
    // frames (request, query, reply, response per session).
    assert_eq!(sim.messages, threaded.metrics.total_messages());
    assert_eq!(sim.bytes, threaded.metrics.total_bytes());
    assert_eq!(sim.messages, u64::from(n) * 4);
}
