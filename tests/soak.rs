//! Randomized soak test: a long interleaved sequence of PU churn and SU
//! requests, with every decision checked against the plaintext oracle
//! and the encrypted budget audited periodically.

use pisa::prelude::*;
use pisa_watch::{PuInput, SuRequest, WatchSdc};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

#[test]
#[ignore = "long soak; run explicitly with --ignored --release (CI soak lane)"]
fn interleaved_churn_and_requests_stay_consistent() {
    let mut rng = StdRng::seed_from_u64(0x50a5);
    let cfg = SystemConfig::small_test();
    let mut system = PisaSystem::setup(cfg.clone(), &mut rng);
    let mut mirror = WatchSdc::new(cfg.watch().clone());

    let blocks = cfg.blocks();
    let channels = cfg.channels();
    let su = system.register_su(BlockId(7), &mut rng);
    // Fixed PU home blocks (receiver locations are registered).
    let pu_homes: Vec<BlockId> = (0..4).map(|i| BlockId((i * 6 + 1) % blocks)).collect();

    let mut requests = 0;
    for step in 0..40 {
        match rng.next_u64() % 3 {
            // PU churn: tune, switch or turn off a random PU.
            0 | 1 => {
                let pu = (rng.next_u64() % pu_homes.len() as u64) as usize;
                let tuned = if rng.next_u64() % 5 == 0 {
                    None
                } else {
                    Some(Channel((rng.next_u64() as usize) % channels))
                };
                system.pu_update(pu as u64, pu_homes[pu], tuned, &mut rng);
                mirror.pu_update(
                    pu as u64,
                    match tuned {
                        Some(c) => PuInput::tuned(cfg.watch(), pu_homes[pu], c),
                        None => PuInput::off(pu_homes[pu]),
                    },
                );
            }
            // SU request at random channel/power.
            _ => {
                let ch = Channel((rng.next_u64() as usize) % channels);
                let dbm = -45.0 + (rng.next_u64() % 80) as f64;
                let request = SuRequest::with_power_dbm(cfg.watch(), BlockId(7), &[ch], dbm);
                let outcome = system.request_with(su, &request, &mut rng).unwrap();
                let truth = mirror.process_request(&request);
                assert_eq!(
                    outcome.granted,
                    truth.is_granted(),
                    "diverged at step {step} ({ch}, {dbm} dBm)"
                );
                requests += 1;
            }
        }
        // Periodic audit: the encrypted budget tracks the plaintext one.
        if step % 10 == 9 {
            let decrypted = system.stp().audit_decrypt_matrix(system.sdc().n_matrix());
            assert_eq!(&decrypted, mirror.n_matrix(), "budget diverged at {step}");
        }
    }
    assert!(requests >= 5, "soak exercised only {requests} requests");
}
