//! Determinism regression suite for the discrete-event simulator.
//!
//! The simulator's contract is *bit* determinism: the same
//! `(seed, config)` must produce a byte-identical serialized report,
//! run to run, machine to machine, and — for the real-engine fidelity
//! — regardless of the crypto worker count. These tests pin that
//! contract, replay a checked-in golden seed list so a behavior change
//! cannot slip in silently, and prove the paper-scale 10⁵-session
//! storm stays fast, terminal and reproducible.

use pisa::EngineConfig;
use pisa_net::FaultPlan;
use pisa_sim::{run_sim_storm, SimConfig};
use std::time::{Duration, Instant};

fn quick_engine() -> EngineConfig {
    EngineConfig::default().with_timeout(Duration::from_millis(50))
}

#[test]
fn same_seed_same_bytes_twice() {
    let config = SimConfig::modeled(200)
        .with_plan(FaultPlan::uniform(0.15))
        .with_engine(quick_engine());
    let a = run_sim_storm(0xd00d, &config).to_json();
    let b = run_sim_storm(0xd00d, &config).to_json();
    assert_eq!(a, b, "two runs of one seed must serialize identically");
}

#[test]
fn real_fidelity_digest_is_worker_count_invariant() {
    // The crypto engines split matrix work across workers; the result
    // must not depend on the split.
    let base = SimConfig::real(4).with_engine(quick_engine().with_workers(1));
    let one = run_sim_storm(0xbee, &base);
    for workers in [2, 4] {
        let config = SimConfig::real(4).with_engine(quick_engine().with_workers(workers));
        let many = run_sim_storm(0xbee, &config);
        assert_eq!(
            one.decisions_digest, many.decisions_digest,
            "decisions changed between 1 and {workers} crypto workers"
        );
        assert_eq!(
            one.to_json(),
            many.to_json(),
            "report bytes changed between 1 and {workers} crypto workers"
        );
    }
}

#[test]
fn modeled_and_real_agree_on_quiet_decisions() {
    // Same seed, both fidelities, no faults: the plaintext model must
    // reach exactly the decisions the cryptosystem reaches.
    let n = 8;
    let real = run_sim_storm(0x51a1, &SimConfig::real(n).with_engine(quick_engine()));
    let modeled = run_sim_storm(0x51a1, &SimConfig::modeled(n).with_engine(quick_engine()));
    assert!(real.all_terminal() && modeled.all_terminal());
    let real_dec: Vec<_> = real.outcomes.iter().map(|o| (o.su, o.granted)).collect();
    let model_dec: Vec<_> = modeled.outcomes.iter().map(|o| (o.su, o.granted)).collect();
    assert_eq!(real_dec, model_dec, "model diverged from the cryptosystem");
}

/// Replays `tests/data/sim_golden_seeds.txt`: each line is
/// `seed sus fault_rate expected_digest` (modeled fidelity, 50 ms
/// timeout, LAN latency). A digest mismatch means simulator behavior
/// changed — regenerate the file ONLY if the change is intended, and
/// say why in the commit.
#[test]
fn golden_seeds_replay_bit_exact() {
    let data = include_str!("data/sim_golden_seeds.txt");
    let mut checked = 0;
    for line in data.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields.len(), 4, "malformed golden line: {line:?}");
        let seed: u64 = fields[0].parse().expect("seed");
        let sus: u32 = fields[1].parse().expect("sus");
        let rate: f64 = fields[2].parse().expect("fault rate");
        let expect = u64::from_str_radix(fields[3], 16).expect("digest");
        let config = SimConfig::modeled(sus)
            .with_plan(FaultPlan::uniform(rate))
            .with_engine(quick_engine());
        let report = run_sim_storm(seed, &config);
        assert!(report.all_terminal(), "golden seed {seed} did not quiesce");
        assert_eq!(
            report.decisions_digest, expect,
            "golden seed {seed} (sus {sus}, rate {rate}) drifted: got {:016x}",
            report.decisions_digest
        );
        checked += 1;
    }
    assert!(checked >= 8, "golden file must carry at least 8 seeds");
}

/// Regenerates the golden seed lines. Run with
/// `cargo test -p pisa-sim --test sim_determinism --release -- --ignored --nocapture regenerate`
/// and paste the output into `tests/data/sim_golden_seeds.txt` when a
/// deliberate behavior change invalidates the old digests.
#[test]
#[ignore = "tool: prints fresh golden lines, does not assert"]
fn regenerate_golden_seed_lines() {
    const CASES: [(u64, u32, f64); 10] = [
        (1, 32, 0.0),
        (2, 32, 0.15),
        (3, 64, 0.05),
        (4, 64, 0.3),
        (5, 128, 0.0),
        (6, 128, 0.15),
        (7, 256, 0.05),
        (8, 256, 0.3),
        (9, 512, 0.15),
        (2017, 1024, 0.05),
    ];
    for (seed, sus, rate) in CASES {
        let config = SimConfig::modeled(sus)
            .with_plan(FaultPlan::uniform(rate))
            .with_engine(quick_engine());
        let report = run_sim_storm(seed, &config);
        assert!(report.all_terminal());
        println!("{seed} {sus} {rate} {:016x}", report.decisions_digest);
    }
}

/// The tentpole scale claim: a 10⁵-session storm with faults on
/// finishes under tier-1 in well under a minute, every session reaches
/// a terminal state, and two runs are bit-identical.
#[test]
fn hundred_thousand_sessions_fast_terminal_and_reproducible() {
    let config = SimConfig::modeled(100_000)
        .with_plan(
            FaultPlan::none()
                .with_drop(0.05)
                .with_duplicate(0.02)
                .with_reorder(0.05)
                .with_corrupt(0.02),
        )
        .with_engine(quick_engine());
    let t = Instant::now();
    let a = run_sim_storm(2017, &config);
    let once = t.elapsed();
    assert!(a.all_terminal(), "{} sessions unfinished", a.unfinished);
    assert_eq!(a.sus, 100_000);
    assert!(
        once < Duration::from_secs(30),
        "10^5-session storm took {once:?} (budget 30 s per run)"
    );
    // Grants stay sound under every fault.
    for (o, &want) in a.outcomes.iter().zip(&a.expected) {
        assert!(
            o.granted != Some(true) || want,
            "SU {} obtained a grant the oracle denies",
            o.su
        );
    }
    let b = run_sim_storm(2017, &config);
    assert_eq!(
        a.decisions_digest, b.decisions_digest,
        "10^5-session storm is not bit-deterministic"
    );
    assert_eq!(a.events, b.events);
    assert_eq!(a.bytes, b.bytes);
}

#[test]
fn obs_virtual_spans_record_session_makespans() {
    // The simulator reports per-session virtual spans through the same
    // obs registry the threaded engine uses for wall-clock spans. The
    // registry is process-global and sibling tests run concurrently, so
    // assert presence rather than exact counts.
    pisa_obs::set_enabled(true);
    pisa_obs::reset();
    let report = run_sim_storm(5, &SimConfig::modeled(16).with_engine(quick_engine()));
    pisa_obs::set_enabled(false);
    let obs = pisa_obs::report();
    let sessions = obs.spans.iter().filter(|s| s.name == "sim.session").count();
    assert!(
        sessions >= 16,
        "one virtual span per session, got {sessions}"
    );
    assert!(
        obs.spans
            .iter()
            .any(|s| s.name == "sim.storm" && s.dur_ns == report.makespan_ns),
        "a sim.storm span must carry the virtual makespan {}",
        report.makespan_ns
    );
}
