//! Property tests for every wire format in the workspace: round trips
//! for all [`PisaMessage`] variants and [`SessionMsg`] envelopes, and
//! robustness (error, never panic) on truncated or bit-flipped frames.
//! The bit-flip property doubles as the contract of the fault
//! injector's corruption oracle: a mangled frame either fails to decode
//! (absorbed) or decodes into something the protocol layer rejects.

use pisa::{
    corrupt_session_frame, CipherMatrix, License, PisaMessage, PuUpdateMsg, SdcResponseMsg,
    SdcToStpMsg, SessionMsg, StpToSdcMsg, SuId, SuRequestMsg,
};
use pisa_crypto::paillier::Ciphertext;
use pisa_net::codec::{Reader, Writer};
use pisa_radio::BlockId;
use proptest::prelude::*;

const CT_BYTES: usize = 64;

fn ct(v: u64) -> Ciphertext {
    Ciphertext::from_raw(pisa_bigint::Ubig::from(v))
}

fn matrix(channels: usize, blocks: usize, vals: &[u64]) -> CipherMatrix {
    CipherMatrix::from_ciphertexts(
        channels,
        blocks,
        (0..channels * blocks)
            .map(|i| ct(vals[i % vals.len()].max(1)))
            .collect(),
    )
}

/// A generated message of every variant, exercised by each property.
fn build_messages(
    channels: usize,
    blocks: usize,
    vals: &[u64],
    su: u32,
    serial: u64,
) -> Vec<PisaMessage> {
    let m = matrix(channels, blocks, vals);
    vec![
        PisaMessage::PuUpdate(PuUpdateMsg {
            block: BlockId(blocks - 1),
            w_column: (0..channels).map(|i| ct(vals[i % vals.len()])).collect(),
            ct_bytes: CT_BYTES,
        }),
        PisaMessage::SuRequest(SuRequestMsg {
            su_id: SuId(su),
            f_matrix: m.clone(),
            region_blocks: blocks,
            ct_bytes: CT_BYTES,
        }),
        PisaMessage::SdcToStp(SdcToStpMsg {
            su_id: SuId(su),
            v_matrix: m.clone(),
            region_blocks: blocks,
            ct_bytes: CT_BYTES,
        }),
        PisaMessage::StpToSdc(StpToSdcMsg {
            su_id: SuId(su),
            x_matrix: m,
            region_blocks: blocks,
            ct_bytes: CT_BYTES,
        }),
        PisaMessage::SdcResponse(SdcResponseMsg {
            license: License {
                su_id: SuId(su),
                issuer: format!("sdc.{su}"),
                request_digest: [su as u8; 32],
                serial,
            },
            g_cipher: ct(vals[0].max(1)),
            ct_bytes: CT_BYTES,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every variant round-trips bit-exactly through encode/decode.
    #[test]
    fn every_variant_roundtrips(
        channels in 1usize..4,
        blocks in 1usize..4,
        vals in proptest::collection::vec(any::<u64>(), 1..8),
        su in any::<u32>(),
        serial in any::<u64>(),
    ) {
        for msg in build_messages(channels, blocks, &vals, su, serial) {
            let frame = msg.encode().unwrap();
            let decoded = PisaMessage::decode(&frame).expect("valid frame decodes");
            prop_assert_eq!(frame, decoded.encode().unwrap());
        }
    }

    /// Truncating a valid frame anywhere yields an error, not a panic.
    #[test]
    fn truncation_always_errors(
        channels in 1usize..4,
        blocks in 1usize..4,
        vals in proptest::collection::vec(any::<u64>(), 1..8),
        cut_seed in any::<usize>(),
    ) {
        for msg in build_messages(channels, blocks, &vals, 1, 1) {
            let frame = msg.encode().unwrap();
            let cut = cut_seed % frame.len();
            prop_assert!(PisaMessage::decode(&frame[..cut]).is_err());
        }
    }

    /// Flipping any single bit never panics the decoder — this is the
    /// exact operation the fault injector's corruptor performs.
    #[test]
    fn bit_flips_never_panic(
        channels in 1usize..4,
        blocks in 1usize..4,
        vals in proptest::collection::vec(any::<u64>(), 1..8),
        bit_seed in any::<usize>(),
    ) {
        for msg in build_messages(channels, blocks, &vals, 1, 1) {
            let mut frame = msg.encode().unwrap().to_vec();
            let bit = bit_seed % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            let _ = PisaMessage::decode(&frame);
        }
    }

    /// Session envelopes round-trip, and the engine's corruption oracle
    /// is deterministic and safe: `None` (absorbed) or a well-formed
    /// mangled frame, never a panic.
    #[test]
    fn session_envelope_roundtrips_and_oracle_is_safe(
        session in any::<u64>(),
        attempt in any::<u32>(),
        vals in proptest::collection::vec(any::<u64>(), 1..8),
        tweak in any::<u64>(),
    ) {
        for msg in build_messages(2, 2, &vals, 7, 9) {
            let frame = SessionMsg { session, attempt, msg };
            let bytes = frame.encode().unwrap();
            let decoded = SessionMsg::decode(&bytes).expect("valid envelope decodes");
            prop_assert_eq!(decoded.session, session);
            prop_assert_eq!(decoded.attempt, attempt);
            prop_assert_eq!(&bytes, &decoded.encode().unwrap());

            match (corrupt_session_frame(&frame, tweak), corrupt_session_frame(&frame, tweak)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    let mangled = a.encode().unwrap();
                    prop_assert_eq!(&mangled, &b.encode().unwrap());
                    prop_assert_ne!(&mangled, &bytes);
                }
                _ => prop_assert!(false, "oracle not deterministic"),
            }
        }
    }

    /// Arbitrary garbage never panics either decoder.
    #[test]
    fn garbage_never_panics(frame in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = PisaMessage::decode(&frame);
        let _ = SessionMsg::decode(&frame);
    }

    /// A bit-flipped session envelope either fails to decode or decodes
    /// to a frame whose canonical encoding round-trips — the decoder
    /// never fabricates non-canonical state from corrupt input.
    #[test]
    fn flipped_envelope_decode_is_canonical(
        session in any::<u64>(),
        attempt in any::<u32>(),
        bit_seed in any::<usize>(),
        vals in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        for msg in build_messages(2, 2, &vals, 3, 4) {
            let mut bytes = SessionMsg { session, attempt, msg }.encode().unwrap().to_vec();
            let bit = bit_seed % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            if let Ok(decoded) = SessionMsg::decode(&bytes) {
                let canon = decoded.encode().unwrap();
                let again = SessionMsg::decode(&canon).expect("canonical form decodes");
                prop_assert_eq!(again.encode().unwrap(), canon);
            }
        }
    }

    /// The codec primitives round-trip in order.
    #[test]
    fn codec_primitives_roundtrip(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        blob in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut w = Writer::new();
        w.put_u8(a);
        w.put_u32(b);
        w.put_u64(c);
        w.put_bytes(&blob).expect("well under the frame ceiling");
        let frame = w.finish();

        let mut r = Reader::new(&frame);
        prop_assert_eq!(r.get_u8().unwrap(), a);
        prop_assert_eq!(r.get_u32().unwrap(), b);
        prop_assert_eq!(r.get_u64().unwrap(), c);
        prop_assert_eq!(r.get_bytes().unwrap(), &blob[..]);
        prop_assert!(r.finish().is_ok());
    }
}

/// Exhaustive sweep of the corruption oracle over every bit position of
/// every message variant: each flip is either absorbed (`None`, the
/// flip broke framing) or yields a well-formed frame whose canonical
/// encoding differs from the original; both outcomes occur for every
/// variant, and oracle output is stable under re-decode.
#[test]
fn corruption_oracle_sweep_absorbs_and_mangles_every_variant() {
    for (variant, msg) in build_messages(2, 2, &[3, 5, 7], 11, 13)
        .into_iter()
        .enumerate()
    {
        let frame = SessionMsg {
            session: 42,
            attempt: 2,
            msg,
        };
        let bytes = frame.encode().unwrap();
        let nbits = bytes.len() as u64 * 8;
        let (mut absorbed, mut mangled) = (0u64, 0u64);
        for tweak in 0..nbits {
            match corrupt_session_frame(&frame, tweak) {
                None => absorbed += 1,
                Some(m) => {
                    mangled += 1;
                    let mb = m.encode().unwrap();
                    assert_ne!(
                        mb, bytes,
                        "variant {variant}, tweak {tweak}: oracle returned the original frame"
                    );
                    let back = SessionMsg::decode(&mb).expect("mangled frames stay well-formed");
                    assert_eq!(
                        back.encode().unwrap(),
                        mb,
                        "variant {variant}, tweak {tweak}: oracle output is not canonical"
                    );
                }
            }
        }
        assert!(absorbed > 0, "variant {variant}: no flip was absorbed");
        assert!(mangled > 0, "variant {variant}: no flip mangled the frame");
    }
}

/// The oracle's tweak index wraps modulo the frame's bit length, so the
/// outcome for `tweak` and `tweak + nbits` is identical — CRN session
/// retries reuse the per-delivery fault draw without re-randomizing.
#[test]
fn corruption_oracle_tweak_wraps_modulo_frame_bits() {
    let msg = build_messages(1, 1, &[9], 5, 6).remove(0);
    let frame = SessionMsg {
        session: 7,
        attempt: 1,
        msg,
    };
    let nbits = frame.encode().unwrap().len() as u64 * 8;
    for tweak in [0, 1, nbits / 2, nbits - 1] {
        let low = corrupt_session_frame(&frame, tweak).map(|m| m.encode().unwrap());
        let high = corrupt_session_frame(&frame, tweak + nbits).map(|m| m.encode().unwrap());
        assert_eq!(low, high, "tweak {tweak} and {tweak}+nbits diverged");
    }
}
