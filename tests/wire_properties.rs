//! Property tests for every wire format in the workspace: round trips
//! for all [`PisaMessage`] variants and [`SessionMsg`] envelopes, and
//! robustness (error, never panic) on truncated or bit-flipped frames.
//! The bit-flip property doubles as the contract of the fault
//! injector's corruption oracle: a mangled frame either fails to decode
//! (absorbed) or decodes into something the protocol layer rejects.

use pisa::{
    corrupt_session_frame, CipherMatrix, License, PisaMessage, PuUpdateMsg, SdcResponseMsg,
    SdcToStpMsg, SessionMsg, StpToSdcMsg, SuId, SuRequestMsg,
};
use pisa_crypto::paillier::Ciphertext;
use pisa_net::codec::{Reader, Writer};
use pisa_radio::BlockId;
use proptest::prelude::*;

const CT_BYTES: usize = 64;

fn ct(v: u64) -> Ciphertext {
    Ciphertext::from_raw(pisa_bigint::Ubig::from(v))
}

fn matrix(channels: usize, blocks: usize, vals: &[u64]) -> CipherMatrix {
    CipherMatrix::from_ciphertexts(
        channels,
        blocks,
        (0..channels * blocks)
            .map(|i| ct(vals[i % vals.len()].max(1)))
            .collect(),
    )
}

/// A generated message of every variant, exercised by each property.
fn build_messages(
    channels: usize,
    blocks: usize,
    vals: &[u64],
    su: u32,
    serial: u64,
) -> Vec<PisaMessage> {
    let m = matrix(channels, blocks, vals);
    vec![
        PisaMessage::PuUpdate(PuUpdateMsg {
            block: BlockId(blocks - 1),
            w_column: (0..channels).map(|i| ct(vals[i % vals.len()])).collect(),
            ct_bytes: CT_BYTES,
        }),
        PisaMessage::SuRequest(SuRequestMsg {
            su_id: SuId(su),
            f_matrix: m.clone(),
            region_blocks: blocks,
            ct_bytes: CT_BYTES,
        }),
        PisaMessage::SdcToStp(SdcToStpMsg {
            su_id: SuId(su),
            v_matrix: m.clone(),
            region_blocks: blocks,
            ct_bytes: CT_BYTES,
        }),
        PisaMessage::StpToSdc(StpToSdcMsg {
            su_id: SuId(su),
            x_matrix: m,
            region_blocks: blocks,
            ct_bytes: CT_BYTES,
        }),
        PisaMessage::SdcResponse(SdcResponseMsg {
            license: License {
                su_id: SuId(su),
                issuer: format!("sdc.{su}"),
                request_digest: [su as u8; 32],
                serial,
            },
            g_cipher: ct(vals[0].max(1)),
            ct_bytes: CT_BYTES,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every variant round-trips bit-exactly through encode/decode.
    #[test]
    fn every_variant_roundtrips(
        channels in 1usize..4,
        blocks in 1usize..4,
        vals in proptest::collection::vec(any::<u64>(), 1..8),
        su in any::<u32>(),
        serial in any::<u64>(),
    ) {
        for msg in build_messages(channels, blocks, &vals, su, serial) {
            let frame = msg.encode();
            let decoded = PisaMessage::decode(&frame).expect("valid frame decodes");
            prop_assert_eq!(frame, decoded.encode());
        }
    }

    /// Truncating a valid frame anywhere yields an error, not a panic.
    #[test]
    fn truncation_always_errors(
        channels in 1usize..4,
        blocks in 1usize..4,
        vals in proptest::collection::vec(any::<u64>(), 1..8),
        cut_seed in any::<usize>(),
    ) {
        for msg in build_messages(channels, blocks, &vals, 1, 1) {
            let frame = msg.encode();
            let cut = cut_seed % frame.len();
            prop_assert!(PisaMessage::decode(&frame[..cut]).is_err());
        }
    }

    /// Flipping any single bit never panics the decoder — this is the
    /// exact operation the fault injector's corruptor performs.
    #[test]
    fn bit_flips_never_panic(
        channels in 1usize..4,
        blocks in 1usize..4,
        vals in proptest::collection::vec(any::<u64>(), 1..8),
        bit_seed in any::<usize>(),
    ) {
        for msg in build_messages(channels, blocks, &vals, 1, 1) {
            let mut frame = msg.encode().to_vec();
            let bit = bit_seed % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            let _ = PisaMessage::decode(&frame);
        }
    }

    /// Session envelopes round-trip, and the engine's corruption oracle
    /// is deterministic and safe: `None` (absorbed) or a well-formed
    /// mangled frame, never a panic.
    #[test]
    fn session_envelope_roundtrips_and_oracle_is_safe(
        session in any::<u64>(),
        attempt in any::<u32>(),
        vals in proptest::collection::vec(any::<u64>(), 1..8),
        tweak in any::<u64>(),
    ) {
        for msg in build_messages(2, 2, &vals, 7, 9) {
            let frame = SessionMsg { session, attempt, msg };
            let bytes = frame.encode();
            let decoded = SessionMsg::decode(&bytes).expect("valid envelope decodes");
            prop_assert_eq!(decoded.session, session);
            prop_assert_eq!(decoded.attempt, attempt);
            prop_assert_eq!(&bytes, &decoded.encode());

            match (corrupt_session_frame(&frame, tweak), corrupt_session_frame(&frame, tweak)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    let mangled = a.encode();
                    prop_assert_eq!(&mangled, &b.encode());
                    prop_assert_ne!(&mangled, &bytes);
                }
                _ => prop_assert!(false, "oracle not deterministic"),
            }
        }
    }

    /// Arbitrary garbage never panics either decoder.
    #[test]
    fn garbage_never_panics(frame in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = PisaMessage::decode(&frame);
        let _ = SessionMsg::decode(&frame);
    }

    /// The codec primitives round-trip in order.
    #[test]
    fn codec_primitives_roundtrip(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        blob in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut w = Writer::new();
        w.put_u8(a);
        w.put_u32(b);
        w.put_u64(c);
        w.put_bytes(&blob);
        let frame = w.finish();

        let mut r = Reader::new(&frame);
        prop_assert_eq!(r.get_u8().unwrap(), a);
        prop_assert_eq!(r.get_u32().unwrap(), b);
        prop_assert_eq!(r.get_u64().unwrap(), c);
        prop_assert_eq!(r.get_bytes().unwrap(), &blob[..]);
        prop_assert!(r.finish().is_ok());
    }
}
