//! What a *curious* SDC can actually extract — the attack surface PISA
//! closes.
//!
//! The paper's motivation (§I, §III-B): in plaintext WATCH the SDC
//! holds every PU's channel reception and every SU's operational
//! parameters, so an untrusted or breached SDC learns everything. This
//! module implements that curious-SDC inference concretely:
//!
//! * [`infer_pu_channels`] — read every PU's (block, channel) straight
//!   out of the plaintext budget matrix;
//! * [`infer_su_block`] / [`infer_su_eirp_mw`] — triangulate an SU's
//!   position and power from its plaintext interference profile **F**
//!   (the profile peaks at the SU's own block, and the peak height is
//!   `EIRP · h(d≈0)`);
//! * [`guess_su_block_from_ciphertexts`] /
//!   [`guess_pu_channel_from_ciphertexts`] — the *same* attacks mounted
//!   on PISA's encrypted messages. Semantic security makes every such
//!   statistic of the ciphertexts independent of the plaintext, so
//!   these guesses succeed with chance probability — which the
//!   `privacy_properties` suite verifies statistically.

use crate::messages::{PuUpdateMsg, SuRequestMsg};
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use pisa_watch::{IntMatrix, WatchConfig, WatchSdc};

/// Recovers every active PU's (channel, block) from a plaintext WATCH
/// SDC: exactly the entries where the budget `N` differs from the
/// public cap `E`.
///
/// This is the total privacy failure of the baseline — no cryptanalysis
/// required, the state *is* the sensitive data.
pub fn infer_pu_channels(sdc: &WatchSdc) -> Vec<(Channel, BlockId)> {
    let n = sdc.n_matrix();
    let e = sdc.e_matrix();
    n.iter()
        .filter(|&(c, b, v)| v != e.get(c, b))
        .map(|(c, b, _)| (Channel(c), BlockId(b)))
        .collect()
}

/// Triangulates an SU's block from its plaintext interference profile:
/// `F(c, b)` is maximal at the SU's own block (path gain peaks at zero
/// distance).
///
/// Returns `None` for an all-zero profile (no transmission requested).
pub fn infer_su_block(f: &IntMatrix) -> Option<BlockId> {
    f.iter()
        .max_by_key(|&(_, _, v)| v)
        .filter(|&(_, _, v)| v > 0)
        .map(|(_, b, _)| BlockId(b))
}

/// Estimates the SU's EIRP (mW) from the profile peak: the peak equals
/// `EIRP · h(d_min)` with `d_min` the intra-block distance (clamped to
/// 1 m by the propagation model).
pub fn infer_su_eirp_mw(cfg: &WatchConfig, f: &IntMatrix) -> Option<f64> {
    let (c, b, v) = f.iter().max_by_key(|&(_, _, v)| v)?;
    if v <= 0 {
        return None;
    }
    let peak_mw = cfg.quantizer().dequantize(v);
    let self_gain = cfg.path_gain(BlockId(b), BlockId(b), Channel(c));
    Some(peak_mw / self_gain)
}

/// Mounts the block-triangulation attack on an **encrypted** request:
/// treats each ciphertext's raw residue as if it were the profile value
/// and picks the argmax. Against a semantically secure scheme this is a
/// uniformly random guess.
pub fn guess_su_block_from_ciphertexts(msg: &SuRequestMsg) -> Option<BlockId> {
    msg.f_matrix
        .ciphertexts()
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.as_raw().cmp(b.as_raw()))
        .map(|(idx, _)| BlockId(idx % msg.f_matrix.blocks()))
}

/// Mounts the channel-detection attack on an **encrypted** PU update:
/// guesses the tuned channel as the entry with the largest raw
/// ciphertext residue. Chance accuracy `1/C` against PISA.
pub fn guess_pu_channel_from_ciphertexts(msg: &PuUpdateMsg) -> Option<Channel> {
    msg.w_column
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.as_raw().cmp(b.as_raw()))
        .map(|(c, _)| Channel(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::keys::SuId;
    use crate::pu::PuClient;
    use crate::stp::StpServer;
    use crate::su::SuClient;
    use pisa_watch::{PuInput, SuRequest};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plaintext_watch_leaks_every_pu() {
        let cfg = SystemConfig::small_test();
        let mut sdc = WatchSdc::new(cfg.watch().clone());
        sdc.pu_update(0, PuInput::tuned(cfg.watch(), BlockId(12), Channel(1)));
        sdc.pu_update(1, PuInput::tuned(cfg.watch(), BlockId(3), Channel(2)));

        let leaked = infer_pu_channels(&sdc);
        assert!(leaked.contains(&(Channel(1), BlockId(12))));
        assert!(leaked.contains(&(Channel(2), BlockId(3))));
        assert_eq!(leaked.len(), 2);
    }

    #[test]
    fn plaintext_request_leaks_su_block_and_power() {
        let cfg = SystemConfig::small_test();
        let request = SuRequest::with_power_dbm(cfg.watch(), BlockId(17), &[Channel(0)], 20.0);
        let f = request.f_matrix(cfg.watch());

        assert_eq!(infer_su_block(&f), Some(BlockId(17)));
        let eirp = infer_su_eirp_mw(cfg.watch(), &f).expect("non-zero profile");
        // 20 dBm = 100 mW, recovered within quantization error.
        assert!((eirp - 100.0).abs() / 100.0 < 0.01, "eirp = {eirp}");
    }

    #[test]
    fn empty_profile_yields_nothing() {
        let cfg = SystemConfig::small_test();
        let request = SuRequest::new(cfg.watch(), BlockId(0), vec![0.0; 4]);
        let f = request.f_matrix(cfg.watch());
        assert_eq!(infer_su_block(&f), None);
        assert_eq!(infer_su_eirp_mw(cfg.watch(), &f), None);
    }

    #[test]
    fn encrypted_request_defeats_triangulation() {
        // Across many fresh encryptions of the same request, the
        // ciphertext-argmax "block" is near-uniform, not the true block.
        let mut rng = StdRng::seed_from_u64(0xad5a);
        let cfg = SystemConfig::small_test();
        let stp = StpServer::new(&mut rng, cfg.paillier_bits());
        let mut su = SuClient::new(SuId(0), BlockId(17), &cfg, &mut rng);

        let runs = 40;
        let mut hits = 0;
        for _ in 0..runs {
            let msg = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
            if guess_su_block_from_ciphertexts(&msg) == Some(BlockId(17)) {
                hits += 1;
            }
        }
        // Chance is 1/25; 40 trials should land well under half hits.
        assert!(hits <= 8, "ciphertext attack succeeded {hits}/{runs} times");
    }

    #[test]
    fn encrypted_update_defeats_channel_detection() {
        let mut rng = StdRng::seed_from_u64(0xad5b);
        let cfg = SystemConfig::small_test();
        let stp = StpServer::new(&mut rng, cfg.paillier_bits());
        let e = pisa_watch::compute_e_matrix(cfg.watch());
        let mut pu = PuClient::new(0, BlockId(5));

        let runs = 40;
        let mut hits = 0;
        for _ in 0..runs {
            let msg = pu.tune(Some(Channel(2)), &cfg, &e, stp.public_key(), &mut rng);
            if guess_pu_channel_from_ciphertexts(&msg) == Some(Channel(2)) {
                hits += 1;
            }
        }
        // Chance is 1/4; statistically bounded away from certainty.
        assert!(hits <= 20, "channel attack succeeded {hits}/{runs} times");
    }
}
