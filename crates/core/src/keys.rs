//! Key material: the global Paillier pair and the per-SU key directory.

use pisa_crypto::paillier::{PaillierKeyPair, PaillierPublicKey, PaillierSecretKey};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a registered secondary user.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SuId(pub u32);

impl fmt::Display for SuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SU#{}", self.0)
    }
}

/// The STP's global key pair `(pk_G, sk_G)`.
///
/// `pk_G` is published to every party; `sk_G` never leaves the STP
/// (§III-C: "the STP is trusted for keeping sk_G as a secret only known
/// to itself").
#[derive(Clone)]
pub struct GlobalKeys {
    keys: PaillierKeyPair,
}

impl fmt::Debug for GlobalKeys {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GlobalKeys {{ pk_G: {} bits, sk_G: <redacted> }}",
            self.keys.public().key_bits()
        )
    }
}

impl GlobalKeys {
    /// Generates the global pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        GlobalKeys {
            keys: PaillierKeyPair::generate(rng, bits),
        }
    }

    /// The public half `pk_G` (what PUs and SUs encrypt with).
    pub fn public(&self) -> &PaillierPublicKey {
        self.keys.public()
    }

    /// The secret half `sk_G` (STP-internal).
    pub(crate) fn secret(&self) -> &PaillierSecretKey {
        self.keys.secret()
    }
}

/// The public directory of SU Paillier keys held by the STP
/// ("anyone can retrieve pk_G and SU Paillier public keys from the
/// STP").
#[derive(Debug, Clone, Default)]
pub struct SuKeyDirectory {
    keys: HashMap<SuId, PaillierPublicKey>,
}

impl SuKeyDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) an SU's public key.
    pub fn publish(&mut self, id: SuId, pk: PaillierPublicKey) {
        self.keys.insert(id, pk);
    }

    /// Looks up an SU's public key.
    pub fn lookup(&self, id: SuId) -> Option<&PaillierPublicKey> {
        self.keys.get(&id)
    }

    /// Number of registered SUs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no SU has registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over every registered `(id, key)` pair, in map order
    /// (callers needing a deterministic order must sort the ids).
    pub fn iter(&self) -> impl Iterator<Item = (SuId, &PaillierPublicKey)> {
        self.keys.iter().map(|(id, pk)| (*id, pk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn directory_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = PaillierKeyPair::generate(&mut rng, 128);
        let mut dir = SuKeyDirectory::new();
        assert!(dir.is_empty());
        dir.publish(SuId(3), kp.public().clone());
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.lookup(SuId(3)), Some(kp.public()));
        assert_eq!(dir.lookup(SuId(4)), None);
    }

    #[test]
    fn global_keys_expose_public_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = GlobalKeys::generate(&mut rng, 128);
        assert_eq!(g.public().key_bits(), 128);
        let dbg = format!("{g:?}");
        assert!(dbg.contains("sk_G: <redacted>"), "{dbg}");
    }

    #[test]
    fn su_id_display() {
        assert_eq!(SuId(7).to_string(), "SU#7");
    }
}
