//! Golden-trace record/replay: a storm's full message sequence as a
//! versioned, checksummed regression artifact.
//!
//! A storm driven single-threaded over a quiet FIFO network is fully
//! deterministic: the fixture, every RNG stream and the dispatch order
//! all derive from `(sessions, seed)`. [`record_storm`] captures every
//! [`SessionMsg`] such a storm sends — sender, recipient and the exact
//! wire frame — into a [`StormTrace`]; [`replay_storm`] re-runs the
//! same storm through the *current* engines and byte-compares each
//! frame against the recording. Any divergence (a protocol change, a
//! serialization change, an RNG-stream change) is pinpointed to the
//! first differing record.
//!
//! Two golden traces are checked into `tests/data/` and replayed by the
//! tier-1 `golden_trace` test, so a refactor that silently changes the
//! wire traffic fails CI instead of shipping.
//!
//! The file container mirrors the checkpoint format in
//! [`crate::durable`]: magic, version, header, records, SHA-256
//! trailer; decoding treats the file as adversarial (bounded counts,
//! checksum before parsing).

use crate::engine::{SdcSessionEngine, StpSessionEngine, SuAction, SuEvent, SuSessionEngine};
use crate::error::PisaError;
use crate::netstorm::storm_fixture;
use crate::session::{EngineConfig, SessionMsg, SessionOutcome};
use pisa_crypto::sha256::sha256;
use pisa_net::codec::{CodecError, Reader, Writer};
use pisa_net::{NetMetrics, Party};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// File magic identifying a PISA storm trace.
pub const TRACE_MAGIC: [u8; 8] = *b"PISATRCE";

/// Trace container format version.
pub const TRACE_VERSION: u8 = 1;

/// SHA-256 trailer width.
const CHECKSUM_BYTES: usize = 32;

/// Smallest possible encoded record: two 5-byte parties plus a u32
/// length prefix. Bounds the record-count pre-allocation.
const MIN_RECORD_BYTES: usize = 5 + 5 + 4;

const PARTY_SDC: u8 = 0;
const PARTY_STP: u8 = 1;
const PARTY_PU: u8 = 2;
const PARTY_SU: u8 = 3;

/// One message send: who sent it, who it was addressed to, and the
/// exact encoded [`SessionMsg`] frame.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The sending party.
    pub from: Party,
    /// The addressed party.
    pub to: Party,
    /// The encoded [`SessionMsg`] wire frame.
    pub frame: bytes::Bytes,
}

/// A recorded storm: its defining `(sessions, seed)` pair and every
/// message sent, in dispatch order.
#[derive(Debug, Clone)]
pub struct StormTrace {
    /// Number of SU sessions in the recorded storm.
    pub sessions: u32,
    /// The storm seed the whole system state derives from.
    pub seed: u64,
    /// Every message send, in order.
    pub records: Vec<TraceRecord>,
}

fn put_party(w: &mut Writer, p: Party) {
    let (kind, idx) = match p {
        Party::Sdc => (PARTY_SDC, 0),
        Party::Stp => (PARTY_STP, 0),
        Party::Pu(i) => (PARTY_PU, i),
        Party::Su(i) => (PARTY_SU, i),
    };
    w.put_u8(kind);
    w.put_u32(idx);
}

fn get_party(r: &mut Reader<'_>) -> Result<Party, CodecError> {
    let kind = r.get_u8()?;
    let idx = r.get_u32()?;
    match kind {
        PARTY_SDC => Ok(Party::Sdc),
        PARTY_STP => Ok(Party::Stp),
        PARTY_PU => Ok(Party::Pu(idx)),
        PARTY_SU => Ok(Party::Su(idx)),
        other => Err(CodecError::BadTag(other)),
    }
}

impl StormTrace {
    /// Serializes the trace, appending the SHA-256 trailer.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadLength`] if the record count cannot fit the
    /// wire's `u32`, or any frame exceeds the length-prefix ceiling.
    pub fn encode(&self) -> Result<bytes::Bytes, CodecError> {
        let mut w = Writer::with_capacity(
            32 + self
                .records
                .iter()
                .map(|rec| rec.frame.len() + MIN_RECORD_BYTES)
                .sum::<usize>(),
        );
        w.put_raw(&TRACE_MAGIC);
        w.put_u8(TRACE_VERSION);
        w.put_u32(self.sessions);
        w.put_u64(self.seed);
        let count = u32::try_from(self.records.len())
            .map_err(|_| CodecError::BadLength(self.records.len() as u64))?;
        w.put_u32(count);
        for rec in &self.records {
            put_party(&mut w, rec.from);
            put_party(&mut w, rec.to);
            w.put_bytes(&rec.frame)?;
        }
        let body = w.finish();
        let digest = sha256(&body);
        let mut framed = Writer::with_capacity(body.len() + CHECKSUM_BYTES);
        framed.put_raw(&body);
        framed.put_raw(&digest);
        Ok(framed.finish())
    }

    /// Parses and integrity-checks a trace file.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] on a bad magic, version or checksum;
    /// [`CodecError::Oversized`] when the declared record count exceeds
    /// what the file could hold; any other [`CodecError`] on truncated
    /// or malformed bytes. Every frame must decode as a [`SessionMsg`].
    pub fn decode(file: &[u8]) -> Result<StormTrace, CodecError> {
        if file.len() < TRACE_MAGIC.len() + 1 + 4 + 8 + 4 + CHECKSUM_BYTES {
            return Err(CodecError::UnexpectedEof);
        }
        let (body, trailer) = file.split_at(file.len() - CHECKSUM_BYTES);
        if sha256(body) != *trailer {
            return Err(CodecError::Invalid("trace checksum mismatch".into()));
        }
        let mut r = Reader::new(body);
        if r.get_raw(TRACE_MAGIC.len())? != TRACE_MAGIC {
            return Err(CodecError::Invalid("not a PISA storm trace".into()));
        }
        let version = r.get_u8()?;
        if version != TRACE_VERSION {
            return Err(CodecError::Invalid(format!(
                "unsupported trace version {version}"
            )));
        }
        let sessions = r.get_u32()?;
        let seed = r.get_u64()?;
        let count = crate::wire::widen(r.get_u32()?);
        let most = r.remaining() / MIN_RECORD_BYTES;
        if count > most {
            return Err(CodecError::Oversized(count as u64, most as u64));
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let from = get_party(&mut r)?;
            let to = get_party(&mut r)?;
            let frame = r.get_bytes()?;
            // Frames must be structurally valid protocol messages, not
            // arbitrary blobs a replay would choke on later.
            SessionMsg::decode(frame)?;
            records.push(TraceRecord {
                from,
                to,
                frame: bytes::Bytes::copy_from_slice(frame),
            });
        }
        r.finish()?;
        Ok(StormTrace {
            sessions,
            seed,
            records,
        })
    }
}

/// Outcome of replaying a golden trace against the current engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records the recorded trace holds.
    pub recorded: usize,
    /// Records the replay produced.
    pub replayed: usize,
    /// Index of the first diverging record (`None` = byte-identical).
    pub divergence: Option<usize>,
}

impl ReplayReport {
    /// `true` when the replay reproduced the recording byte for byte.
    pub fn matches(&self) -> bool {
        self.divergence.is_none() && self.recorded == self.replayed
    }
}

/// Records a deterministic storm: every engine driven single-threaded
/// over a quiet FIFO queue, messages dispatched in send order, SUs
/// started in id order. Returns the trace and the per-SU outcomes
/// (sorted by SU id).
///
/// # Errors
///
/// Any fixture construction error; [`PisaError::EngineFailure`] if a
/// session fails to terminate (cannot happen on a quiet network unless
/// the protocol itself regresses); [`PisaError::Durable`] if a frame
/// fails to encode.
pub fn record_storm(
    sessions: u32,
    seed: u64,
) -> Result<(StormTrace, Vec<SessionOutcome>), PisaError> {
    let fixture = storm_fixture(sessions, seed)?;
    let su_keys = fixture.su_keys()?;
    let cfg = fixture.sdc.config().clone();
    let pk_g = fixture.stp.public_key().clone();
    let signing = fixture.sdc.signing_public_key().clone();
    let engine_cfg = EngineConfig::default();
    let metrics = NetMetrics::new();

    let mut sdc = SdcSessionEngine::new(fixture.sdc, su_keys, 1, metrics.clone(), seed ^ 0x5dc);
    let mut stp = StpSessionEngine::new(fixture.stp, 1, metrics.clone(), seed ^ 0x517);

    let mut records = Vec::new();
    let mut queue: VecDeque<(Party, Party, SessionMsg)> = VecDeque::new();
    let mut sus: HashMap<u32, SuSessionEngine> = HashMap::new();
    let mut outcomes: Vec<SessionOutcome> = Vec::new();

    let enc = |msg: &SessionMsg| -> Result<bytes::Bytes, PisaError> {
        msg.encode()
            .map_err(|e| PisaError::Durable(format!("trace frame encode failed: {e}")))
    };

    for (i, (su, channels)) in fixture.sus.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x50 + i as u64));
        let params = crate::engine::SuSessionParams {
            cfg: &cfg,
            pk_g: &pk_g,
            signing: &signing,
            corrupt_possible: false,
            engine: &engine_cfg,
            metrics: &metrics,
        };
        let id = su.id().0;
        let machine = SuSessionEngine::new(su, &channels, &params, &mut rng);
        match machine.start() {
            SuAction::Continue { sends, .. } => {
                for frame in sends {
                    queue.push_back((Party::Su(id), Party::Sdc, frame));
                }
            }
            SuAction::Finish(outcome) => outcomes.push(outcome),
        }
        sus.insert(id, machine);
    }

    while let Some((from, to, msg)) = queue.pop_front() {
        records.push(TraceRecord {
            from,
            to,
            frame: enc(&msg)?,
        });
        match to {
            Party::Sdc => {
                for (next, out) in sdc.handle(msg) {
                    queue.push_back((Party::Sdc, next, out));
                }
            }
            Party::Stp => {
                for (next, out) in stp.handle(msg) {
                    queue.push_back((Party::Stp, next, out));
                }
            }
            Party::Su(i) => {
                let Some(machine) = sus.get_mut(&i) else {
                    continue;
                };
                match machine.on_event(SuEvent::Frame(msg)) {
                    SuAction::Continue { sends, .. } => {
                        for frame in sends {
                            queue.push_back((Party::Su(i), Party::Sdc, frame));
                        }
                    }
                    SuAction::Finish(outcome) => {
                        outcomes.push(outcome);
                        sus.remove(&i);
                    }
                }
            }
            Party::Pu(_) => {
                // PUs receive nothing in this protocol; a frame routed
                // here would be a recorder bug, not a protocol event.
            }
        }
    }

    if !sus.is_empty() {
        return Err(PisaError::EngineFailure(
            "trace storm left sessions unfinished on a quiet network",
        ));
    }
    outcomes.sort_by_key(|o| o.su_id);
    Ok((
        StormTrace {
            sessions,
            seed,
            records,
        },
        outcomes,
    ))
}

/// Replays a recorded storm through the current engines and
/// byte-compares every frame against the recording.
///
/// # Errors
///
/// Whatever [`record_storm`] reports for the trace's `(sessions,
/// seed)` pair.
pub fn replay_storm(trace: &StormTrace) -> Result<ReplayReport, PisaError> {
    let (fresh, _outcomes) = record_storm(trace.sessions, trace.seed)?;
    let divergence = trace
        .records
        .iter()
        .zip(fresh.records.iter())
        .position(|(a, b)| a.from != b.from || a.to != b.to || a.frame != b.frame)
        .or_else(|| {
            (trace.records.len() != fresh.records.len())
                .then(|| trace.records.len().min(fresh.records.len()))
        });
    Ok(ReplayReport {
        recorded: trace.records.len(),
        replayed: fresh.records.len(),
        divergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_deterministic_and_replays() {
        let (trace, outcomes) = record_storm(2, 0x7ace).expect("record");
        assert_eq!(trace.sessions, 2);
        assert!(!trace.records.is_empty());
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.granted.is_some()));

        let report = replay_storm(&trace).expect("replay");
        assert!(report.matches(), "{report:?}");
    }

    #[test]
    fn file_roundtrip_is_byte_identical() {
        let (trace, _) = record_storm(2, 0x7ace).expect("record");
        let file = trace.encode().expect("encode");
        let back = StormTrace::decode(&file).expect("decode");
        assert_eq!(back.encode().expect("re-encode"), file);
        assert_eq!(back.records.len(), trace.records.len());
    }

    #[test]
    fn tampered_file_rejected() {
        let (trace, _) = record_storm(2, 0x7ace).expect("record");
        let file = trace.encode().expect("encode").to_vec();
        // Flip a byte in the middle of the body: checksum catches it.
        let mut bad = file.clone();
        bad[file.len() / 2] ^= 0x40;
        assert!(StormTrace::decode(&bad).is_err());
        // Truncations at every boundary are rejected, never panicked on.
        for cut in [0, 7, 12, file.len() / 2, file.len() - 1] {
            assert!(StormTrace::decode(&file[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn a_diverging_trace_is_flagged() {
        let (mut trace, _) = record_storm(2, 0x7ace).expect("record");
        // Pretend the recording had one extra trailing record.
        let Some(first) = trace.records.first().cloned() else {
            panic!("trace must have records");
        };
        trace.records.push(first);
        let report = replay_storm(&trace).expect("replay");
        assert!(!report.matches());
        assert_eq!(report.divergence, Some(report.replayed));
    }
}
