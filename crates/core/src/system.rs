//! A facade wiring all four parties together.

use crate::config::SystemConfig;
use crate::error::PisaError;
use crate::keys::SuId;
use crate::privacy::LocationPrivacy;
use crate::protocol::{run_request_direct_tuned, RequestOutcome};
use crate::pu::PuClient;
use crate::sdc::SdcServer;
use crate::stp::StpServer;
use crate::su::SuClient;
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use pisa_watch::SuRequest;
use rand::Rng;
use std::collections::HashMap;

/// A complete PISA deployment: one STP, one SDC, any number of PUs and
/// SUs — the easiest way to drive the protocol.
///
/// # Examples
///
/// ```
/// use pisa::prelude::*;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut rng);
/// let su = system.register_su(BlockId(0), &mut rng);
/// let outcome = system.request(su, &[Channel(0)], &mut rng);
/// assert!(outcome.granted);
/// ```
pub struct PisaSystem {
    cfg: SystemConfig,
    stp: StpServer,
    sdc: SdcServer,
    pus: HashMap<u64, PuClient>,
    sus: HashMap<SuId, SuClient>,
    next_su: u32,
    /// Worker threads per phase fan-out; 1 = sequential paths.
    threads: usize,
    /// When set, randomizer pools of this capacity are kept primed for
    /// the SDC's β blinding and each registered SU's key conversion.
    pool_capacity: Option<usize>,
}

impl std::fmt::Debug for PisaSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PisaSystem({} PUs, {} SUs)",
            self.pus.len(),
            self.sus.len()
        )
    }
}

impl PisaSystem {
    /// Generates keys and initializes the STP and SDC.
    pub fn setup<R: Rng + ?Sized>(cfg: SystemConfig, rng: &mut R) -> Self {
        let stp = StpServer::new(rng, cfg.paillier_bits());
        let sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.pisa", rng);
        PisaSystem {
            cfg,
            stp,
            sdc,
            pus: HashMap::new(),
            sus: HashMap::new(),
            next_su: 0,
            threads: 1,
            pool_capacity: None,
        }
    }

    /// Sets the worker-thread budget for the phase fan-outs. Results are
    /// byte-identical across thread counts (per-entry randomness is
    /// derived by index), so this is purely a throughput knob.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads > 0, "need at least one worker");
        self.threads = threads;
    }

    /// Current worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables randomizer pools of `capacity` factors: one on the SDC
    /// for β blinding under the global key, one per registered SU for
    /// the STP's key conversion (future registrations get one too).
    /// Pools start empty — call [`refill_pools`](Self::refill_pools) to
    /// run the offline phase.
    ///
    /// # Panics
    ///
    /// Panics if the SDC β pool cannot attach (impossible in a
    /// self-consistent system: the pool is built for the STP's own key).
    pub fn enable_pools(&mut self, capacity: usize) {
        self.pool_capacity = Some(capacity);
        let beta_pool = std::sync::Arc::new(pisa_crypto::paillier::RandomizerPool::new(
            self.stp.public_key(),
            capacity,
        ));
        self.sdc
            .attach_beta_pool(beta_pool)
            .expect("β pool built for the global key");
        let ids: Vec<SuId> = self.sus.keys().copied().collect();
        for id in ids {
            self.stp.enable_su_pool(id, capacity);
        }
    }

    /// Tops every enabled pool up to capacity — the offline phase.
    /// Deterministic: pools are refilled in a fixed order (SDC β pool
    /// first, then SU pools by ascending id). No-op when
    /// [`enable_pools`](Self::enable_pools) was never called.
    pub fn refill_pools<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.pool_capacity.is_none() {
            return;
        }
        if let Some(pool) = self.sdc.beta_pool() {
            pool.refill(rng);
        }
        self.stp.refill_pools(rng);
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The SDC (for inspection in tests and benches).
    pub fn sdc(&self) -> &SdcServer {
        &self.sdc
    }

    /// The STP (for inspection in tests and benches).
    pub fn stp(&self) -> &StpServer {
        &self.stp
    }

    /// Registers a new SU at `block` (generates its key pair and
    /// publishes `pk_j` to the STP), returning its id.
    pub fn register_su<R: Rng + ?Sized>(&mut self, block: BlockId, rng: &mut R) -> SuId {
        let id = SuId(self.next_su);
        self.next_su += 1;
        let su = SuClient::new(id, block, &self.cfg, rng);
        self.stp.register_su(id, su.public_key().clone());
        self.sus.insert(id, su);
        if let Some(capacity) = self.pool_capacity {
            self.stp.enable_su_pool(id, capacity);
        }
        id
    }

    /// Sets an SU's location-privacy level.
    ///
    /// # Panics
    ///
    /// Panics if the SU is unknown.
    pub fn set_su_privacy(&mut self, id: SuId, privacy: LocationPrivacy) {
        self.sus
            .get_mut(&id)
            .expect("registered SU")
            .set_privacy(privacy);
    }

    /// Tunes a PU (creating it on first use) and applies its encrypted
    /// update at the SDC. `channel = None` means the receiver turned
    /// off.
    ///
    /// # Panics
    ///
    /// Panics if an existing PU is re-registered at a different block
    /// (receiver locations are fixed), or the update is malformed.
    pub fn pu_update<R: Rng + ?Sized>(
        &mut self,
        pu_id: u64,
        block: BlockId,
        channel: Option<Channel>,
        rng: &mut R,
    ) {
        let pu = self
            .pus
            .entry(pu_id)
            .or_insert_with(|| PuClient::new(pu_id, block));
        assert_eq!(
            pu.block(),
            block,
            "TV receiver locations are fixed and registered"
        );
        let e = self.sdc.e_matrix().clone();
        let msg = pu.tune(channel, &self.cfg, &e, self.stp.public_key(), rng);
        self.sdc
            .handle_pu_update(pu_id, msg)
            .expect("well-formed PU update");
    }

    /// Runs a full-power transmission request for `su` on `channels`.
    ///
    /// # Panics
    ///
    /// Panics if the SU is unknown or the protocol fails (programming
    /// errors in a self-consistent system).
    pub fn request<R: Rng + ?Sized>(
        &mut self,
        su: SuId,
        channels: &[Channel],
        rng: &mut R,
    ) -> RequestOutcome {
        let su_client = self.sus.get_mut(&su).expect("registered SU");
        run_request_direct_tuned(
            su_client,
            &mut self.sdc,
            &self.stp,
            channels,
            self.threads,
            rng,
        )
        .expect("self-consistent system")
    }

    /// Runs a request with explicit per-channel EIRP.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors.
    pub fn request_with<R: Rng + ?Sized>(
        &mut self,
        su: SuId,
        request: &SuRequest,
        rng: &mut R,
    ) -> Result<RequestOutcome, PisaError> {
        let su_client = self.sus.get_mut(&su).ok_or(PisaError::UnknownSu(su))?;
        let cfg = self.cfg.clone();
        let msg = su_client.build_request_from(&cfg, self.stp.public_key(), request, rng);
        let request_bytes = pisa_net::WireSize::wire_bytes(&msg);

        let to_stp = if self.threads == 1 {
            self.sdc.process_request_phase1(&msg, rng)?
        } else {
            self.sdc
                .process_request_phase1_parallel(&msg, self.threads, rng)?
        };
        let sdc_to_stp_bytes = pisa_net::WireSize::wire_bytes(&to_stp);
        let (to_sdc, observation) = if self.threads == 1 {
            self.stp.key_convert(&to_stp, rng)?
        } else {
            self.stp.key_convert_parallel(&to_stp, self.threads, rng)?
        };
        let stp_to_sdc_bytes = pisa_net::WireSize::wire_bytes(&to_sdc);
        let su_pk = self.stp.su_key(su).ok_or(PisaError::UnknownSu(su))?.clone();
        let response = self.sdc.process_request_phase2(&to_sdc, &su_pk, rng)?;
        let response_bytes = pisa_net::WireSize::wire_bytes(&response);
        let su_client = self.sus.get(&su).expect("registered SU");
        let granted = su_client.handle_response(&response, self.sdc.signing_public_key());
        Ok(RequestOutcome {
            granted,
            license: response.license,
            request_bytes,
            sdc_to_stp_bytes,
            stp_to_sdc_bytes,
            response_bytes,
            stp_observation: observation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pooled_and_threaded_requests_still_grant() {
        let mut rng = StdRng::seed_from_u64(0x9a1);
        let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut rng);
        system.enable_pools(8);
        system.set_threads(2);
        let su = system.register_su(BlockId(0), &mut rng);
        system.refill_pools(&mut rng);
        let outcome = system.request(su, &[Channel(0)], &mut rng);
        assert!(outcome.granted, "pooled + threaded round grants");
        // The SDC β pool served hits during phase 1.
        let stats = system.sdc().beta_pool().expect("pool attached").stats();
        assert!(stats.hits > 0, "β pool never consulted: {stats:?}");
        // Refill tops everything back up for the next round.
        system.refill_pools(&mut rng);
        let outcome = system.request(su, &[Channel(1)], &mut rng);
        assert!(outcome.granted);
    }

    #[test]
    fn pools_enabled_before_registration_cover_new_sus() {
        let mut rng = StdRng::seed_from_u64(0x9a2);
        let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut rng);
        system.enable_pools(4);
        let su = system.register_su(BlockId(1), &mut rng);
        assert!(
            system.stp().su_pool(su).is_some(),
            "registration after enable_pools creates the SU pool"
        );
    }
}
