//! A facade wiring all four parties together.

use crate::config::SystemConfig;
use crate::error::PisaError;
use crate::keys::SuId;
use crate::privacy::LocationPrivacy;
use crate::protocol::{run_request_direct, RequestOutcome};
use crate::pu::PuClient;
use crate::sdc::SdcServer;
use crate::stp::StpServer;
use crate::su::SuClient;
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use pisa_watch::SuRequest;
use rand::Rng;
use std::collections::HashMap;

/// A complete PISA deployment: one STP, one SDC, any number of PUs and
/// SUs — the easiest way to drive the protocol.
///
/// # Examples
///
/// ```
/// use pisa::prelude::*;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let mut system = PisaSystem::setup(SystemConfig::small_test(), &mut rng);
/// let su = system.register_su(BlockId(0), &mut rng);
/// let outcome = system.request(su, &[Channel(0)], &mut rng);
/// assert!(outcome.granted);
/// ```
pub struct PisaSystem {
    cfg: SystemConfig,
    stp: StpServer,
    sdc: SdcServer,
    pus: HashMap<u64, PuClient>,
    sus: HashMap<SuId, SuClient>,
    next_su: u32,
}

impl std::fmt::Debug for PisaSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PisaSystem({} PUs, {} SUs)",
            self.pus.len(),
            self.sus.len()
        )
    }
}

impl PisaSystem {
    /// Generates keys and initializes the STP and SDC.
    pub fn setup<R: Rng + ?Sized>(cfg: SystemConfig, rng: &mut R) -> Self {
        let stp = StpServer::new(rng, cfg.paillier_bits());
        let sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.pisa", rng);
        PisaSystem {
            cfg,
            stp,
            sdc,
            pus: HashMap::new(),
            sus: HashMap::new(),
            next_su: 0,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The SDC (for inspection in tests and benches).
    pub fn sdc(&self) -> &SdcServer {
        &self.sdc
    }

    /// The STP (for inspection in tests and benches).
    pub fn stp(&self) -> &StpServer {
        &self.stp
    }

    /// Registers a new SU at `block` (generates its key pair and
    /// publishes `pk_j` to the STP), returning its id.
    pub fn register_su<R: Rng + ?Sized>(&mut self, block: BlockId, rng: &mut R) -> SuId {
        let id = SuId(self.next_su);
        self.next_su += 1;
        let su = SuClient::new(id, block, &self.cfg, rng);
        self.stp.register_su(id, su.public_key().clone());
        self.sus.insert(id, su);
        id
    }

    /// Sets an SU's location-privacy level.
    ///
    /// # Panics
    ///
    /// Panics if the SU is unknown.
    pub fn set_su_privacy(&mut self, id: SuId, privacy: LocationPrivacy) {
        self.sus
            .get_mut(&id)
            .expect("registered SU")
            .set_privacy(privacy);
    }

    /// Tunes a PU (creating it on first use) and applies its encrypted
    /// update at the SDC. `channel = None` means the receiver turned
    /// off.
    ///
    /// # Panics
    ///
    /// Panics if an existing PU is re-registered at a different block
    /// (receiver locations are fixed), or the update is malformed.
    pub fn pu_update<R: Rng + ?Sized>(
        &mut self,
        pu_id: u64,
        block: BlockId,
        channel: Option<Channel>,
        rng: &mut R,
    ) {
        let pu = self
            .pus
            .entry(pu_id)
            .or_insert_with(|| PuClient::new(pu_id, block));
        assert_eq!(
            pu.block(),
            block,
            "TV receiver locations are fixed and registered"
        );
        let e = self.sdc.e_matrix().clone();
        let msg = pu.tune(channel, &self.cfg, &e, self.stp.public_key(), rng);
        self.sdc
            .handle_pu_update(pu_id, msg)
            .expect("well-formed PU update");
    }

    /// Runs a full-power transmission request for `su` on `channels`.
    ///
    /// # Panics
    ///
    /// Panics if the SU is unknown or the protocol fails (programming
    /// errors in a self-consistent system).
    pub fn request<R: Rng + ?Sized>(
        &mut self,
        su: SuId,
        channels: &[Channel],
        rng: &mut R,
    ) -> RequestOutcome {
        let su_client = self.sus.get_mut(&su).expect("registered SU");
        run_request_direct(su_client, &mut self.sdc, &self.stp, channels, rng)
            .expect("self-consistent system")
    }

    /// Runs a request with explicit per-channel EIRP.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors.
    pub fn request_with<R: Rng + ?Sized>(
        &mut self,
        su: SuId,
        request: &SuRequest,
        rng: &mut R,
    ) -> Result<RequestOutcome, PisaError> {
        let su_client = self.sus.get_mut(&su).ok_or(PisaError::UnknownSu(su))?;
        let cfg = self.cfg.clone();
        let msg = su_client.build_request_from(&cfg, self.stp.public_key(), request, rng);
        let request_bytes = pisa_net::WireSize::wire_bytes(&msg);

        let to_stp = self.sdc.process_request_phase1(&msg, rng)?;
        let sdc_to_stp_bytes = pisa_net::WireSize::wire_bytes(&to_stp);
        let (to_sdc, observation) = self.stp.key_convert(&to_stp, rng)?;
        let stp_to_sdc_bytes = pisa_net::WireSize::wire_bytes(&to_sdc);
        let su_pk = self.stp.su_key(su).ok_or(PisaError::UnknownSu(su))?.clone();
        let response = self.sdc.process_request_phase2(&to_sdc, &su_pk, rng)?;
        let response_bytes = pisa_net::WireSize::wire_bytes(&response);
        let su_client = self.sus.get(&su).expect("registered SU");
        let granted = su_client.handle_response(&response, self.sdc.signing_public_key());
        Ok(RequestOutcome {
            granted,
            license: response.license,
            request_bytes,
            sdc_to_stp_bytes,
            stp_to_sdc_bytes,
            response_bytes,
            stp_observation: observation,
        })
    }
}
