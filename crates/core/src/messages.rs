//! Protocol messages exchanged between the four parties.

use crate::cipher_matrix::CipherMatrix;
use crate::keys::SuId;
use crate::license::License;
use pisa_crypto::paillier::Ciphertext;
use pisa_net::WireSize;
use pisa_radio::BlockId;

/// Size of a framing header per message (party ids, lengths, kind tag).
const HEADER_BYTES: usize = 64;

/// Channel-reception update from a PU (paper Figure 4): the `C`
/// ciphertexts `W̃(1,i) … W̃(C,i)` for the PU's registered block.
#[derive(Debug, Clone)]
pub struct PuUpdateMsg {
    /// The PU's registered (public) block.
    pub block: BlockId,
    /// One ciphertext per channel, encrypted under `pk_G`.
    pub w_column: Vec<Ciphertext>,
    /// Width of one ciphertext in bytes (for wire accounting).
    pub ct_bytes: usize,
}

impl WireSize for PuUpdateMsg {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.w_column.len() * self.ct_bytes
    }
}

/// Transmission request from an SU (paper Figure 5 step 2): the
/// encrypted interference profile `F̃`, possibly restricted to a region
/// prefix under the location-privacy trade-off.
#[derive(Debug, Clone)]
pub struct SuRequestMsg {
    /// Requesting SU.
    pub su_id: SuId,
    /// Encrypted `F` matrix under `pk_G` (C × region_blocks entries are
    /// meaningful; the matrix is always C × B shaped).
    pub f_matrix: CipherMatrix,
    /// How many leading blocks the request covers (B for full privacy).
    pub region_blocks: usize,
    /// Ciphertext width in bytes.
    pub ct_bytes: usize,
}

impl WireSize for SuRequestMsg {
    fn wire_bytes(&self) -> usize {
        // Only the covered region ships: C × region_blocks ciphertexts.
        HEADER_BYTES + self.f_matrix.channels() * self.region_blocks * self.ct_bytes
    }
}

/// Blinded sign-test query from SDC to STP (Figure 5 step 5): `Ṽ`.
#[derive(Debug, Clone)]
pub struct SdcToStpMsg {
    /// Which SU's request this belongs to (the STP needs `pk_j`).
    pub su_id: SuId,
    /// Blinded encrypted indicator entries under `pk_G`.
    pub v_matrix: CipherMatrix,
    /// Region size (entries beyond it are not shipped).
    pub region_blocks: usize,
    /// Ciphertext width in bytes.
    pub ct_bytes: usize,
}

impl WireSize for SdcToStpMsg {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.v_matrix.channels() * self.region_blocks * self.ct_bytes
    }
}

/// Key-converted sign bits from STP back to SDC (Figure 5 step 8): `X̃`
/// under `pk_j`.
#[derive(Debug, Clone)]
pub struct StpToSdcMsg {
    /// Which SU's request this belongs to.
    pub su_id: SuId,
    /// Encrypted ±1 signs under the SU's key.
    pub x_matrix: CipherMatrix,
    /// Region size.
    pub region_blocks: usize,
    /// Ciphertext width in bytes (under `pk_j`).
    pub ct_bytes: usize,
}

impl WireSize for StpToSdcMsg {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.x_matrix.channels() * self.region_blocks * self.ct_bytes
    }
}

/// The SDC's response to the SU (Figure 5 step 11): the license and the
/// single gated ciphertext `G̃` — the paper's 4.1 kb response.
#[derive(Debug, Clone)]
pub struct SdcResponseMsg {
    /// The (unsigned) license document.
    pub license: License,
    /// `G̃^{pk_j}`: encrypts the valid signature iff granted.
    pub g_cipher: Ciphertext,
    /// Ciphertext width in bytes (under `pk_j`).
    pub ct_bytes: usize,
}

impl WireSize for SdcResponseMsg {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.license.canonical_bytes().len() + self.ct_bytes
    }
}

/// Any PISA message (the payload type of the simulated network).
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum PisaMessage {
    /// PU → SDC channel update.
    PuUpdate(PuUpdateMsg),
    /// SU → SDC transmission request.
    SuRequest(SuRequestMsg),
    /// SDC → STP blinded sign test.
    SdcToStp(SdcToStpMsg),
    /// STP → SDC key-converted signs.
    StpToSdc(StpToSdcMsg),
    /// SDC → SU response.
    SdcResponse(SdcResponseMsg),
}

impl WireSize for PisaMessage {
    fn wire_bytes(&self) -> usize {
        match self {
            PisaMessage::PuUpdate(m) => m.wire_bytes(),
            PisaMessage::SuRequest(m) => m.wire_bytes(),
            PisaMessage::SdcToStp(m) => m.wire_bytes(),
            PisaMessage::StpToSdc(m) => m.wire_bytes(),
            PisaMessage::SdcResponse(m) => m.wire_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_bigint::Ubig;

    fn ct() -> Ciphertext {
        Ciphertext::from_raw(Ubig::from(1u64))
    }

    #[test]
    fn pu_update_size_is_linear_in_channels() {
        // §VI-A: "the size of the encrypted data sent by PU is
        // independent of the number of blocks … grows linearly with only
        // the number of channels".
        let msg = PuUpdateMsg {
            block: BlockId(0),
            w_column: vec![ct(); 100],
            ct_bytes: 512,
        };
        assert_eq!(msg.wire_bytes(), HEADER_BYTES + 100 * 512);
    }

    #[test]
    fn paper_scale_sizes() {
        // With |n| = 2048 (512-byte ciphertexts), C = 100, B = 600:
        // request ≈ 29 MB, PU update ≈ 0.05 MB, response ≈ 4.1 kb.
        let c = 100;
        let b = 600;
        let ct_bytes = 512;
        let request = SuRequestMsg {
            su_id: SuId(0),
            f_matrix: CipherMatrix::from_ciphertexts(c, b, vec![ct(); c * b]),
            region_blocks: b,
            ct_bytes,
        };
        let mb = request.wire_bytes() as f64 / (1024.0 * 1024.0);
        assert!((29.0..30.0).contains(&mb), "request = {mb:.2} MB");

        let update = PuUpdateMsg {
            block: BlockId(0),
            w_column: vec![ct(); c],
            ct_bytes,
        };
        let update_mb = update.wire_bytes() as f64 / (1024.0 * 1024.0);
        assert!((0.045..0.055).contains(&update_mb), "update = {update_mb}");

        let response = SdcResponseMsg {
            license: License {
                su_id: SuId(0),
                issuer: "sdc".into(),
                request_digest: [0; 32],
                serial: 0,
            },
            g_cipher: ct(),
            ct_bytes,
        };
        let kb = response.wire_bytes() as f64 * 8.0 / 1000.0; // kilobits
        assert!((4.0..6.0).contains(&kb), "response = {kb:.1} kb");
    }

    #[test]
    fn region_restriction_shrinks_request() {
        let c = 4;
        let b = 25;
        let full = SuRequestMsg {
            su_id: SuId(0),
            f_matrix: CipherMatrix::from_ciphertexts(c, b, vec![ct(); c * b]),
            region_blocks: b,
            ct_bytes: 64,
        };
        let half = SuRequestMsg {
            region_blocks: 12,
            ..full.clone()
        };
        assert!(half.wire_bytes() < full.wire_bytes());
    }
}
