//! DGK-style bitwise secure comparison over Paillier — the baseline
//! PISA's blinded sign test replaces.
//!
//! The protocol compares a *bitwise-encrypted* private value `a` against
//! a public value `b` (the core subroutine of \[13\], \[12\], \[18\]): the
//! client encrypts each bit of `a` separately (ℓ ciphertexts instead of
//! one!), the server homomorphically forms
//!
//! ```text
//! c_i = a_i − b_i + 1 + 3·Σ_{j>i} (a_j ⊕ b_j)
//! ```
//!
//! multiplicatively blinds and shuffles the `c_i`, and a helper holding
//! the key decrypts them: `a < b` ⟺ some `c_i = 0`. One comparison thus
//! costs ℓ encryptions client-side, `O(ℓ²)` homomorphic operations
//! server-side (prefix sums), ℓ decryptions helper-side — versus **one**
//! encryption, a handful of homomorphic operations and one decryption
//! for PISA's eq. (14) sign test. The `ablation_comparison` bench
//! measures both.

use pisa_bigint::random::random_range;
use pisa_bigint::{Ibig, Ubig};
use pisa_crypto::paillier::{Ciphertext, PaillierPublicKey, PaillierSecretKey};
use rand::Rng;

/// Operation counters for one comparison (the cost model the paper
/// argues about).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitwiseCost {
    /// Client-side encryptions (one per bit).
    pub encryptions: usize,
    /// Server-side homomorphic additions/subtractions.
    pub homomorphic_ops: usize,
    /// Server-side scalar multiplications (blinding).
    pub scalar_muls: usize,
    /// Helper-side decryptions.
    pub decryptions: usize,
}

/// A bitwise secure comparison instance over `ell`-bit values.
#[derive(Debug, Clone, Copy)]
pub struct BitwiseComparison {
    ell: usize,
}

impl BitwiseComparison {
    /// A comparison over `ell`-bit non-negative integers.
    ///
    /// # Panics
    ///
    /// Panics if `ell` is 0 or above 120 (the plaintext baseline range).
    pub fn new(ell: usize) -> Self {
        assert!(ell > 0 && ell <= 120, "unsupported bit width {ell}");
        BitwiseComparison { ell }
    }

    /// The paper's 60-bit integer representation.
    pub fn paper_width() -> Self {
        BitwiseComparison::new(60)
    }

    /// Bit width ℓ.
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// Client step: encrypts `a` bit by bit (most significant first).
    ///
    /// # Panics
    ///
    /// Panics if `a` does not fit in ℓ bits.
    pub fn encrypt_bits<R: Rng + ?Sized>(
        &self,
        a: u128,
        pk: &PaillierPublicKey,
        rng: &mut R,
        cost: &mut BitwiseCost,
    ) -> Vec<Ciphertext> {
        assert!(a < (1u128 << self.ell), "value exceeds {} bits", self.ell);
        (0..self.ell)
            .rev()
            .map(|i| {
                cost.encryptions += 1;
                let bit = (a >> i) & 1;
                pk.encrypt(&Ibig::from(bit as i64), rng)
            })
            .collect()
    }

    /// Server step: given encrypted bits of `a` (MSB first) and the
    /// public `b`, produces the blinded, shuffled `c_i` ciphertexts.
    pub fn server_compare<R: Rng + ?Sized>(
        &self,
        a_bits: &[Ciphertext],
        b: u128,
        pk: &PaillierPublicKey,
        rng: &mut R,
        cost: &mut BitwiseCost,
    ) -> Vec<Ciphertext> {
        assert_eq!(a_bits.len(), self.ell, "bit-count mismatch");
        let one = pk.encrypt_public_constant(&Ibig::from(1i64));

        // xor_j = a_j ⊕ b_j homomorphically: b_j = 0 ⇒ a_j; b_j = 1 ⇒ 1 − a_j.
        let xors: Vec<Ciphertext> = a_bits
            .iter()
            .enumerate()
            .map(|(idx, a_ct)| {
                let shift = self.ell - 1 - idx; // MSB first
                let b_bit = (b >> shift) & 1;
                if b_bit == 0 {
                    a_ct.clone()
                } else {
                    cost.homomorphic_ops += 1;
                    pk.sub(&one, a_ct).expect("freshly encrypted bit is a unit")
                }
            })
            .collect();

        // Running prefix sum Σ_{j>i} xor_j (walk from MSB down).
        let mut prefix = pk.trivial_zero();
        let mut out = Vec::with_capacity(self.ell);
        for (idx, a_ct) in a_bits.iter().enumerate() {
            let shift = self.ell - 1 - idx;
            let b_bit = ((b >> shift) & 1) as i64;
            // c = a_i − b_i + 1 + 3·prefix
            let tripled = pk
                .scalar_mul(&prefix, &Ibig::from(3i64))
                .expect("positive scalar cannot fail");
            cost.scalar_muls += 1;
            let constant = pk.encrypt_public_constant(&Ibig::from(1 - b_bit));
            let mut c = pk.add(a_ct, &constant);
            c = pk.add(&c, &tripled);
            cost.homomorphic_ops += 2;

            // Multiplicative blinding by a random r ∈ [1, 2^32).
            let r = random_range(rng, &Ubig::one(), &(Ubig::one() << 32));
            let blinded = pk
                .scalar_mul(&c, &Ibig::from(r))
                .expect("positive scalar cannot fail");
            cost.scalar_muls += 1;
            out.push(blinded);

            // Extend the prefix with this position's xor.
            prefix = pk.add(&prefix, &xors[idx]);
            cost.homomorphic_ops += 1;
        }

        // Shuffle so the helper cannot tell which position matched.
        for i in (1..out.len()).rev() {
            let j = (rng.next_u64() as usize) % (i + 1);
            out.swap(i, j);
        }
        out
    }

    /// Helper step: decrypts the blinded `c_i`; `a < b` ⟺ some
    /// plaintext is zero.
    pub fn helper_decide(
        &self,
        blinded: &[Ciphertext],
        sk: &PaillierSecretKey,
        cost: &mut BitwiseCost,
    ) -> bool {
        // Decrypt every entry (no short-circuit): the helper cannot know
        // in advance which — if any — position is the match.
        let mut found = false;
        for ct in blinded {
            cost.decryptions += 1;
            found |= sk.decrypt(ct).is_zero();
        }
        found
    }

    /// Runs the whole protocol: returns `(a < b, cost)`.
    pub fn compare<R: Rng + ?Sized>(
        &self,
        a: u128,
        b: u128,
        pk: &PaillierPublicKey,
        sk: &PaillierSecretKey,
        rng: &mut R,
    ) -> (bool, BitwiseCost) {
        let mut cost = BitwiseCost::default();
        let bits = self.encrypt_bits(a, pk, rng, &mut cost);
        let blinded = self.server_compare(&bits, b, pk, rng, &mut cost);
        let lt = self.helper_decide(&blinded, sk, &mut cost);
        (lt, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_crypto::paillier::PaillierKeyPair;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn keys() -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(0xb17);
        PaillierKeyPair::generate(&mut rng, 256)
    }

    #[test]
    fn exhaustive_small_width() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(1);
        let cmp = BitwiseComparison::new(4);
        for a in 0u128..16 {
            for b in 0u128..16 {
                let (lt, _) = cmp.compare(a, b, kp.public(), kp.secret(), &mut rng);
                assert_eq!(lt, a < b, "{a} < {b}");
            }
        }
    }

    #[test]
    fn random_pairs_at_paper_width() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(2);
        let cmp = BitwiseComparison::paper_width();
        for i in 0..5u64 {
            let a = (rng.next_u64() as u128) & ((1 << 60) - 1);
            let b = if i % 2 == 0 {
                (rng.next_u64() as u128) & ((1 << 60) - 1)
            } else {
                a // equal case
            };
            let (lt, cost) = cmp.compare(a, b, kp.public(), kp.secret(), &mut rng);
            assert_eq!(lt, a < b, "{a} < {b}");
            assert_eq!(cost.encryptions, 60);
            assert_eq!(cost.decryptions, 60);
        }
    }

    #[test]
    fn cost_scales_linearly_in_bits() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(3);
        let (_, cost8) =
            BitwiseComparison::new(8).compare(5, 9, kp.public(), kp.secret(), &mut rng);
        let (_, cost16) =
            BitwiseComparison::new(16).compare(5, 9, kp.public(), kp.secret(), &mut rng);
        assert_eq!(cost16.encryptions, 2 * cost8.encryptions);
        assert!(cost16.homomorphic_ops >= 2 * cost8.homomorphic_ops - 2);
    }

    #[test]
    #[should_panic(expected = "exceeds 4 bits")]
    fn oversized_value_panics() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(4);
        let mut cost = BitwiseCost::default();
        let _ = BitwiseComparison::new(4).encrypt_bits(16, kp.public(), &mut rng, &mut cost);
    }
}
