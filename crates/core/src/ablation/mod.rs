//! Ablation baselines: the approaches PISA was designed to avoid.
//!
//! §IV-B argues that realizing the comparisons of eqs. (4) and (7) with
//! existing secure integer-comparison protocols (\[13\], \[12\], \[18\]) would
//! require bit-by-bit encryption and be "extremely complex and
//! time-consuming". This module implements that baseline so the claim
//! can be measured instead of taken on faith (see the
//! `ablation_comparison` bench).

pub mod bitwise_cmp;

pub use bitwise_cmp::{BitwiseComparison, BitwiseCost};
