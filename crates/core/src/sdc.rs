//! The Spectrum Database Controller server.

use crate::cipher_matrix::{i128_to_ibig, CipherMatrix};
use crate::config::SystemConfig;
use crate::error::PisaError;
use crate::keys::SuId;
use crate::license::License;
use crate::messages::{PuUpdateMsg, SdcResponseMsg, SdcToStpMsg, StpToSdcMsg, SuRequestMsg};
use pisa_bigint::{Ibig, Ubig};
use pisa_crypto::blind::{sample_eta, Blinder, SignFlip};
use pisa_crypto::paillier::{Ciphertext, PaillierPublicKey, Randomizer, RandomizerPool};
use pisa_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use pisa_radio::BlockId;
use pisa_watch::{compute_e_matrix, IntMatrix};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// State the SDC keeps between phase 1 (blinded sign test sent to the
/// STP) and phase 2 (response built from the STP's answer).
struct PendingRequest {
    license: License,
    epsilons: Vec<SignFlip>,
    region_blocks: usize,
}

impl std::fmt::Debug for PendingRequest {
    /// The ε vector unblinds the STP's sign readings, so it never
    /// reaches logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PendingRequest {{ license: {:?}, epsilons: <redacted ×{}>, region_blocks: {} }}",
            self.license,
            self.epsilons.len(),
            self.region_blocks
        )
    }
}

/// The SDC: aggregates encrypted PU updates into the budget matrix `Ñ`
/// and processes encrypted SU requests without ever holding a
/// decryption key.
///
/// Everything the SDC stores or computes on is a Paillier ciphertext
/// under `pk_G` (or `pk_j` in phase 2); compromise of the SDC reveals
/// no PU channel, SU parameter or decision.
pub struct SdcServer {
    cfg: SystemConfig,
    pk_g: PaillierPublicKey,
    issuer: String,
    /// Public matrix **E** in the clear (public regulatory data).
    e_plain: IntMatrix,
    /// `Ñ = (⊕ᵢ W̃ᵢ) ⊕ Ẽ`, maintained incrementally (eqs. 9–10).
    n_matrix: CipherMatrix,
    /// Latest encrypted `W̃` column per PU, for incremental updates.
    contributions: HashMap<u64, (BlockId, Vec<Ciphertext>)>,
    rsa: RsaKeyPair,
    blinder: Blinder,
    serial: u64,
    pending: HashMap<SuId, PendingRequest>,
    /// Optional pool of precomputed `rⁿ` factors under `pk_G` for the
    /// per-entry β̃ encryptions of phase 1 (paper §VI-A offline/online
    /// split). `None` keeps the fully online path.
    beta_pool: Option<Arc<RandomizerPool>>,
}

impl std::fmt::Debug for SdcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SdcServer({}x{}, {} PUs, {} pending)",
            self.cfg.channels(),
            self.cfg.blocks(),
            self.contributions.len(),
            self.pending.len()
        )
    }
}

impl SdcServer {
    /// Initializes the SDC (paper §IV-A1): computes **E** from public
    /// data, encrypts it, and sets `Ñ = Ẽ`.
    ///
    /// The license-signing RSA key is generated strictly below the
    /// global Paillier modulus so signatures embed as plaintexts for
    /// every same-sized SU key (see DESIGN.md).
    ///
    /// # Panics
    ///
    /// Panics if the configured blinding budget cannot fit the key's
    /// plaintext space.
    pub fn new<R: Rng + ?Sized>(
        cfg: SystemConfig,
        pk_g: PaillierPublicKey,
        issuer: &str,
        rng: &mut R,
    ) -> Self {
        let blinder = Blinder::new(cfg.blind_bits());
        // |ε(αI − β)| must stay below n/2: verify against the worst-case
        // indicator magnitude (quantizer width + 16 bits of headroom,
        // the same bound SystemConfig enforces structurally).
        // pisa-lint: allow(panic-freedom): u32 → usize widening, never truncates.
        let max_i = Ubig::one() << (cfg.watch().quantizer().total_bits() as usize + 16);
        assert!(
            blinder.max_blinded_magnitude(&max_i) < (pk_g.modulus() >> 1),
            "blinded values would overflow the plaintext space"
        );

        let e_plain = compute_e_matrix(cfg.watch());
        let n_matrix = CipherMatrix::encrypt_public(&e_plain, &pk_g);
        let rsa = RsaKeyPair::generate_below(rng, pk_g.modulus(), cfg.rsa_slack_bits());
        SdcServer {
            cfg,
            pk_g,
            issuer: issuer.to_owned(),
            e_plain,
            n_matrix,
            contributions: HashMap::new(),
            rsa,
            blinder,
            serial: 0,
            pending: HashMap::new(),
            beta_pool: None,
        }
    }

    /// Attaches a pool of precomputed `rⁿ` factors under `pk_G` that
    /// phase 1 consumes for its per-entry β̃ encryptions — the paper's
    /// §VI-A offline/online split applied to the sign test. Entries
    /// beyond the pooled supply fall back to online exponentiation;
    /// refill between request batches through the shared handle.
    ///
    /// # Errors
    ///
    /// [`PisaError::EngineFailure`] if the pool precomputes for a key
    /// other than `pk_G` (its factors would corrupt every ciphertext).
    pub fn attach_beta_pool(&mut self, pool: Arc<RandomizerPool>) -> Result<(), PisaError> {
        if pool.public_key() != &self.pk_g {
            return Err(PisaError::EngineFailure("β pool built for a different key"));
        }
        self.beta_pool = Some(pool);
        Ok(())
    }

    /// The attached β pool, if any (for refills and stats).
    pub fn beta_pool(&self) -> Option<&Arc<RandomizerPool>> {
        self.beta_pool.as_ref()
    }

    /// Pre-takes one pooled β factor per entry (empty when no pool is
    /// attached), indexed by entry order so the sequential and parallel
    /// phase-1 paths consume identical factors.
    fn take_beta_factors(&self, entries: usize) -> Vec<Randomizer> {
        self.beta_pool
            .as_ref()
            .map(|pool| pool.take_batch(entries))
            .unwrap_or_default()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The public matrix **E** (public data; PUs need it to form `W`).
    pub fn e_matrix(&self) -> &IntMatrix {
        &self.e_plain
    }

    /// The SDC's license-verification key (published to SUs).
    pub fn signing_public_key(&self) -> &RsaPublicKey {
        self.rsa.public()
    }

    /// The encrypted budget matrix `Ñ` (diagnostic/test access).
    pub fn n_matrix(&self) -> &CipherMatrix {
        &self.n_matrix
    }

    /// Handles a PU channel-reception update (Figure 4 step 4):
    /// `Ñ ← Ñ ⊖ W̃_old ⊕ W̃_new` at the PU's block, realizing eqs.
    /// (8)–(10) incrementally.
    ///
    /// # Errors
    ///
    /// [`PisaError::DimensionMismatch`] if the update does not carry
    /// exactly `C` ciphertexts.
    pub fn handle_pu_update(&mut self, pu_id: u64, msg: PuUpdateMsg) -> Result<(), PisaError> {
        let _span = pisa_obs::span("matrix_update");
        if msg.w_column.len() != self.cfg.channels() {
            return Err(PisaError::DimensionMismatch {
                got: (msg.w_column.len(), 1),
                want: (self.cfg.channels(), 1),
            });
        }
        self.cfg
            .watch()
            .area()
            .check_block(msg.block)
            .map_err(|_| PisaError::BadRegion {
                region_blocks: msg.block.0,
                blocks: self.cfg.blocks(),
            })?;

        let b = msg.block.0;
        // Subtract the PU's previous contribution, if any.
        if let Some((old_block, old_col)) = self.contributions.remove(&pu_id) {
            for (c, old) in old_col.iter().enumerate() {
                let cur = self.pk_g.sub(self.n_matrix.get(c, old_block.0), old)?;
                self.n_matrix.set(c, old_block.0, cur);
            }
        }
        // Add the new one.
        for (c, new) in msg.w_column.iter().enumerate() {
            let cur = self.pk_g.add(self.n_matrix.get(c, b), new);
            self.n_matrix.set(c, b, cur);
        }
        self.contributions.insert(pu_id, (msg.block, msg.w_column));
        Ok(())
    }

    /// Rebuilds `Ñ` from scratch by re-aggregating every stored PU
    /// contribution over `Ẽ` — the literal realization of eqs. (9)–(10)
    /// the paper times at ~2.6 s per update. [`handle_pu_update`]
    /// maintains the same matrix incrementally; this method is the
    /// recovery path (and the cost baseline for the `fig6_system_eval`
    /// harness).
    ///
    /// [`handle_pu_update`]: Self::handle_pu_update
    pub fn reaggregate_budget(&mut self) {
        let mut n = CipherMatrix::encrypt_public(&self.e_plain, &self.pk_g);
        for (block, col) in self.contributions.values() {
            for (c, w) in col.iter().enumerate() {
                n.set(c, block.0, self.pk_g.add(n.get(c, block.0), w));
            }
        }
        self.n_matrix = n;
    }

    /// Number of PUs with a stored contribution.
    pub fn registered_pus(&self) -> usize {
        self.contributions.len()
    }

    /// Phase 1 of request processing (Figure 5 steps 3–5): computes
    /// `R̃ = X ⊗ F̃` (eq. 11), `Ĩ = Ñ ⊖ R̃` (eq. 12) and the blinded
    /// `Ṽ = ε ⊗ (α ⊗ Ĩ ⊖ β̃)` (eq. 14), remembering ε and the license
    /// for phase 2.
    ///
    /// # Errors
    ///
    /// [`PisaError::DimensionMismatch`] or [`PisaError::BadRegion`] on a
    /// malformed request.
    pub fn process_request_phase1<R: Rng + ?Sized>(
        &mut self,
        msg: &SuRequestMsg,
        rng: &mut R,
    ) -> Result<SdcToStpMsg, PisaError> {
        let _span = pisa_obs::span("sign_test");
        let region = msg.region_blocks;
        if region == 0 || region > self.cfg.blocks() {
            return Err(PisaError::BadRegion {
                region_blocks: region,
                blocks: self.cfg.blocks(),
            });
        }
        if msg.f_matrix.channels() != self.cfg.channels() || msg.f_matrix.blocks() != region {
            return Err(PisaError::DimensionMismatch {
                got: (msg.f_matrix.channels(), msg.f_matrix.blocks()),
                want: (self.cfg.channels(), region),
            });
        }

        let channels = self.cfg.channels();
        let mut v_entries = Vec::with_capacity(channels * region);
        let mut epsilons = Vec::with_capacity(channels * region);

        let base = rng.next_u64();
        let beta_factors = self.take_beta_factors(channels * region);
        for c in 0..channels {
            for b in 0..region {
                let idx = c * region + b;
                let mut erng = entry_rng(base, idx);
                let (v, eps) = self.blind_entry(
                    msg.f_matrix.get(c, b),
                    (c, b),
                    beta_factors.get(idx),
                    &mut erng,
                )?;
                v_entries.push(v);
                epsilons.push(eps);
            }
        }

        let license = License {
            su_id: msg.su_id,
            issuer: self.issuer.clone(),
            request_digest: License::digest_request(msg.f_matrix.ciphertexts()),
            serial: self.serial,
        };
        self.serial += 1;
        self.pending.insert(
            msg.su_id,
            PendingRequest {
                license,
                epsilons,
                region_blocks: region,
            },
        );

        Ok(SdcToStpMsg {
            su_id: msg.su_id,
            v_matrix: CipherMatrix::from_ciphertexts(channels, region, v_entries),
            region_blocks: region,
            ct_bytes: self.pk_g.ciphertext_bytes(),
        })
    }

    /// Eqs. (11)–(14) for one entry: `R = X ⊗ F`, `I = N ⊖ R`,
    /// `V = ε ⊗ (α ⊗ I ⊖ β̃)`. Returns the blinded ciphertext and the ε
    /// needed to unblind in phase 2, or [`PisaError::Crypto`] when the
    /// SU supplied a non-unit (adversarial) ciphertext entry.
    ///
    /// With a pooled `beta_factor` the β̃ encryption is two modular
    /// multiplications instead of the full `rⁿ` exponentiation — the
    /// dominant per-entry cost of the sign test.
    fn blind_entry<R: Rng + ?Sized>(
        &self,
        f_ct: &Ciphertext,
        (c, b): (usize, usize),
        beta_factor: Option<&Randomizer>,
        rng: &mut R,
    ) -> Result<(Ciphertext, SignFlip), PisaError> {
        let x = Ibig::from(self.cfg.watch().params().x_integer());
        // R = X ⊗ F (eq. 11)
        let r = self.pk_g.scalar_mul(f_ct, &x)?;
        // I = N ⊖ R (eq. 12)
        let i = self.pk_g.sub(self.n_matrix.get(c, b), &r)?;
        // V = ε ⊗ (α ⊗ I ⊖ β̃) (eq. 14)
        let factors = self.blinder.sample(rng);
        let scaled = self
            .pk_g
            .scalar_mul(&i, &Ibig::from(factors.alpha.clone()))?;
        let beta = Ibig::from(factors.beta.clone());
        let beta_ct = match beta_factor {
            Some(f) => self.pk_g.encrypt_with_randomizer(&beta, f),
            None => self.pk_g.encrypt(&beta, rng),
        };
        let blinded = self.pk_g.sub(&scaled, &beta_ct)?;
        let v = self
            .pk_g
            .scalar_mul(&blinded, &factors.epsilon.as_scalar())?;
        Ok((v, factors.epsilon))
    }

    /// Parallel variant of [`process_request_phase1`]: splits the
    /// entries across `threads` worker threads. The paper notes that a
    /// production SDC "would normally utilize a much more powerful
    /// hardware and can process the transmission request much faster" —
    /// the per-entry work is embarrassingly parallel, so this scales
    /// nearly linearly with cores.
    ///
    /// Randomness is derived *per entry* from a single draw on `rng`
    /// (splitmix64 over the draw and the entry index), so the output is
    /// byte-identical to the sequential path for any thread count.
    ///
    /// # Errors
    ///
    /// Same validation as [`process_request_phase1`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    ///
    /// [`process_request_phase1`]: Self::process_request_phase1
    pub fn process_request_phase1_parallel<R: Rng + ?Sized>(
        &mut self,
        msg: &SuRequestMsg,
        threads: usize,
        rng: &mut R,
    ) -> Result<SdcToStpMsg, PisaError> {
        assert!(threads > 0, "need at least one worker");
        let _span = pisa_obs::span("sign_test");
        let region = msg.region_blocks;
        if region == 0 || region > self.cfg.blocks() {
            return Err(PisaError::BadRegion {
                region_blocks: region,
                blocks: self.cfg.blocks(),
            });
        }
        if msg.f_matrix.channels() != self.cfg.channels() || msg.f_matrix.blocks() != region {
            return Err(PisaError::DimensionMismatch {
                got: (msg.f_matrix.channels(), msg.f_matrix.blocks()),
                want: (self.cfg.channels(), region),
            });
        }

        let channels = self.cfg.channels();
        let indices: Vec<(usize, usize)> = (0..channels)
            .flat_map(|c| (0..region).map(move |b| (c, b)))
            .collect();
        let chunk_len = indices.len().div_ceil(threads).max(1);
        let base = rng.next_u64();
        let beta_factors = self.take_beta_factors(indices.len());

        // Immutable fan-out over &self; results keep entry order, and
        // every entry gets the same derived RNG — and the same pooled β
        // factor, if any — it would get on the sequential path,
        // regardless of which chunk it lands in. Every handle is joined
        // before any error is propagated so a poisoned worker cannot
        // leak past the scope.
        let results: Result<Vec<(Ciphertext, SignFlip)>, PisaError> = std::thread::scope(|scope| {
            let handles: Vec<_> = indices
                .chunks(chunk_len)
                .enumerate()
                .map(|(chunk_no, chunk)| {
                    let this = &*self;
                    let f = &msg.f_matrix;
                    let beta_factors = &beta_factors;
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(k, &(c, b))| {
                                let idx = chunk_no * chunk_len + k;
                                let mut erng = entry_rng(base, idx);
                                this.blind_entry(
                                    f.get(c, b),
                                    (c, b),
                                    beta_factors.get(idx),
                                    &mut erng,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut entries = Vec::with_capacity(indices.len());
            let mut worker_died = false;
            for handle in handles {
                match handle.join() {
                    Ok(chunk) => entries.extend(chunk),
                    Err(_) => worker_died = true,
                }
            }
            if worker_died {
                return Err(PisaError::EngineFailure("phase-1 blinding worker panicked"));
            }
            entries.into_iter().collect()
        });

        let (v_entries, epsilons): (Vec<_>, Vec<_>) = results?.into_iter().unzip();
        let license = License {
            su_id: msg.su_id,
            issuer: self.issuer.clone(),
            request_digest: License::digest_request(msg.f_matrix.ciphertexts()),
            serial: self.serial,
        };
        self.serial += 1;
        self.pending.insert(
            msg.su_id,
            PendingRequest {
                license,
                epsilons,
                region_blocks: region,
            },
        );
        Ok(SdcToStpMsg {
            su_id: msg.su_id,
            v_matrix: CipherMatrix::from_ciphertexts(channels, region, v_entries),
            region_blocks: region,
            ct_bytes: self.pk_g.ciphertext_bytes(),
        })
    }

    /// Phase 2 (Figure 5 steps 9–11): unblinds the STP's signs into
    /// `Q̃ ∈ {0, −2}` (eqs. 13, 16), signs the license, and gates the
    /// signature with `G̃ = S̃G ⊕ η ⊗ ΣQ̃` (eq. 17).
    ///
    /// # Errors
    ///
    /// [`PisaError::MissingRequestState`] if phase 1 did not run, and
    /// [`PisaError::DimensionMismatch`] if the STP reply shape is wrong.
    pub fn process_request_phase2<R: Rng + ?Sized>(
        &mut self,
        msg: &StpToSdcMsg,
        su_pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> Result<SdcResponseMsg, PisaError> {
        let _span = pisa_obs::span("signature_release");
        let pending = self
            .pending
            .remove(&msg.su_id)
            .ok_or(PisaError::MissingRequestState(msg.su_id))?;
        let channels = self.cfg.channels();
        if msg.x_matrix.channels() != channels || msg.x_matrix.blocks() != pending.region_blocks {
            // Put the state back: the STP may retry with a fixed reply.
            let su_id = msg.su_id;
            let err = PisaError::DimensionMismatch {
                got: (msg.x_matrix.channels(), msg.x_matrix.blocks()),
                want: (channels, pending.region_blocks),
            };
            self.pending.insert(su_id, pending);
            return Err(err);
        }

        // Q = ε ⊗ X̃ ⊖ 1̃ (eq. 16). Subtracting the deterministic 1̃ is
        // multiplication by (1+n)⁻¹ ≡ 1 + (n−1)·n (mod n²), which is
        // exactly the deterministic encryption of −1 — so adding E(−1)
        // yields byte-identical ciphertexts while skipping the modular
        // inversion that ⊖ would recompute for every entry.
        let minus_one = su_pk.encrypt_public_constant(&Ibig::from(-1i64));
        let mut sum_q: Option<Ciphertext> = None;
        for (x_ct, eps) in msg.x_matrix.ciphertexts().iter().zip(&pending.epsilons) {
            let unblinded = su_pk.scalar_mul(x_ct, &eps.as_scalar())?;
            let q = su_pk.add(&unblinded, &minus_one);
            sum_q = Some(match sum_q {
                None => q,
                Some(acc) => su_pk.add(&acc, &q),
            });
        }
        let sum_q = sum_q.ok_or(PisaError::EngineFailure("decision matrix has no entries"))?;

        // License signature, encrypted under the SU's key.
        let signature = pending.license.sign(&self.rsa);
        let sg_plain = Ibig::from(signature.as_integer().clone());
        let sg_cipher = su_pk.encrypt(&sg_plain, rng);

        // G = S̃G ⊕ η ⊗ ΣQ (eq. 17): ΣQ = 0 ⇒ G decrypts to SG;
        // ΣQ = −2k ⇒ G decrypts to SG − 2kη, an invalid signature.
        let eta = sample_eta(rng, su_pk.modulus());
        let gated = su_pk.scalar_mul(&sum_q, &Ibig::from(eta))?;
        let g_cipher = su_pk.add(&sg_cipher, &gated);

        Ok(SdcResponseMsg {
            license: pending.license,
            g_cipher,
            ct_bytes: su_pk.ciphertext_bytes(),
        })
    }

    /// Serializes the SDC's durable state — issuer, license serial,
    /// signing key, every stored PU contribution, and every pending
    /// (in-flight) phase-1 request — for crash recovery. Persisting
    /// `pending` is what lets a restarted SDC finish phase 2 of a
    /// session whose sign test crossed the crash: the retained ε vector
    /// must pair with the STP reply or the unblinding in eq. (16) is
    /// garbage.
    ///
    /// Treat the snapshot as sensitive: it contains the license-signing
    /// private key *and* the phase-1 ε vectors (which unblind the STP's
    /// sign readings). The budget ciphertexts, by contrast, are exactly
    /// what a breached SDC would expose anyway — which is the point of
    /// PISA.
    ///
    /// # Errors
    ///
    /// Any [`pisa_net::codec::CodecError`] if a field cannot fit its
    /// wire width; in-range state never fails.
    pub fn snapshot(&self) -> Result<bytes::Bytes, pisa_net::codec::CodecError> {
        use pisa_net::codec::Writer;
        let ct_bytes = self.pk_g.ciphertext_bytes();
        let mut w =
            Writer::with_capacity(1024 + self.contributions.len() * self.cfg.channels() * ct_bytes);
        w.put_u8(SNAPSHOT_VERSION);
        w.put_bytes(self.issuer.as_bytes())?;
        w.put_u64(self.serial);
        let rsa = self.rsa.export_secret_parts();
        w.put_bytes(&rsa.n.to_be_bytes())?;
        w.put_bytes(&rsa.d.to_be_bytes())?;
        w.put_u32(wire_u32(ct_bytes)?);
        // Deterministic order for reproducible snapshots.
        let mut ids: Vec<_> = self.contributions.keys().copied().collect();
        ids.sort_unstable();
        w.put_u32(wire_u32(ids.len())?);
        for id in ids {
            // The id came from the map's own key set one statement ago.
            let Some((block, col)) = self.contributions.get(&id) else {
                continue;
            };
            w.put_u64(id);
            w.put_u64(block.0 as u64);
            w.put_u32(wire_u32(col.len())?);
            for ct in col {
                w.put_raw(&ct.as_raw().to_be_bytes_padded(ct_bytes));
            }
        }
        // v2: the pending phase-1 sessions, sorted by SU id. The license
        // issuer is the snapshot's own issuer, so only the per-request
        // fields are stored.
        let mut su_ids: Vec<SuId> = self.pending.keys().copied().collect();
        su_ids.sort_unstable();
        w.put_u32(wire_u32(su_ids.len())?);
        for su_id in su_ids {
            let Some(p) = self.pending.get(&su_id) else {
                continue;
            };
            w.put_u32(su_id.0);
            w.put_raw(&p.license.request_digest);
            w.put_u64(p.license.serial);
            w.put_u64(p.region_blocks as u64);
            w.put_u32(wire_u32(p.epsilons.len())?);
            for eps in &p.epsilons {
                w.put_u8(match eps {
                    SignFlip::Keep => 0,
                    SignFlip::Flip => 1,
                });
            }
        }
        Ok(w.finish())
    }

    /// Reconstructs an SDC from a [`snapshot`](Self::snapshot): recomputes
    /// the public matrix **E**, restores the signing key, PU
    /// contributions and pending phase-1 sessions, and re-aggregates
    /// `Ñ` (eqs. 9–10).
    ///
    /// The frame is treated as adversarial: entry counts are checked
    /// against the remaining bytes *before* any allocation, every
    /// contribution block must lie inside the configured grid (the same
    /// `check_block` validation [`handle_pu_update`] enforces on the
    /// live path), and PU/SU ids must be strictly increasing — the
    /// order [`snapshot`](Self::snapshot) writes — so duplicates cannot
    /// silently collapse (last-wins) into a map that disagrees with the
    /// snapshot's own counts.
    ///
    /// # Errors
    ///
    /// Any [`pisa_net::codec::CodecError`] on a malformed frame.
    ///
    /// [`handle_pu_update`]: Self::handle_pu_update
    pub fn restore(
        cfg: SystemConfig,
        pk_g: PaillierPublicKey,
        frame: &[u8],
    ) -> Result<Self, pisa_net::codec::CodecError> {
        use pisa_net::codec::{CodecError, Reader};
        let mut r = Reader::new(frame);
        let version = r.get_u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(CodecError::Invalid(format!(
                "unknown snapshot version {version}"
            )));
        }
        let issuer = String::from_utf8(r.get_bytes()?.to_vec())
            .map_err(|e| CodecError::Invalid(format!("issuer not UTF-8: {e}")))?;
        let serial = r.get_u64()?;
        let rsa_n = Ubig::from_be_bytes(r.get_bytes()?);
        let rsa_d = Ubig::from_be_bytes(r.get_bytes()?);
        let ct_bytes = widen(r.get_u32()?);
        if ct_bytes == 0 || ct_bytes != pk_g.ciphertext_bytes() {
            return Err(CodecError::Invalid(format!(
                "ciphertext width {ct_bytes} does not match the key"
            )));
        }
        let count = widen(r.get_u32()?);
        // The count is attacker-controlled: bound it by what the
        // remaining frame could possibly hold before pre-allocating
        // (the `Reader::get_bytes` pattern), so `count = u32::MAX`
        // cannot force a huge up-front allocation.
        let min_entry = 20usize.saturating_add(cfg.channels().saturating_mul(ct_bytes));
        let most = r.remaining() / min_entry.max(1);
        if count > most {
            return Err(CodecError::Oversized(count as u64, most as u64));
        }
        let mut contributions = HashMap::with_capacity(count);
        let mut last_id: Option<u64> = None;
        for _ in 0..count {
            let id = r.get_u64()?;
            if let Some(prev) = last_id {
                if id <= prev {
                    return Err(CodecError::Invalid(format!(
                        "PU ids must be strictly increasing (saw {id} after {prev})"
                    )));
                }
            }
            last_id = Some(id);
            let raw_block = r.get_u64()?;
            let block =
                BlockId(usize::try_from(raw_block).map_err(|_| CodecError::BadLength(raw_block))?);
            if cfg.watch().area().check_block(block).is_err() {
                return Err(CodecError::Invalid(format!(
                    "contribution block {} lies outside the {}-block grid",
                    block.0,
                    cfg.blocks()
                )));
            }
            let cols = widen(r.get_u32()?);
            if cols != cfg.channels() {
                return Err(CodecError::Invalid(format!(
                    "contribution has {cols} channels, config has {}",
                    cfg.channels()
                )));
            }
            let col = (0..cols)
                .map(|_| {
                    Ok(Ciphertext::from_raw(Ubig::from_be_bytes(
                        r.get_raw(ct_bytes)?,
                    )))
                })
                .collect::<Result<Vec<_>, CodecError>>()?;
            contributions.insert(id, (block, col));
        }

        // v2: pending phase-1 sessions, same hardening discipline.
        let pending_count = widen(r.get_u32()?);
        let min_pending = 56usize; // su id + digest + serial + region + ε count
        let most_pending = r.remaining() / min_pending;
        if pending_count > most_pending {
            return Err(CodecError::Oversized(
                pending_count as u64,
                most_pending as u64,
            ));
        }
        let mut pending = HashMap::with_capacity(pending_count);
        let mut last_su: Option<u32> = None;
        for _ in 0..pending_count {
            let raw_su = r.get_u32()?;
            if let Some(prev) = last_su {
                if raw_su <= prev {
                    return Err(CodecError::Invalid(format!(
                        "pending SU ids must be strictly increasing (saw {raw_su} after {prev})"
                    )));
                }
            }
            last_su = Some(raw_su);
            let request_digest: [u8; 32] = r
                .get_raw(32)?
                .try_into()
                .map_err(|_| CodecError::UnexpectedEof)?;
            let lic_serial = r.get_u64()?;
            let raw_region = r.get_u64()?;
            let region_blocks =
                usize::try_from(raw_region).map_err(|_| CodecError::BadLength(raw_region))?;
            if region_blocks == 0 || region_blocks > cfg.blocks() {
                return Err(CodecError::Invalid(format!(
                    "pending region of {region_blocks} blocks exceeds the {}-block area",
                    cfg.blocks()
                )));
            }
            let eps_len = widen(r.get_u32()?);
            if eps_len != cfg.channels() * region_blocks {
                return Err(CodecError::Invalid(format!(
                    "pending ε vector has {eps_len} entries, region needs {}",
                    cfg.channels() * region_blocks
                )));
            }
            let epsilons = (0..eps_len)
                .map(|_| match r.get_u8()? {
                    0 => Ok(SignFlip::Keep),
                    1 => Ok(SignFlip::Flip),
                    other => Err(CodecError::Invalid(format!("bad ε byte {other:#04x}"))),
                })
                .collect::<Result<Vec<_>, CodecError>>()?;
            pending.insert(
                SuId(raw_su),
                PendingRequest {
                    license: License {
                        su_id: SuId(raw_su),
                        issuer: issuer.clone(),
                        request_digest,
                        serial: lic_serial,
                    },
                    epsilons,
                    region_blocks,
                },
            );
        }
        r.finish()?;

        let e_plain = compute_e_matrix(cfg.watch());
        let n_matrix = CipherMatrix::encrypt_public(&e_plain, &pk_g);
        let blinder = Blinder::new(cfg.blind_bits());
        let mut sdc = SdcServer {
            cfg,
            pk_g,
            issuer,
            e_plain,
            n_matrix,
            contributions,
            rsa: RsaKeyPair::from_parts(pisa_crypto::rsa::RsaKeyParts { n: rsa_n, d: rsa_d }),
            blinder,
            serial,
            pending,
            beta_pool: None,
        };
        sdc.reaggregate_budget();
        Ok(sdc)
    }

    /// Number of in-flight phase-1 sessions awaiting their STP reply.
    pub fn pending_sessions(&self) -> usize {
        self.pending.len()
    }

    /// Builds the deterministic encryption of a plaintext matrix under
    /// `pk_G` — used by tests to cross-check `Ñ`.
    pub fn encrypt_public_matrix(&self, m: &IntMatrix) -> CipherMatrix {
        CipherMatrix::encrypt_public(m, &self.pk_g)
    }

    /// Test/diagnostic: the plaintext the budget matrix *should* hold
    /// given the plaintext mirror state (E only; PU contributions are
    /// encrypted and unknown to the SDC).
    pub fn expected_initial_n(&self) -> IntMatrix {
        self.e_plain.clone()
    }

    /// Converts a plaintext value into the signed domain used
    /// throughout the protocol (helper for benches).
    pub fn to_plain_domain(v: i128) -> Ibig {
        i128_to_ibig(v)
    }
}

use crate::wire::wire_u32;

/// Snapshot container version: bumped to 2 when the pending phase-1
/// sessions joined the durable state.
const SNAPSHOT_VERSION: u8 = 2;

/// Widens a snapshot `u32` to `usize` — lossless on every supported host.
fn widen(v: u32) -> usize {
    v as usize // pisa-lint: allow(panic-freedom): u32 → usize never truncates
}

/// Derives the RNG for one matrix entry from a single base draw
/// (splitmix64 over `base` and the flat entry index). Both the
/// sequential and the parallel request paths use this, so their outputs
/// are byte-identical for any thread count.
pub(crate) fn entry_rng(base: u64, index: usize) -> rand::rngs::StdRng {
    let mut z = base ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    rand::rngs::StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::messages::SuRequestMsg;
    use crate::stp::StpServer;
    use crate::su::SuClient;
    use pisa_radio::tv::Channel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SystemConfig, StpServer, SdcServer, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x5dc);
        let cfg = SystemConfig::small_test();
        let stp = StpServer::new(&mut rng, cfg.paillier_bits());
        let sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.unit", &mut rng);
        (cfg, stp, sdc, rng)
    }

    #[test]
    fn rejects_wrong_update_width() {
        let (cfg, stp, mut sdc, mut rng) = setup();
        let msg = PuUpdateMsg {
            block: BlockId(0),
            w_column: vec![stp.public_key().trivial_zero(); cfg.channels() + 1],
            ct_bytes: stp.public_key().ciphertext_bytes(),
        };
        let _ = &mut rng;
        assert!(matches!(
            sdc.handle_pu_update(0, msg),
            Err(PisaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_update_for_unknown_block() {
        let (cfg, stp, mut sdc, _rng) = setup();
        let msg = PuUpdateMsg {
            block: BlockId(cfg.blocks() + 5),
            w_column: vec![stp.public_key().trivial_zero(); cfg.channels()],
            ct_bytes: stp.public_key().ciphertext_bytes(),
        };
        assert!(matches!(
            sdc.handle_pu_update(0, msg),
            Err(PisaError::BadRegion { .. })
        ));
    }

    #[test]
    fn rejects_empty_and_oversized_regions() {
        let (cfg, stp, mut sdc, mut rng) = setup();
        let mut su = SuClient::new(SuId(0), BlockId(0), &cfg, &mut rng);
        let mut msg = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
        msg.region_blocks = 0;
        assert!(matches!(
            sdc.process_request_phase1(&msg, &mut rng),
            Err(PisaError::BadRegion { .. })
        ));
        let mut msg = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
        msg.region_blocks = cfg.blocks() + 1;
        assert!(matches!(
            sdc.process_request_phase1(&msg, &mut rng),
            Err(PisaError::BadRegion { .. })
        ));
    }

    #[test]
    fn rejects_matrix_shape_mismatch() {
        let (cfg, stp, mut sdc, mut rng) = setup();
        let pk = stp.public_key();
        let msg = SuRequestMsg {
            su_id: SuId(1),
            f_matrix: crate::CipherMatrix::zeros(cfg.channels() + 1, cfg.blocks(), pk),
            region_blocks: cfg.blocks(),
            ct_bytes: pk.ciphertext_bytes(),
        };
        assert!(matches!(
            sdc.process_request_phase1(&msg, &mut rng),
            Err(PisaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn phase2_without_phase1_is_an_error() {
        let (cfg, mut stp, mut sdc, mut rng) = setup();
        let su = SuClient::new(SuId(2), BlockId(0), &cfg, &mut rng);
        stp.register_su(SuId(2), su.public_key().clone());
        let reply = crate::messages::StpToSdcMsg {
            su_id: SuId(2),
            x_matrix: crate::CipherMatrix::zeros(cfg.channels(), cfg.blocks(), su.public_key()),
            region_blocks: cfg.blocks(),
            ct_bytes: su.public_key().ciphertext_bytes(),
        };
        assert_eq!(
            sdc.process_request_phase2(&reply, su.public_key(), &mut rng)
                .unwrap_err(),
            PisaError::MissingRequestState(SuId(2))
        );
    }

    #[test]
    fn phase2_shape_mismatch_preserves_state_for_retry() {
        let (cfg, mut stp, mut sdc, mut rng) = setup();
        let mut su = SuClient::new(SuId(3), BlockId(0), &cfg, &mut rng);
        stp.register_su(SuId(3), su.public_key().clone());
        let request = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
        let to_stp = sdc.process_request_phase1(&request, &mut rng).unwrap();

        // Malformed STP reply: wrong dims.
        let bad = crate::messages::StpToSdcMsg {
            su_id: SuId(3),
            x_matrix: crate::CipherMatrix::zeros(1, 1, su.public_key()),
            region_blocks: 1,
            ct_bytes: su.public_key().ciphertext_bytes(),
        };
        assert!(matches!(
            sdc.process_request_phase2(&bad, su.public_key(), &mut rng),
            Err(PisaError::DimensionMismatch { .. })
        ));

        // A correct retry still succeeds: the pending state survived.
        let (good, _) = stp.key_convert(&to_stp, &mut rng).unwrap();
        let response = sdc
            .process_request_phase2(&good, su.public_key(), &mut rng)
            .unwrap();
        assert!(su.handle_response(&response, sdc.signing_public_key()));
    }

    #[test]
    fn pooled_phase1_parallel_matches_pooled_sequential() {
        let (cfg, mut stp, mut sdc, mut rng) = setup();
        let mut su = SuClient::new(SuId(5), BlockId(0), &cfg, &mut rng);
        stp.register_su(SuId(5), su.public_key().clone());
        let request = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
        let entries = cfg.channels() * cfg.blocks();

        let primed_pool = || {
            let pool = Arc::new(RandomizerPool::new(stp.public_key(), entries));
            pool.refill(&mut StdRng::seed_from_u64(0xf00d));
            pool
        };
        sdc.attach_beta_pool(primed_pool()).unwrap();
        let sequential = sdc
            .process_request_phase1(&request, &mut StdRng::seed_from_u64(0xaa))
            .unwrap();

        // Re-prime with identical factors: the parallel path must
        // consume them in the same entry order for any thread count.
        for threads in [1usize, 2, 8] {
            sdc.attach_beta_pool(primed_pool()).unwrap();
            let parallel = sdc
                .process_request_phase1_parallel(
                    &request,
                    threads,
                    &mut StdRng::seed_from_u64(0xaa),
                )
                .unwrap();
            assert_eq!(
                parallel.v_matrix.ciphertexts(),
                sequential.v_matrix.ciphertexts(),
                "pooled phase 1 diverged with {threads} threads"
            );
        }
    }

    #[test]
    fn partial_beta_pool_falls_back_online_and_round_grants() {
        let (cfg, mut stp, mut sdc, mut rng) = setup();
        let mut su = SuClient::new(SuId(6), BlockId(0), &cfg, &mut rng);
        stp.register_su(SuId(6), su.public_key().clone());
        let entries = cfg.channels() * cfg.blocks();

        // A pool covering only half the entries: the rest must pay the
        // online exponentiation, and the round must still verify.
        let pool = Arc::new(RandomizerPool::new(stp.public_key(), entries / 2));
        pool.refill(&mut rng);
        sdc.attach_beta_pool(Arc::clone(&pool)).unwrap();

        let request = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
        let to_stp = sdc.process_request_phase1(&request, &mut rng).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.hits, (entries / 2) as u64);
        assert_eq!(stats.misses, (entries - entries / 2) as u64);

        let (reply, _) = stp.key_convert(&to_stp, &mut rng).unwrap();
        let response = sdc
            .process_request_phase2(&reply, su.public_key(), &mut rng)
            .unwrap();
        assert!(su.handle_response(&response, sdc.signing_public_key()));
    }

    #[test]
    fn beta_pool_for_wrong_key_is_rejected() {
        let (_cfg, _stp, mut sdc, mut rng) = setup();
        let other = pisa_crypto::paillier::PaillierKeyPair::generate(&mut rng, 256);
        let pool = Arc::new(RandomizerPool::new(other.public(), 4));
        assert!(matches!(
            sdc.attach_beta_pool(pool),
            Err(PisaError::EngineFailure(_))
        ));
    }

    #[test]
    fn serials_are_monotone() {
        let (cfg, mut stp, mut sdc, mut rng) = setup();
        let mut su = SuClient::new(SuId(4), BlockId(0), &cfg, &mut rng);
        stp.register_su(SuId(4), su.public_key().clone());
        let mut serials = Vec::new();
        for _ in 0..3 {
            let request = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
            let to_stp = sdc.process_request_phase1(&request, &mut rng).unwrap();
            let (reply, _) = stp.key_convert(&to_stp, &mut rng).unwrap();
            let response = sdc
                .process_request_phase2(&reply, su.public_key(), &mut rng)
                .unwrap();
            serials.push(response.license.serial);
        }
        assert!(serials.windows(2).all(|w| w[1] > w[0]), "{serials:?}");
    }
}
