//! Error type for the PISA protocol.

use crate::keys::SuId;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the PISA protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PisaError {
    /// An SU id is not registered with the STP / SDC.
    UnknownSu(SuId),
    /// A message arrived with matrix dimensions that do not match the
    /// system configuration.
    DimensionMismatch {
        /// What the message carried.
        got: (usize, usize),
        /// What the configuration requires.
        want: (usize, usize),
    },
    /// A blinded value would overflow the Paillier plaintext space —
    /// the key is too small for the configured blinding budget.
    BlindingOverflow,
    /// Phase-2 state for a request was not found (phase 1 not run, or
    /// already consumed).
    MissingRequestState(SuId),
    /// The region prefix in a request exceeds the service area.
    BadRegion {
        /// Requested region size.
        region_blocks: usize,
        /// Blocks available.
        blocks: usize,
    },
    /// A cryptographic operation rejected its input — typically an
    /// adversarial ciphertext that is not a unit modulo `n²`.
    Crypto(pisa_crypto::CryptoError),
    /// An internal engine invariant failed (e.g. a worker thread
    /// panicked); the session should be torn down, not retried.
    EngineFailure(&'static str),
    /// The socket transport failed (bind, dial or write) in a way the
    /// protocol's retry budget cannot absorb.
    Net(String),
    /// A durability operation (checkpoint write, load, or resume)
    /// failed; the service cannot guarantee crash recovery.
    Durable(String),
}

impl From<pisa_crypto::CryptoError> for PisaError {
    fn from(e: pisa_crypto::CryptoError) -> Self {
        PisaError::Crypto(e)
    }
}

impl fmt::Display for PisaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PisaError::UnknownSu(id) => write!(f, "unknown secondary user {id}"),
            PisaError::DimensionMismatch { got, want } => write!(
                f,
                "matrix dimensions {}x{} do not match configured {}x{}",
                got.0, got.1, want.0, want.1
            ),
            PisaError::BlindingOverflow => {
                f.write_str("blinded value would exceed the plaintext space; use a larger key")
            }
            PisaError::MissingRequestState(id) => {
                write!(f, "no pending request state for {id}")
            }
            PisaError::BadRegion {
                region_blocks,
                blocks,
            } => write!(
                f,
                "request region of {region_blocks} blocks exceeds the {blocks}-block area"
            ),
            PisaError::Crypto(e) => write!(f, "cryptographic operation failed: {e}"),
            PisaError::EngineFailure(what) => write!(f, "engine failure: {what}"),
            PisaError::Net(what) => write!(f, "network failure: {what}"),
            PisaError::Durable(what) => write!(f, "durability failure: {what}"),
        }
    }
}

impl Error for PisaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PisaError::DimensionMismatch {
            got: (4, 25),
            want: (100, 600),
        };
        let s = e.to_string();
        assert!(s.contains("4x25") && s.contains("100x600"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<PisaError>();
    }
}
