//! Concurrent multi-session protocol engine over the simulated network.
//!
//! [`protocol::run_concurrent_requests`](crate::run_concurrent_requests)
//! drives N requests over a *reliable* network and panics on anything
//! unexpected — fine for measuring Figure 6, useless for the "millions
//! of users over real links" north star. This module is the resilient
//! replacement: threaded SDC and STP **service loops** plus one thread
//! per SU session, where
//!
//! * every session is an explicit state machine ([`SessionPhase`]:
//!   phase 1 blinding → STP sign test → phase 2 license release),
//! * all receives use `recv_timeout` (no party can hang forever),
//! * SUs retry with exponential backoff up to a bounded budget,
//! * malformed, out-of-order, stale or duplicated messages are
//!   *rejected and counted* — never panicked on — via
//!   [`NetMetrics::record_session_reject`] and friends, and
//! * the whole engine composes with the deterministic fault injection in
//!   [`pisa_net::FaultConfig`] (drop / duplicate / reorder / corrupt).
//!
//! ## Why retries are safe
//!
//! Retrying a cryptographic request is only sound if a late or repeated
//! message can never be mistaken for a fresh one: phase 2 unblinds with
//! the ε drawn in phase 1, so pairing a reply with the *wrong* phase-1
//! state would silently corrupt the decision. The engine therefore tags
//! every frame with the SU's **attempt counter** ([`SessionMsg`]):
//!
//! * A retried request re-uses the stored blinded query if it is the
//!   same `(attempt, digest)` — same blinding, so any in-flight STP
//!   reply still unblinds correctly — and re-runs phase 1 otherwise.
//! * The SDC accepts an STP reply only for the attempt it has pending;
//!   stale replies are rejected instead of mis-unblinded.
//! * Completed responses are cached per `(attempt, digest)`, making
//!   request retries idempotent.
//! * The SU accepts only responses whose license digest matches the
//!   request it actually sent, and (when links can corrupt payloads)
//!   treats an unverifiable response as possibly-mangled, retrying
//!   rather than concluding "denied" from a flipped bit.
//!
//! Grant/deny decisions depend only on plaintext values, never on which
//! attempt carried them, so a faulty run reaches exactly the outcomes of
//! a fault-free run — the chaos tests assert this byte for byte.

use crate::engine::{
    SdcSessionEngine, StpSessionEngine, SuAction, SuEvent, SuSessionEngine, SuSessionParams,
};
use crate::error::PisaError;
use crate::keys::SuId;
use crate::messages::PisaMessage;
use crate::sdc::SdcServer;
use crate::stp::StpServer;
use crate::su::SuClient;
use pisa_net::codec::{CodecError, Reader, Writer};
use pisa_net::{FaultConfig, NetMetrics, Network, Party, WireSize};
use pisa_radio::tv::Channel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wire overhead of the session header (session id + attempt counter).
const SESSION_HEADER_BYTES: usize = 12;

/// A protocol message tagged with its session and the sender's attempt
/// counter — the envelope the session engine speaks on the wire.
///
/// The attempt counter is what makes retries safe: phase-2 unblinding
/// must pair an STP reply with the phase-1 state of the *same* attempt
/// (see the module docs).
#[derive(Debug, Clone)]
pub struct SessionMsg {
    /// Session identifier (the engine uses the SU id).
    pub session: u64,
    /// The originating SU attempt this frame belongs to.
    pub attempt: u32,
    /// The protocol payload.
    pub msg: PisaMessage,
}

impl WireSize for SessionMsg {
    fn wire_bytes(&self) -> usize {
        SESSION_HEADER_BYTES + self.msg.wire_bytes()
    }
}

impl SessionMsg {
    /// Serializes to a wire frame: session id, attempt, inner message.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] from encoding the inner [`PisaMessage`];
    /// well-formed messages never fail.
    pub fn encode(&self) -> Result<bytes::Bytes, CodecError> {
        let _span = pisa_obs::span("net.serialize");
        let inner = self.msg.encode()?;
        let mut w = Writer::with_capacity(SESSION_HEADER_BYTES + inner.len());
        w.put_u64(self.session);
        w.put_u32(self.attempt);
        w.put_raw(&inner);
        Ok(w.finish())
    }

    /// Parses a wire frame.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on truncated or malformed frames.
    pub fn decode(frame: &[u8]) -> Result<SessionMsg, CodecError> {
        let _span = pisa_obs::span("net.deserialize");
        let mut r = Reader::new(frame);
        let session = r.get_u64()?;
        let attempt = r.get_u32()?;
        let inner = r.get_raw(r.remaining())?;
        let msg = PisaMessage::decode(inner)?;
        r.finish()?;
        Ok(SessionMsg {
            session,
            attempt,
            msg,
        })
    }
}

impl pisa_net::FrameCodec for SessionMsg {
    fn encode_frame(&self) -> Result<bytes::Bytes, CodecError> {
        self.encode()
    }

    fn decode_frame(frame: &[u8]) -> Result<Self, CodecError> {
        SessionMsg::decode(frame)
    }
}

/// The corruption oracle for engine traffic: encodes the frame, flips
/// one bit chosen by `tweak`, and re-parses. `Some(mangled)` means the
/// flipped frame still decodes — the receiver gets a wrong-but-well-
/// formed message it must reject at the protocol layer. `None` means
/// the frame no longer parses and the network absorbs it like a drop.
///
/// Install with
/// [`Network::set_corruptor`](pisa_net::Network::set_corruptor);
/// [`run_storm`] does so automatically.
pub fn corrupt_session_frame(msg: &SessionMsg, tweak: u64) -> Option<SessionMsg> {
    let mut bytes = msg.encode().ok()?.to_vec();
    let nbits = (bytes.len() * 8) as u64;
    if nbits == 0 {
        return None;
    }
    // The modulo bounds the bit index by the frame length, so the
    // conversion and the byte lookup are both in range by construction —
    // but stay total anyway: this runs inside the session engine.
    let bit = usize::try_from(tweak % nbits).unwrap_or(0);
    if let Some(byte) = bytes.get_mut(bit / 8) {
        *byte ^= 1 << (bit % 8);
    }
    SessionMsg::decode(&bytes).ok()
}

/// Timeout / retry policy for the session engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Base `recv_timeout` deadline for an SU awaiting its response;
    /// doubles on every retry (exponential backoff), capped at 8×.
    pub timeout: Duration,
    /// Retries an SU may spend before giving up (total sends = 1 + this).
    pub max_retries: u32,
    /// Poll granularity of the SDC/STP service loops (how often they
    /// check the shutdown flag while idle).
    pub poll: Duration,
    /// Worker threads the SDC and STP spend on per-entry crypto. The
    /// parallel paths are byte-identical to sequential, so this is a
    /// pure throughput knob. Must be at least 1.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            timeout: Duration::from_millis(200),
            max_retries: 6,
            poll: Duration::from_millis(2),
            workers: 4,
        }
    }
}

impl EngineConfig {
    /// Sets the base response deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the SDC/STP crypto worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The SU receive deadline for a given attempt (exponential
    /// backoff: `timeout · 2^min(attempt, 3)`). Public so virtual-time
    /// drivers can arm the same timers the threaded engine uses.
    pub fn deadline(&self, attempt: u32) -> Duration {
        self.timeout * (1u32 << attempt.min(3))
    }
}

/// Final state of one SU session after a storm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutcome {
    /// The SU that ran the session.
    pub su_id: SuId,
    /// `Some(true)` granted, `Some(false)` denied, `None` if the
    /// session exhausted its retry budget without a usable response.
    pub granted: Option<bool>,
    /// Requests sent (1 = first try succeeded).
    pub attempts: u32,
}

/// Everything a storm run produced.
#[derive(Debug)]
pub struct EngineReport {
    /// Per-session outcomes, sorted by SU id.
    pub outcomes: Vec<SessionOutcome>,
    /// The network's traffic, fault and per-session resilience counters.
    pub metrics: NetMetrics,
}

impl EngineReport {
    /// `(su, decision)` pairs, sorted by SU id.
    pub fn decisions(&self) -> Vec<(SuId, Option<bool>)> {
        self.outcomes.iter().map(|o| (o.su_id, o.granted)).collect()
    }

    /// `true` when every session reached a grant/deny decision.
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(|o| o.granted.is_some())
    }
}

/// Runs N SU request sessions concurrently over one network: the SDC
/// and STP each serve a resilient loop on their own thread, every SU
/// drives its session state machine on its own thread, and the optional
/// [`FaultConfig`] injects deterministic drop/duplicate/reorder/corrupt
/// faults underneath. Per-session retry/timeout/reject counters land in
/// the report's [`NetMetrics`].
///
/// With the same seeds and system state, the grant/deny decisions are
/// identical with and without faults (see the module docs), which is
/// the property the chaos tests pin down.
///
/// # Errors
///
/// [`PisaError::UnknownSu`] if an SU never registered with the STP, and
/// [`PisaError::EngineFailure`] if a party thread panics (every thread
/// is still joined before the error is returned).
///
/// # Panics
///
/// Panics if `engine.workers == 0`.
pub fn run_storm(
    sus: Vec<(SuClient, Vec<Channel>)>,
    sdc: SdcServer,
    stp: StpServer,
    faults: Option<FaultConfig>,
    engine: &EngineConfig,
    seed: u64,
) -> Result<(EngineReport, SdcServer, StpServer), PisaError> {
    assert!(engine.workers > 0, "need at least one crypto worker");
    let cfg = sdc.config().clone();
    let pk_g = stp.public_key().clone();
    let signing = sdc.signing_public_key().clone();
    let su_keys: HashMap<_, _> = sus
        .iter()
        .map(|(su, _)| {
            let pk = stp
                .su_key(su.id())
                .ok_or(PisaError::UnknownSu(su.id()))?
                .clone();
            Ok((su.id(), pk))
        })
        .collect::<Result<_, PisaError>>()?;
    let corrupt_possible = faults.as_ref().is_some_and(FaultConfig::any_corruption);

    let net: Network<SessionMsg> = match faults {
        Some(config) => Network::with_faults(config),
        None => Network::new(),
    };
    net.set_corruptor(Arc::new(corrupt_session_frame));
    let metrics = net.metrics().clone();
    let sdc_ep = net.endpoint(Party::Sdc);
    let stp_ep = net.endpoint(Party::Stp);
    let su_eps: Vec<_> = sus
        .iter()
        .map(|(su, _)| net.endpoint(Party::Su(su.id().0)))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));

    // ---- SDC service loop ------------------------------------------
    // The protocol logic lives in the transport-agnostic engines (see
    // crate::engine); these loops only pump mailboxes into them.
    let sdc_handle = {
        let stop = Arc::clone(&stop);
        let poll = engine.poll;
        let mut machine =
            SdcSessionEngine::new(sdc, su_keys, engine.workers, metrics.clone(), seed ^ 0x5dc);
        std::thread::spawn(move || {
            loop {
                let Some(env) = sdc_ep.recv_timeout(poll) else {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    continue;
                };
                for (to, frame) in machine.handle(env.payload) {
                    let _ = sdc_ep.try_send(to, frame);
                }
            }
            machine.into_server()
        })
    };

    // ---- STP service loop ------------------------------------------
    let stp_handle = {
        let stop = Arc::clone(&stop);
        let poll = engine.poll;
        let mut machine = StpSessionEngine::new(stp, engine.workers, metrics.clone(), seed ^ 0x517);
        std::thread::spawn(move || {
            loop {
                let Some(env) = stp_ep.recv_timeout(poll) else {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    continue;
                };
                for (to, frame) in machine.handle(env.payload) {
                    let _ = stp_ep.try_send(to, frame);
                }
            }
            machine.into_server()
        })
    };

    // ---- One session state machine per SU --------------------------
    let mut su_handles = Vec::new();
    for (i, ((su, channels), ep)) in sus.into_iter().zip(su_eps).enumerate() {
        let cfg = cfg.clone();
        let pk_g = pk_g.clone();
        let signing = signing.clone();
        let metrics = metrics.clone();
        let engine = engine.clone();
        su_handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x50 + i as u64));
            // One span per SU session, parent of this thread's request
            // build / license verification spans.
            let _session_span = pisa_obs::span("session");
            let params = SuSessionParams {
                cfg: &cfg,
                pk_g: &pk_g,
                signing: &signing,
                corrupt_possible,
                engine: &engine,
                metrics: &metrics,
            };
            let mut machine = SuSessionEngine::new(su, &channels, &params, &mut rng);
            let mut action = machine.start();
            loop {
                match action {
                    SuAction::Continue { sends, deadline } => {
                        for frame in sends {
                            ep.send(Party::Sdc, frame);
                        }
                        action = match ep.recv_timeout(deadline) {
                            Some(env) => machine.on_event(SuEvent::Frame(env.payload)),
                            None => machine.on_event(SuEvent::Timeout),
                        };
                    }
                    SuAction::Finish(outcome) => break outcome,
                }
            }
        }));
    }

    // Join every thread before reporting any failure: the stop flag must
    // be raised (and the service loops drained) even when an SU thread
    // died, or the process would leak spinning servers.
    let mut outcomes: Vec<SessionOutcome> = Vec::with_capacity(su_handles.len());
    let mut su_died = false;
    for h in su_handles {
        match h.join() {
            Ok(outcome) => outcomes.push(outcome),
            Err(_) => su_died = true,
        }
    }
    outcomes.sort_by_key(|o| o.su_id);

    stop.store(true, Ordering::Release);
    let sdc = sdc_handle.join();
    let stp = stp_handle.join();
    net.flush_holdback();

    if su_died {
        return Err(PisaError::EngineFailure("SU session thread panicked"));
    }
    let sdc = sdc.map_err(|_| PisaError::EngineFailure("SDC service thread panicked"))?;
    let stp = stp.map_err(|_| PisaError::EngineFailure("STP service thread panicked"))?;

    Ok((
        EngineReport {
            outcomes,
            metrics: net.metrics().clone(),
        },
        sdc,
        stp,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use pisa_net::FaultPlan;
    use pisa_radio::BlockId;

    fn ct(v: u64) -> pisa_crypto::paillier::Ciphertext {
        pisa_crypto::paillier::Ciphertext::from_raw(pisa_bigint::Ubig::from(v))
    }

    fn sample_frame() -> SessionMsg {
        SessionMsg {
            session: 3,
            attempt: 2,
            msg: PisaMessage::PuUpdate(crate::messages::PuUpdateMsg {
                block: BlockId(4),
                w_column: (0..3).map(ct).collect(),
                ct_bytes: 64,
            }),
        }
    }

    #[test]
    fn session_frame_roundtrip() {
        let frame = sample_frame();
        let decoded = SessionMsg::decode(&frame.encode().unwrap()).unwrap();
        assert_eq!(decoded.session, 3);
        assert_eq!(decoded.attempt, 2);
        assert_eq!(frame.encode().unwrap(), decoded.encode().unwrap());
        assert!(frame.wire_bytes() > frame.encode().unwrap().len());
    }

    #[test]
    fn truncated_session_frame_rejected() {
        let bytes = sample_frame().encode().unwrap();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(SessionMsg::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corruption_oracle_is_deterministic_and_safe() {
        let frame = sample_frame();
        for tweak in 0..64 {
            let a = corrupt_session_frame(&frame, tweak);
            let b = corrupt_session_frame(&frame, tweak);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.encode().unwrap(), y.encode().unwrap());
                    // A surviving flip differs from the original frame.
                    assert_ne!(x.encode().unwrap(), frame.encode().unwrap());
                }
                _ => panic!("oracle not deterministic for tweak {tweak}"),
            }
        }
    }

    fn storm_setup(n_sus: u32, seed: u64) -> (Vec<(SuClient, Vec<Channel>)>, SdcServer, StpServer) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SystemConfig::small_test();
        let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
        let sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.storm", &mut rng);
        let sus = (0..n_sus)
            .map(|i| {
                let su = SuClient::new(SuId(i), BlockId(i as usize % cfg.blocks()), &cfg, &mut rng);
                stp.register_su(su.id(), su.public_key().clone());
                (su, vec![Channel(i as usize % cfg.channels())])
            })
            .collect();
        (sus, sdc, stp)
    }

    #[test]
    fn quiet_storm_grants_every_session_first_try() {
        let (sus, sdc, stp) = storm_setup(3, 0x570);
        // A generous deadline: "quiet" asserts no *network* retries, so
        // keep slow-machine compute time out of the equation.
        let engine = EngineConfig::default().with_timeout(Duration::from_secs(5));
        let (report, _sdc, _stp) = run_storm(sus, sdc, stp, None, &engine, 0x570).unwrap();
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.all_completed());
        for outcome in &report.outcomes {
            assert_eq!(outcome.granted, Some(true), "{:?}", outcome.su_id);
            assert_eq!(outcome.attempts, 1);
        }
        // No faults, no retries, no rejects.
        let totals = report.metrics.session_totals();
        assert_eq!(totals.retries + totals.timeouts + totals.rejected, 0);
        assert_eq!(report.metrics.fault_totals().total(), 0);
    }

    #[test]
    fn lossy_storm_reaches_the_same_decisions() {
        let (sus, sdc, stp) = storm_setup(4, 0x571);
        let (baseline, _, _) =
            run_storm(sus, sdc, stp, None, &EngineConfig::default(), 0x571).unwrap();

        let (sus, sdc, stp) = storm_setup(4, 0x571);
        let faults = FaultConfig::new(0xbad)
            .with_default_plan(FaultPlan::none().with_drop(0.15).with_duplicate(0.25));
        let engine = EngineConfig::default().with_max_retries(12);
        let (report, _, _) = run_storm(sus, sdc, stp, Some(faults), &engine, 0x571).unwrap();

        assert_eq!(report.decisions(), baseline.decisions());
        assert!(report.all_completed());
        // The fault layer actually fired and the sessions absorbed it.
        assert!(report.metrics.fault_totals().total() > 0);
    }

    /// Chaos extension for the panic-freedom work: with payload
    /// corruption switched on, every malformed frame must surface as a
    /// decode error → retry, never as a panic inside the frame-decode
    /// or homomorphic paths — and the final decisions must match the
    /// fault-free baseline.
    #[test]
    fn corrupting_storm_never_panics_and_still_decides() {
        let (sus, sdc, stp) = storm_setup(3, 0x573);
        let (baseline, _, _) =
            run_storm(sus, sdc, stp, None, &EngineConfig::default(), 0x573).unwrap();

        let (sus, sdc, stp) = storm_setup(3, 0x573);
        let faults = FaultConfig::new(0xc0de)
            .with_default_plan(FaultPlan::none().with_corrupt(0.2).with_drop(0.1));
        let engine = EngineConfig::default().with_max_retries(16);
        let (report, _, _) = run_storm(sus, sdc, stp, Some(faults), &engine, 0x573).unwrap();

        assert_eq!(report.decisions(), baseline.decisions());
        assert!(report.all_completed());
        assert!(
            report.metrics.fault_totals().total() > 0,
            "corruption faults must actually have fired"
        );
    }

    #[test]
    fn unregistered_su_is_reported_not_panicked() {
        let (mut sus, sdc, _stp) = storm_setup(2, 0x572);
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = SystemConfig::small_test();
        // Fresh STP that knows neither SU.
        let stp = StpServer::new(&mut rng, cfg.paillier_bits());
        let su_id = sus[0].0.id();
        sus.truncate(1);
        let err = run_storm(sus, sdc, stp, None, &EngineConfig::default(), 0x572).unwrap_err();
        assert_eq!(err, PisaError::UnknownSu(su_id));
    }
}
