//! Transport-agnostic session state machines for the storm engine.
//!
//! [`run_storm`](crate::run_storm) historically inlined the SDC, STP
//! and SU protocol logic into its thread bodies, welding the state
//! machines to wall-clock timeouts and crossbeam mailboxes. This module
//! extracts that logic into three plain structs —
//! [`SdcSessionEngine`], [`StpSessionEngine`] and [`SuSessionEngine`] —
//! that know nothing about threads, clocks or channels:
//!
//! * the service engines map one inbound frame to zero or more outbound
//!   `(recipient, frame)` pairs ([`SdcSessionEngine::handle`],
//!   [`StpSessionEngine::handle`]);
//! * the SU engine is driven by [`SuEvent`]s (a delivered frame or an
//!   expired deadline) and answers with a [`SuAction`]: either "send
//!   these frames and wake me after `deadline`" or a final
//!   [`SessionOutcome`].
//!
//! The threaded engine supplies real time and real mailboxes; the
//! virtual-time discrete-event simulator (`pisa-sim`) supplies virtual
//! time and an event heap. Both drive the *same* code, with the same
//! RNG streams, so their decisions and message sequences are identical
//! — the equivalence tests pin this down frame for frame.

use crate::error::PisaError;
use crate::keys::SuId;
use crate::license::License;
use crate::messages::{PisaMessage, SdcResponseMsg, SdcToStpMsg, SuRequestMsg};
use crate::sdc::SdcServer;
use crate::session::{EngineConfig, SessionMsg, SessionOutcome};
use crate::stp::StpServer;
use crate::su::SuClient;
use crate::SystemConfig;
use pisa_crypto::paillier::PaillierPublicKey;
use pisa_crypto::rsa::RsaPublicKey;
use pisa_net::{NetMetrics, Party};
use pisa_radio::tv::Channel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Duration;

/// Where one session stands inside the SDC service engine — the
/// explicit per-session state machine of the protocol's server side.
enum SessionPhase {
    /// Phase 1 ran (request blinded, ε retained); the query is in
    /// flight to the STP for the sign test. Stored so a retried or
    /// duplicated request re-sends the *same* blinding instead of
    /// desynchronizing ε.
    AwaitingStp {
        attempt: u32,
        digest: [u8; 32],
        query: SdcToStpMsg,
    },
    /// Phase 2 ran and the license was released; the response replays
    /// idempotently for retries of the same attempt.
    Completed {
        attempt: u32,
        digest: [u8; 32],
        response: SdcResponseMsg,
    },
}

/// The SDC side of the session protocol: phase-1 blinding, phase-2
/// license release, and the retry/replay bookkeeping between them.
///
/// One inbound frame maps to zero or more outbound frames; malformed,
/// stale or duplicated traffic is rejected and counted, never panicked
/// on.
pub struct SdcSessionEngine {
    sdc: SdcServer,
    su_keys: HashMap<SuId, PaillierPublicKey>,
    sessions: HashMap<SuId, SessionPhase>,
    workers: usize,
    metrics: NetMetrics,
    rng: StdRng,
}

impl SdcSessionEngine {
    /// Wraps `sdc` with the session bookkeeping. `su_keys` maps each
    /// participating SU to its Paillier key (needed for phase 2);
    /// `workers` sizes the parallel crypto paths (byte-identical to
    /// sequential, so purely a throughput knob); `seed` starts the
    /// engine's private RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(
        sdc: SdcServer,
        su_keys: HashMap<SuId, PaillierPublicKey>,
        workers: usize,
        metrics: NetMetrics,
        seed: u64,
    ) -> Self {
        assert!(workers > 0, "need at least one crypto worker");
        SdcSessionEngine {
            sdc,
            su_keys,
            sessions: HashMap::new(),
            workers,
            metrics,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Processes one frame addressed to the SDC, returning the frames
    /// to send in response (in order).
    pub fn handle(&mut self, frame: SessionMsg) -> Vec<(Party, SessionMsg)> {
        let mut out = Vec::new();
        match frame.msg {
            PisaMessage::SuRequest(req) => {
                let session = u64::from(req.su_id.0);
                let digest = License::digest_request(req.f_matrix.ciphertexts());
                enum Action {
                    Replay(SdcResponseMsg, u32),
                    Resend(SdcToStpMsg, u32),
                    Reject,
                    Fresh,
                }
                let action = match self.sessions.get_mut(&req.su_id) {
                    // Idempotent replay for a retried request this
                    // engine already answered.
                    Some(SessionPhase::Completed {
                        attempt,
                        digest: d,
                        response,
                    }) if *d == digest && frame.attempt == *attempt => {
                        Action::Replay(response.clone(), *attempt)
                    }
                    // A stale duplicate of a superseded attempt: the SU
                    // has moved on, don't recompute.
                    Some(SessionPhase::Completed {
                        attempt, digest: d, ..
                    }) if *d == digest && frame.attempt < *attempt => Action::Reject,
                    // Retry or duplicate while the sign test is in
                    // flight: ε must not change, so re-send the stored
                    // query under the newest attempt instead of
                    // re-blinding.
                    Some(SessionPhase::AwaitingStp {
                        attempt,
                        digest: d,
                        query,
                    }) if *d == digest => {
                        *attempt = (*attempt).max(frame.attempt);
                        Action::Resend(query.clone(), *attempt)
                    }
                    // New request, a fresh attempt after a bad
                    // response, or a corrupted digest: phase 1.
                    _ => Action::Fresh,
                };
                match action {
                    Action::Replay(response, attempt) => out.push((
                        Party::Su(req.su_id.0),
                        SessionMsg {
                            session,
                            attempt,
                            msg: PisaMessage::SdcResponse(response),
                        },
                    )),
                    Action::Resend(query, attempt) => out.push((
                        Party::Stp,
                        SessionMsg {
                            session,
                            attempt,
                            msg: PisaMessage::SdcToStp(query),
                        },
                    )),
                    Action::Reject => self.metrics.record_session_reject(session),
                    Action::Fresh => {
                        match self.sdc.process_request_phase1_parallel(
                            &req,
                            self.workers,
                            &mut self.rng,
                        ) {
                            Ok(query) => {
                                self.sessions.insert(
                                    req.su_id,
                                    SessionPhase::AwaitingStp {
                                        attempt: frame.attempt,
                                        digest,
                                        query: query.clone(),
                                    },
                                );
                                out.push((
                                    Party::Stp,
                                    SessionMsg {
                                        session,
                                        attempt: frame.attempt,
                                        msg: PisaMessage::SdcToStp(query),
                                    },
                                ));
                            }
                            Err(_) => self.metrics.record_session_reject(session),
                        }
                    }
                }
            }
            PisaMessage::StpToSdc(reply) => {
                let session = u64::from(reply.su_id.0);
                let current = match self.sessions.get(&reply.su_id) {
                    Some(SessionPhase::AwaitingStp {
                        attempt, digest, ..
                    }) if *attempt == frame.attempt => Some((*attempt, *digest)),
                    // Stale attempt, duplicate of a consumed reply, or
                    // no phase-1 state: reject.
                    _ => None,
                };
                let Some((attempt, digest)) = current else {
                    self.metrics.record_session_reject(session);
                    return out;
                };
                let Some(su_pk) = self.su_keys.get(&reply.su_id) else {
                    self.metrics.record_session_reject(session);
                    return out;
                };
                match self
                    .sdc
                    .process_request_phase2(&reply, su_pk, &mut self.rng)
                {
                    Ok(response) => {
                        self.sessions.insert(
                            reply.su_id,
                            SessionPhase::Completed {
                                attempt,
                                digest,
                                response: response.clone(),
                            },
                        );
                        out.push((
                            Party::Su(reply.su_id.0),
                            SessionMsg {
                                session,
                                attempt,
                                msg: PisaMessage::SdcResponse(response),
                            },
                        ));
                    }
                    // Shape mismatch keeps the server-side ε state; an
                    // SU retry will re-drive the round.
                    Err(PisaError::DimensionMismatch { .. }) => {
                        self.metrics.record_session_reject(session);
                    }
                    // Any other failure means the engine's view
                    // desynchronized from the server state — drop it so
                    // the next retry re-runs phase 1.
                    Err(_) => {
                        self.metrics.record_session_reject(session);
                        self.sessions.remove(&reply.su_id);
                    }
                }
            }
            // PU updates and reflected responses are outside this
            // engine's protocol: reject, never panic.
            _ => self.metrics.record_session_reject(frame.session),
        }
        out
    }

    /// Unwraps the server once the storm is over.
    pub fn into_server(self) -> SdcServer {
        self.sdc
    }

    /// The wrapped server (read-only; checkpointing reads its snapshot
    /// through this without tearing the engine down).
    pub fn server(&self) -> &SdcServer {
        &self.sdc
    }

    /// Serializes the per-session protocol table — which attempt each
    /// SU is on, the request digest, and the in-flight STP query or the
    /// released response — so a restarted engine resumes mid-protocol
    /// instead of re-running phase 1 with fresh ε (which would
    /// desynchronize from any STP reply already in flight).
    ///
    /// # Errors
    ///
    /// Any [`pisa_net::codec::CodecError`] if a field cannot fit its
    /// wire width; in-range state never fails.
    pub fn snapshot_sessions(&self) -> Result<bytes::Bytes, pisa_net::codec::CodecError> {
        use pisa_net::codec::Writer;
        let mut ids: Vec<SuId> = self.sessions.keys().copied().collect();
        ids.sort_unstable();
        let mut w = Writer::new();
        w.put_u8(SESSIONS_VERSION);
        w.put_u32(crate::wire::wire_u32(ids.len())?);
        for id in ids {
            // The id came from the map's own key set one statement ago.
            let Some(phase) = self.sessions.get(&id) else {
                continue;
            };
            w.put_u32(id.0);
            match phase {
                SessionPhase::AwaitingStp {
                    attempt,
                    digest,
                    query,
                } => {
                    w.put_u8(PHASE_AWAITING_STP);
                    w.put_u32(*attempt);
                    w.put_raw(digest);
                    w.put_bytes(&PisaMessage::SdcToStp(query.clone()).encode()?)?;
                }
                SessionPhase::Completed {
                    attempt,
                    digest,
                    response,
                } => {
                    w.put_u8(PHASE_COMPLETED);
                    w.put_u32(*attempt);
                    w.put_raw(digest);
                    w.put_bytes(&PisaMessage::SdcResponse(response.clone()).encode()?)?;
                }
            }
        }
        Ok(w.finish())
    }

    /// Replaces the per-session table from a
    /// [`snapshot_sessions`](Self::snapshot_sessions) frame. The frame
    /// is treated as adversarial: counts are bounded by the remaining
    /// bytes before allocation, SU ids must be strictly increasing, and
    /// each entry's payload must decode to the message kind its phase
    /// tag claims.
    ///
    /// # Errors
    ///
    /// Any [`pisa_net::codec::CodecError`] on a malformed frame; the
    /// existing table is left untouched on error.
    pub fn restore_sessions(&mut self, frame: &[u8]) -> Result<(), pisa_net::codec::CodecError> {
        use pisa_net::codec::{CodecError, Reader};
        let mut r = Reader::new(frame);
        let version = r.get_u8()?;
        if version != SESSIONS_VERSION {
            return Err(CodecError::Invalid(format!(
                "unknown session-table version {version}"
            )));
        }
        let count = crate::wire::widen(r.get_u32()?);
        // id + tag + attempt + digest + payload length prefix.
        let min_entry = 4 + 1 + 4 + 32 + 4;
        let most = r.remaining() / min_entry;
        if count > most {
            return Err(CodecError::Oversized(count as u64, most as u64));
        }
        let mut sessions = HashMap::with_capacity(count);
        let mut last: Option<u32> = None;
        for _ in 0..count {
            let raw_id = r.get_u32()?;
            if let Some(prev) = last {
                if raw_id <= prev {
                    return Err(CodecError::Invalid(format!(
                        "session SU ids must be strictly increasing (saw {raw_id} after {prev})"
                    )));
                }
            }
            last = Some(raw_id);
            let tag = r.get_u8()?;
            let attempt = r.get_u32()?;
            let digest: [u8; 32] = r
                .get_raw(32)?
                .try_into()
                .map_err(|_| CodecError::UnexpectedEof)?;
            let inner = PisaMessage::decode(r.get_bytes()?)?;
            let phase = match (tag, inner) {
                (PHASE_AWAITING_STP, PisaMessage::SdcToStp(query)) => SessionPhase::AwaitingStp {
                    attempt,
                    digest,
                    query,
                },
                (PHASE_COMPLETED, PisaMessage::SdcResponse(response)) => SessionPhase::Completed {
                    attempt,
                    digest,
                    response,
                },
                (tag, _) => {
                    return Err(CodecError::Invalid(format!(
                        "session entry for SU {raw_id}: payload does not match phase tag {tag}"
                    )))
                }
            };
            sessions.insert(SuId(raw_id), phase);
        }
        r.finish()?;
        self.sessions = sessions;
        Ok(())
    }
}

/// Session-table serialization format version.
const SESSIONS_VERSION: u8 = 1;
/// Phase tag: sign test in flight to the STP.
const PHASE_AWAITING_STP: u8 = 1;
/// Phase tag: response released, replayable.
const PHASE_COMPLETED: u8 = 2;

/// The STP side of the session protocol: stateless key conversion of
/// each blinded sign-test query.
pub struct StpSessionEngine {
    stp: StpServer,
    workers: usize,
    metrics: NetMetrics,
    rng: StdRng,
}

impl StpSessionEngine {
    /// Wraps `stp`; parameters as for [`SdcSessionEngine::new`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(stp: StpServer, workers: usize, metrics: NetMetrics, seed: u64) -> Self {
        assert!(workers > 0, "need at least one crypto worker");
        StpSessionEngine {
            stp,
            workers,
            metrics,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Processes one frame addressed to the STP, returning the frames
    /// to send in response.
    pub fn handle(&mut self, frame: SessionMsg) -> Vec<(Party, SessionMsg)> {
        match frame.msg {
            PisaMessage::SdcToStp(query) => {
                match self
                    .stp
                    .key_convert_parallel(&query, self.workers, &mut self.rng)
                {
                    Ok((reply, _obs)) => vec![(
                        Party::Sdc,
                        SessionMsg {
                            session: frame.session,
                            attempt: frame.attempt,
                            msg: PisaMessage::StpToSdc(reply),
                        },
                    )],
                    Err(_) => {
                        self.metrics.record_session_reject(frame.session);
                        Vec::new()
                    }
                }
            }
            _ => {
                self.metrics.record_session_reject(frame.session);
                Vec::new()
            }
        }
    }

    /// Unwraps the server once the storm is over.
    pub fn into_server(self) -> StpServer {
        self.stp
    }

    /// The wrapped server (read-only; checkpointing reads its directory
    /// snapshot through this without tearing the engine down).
    pub fn server(&self) -> &StpServer {
        &self.stp
    }

    /// Mutable access to the wrapped server, for restoring its SU key
    /// directory from a checkpoint before serving.
    pub fn server_mut(&mut self) -> &mut StpServer {
        &mut self.stp
    }
}

/// What the SU state machine was just told: either a frame arrived on
/// its mailbox, or its current receive deadline expired.
#[derive(Debug)]
pub enum SuEvent {
    /// A frame was delivered to this SU.
    Frame(SessionMsg),
    /// The deadline from the previous [`SuAction::Continue`] expired
    /// with nothing (acceptable) delivered.
    Timeout,
}

/// What the SU state machine wants next.
#[derive(Debug)]
pub enum SuAction {
    /// Send `sends` to the SDC, then wait: deliver the next frame as
    /// [`SuEvent::Frame`], or [`SuEvent::Timeout`] once `deadline`
    /// passes with none. Receiving a frame re-arms the *full* deadline.
    Continue {
        /// Frames to send to [`Party::Sdc`], in order (possibly none).
        sends: Vec<SessionMsg>,
        /// How long to wait for the next frame.
        deadline: Duration,
    },
    /// The session reached a terminal state.
    Finish(SessionOutcome),
}

/// Construction parameters shared by every SU engine of one storm.
pub struct SuSessionParams<'a> {
    /// System configuration (shapes the request).
    pub cfg: &'a SystemConfig,
    /// The global Paillier key the request is encrypted under.
    pub pk_g: &'a PaillierPublicKey,
    /// The SDC's license-signing key.
    pub signing: &'a RsaPublicKey,
    /// Whether any link can corrupt payloads — decides if an
    /// unverifiable response is a denial or possibly a flipped bit.
    pub corrupt_possible: bool,
    /// Timeout / retry policy.
    pub engine: &'a EngineConfig,
    /// Shared resilience counters.
    pub metrics: &'a NetMetrics,
}

/// The SU side of one session: build the request once, then retry it
/// with exponential backoff until a verifiable response, a definite
/// denial, or an exhausted budget.
pub struct SuSessionEngine {
    su: SuClient,
    signing: RsaPublicKey,
    engine: EngineConfig,
    metrics: NetMetrics,
    session: u64,
    digest: [u8; 32],
    request: SuRequestMsg,
    attempt: u32,
    corrupt_possible: bool,
}

impl SuSessionEngine {
    /// Builds the SU's encrypted request (the expensive part) and the
    /// session state machine around it. `rng` drives the request's
    /// encryption randomness and must be this SU's dedicated stream.
    pub fn new(
        mut su: SuClient,
        channels: &[Channel],
        params: &SuSessionParams<'_>,
        rng: &mut StdRng,
    ) -> Self {
        let request = su.build_request(params.cfg, params.pk_g, channels, rng);
        let digest = License::digest_request(request.f_matrix.ciphertexts());
        SuSessionEngine {
            session: u64::from(su.id().0),
            su,
            signing: params.signing.clone(),
            engine: params.engine.clone(),
            metrics: params.metrics.clone(),
            digest,
            request,
            attempt: 0,
            corrupt_possible: params.corrupt_possible,
        }
    }

    /// The SU this engine speaks for.
    pub fn su_id(&self) -> SuId {
        self.su.id()
    }

    /// Kicks the session off: the attempt-0 request and its deadline.
    pub fn start(&self) -> SuAction {
        self.wait(vec![self.frame()])
    }

    /// Advances the state machine by one event.
    pub fn on_event(&mut self, event: SuEvent) -> SuAction {
        match event {
            SuEvent::Frame(frame) => match frame.msg {
                PisaMessage::SdcResponse(resp)
                    if resp.license.su_id == self.su.id()
                        && resp.license.request_digest == self.digest =>
                {
                    if self.su.handle_response(&resp, &self.signing) {
                        // A flipped bit cannot forge a valid RSA
                        // signature: a verified grant is final.
                        return self.finish(Some(true));
                    }
                    if !self.corrupt_possible {
                        // Links never mangle payloads, and the attempt
                        // tags rule out ε mismatches, so an
                        // unverifiable signature IS the deny.
                        return self.finish(Some(false));
                    }
                    // Could be a denial or a flipped bit in G̃ —
                    // indistinguishable by design, so spend a retry to
                    // find out.
                    self.metrics.record_session_reject(self.session);
                    if self.attempt >= self.engine.max_retries {
                        return self.finish(Some(false));
                    }
                    self.retry()
                }
                // Foreign digest, foreign SU, duplicate or
                // out-of-protocol message: reject and keep waiting out
                // a fresh full deadline.
                _ => {
                    self.metrics.record_session_reject(self.session);
                    self.wait(Vec::new())
                }
            },
            SuEvent::Timeout => {
                self.metrics.record_session_timeout(self.session);
                if self.attempt >= self.engine.max_retries {
                    return self.finish(None);
                }
                self.retry()
            }
        }
    }

    fn frame(&self) -> SessionMsg {
        SessionMsg {
            session: self.session,
            attempt: self.attempt,
            msg: PisaMessage::SuRequest(self.request.clone()),
        }
    }

    fn retry(&mut self) -> SuAction {
        self.attempt += 1;
        self.metrics.record_session_retry(self.session);
        self.wait(vec![self.frame()])
    }

    fn wait(&self, sends: Vec<SessionMsg>) -> SuAction {
        SuAction::Continue {
            sends,
            deadline: self.engine.deadline(self.attempt),
        }
    }

    fn finish(&self, granted: Option<bool>) -> SuAction {
        SuAction::Finish(SessionOutcome {
            su_id: self.su.id(),
            granted,
            attempts: self.attempt + 1,
        })
    }
}
