//! Transmission permission licenses.
//!
//! §IV-B step (2): "the license includes the identity of SU j, the
//! identity of the license issuer, and S̃ⱼ, the ciphertext of SU j's
//! operation parameters". The SDC signs the license with RSA; PISA then
//! releases the *signature* through the homomorphic gate of eq. (17), so
//! the SU obtains a verifiable license only when granted.

use crate::keys::SuId;
use pisa_crypto::rsa::{RsaKeyPair, RsaPublicKey, Signature};
use pisa_crypto::sha256::{sha256, Sha256};
use serde::{Deserialize, Serialize};

/// An (unsigned) transmission permission license.
///
/// The SU's encrypted operation parameters are bound by digest rather
/// than embedded verbatim — a 29 MB request matrix inside every license
/// would defeat the 4.1 kb response size of Figure 6, and a SHA-256
/// binding is equally tamper-evident.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct License {
    /// The requesting SU.
    pub su_id: SuId,
    /// The issuer (the SDC server's name).
    pub issuer: String,
    /// SHA-256 over the SU's submitted encrypted operation parameters
    /// (the request ciphertexts, in order).
    pub request_digest: [u8; 32],
    /// Issuer-assigned serial number (monotone per SDC).
    pub serial: u64,
}

impl License {
    /// Digest of a request's ciphertexts, binding the license to the
    /// exact encrypted operation parameters submitted.
    pub fn digest_request(ciphertexts: &[pisa_crypto::paillier::Ciphertext]) -> [u8; 32] {
        let mut h = Sha256::new();
        for ct in ciphertexts {
            let bytes = ct.as_raw().to_be_bytes();
            h.update(&(bytes.len() as u64).to_be_bytes());
            h.update(&bytes);
        }
        h.finalize()
    }

    /// Canonical byte encoding — what the RSA signature covers.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.issuer.len());
        out.extend_from_slice(b"PISA-LICENSE-v1\0");
        out.extend_from_slice(&self.su_id.0.to_be_bytes());
        out.extend_from_slice(&(self.issuer.len() as u64).to_be_bytes());
        out.extend_from_slice(self.issuer.as_bytes());
        out.extend_from_slice(&self.request_digest);
        out.extend_from_slice(&self.serial.to_be_bytes());
        out
    }

    /// Signs the license.
    pub fn sign(&self, key: &RsaKeyPair) -> Signature {
        key.sign(&self.canonical_bytes())
    }

    /// Verifies a signature over this license.
    ///
    /// # Errors
    ///
    /// Returns [`pisa_crypto::CryptoError::InvalidSignature`] on
    /// mismatch.
    pub fn verify(
        &self,
        pk: &RsaPublicKey,
        sig: &Signature,
    ) -> Result<(), pisa_crypto::CryptoError> {
        pk.verify(&self.canonical_bytes(), sig)
    }

    /// A short fingerprint for logs.
    pub fn fingerprint(&self) -> String {
        let d = sha256(&self.canonical_bytes());
        d.iter().take(4).map(|b| format!("{b:02x}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn license() -> License {
        License {
            su_id: SuId(7),
            issuer: "sdc.example".to_owned(),
            request_digest: [0xab; 32],
            serial: 42,
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = RsaKeyPair::generate(&mut rng, 256);
        let lic = license();
        let sig = lic.sign(&key);
        assert!(lic.verify(key.public(), &sig).is_ok());
    }

    #[test]
    fn tampered_license_fails() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = RsaKeyPair::generate(&mut rng, 256);
        let lic = license();
        let sig = lic.sign(&key);
        let mut other = lic.clone();
        other.su_id = SuId(8);
        assert!(other.verify(key.public(), &sig).is_err());
        let mut other = lic.clone();
        other.serial += 1;
        assert!(other.verify(key.public(), &sig).is_err());
    }

    #[test]
    fn canonical_bytes_distinguish_fields() {
        let a = license();
        let mut b = a.clone();
        b.issuer = "sdc.other".to_owned();
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn request_digest_changes_with_content() {
        use pisa_bigint::Ubig;
        use pisa_crypto::paillier::Ciphertext;
        let c1 = [Ciphertext::from_raw(Ubig::from(5u64))];
        let c2 = [Ciphertext::from_raw(Ubig::from(6u64))];
        assert_ne!(License::digest_request(&c1), License::digest_request(&c2));
    }
}
