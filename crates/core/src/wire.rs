//! Binary wire format for PISA messages.
//!
//! Every message serializes to a real byte frame (ciphertexts padded to
//! the fixed `2·|n|` width, exactly as the paper sizes its traffic), so
//! the communication numbers of Figure 6 are measured over actual
//! encodings, not estimates. Format: one tag byte, then fixed-width
//! big-endian fields and length-prefixed strings via
//! [`pisa_net::codec`].

use crate::cipher_matrix::CipherMatrix;
use crate::keys::SuId;
use crate::license::License;
use crate::messages::{
    PisaMessage, PuUpdateMsg, SdcResponseMsg, SdcToStpMsg, StpToSdcMsg, SuRequestMsg,
};
use pisa_bigint::Ubig;
use pisa_crypto::paillier::Ciphertext;
use pisa_net::codec::{CodecError, Reader, Writer};
use pisa_radio::BlockId;

const TAG_PU_UPDATE: u8 = 1;
const TAG_SU_REQUEST: u8 = 2;
const TAG_SDC_TO_STP: u8 = 3;
const TAG_STP_TO_SDC: u8 = 4;
const TAG_SDC_RESPONSE: u8 = 5;

/// Upper bound on plausible ciphertext width (64 KiB ≫ any real key).
const MAX_CT_BYTES: usize = 1 << 16;
/// Upper bound on matrix entries per message (paper scale is 60 000).
const MAX_ENTRIES: usize = 1 << 24;

impl PisaMessage {
    /// Serializes to a wire frame.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadLength`] if a count cannot fit the wire's `u32`
    /// fields, [`CodecError::Oversized`] if a variable-length field
    /// exceeds the frame ceiling. Well-formed messages never hit either.
    pub fn encode(&self) -> Result<bytes::Bytes, CodecError> {
        let mut w = Writer::with_capacity(1024);
        match self {
            PisaMessage::PuUpdate(m) => {
                w.put_u8(TAG_PU_UPDATE);
                w.put_u64(m.block.0 as u64);
                w.put_u32(wire_u32(m.ct_bytes)?);
                w.put_u32(wire_u32(m.w_column.len())?);
                for ct in &m.w_column {
                    put_ciphertext(&mut w, ct, m.ct_bytes);
                }
            }
            PisaMessage::SuRequest(m) => {
                w.put_u8(TAG_SU_REQUEST);
                w.put_u32(m.su_id.0);
                w.put_u32(wire_u32(m.region_blocks)?);
                put_matrix(&mut w, &m.f_matrix, m.ct_bytes)?;
            }
            PisaMessage::SdcToStp(m) => {
                w.put_u8(TAG_SDC_TO_STP);
                w.put_u32(m.su_id.0);
                w.put_u32(wire_u32(m.region_blocks)?);
                put_matrix(&mut w, &m.v_matrix, m.ct_bytes)?;
            }
            PisaMessage::StpToSdc(m) => {
                w.put_u8(TAG_STP_TO_SDC);
                w.put_u32(m.su_id.0);
                w.put_u32(wire_u32(m.region_blocks)?);
                put_matrix(&mut w, &m.x_matrix, m.ct_bytes)?;
            }
            PisaMessage::SdcResponse(m) => {
                w.put_u8(TAG_SDC_RESPONSE);
                w.put_u32(m.license.su_id.0);
                w.put_bytes(m.license.issuer.as_bytes())?;
                w.put_raw(&m.license.request_digest);
                w.put_u64(m.license.serial);
                w.put_u32(wire_u32(m.ct_bytes)?);
                put_ciphertext(&mut w, &m.g_cipher, m.ct_bytes);
            }
        }
        Ok(w.finish())
    }

    /// Parses a wire frame.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on truncated, oversized or malformed frames.
    pub fn decode(frame: &[u8]) -> Result<PisaMessage, CodecError> {
        let mut r = Reader::new(frame);
        let tag = r.get_u8()?;
        let msg = match tag {
            TAG_PU_UPDATE => {
                let raw_block = r.get_u64()?;
                let block = BlockId(
                    usize::try_from(raw_block).map_err(|_| CodecError::BadLength(raw_block))?,
                );
                let ct_bytes = checked_ct_bytes(r.get_u32()?)?;
                let count = widen(r.get_u32()?);
                if count > MAX_ENTRIES {
                    return Err(CodecError::BadLength(count as u64));
                }
                let w_column = (0..count)
                    .map(|_| get_ciphertext(&mut r, ct_bytes))
                    .collect::<Result<Vec<_>, _>>()?;
                PisaMessage::PuUpdate(PuUpdateMsg {
                    block,
                    w_column,
                    ct_bytes,
                })
            }
            TAG_SU_REQUEST => {
                let su_id = SuId(r.get_u32()?);
                let region_blocks = widen(r.get_u32()?);
                let (f_matrix, ct_bytes) = get_matrix(&mut r)?;
                PisaMessage::SuRequest(SuRequestMsg {
                    su_id,
                    f_matrix,
                    region_blocks,
                    ct_bytes,
                })
            }
            TAG_SDC_TO_STP => {
                let su_id = SuId(r.get_u32()?);
                let region_blocks = widen(r.get_u32()?);
                let (v_matrix, ct_bytes) = get_matrix(&mut r)?;
                PisaMessage::SdcToStp(SdcToStpMsg {
                    su_id,
                    v_matrix,
                    region_blocks,
                    ct_bytes,
                })
            }
            TAG_STP_TO_SDC => {
                let su_id = SuId(r.get_u32()?);
                let region_blocks = widen(r.get_u32()?);
                let (x_matrix, ct_bytes) = get_matrix(&mut r)?;
                PisaMessage::StpToSdc(StpToSdcMsg {
                    su_id,
                    x_matrix,
                    region_blocks,
                    ct_bytes,
                })
            }
            TAG_SDC_RESPONSE => {
                let su_id = SuId(r.get_u32()?);
                let issuer = String::from_utf8(r.get_bytes()?.to_vec())
                    .map_err(|e| CodecError::Invalid(format!("issuer not UTF-8: {e}")))?;
                let mut request_digest = [0u8; 32];
                request_digest.copy_from_slice(r.get_raw(32)?);
                let serial = r.get_u64()?;
                let ct_bytes = checked_ct_bytes(r.get_u32()?)?;
                let g_cipher = get_ciphertext(&mut r, ct_bytes)?;
                PisaMessage::SdcResponse(SdcResponseMsg {
                    license: License {
                        su_id,
                        issuer,
                        request_digest,
                        serial,
                    },
                    g_cipher,
                    ct_bytes,
                })
            }
            other => return Err(CodecError::BadTag(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

fn put_ciphertext(w: &mut Writer, ct: &Ciphertext, ct_bytes: usize) {
    w.put_raw(&ct.as_raw().to_be_bytes_padded(ct_bytes));
}

fn get_ciphertext(r: &mut Reader<'_>, ct_bytes: usize) -> Result<Ciphertext, CodecError> {
    Ok(Ciphertext::from_raw(Ubig::from_be_bytes(
        r.get_raw(ct_bytes)?,
    )))
}

fn put_matrix(w: &mut Writer, m: &CipherMatrix, ct_bytes: usize) -> Result<(), CodecError> {
    w.put_u32(wire_u32(m.channels())?);
    w.put_u32(wire_u32(m.blocks())?);
    w.put_u32(wire_u32(ct_bytes)?);
    for ct in m.ciphertexts() {
        put_ciphertext(w, ct, ct_bytes);
    }
    Ok(())
}

fn get_matrix(r: &mut Reader<'_>) -> Result<(CipherMatrix, usize), CodecError> {
    let channels = widen(r.get_u32()?);
    let blocks = widen(r.get_u32()?);
    let ct_bytes = checked_ct_bytes(r.get_u32()?)?;
    let entries = channels
        .checked_mul(blocks)
        .filter(|&n| n > 0 && n <= MAX_ENTRIES)
        .ok_or_else(|| CodecError::BadLength(channels.saturating_mul(blocks.max(1)) as u64))?;
    let cts = (0..entries)
        .map(|_| get_ciphertext(r, ct_bytes))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((
        CipherMatrix::from_ciphertexts(channels, blocks, cts),
        ct_bytes,
    ))
}

fn checked_ct_bytes(v: u32) -> Result<usize, CodecError> {
    let v = widen(v);
    if v == 0 || v > MAX_CT_BYTES {
        Err(CodecError::BadLength(v as u64))
    } else {
        Ok(v)
    }
}

/// Narrows a local count to the wire's fixed `u32` fields. Every count
/// written here is bounded far below `u32::MAX` by construction
/// (`MAX_ENTRIES`, `MAX_CT_BYTES`); if an impossible value ever slips
/// through, encoding fails loudly instead of emitting a corrupt frame
/// the peer would misparse.
pub(crate) fn wire_u32(v: usize) -> Result<u32, CodecError> {
    u32::try_from(v).map_err(|_| CodecError::BadLength(v as u64))
}

/// Widens a wire `u32` to `usize` — lossless on every supported host.
pub(crate) fn widen(v: u32) -> usize {
    v as usize // pisa-lint: allow(panic-freedom): u32 → usize never truncates
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_net::WireSize;

    fn ct(v: u64) -> Ciphertext {
        Ciphertext::from_raw(Ubig::from(v))
    }

    fn sample_messages() -> Vec<PisaMessage> {
        let matrix = CipherMatrix::from_ciphertexts(2, 3, (0..6).map(|i| ct(100 + i)).collect());
        vec![
            PisaMessage::PuUpdate(PuUpdateMsg {
                block: BlockId(7),
                w_column: (0..4).map(ct).collect(),
                ct_bytes: 64,
            }),
            PisaMessage::SuRequest(SuRequestMsg {
                su_id: SuId(3),
                f_matrix: matrix.clone(),
                region_blocks: 3,
                ct_bytes: 64,
            }),
            PisaMessage::SdcToStp(SdcToStpMsg {
                su_id: SuId(3),
                v_matrix: matrix.clone(),
                region_blocks: 3,
                ct_bytes: 64,
            }),
            PisaMessage::StpToSdc(StpToSdcMsg {
                su_id: SuId(3),
                x_matrix: matrix,
                region_blocks: 3,
                ct_bytes: 64,
            }),
            PisaMessage::SdcResponse(SdcResponseMsg {
                license: License {
                    su_id: SuId(3),
                    issuer: "sdc.example".into(),
                    request_digest: [0x5a; 32],
                    serial: 99,
                },
                g_cipher: ct(424242),
                ct_bytes: 64,
            }),
        ]
    }

    fn assert_same(a: &PisaMessage, b: &PisaMessage) {
        // Compare via re-encoding (messages don't implement PartialEq to
        // avoid accidental ciphertext comparisons in product code).
        assert_eq!(a.encode().unwrap(), b.encode().unwrap());
    }

    #[test]
    fn all_variants_roundtrip() {
        for msg in sample_messages() {
            let frame = msg.encode().unwrap();
            let decoded = PisaMessage::decode(&frame).expect("roundtrip");
            assert_same(&msg, &decoded);
        }
    }

    #[test]
    fn encoded_size_tracks_wire_size() {
        // WireSize budgets a fixed 64-byte header; actual framing is
        // leaner but every ciphertext is exactly ct_bytes on the wire.
        for msg in sample_messages() {
            let frame = msg.encode().unwrap();
            let budget = msg.wire_bytes();
            assert!(
                frame.len() <= budget,
                "frame {} > budget {budget}",
                frame.len()
            );
            assert!(
                frame.len() >= budget / 2,
                "frame {} too far below budget {budget}",
                frame.len()
            );
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut frame = sample_messages()[0].encode().unwrap().to_vec();
        frame[0] = 0xee;
        assert_eq!(
            PisaMessage::decode(&frame).unwrap_err(),
            CodecError::BadTag(0xee)
        );
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = sample_messages()[1].encode().unwrap();
        for cut in [1usize, 8, frame.len() / 2, frame.len() - 1] {
            assert!(
                PisaMessage::decode(&frame[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut frame = sample_messages()[0].encode().unwrap().to_vec();
        frame.push(0);
        assert!(matches!(
            PisaMessage::decode(&frame).unwrap_err(),
            CodecError::TrailingBytes(1)
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// Decoding never panics on arbitrary bytes — it returns an
        /// error or a structurally valid message.
        #[test]
        fn decode_never_panics(frame in proptest::collection::vec(
            proptest::prelude::any::<u8>(), 0..512,
        )) {
            let _ = PisaMessage::decode(&frame);
        }

        /// Mutating any single byte of a valid frame either still
        /// decodes (payload bytes are free) or errors — never panics.
        #[test]
        fn single_byte_corruption_is_safe(idx in 0usize..4096, val in proptest::prelude::any::<u8>()) {
            for msg in sample_messages() {
                let mut frame = msg.encode().unwrap().to_vec();
                let i = idx % frame.len();
                frame[i] = val;
                let _ = PisaMessage::decode(&frame);
            }
        }
    }

    #[test]
    fn implausible_dimensions_rejected() {
        // Hand-craft a SuRequest frame claiming a gigantic matrix.
        let mut w = Writer::new();
        w.put_u8(TAG_SU_REQUEST);
        w.put_u32(0); // su id
        w.put_u32(10); // region
        w.put_u32(u32::MAX); // channels
        w.put_u32(u32::MAX); // blocks
        w.put_u32(64); // ct bytes
        let frame = w.finish();
        assert!(PisaMessage::decode(&frame).is_err());
    }

    #[test]
    fn wire_u32_overflow_is_an_error() {
        // Regression: wire_u32 used to saturate to u32::MAX, silently
        // encoding a corrupt frame. Out-of-range counts must now fail.
        assert_eq!(wire_u32(12), Ok(12));
        assert_eq!(wire_u32(u32::MAX as usize), Ok(u32::MAX));
        let over = u32::MAX as u64 + 1;
        let Ok(over_usize) = usize::try_from(over) else {
            // 32-bit host: the overflow case is unrepresentable.
            return;
        };
        assert_eq!(wire_u32(over_usize), Err(CodecError::BadLength(over)));
    }

    #[test]
    fn encode_rejects_out_of_range_counts() {
        let Ok(huge) = usize::try_from(u32::MAX as u64 + 1) else {
            return;
        };
        // A region_blocks count that cannot fit a u32 wire field must
        // make encode fail instead of emitting a misparseable frame.
        let msg = PisaMessage::SuRequest(SuRequestMsg {
            su_id: SuId(1),
            f_matrix: CipherMatrix::from_ciphertexts(1, 1, vec![ct(5)]),
            region_blocks: huge,
            ct_bytes: 64,
        });
        assert_eq!(
            msg.encode().unwrap_err(),
            CodecError::BadLength(u32::MAX as u64 + 1)
        );
    }
}
