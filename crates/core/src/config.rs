//! System-wide configuration: WATCH parameters plus cryptographic
//! choices.

use pisa_watch::WatchConfig;

/// Full PISA configuration: the WATCH spectrum configuration plus key
/// sizes and blinding budgets.
///
/// # Examples
///
/// ```
/// use pisa::SystemConfig;
///
/// let paper = SystemConfig::paper();
/// assert_eq!(paper.watch().channels(), 100);
/// assert_eq!(paper.paillier_bits(), 2048);
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfig {
    watch: WatchConfig,
    paillier_bits: usize,
    blind_bits: usize,
    rsa_slack_bits: usize,
}

impl SystemConfig {
    /// Builds a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the blinding budget cannot fit the plaintext space:
    /// `blind_bits + value bits + margin` must stay below
    /// `paillier_bits − 1` (centered lift). See DESIGN.md, "Blinding
    /// ranges".
    pub fn new(
        watch: WatchConfig,
        paillier_bits: usize,
        blind_bits: usize,
        rsa_slack_bits: usize,
    ) -> Self {
        // |α·I − β| < 2^(blind_bits+1) · 2^value_bits + 2^blind_bits
        //           < 2^(blind_bits + value_bits + 2)
        // value bits: quantizer width + scalar X (≤ 8 bits) + PU count
        // headroom (≤ 8 bits).
        let value_bits = watch.quantizer().total_bits() as usize + 16;
        assert!(
            blind_bits + value_bits + 2 < paillier_bits - 1,
            "blinding budget {blind_bits}+{value_bits} bits does not fit \
             a {paillier_bits}-bit plaintext space"
        );
        SystemConfig {
            watch,
            paillier_bits,
            blind_bits,
            rsa_slack_bits,
        }
    }

    /// The paper's evaluation setting: Table I (C=100, B=600, 60-bit
    /// integers) with 2048-bit Paillier keys (112-bit security per NIST
    /// SP 800-57) and 512-bit blinding factors.
    pub fn paper() -> Self {
        SystemConfig::new(WatchConfig::paper(), 2048, 512, 64)
    }

    /// A scaled-down paper configuration for benchmarks that must finish
    /// in CI: same Table I spectrum shape, smaller keys.
    pub fn paper_scaled(paillier_bits: usize) -> Self {
        SystemConfig::new(WatchConfig::paper(), paillier_bits, 128, 64)
    }

    /// Tiny deterministic configuration for tests: 4 channels, 25
    /// blocks, 384-bit keys, 64-bit blinds.
    pub fn small_test() -> Self {
        SystemConfig::new(WatchConfig::small_test(), 384, 64, 64)
    }

    /// The WATCH spectrum configuration.
    pub fn watch(&self) -> &WatchConfig {
        &self.watch
    }

    /// Paillier modulus size in bits.
    pub fn paillier_bits(&self) -> usize {
        self.paillier_bits
    }

    /// Bit budget for the α/β blinding factors of eq. (14).
    pub fn blind_bits(&self) -> usize {
        self.blind_bits
    }

    /// How many bits below the SU's Paillier modulus the license-signing
    /// RSA modulus is generated (so signatures embed as plaintexts).
    pub fn rsa_slack_bits(&self) -> usize {
        self.rsa_slack_bits
    }

    /// Channels `C`.
    pub fn channels(&self) -> usize {
        self.watch.channels()
    }

    /// Blocks `B`.
    pub fn blocks(&self) -> usize {
        self.watch.blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings_match_table1() {
        let cfg = SystemConfig::paper();
        assert_eq!(cfg.channels(), 100);
        assert_eq!(cfg.blocks(), 600);
        assert_eq!(cfg.watch().quantizer().total_bits(), 60);
        assert_eq!(cfg.paillier_bits(), 2048);
    }

    #[test]
    fn small_test_is_consistent() {
        let cfg = SystemConfig::small_test();
        assert_eq!(cfg.channels(), 4);
        assert_eq!(cfg.blocks(), 25);
        assert!(cfg.blind_bits() + 78 < cfg.paillier_bits());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_blinding_rejected() {
        let _ = SystemConfig::new(WatchConfig::small_test(), 128, 64, 32);
    }
}
