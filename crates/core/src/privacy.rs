//! The SU location-privacy trade-off (§VI-A).

use crate::config::SystemConfig;
use serde::{Deserialize, Serialize};

/// How much of the service area an SU's request covers.
///
/// Full privacy ships a `C × B` encrypted matrix; revealing a coarse
/// region (e.g. "the north half of the map") lets the SU ship — and the
/// SDC process — a proportionally smaller matrix. The paper shows the
/// cost is asymptotically linear in the exposed region size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LocationPrivacy {
    /// The SDC learns nothing about the SU's position: the request
    /// covers every block.
    #[default]
    Full,
    /// The SDC learns the SU is inside the first `n` blocks (row-major
    /// prefix region).
    Region(usize),
}

impl LocationPrivacy {
    /// Number of blocks the request matrix covers under `cfg`.
    pub fn region_blocks(&self, cfg: &SystemConfig) -> usize {
        match self {
            LocationPrivacy::Full => cfg.blocks(),
            LocationPrivacy::Region(n) => (*n).min(cfg.blocks()),
        }
    }

    /// Fraction of the SU's location entropy still hidden (1.0 = full).
    pub fn privacy_level(&self, cfg: &SystemConfig) -> f64 {
        self.region_blocks(cfg) as f64 / cfg.blocks() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_covers_everything() {
        let cfg = SystemConfig::small_test();
        assert_eq!(LocationPrivacy::Full.region_blocks(&cfg), 25);
        assert_eq!(LocationPrivacy::Full.privacy_level(&cfg), 1.0);
    }

    #[test]
    fn region_clamps_to_area() {
        let cfg = SystemConfig::small_test();
        assert_eq!(LocationPrivacy::Region(10).region_blocks(&cfg), 10);
        assert_eq!(LocationPrivacy::Region(999).region_blocks(&cfg), 25);
        assert!((LocationPrivacy::Region(10).privacy_level(&cfg) - 0.4).abs() < 1e-12);
    }
}
