//! The secondary-user client.

use crate::cipher_matrix::{i128_to_ibig, CipherMatrix};
use crate::config::SystemConfig;
use crate::keys::SuId;
use crate::messages::{SdcResponseMsg, SuRequestMsg};
use crate::privacy::LocationPrivacy;
use pisa_crypto::paillier::{PaillierKeyPair, PaillierPublicKey};
use pisa_crypto::rsa::{RsaPublicKey, Signature};
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use pisa_watch::SuRequest;
use rand::Rng;

/// A secondary user: owns its own Paillier key pair `(pk_j, sk_j)`,
/// builds encrypted transmission requests, and is the *only* party able
/// to learn the decision (by decrypting `G̃` and checking the license
/// signature).
pub struct SuClient {
    id: SuId,
    block: BlockId,
    keys: PaillierKeyPair,
    privacy: LocationPrivacy,
    /// Cached encrypted request for cheap re-randomized refreshes
    /// (the paper's 221 s → 11 s trick).
    cached: Option<CipherMatrix>,
    /// Offline-precomputed `rⁿ` factors, one per cached entry.
    refresh_pool: Vec<pisa_crypto::paillier::Randomizer>,
}

impl std::fmt::Debug for SuClient {
    /// The block is the very datum PISA hides, so Debug output names the
    /// SU but redacts its location and key material.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SuClient {{ id: {}, block: <redacted>, sk: <redacted> }}",
            self.id
        )
    }
}

impl SuClient {
    /// Creates an SU at `block` with a fresh key pair of the configured
    /// size and full location privacy.
    pub fn new<R: Rng + ?Sized>(id: SuId, block: BlockId, cfg: &SystemConfig, rng: &mut R) -> Self {
        SuClient {
            id,
            block,
            keys: PaillierKeyPair::generate(rng, cfg.paillier_bits()),
            privacy: LocationPrivacy::Full,
            cached: None,
            refresh_pool: Vec::new(),
        }
    }

    /// This SU's id.
    pub fn id(&self) -> SuId {
        self.id
    }

    /// The SU's (private) block.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// The SU's public key `pk_j`, to be published to the STP.
    pub fn public_key(&self) -> &PaillierPublicKey {
        self.keys.public()
    }

    /// Sets the location-privacy level (invalidates the request cache).
    pub fn set_privacy(&mut self, privacy: LocationPrivacy) {
        self.privacy = privacy;
        self.cached = None;
        self.refresh_pool.clear();
    }

    /// Current privacy level.
    pub fn privacy(&self) -> LocationPrivacy {
        self.privacy
    }

    /// Builds a fresh encrypted transmission request for the given
    /// channels at the regulatory maximum EIRP (eq. 5 + encryption).
    ///
    /// # Panics
    ///
    /// Panics if the privacy region does not contain the SU's own block
    /// (the request must cover the blocks the SU actually interferes
    /// with).
    pub fn build_request<R: Rng + ?Sized>(
        &mut self,
        cfg: &SystemConfig,
        pk_g: &PaillierPublicKey,
        channels: &[Channel],
        rng: &mut R,
    ) -> SuRequestMsg {
        let request = SuRequest::full_power(cfg.watch(), self.block, channels);
        self.build_request_from(cfg, pk_g, &request, rng)
    }

    /// Builds a fresh encrypted request from an explicit plaintext
    /// request (arbitrary per-channel EIRP).
    pub fn build_request_from<R: Rng + ?Sized>(
        &mut self,
        cfg: &SystemConfig,
        pk_g: &PaillierPublicKey,
        request: &SuRequest,
        rng: &mut R,
    ) -> SuRequestMsg {
        let _span = pisa_obs::span("su.build_request");
        let region = self.privacy.region_blocks(cfg);
        assert!(
            self.block.0 < region,
            "privacy region of {region} blocks excludes the SU's own block {}",
            self.block.0
        );
        let f = request.f_matrix_restricted(cfg.watch(), region);
        // Encrypt only the covered region: C × region ciphertexts.
        let cts = (0..cfg.channels())
            .flat_map(|c| (0..region).map(move |b| (c, b)))
            .map(|(c, b)| pk_g.encrypt(&i128_to_ibig(f.get(c, b)), rng))
            .collect();
        let matrix = CipherMatrix::from_ciphertexts(cfg.channels(), region, cts);
        self.cached = Some(matrix.clone());
        SuRequestMsg {
            su_id: self.id,
            f_matrix: matrix,
            region_blocks: region,
            ct_bytes: pk_g.ciphertext_bytes(),
        }
    }

    /// Offline phase of the paper's request-refresh trick (§VI-A):
    /// precomputes one `rⁿ` factor per cached request entry, so the next
    /// [`refresh_request`](Self::refresh_request) pays only one modular
    /// multiplication per entry ("the same amount of time as homomorphic
    /// addition" — the 221 s → 11 s claim).
    ///
    /// # Panics
    ///
    /// Panics if no request was built yet.
    pub fn precompute_refresh<R: Rng + ?Sized>(&mut self, pk_g: &PaillierPublicKey, rng: &mut R) {
        let needed = self
            .cached
            .as_ref()
            .expect("precompute_refresh requires a previously built request")
            .len();
        self.refresh_pool.clear();
        self.refresh_pool
            .extend((0..needed).map(|_| pk_g.precompute_randomizer(rng)));
    }

    /// Like [`precompute_refresh`](Self::precompute_refresh), but draws the
    /// `rⁿ` factors from a shared [`RandomizerPool`] instead of computing
    /// them inline. The pool must be built for the *global* key `pk_g` —
    /// the cached request matrix is encrypted under it. Returns `false`
    /// (leaving the local factor stash untouched) when the pool is for a
    /// different key, no request was built yet, or the pool cannot cover a
    /// full refresh, so the caller can fall back to the online path.
    pub fn precompute_refresh_from(
        &mut self,
        pk_g: &PaillierPublicKey,
        pool: &pisa_crypto::paillier::RandomizerPool,
    ) -> bool {
        let Some(cached) = self.cached.as_ref() else {
            return false;
        };
        if pool.public_key() != pk_g {
            return false;
        }
        let needed = cached.len();
        if pool.len() < needed {
            return false;
        }
        let factors = pool.take_batch(needed);
        if factors.len() < needed {
            return false;
        }
        self.refresh_pool.clear();
        self.refresh_pool.extend(factors);
        true
    }

    /// Refreshes the cached request by re-randomization: the ciphertexts
    /// change, the plaintexts do not. With a pool from
    /// [`precompute_refresh`](Self::precompute_refresh) this is one
    /// multiplication per entry (online); without one it falls back to
    /// computing the `rⁿ` factors on the spot.
    ///
    /// # Panics
    ///
    /// Panics if no request was built yet.
    pub fn refresh_request<R: Rng + ?Sized>(
        &mut self,
        pk_g: &PaillierPublicKey,
        rng: &mut R,
    ) -> SuRequestMsg {
        let _span = pisa_obs::span("su.refresh_request");
        let cached = self
            .cached
            .as_ref()
            .expect("refresh_request requires a previously built request");
        let refreshed = if self.refresh_pool.len() >= cached.len() {
            let cts = cached
                .ciphertexts()
                .iter()
                .zip(self.refresh_pool.drain(..))
                .map(|(ct, factor)| pk_g.rerandomize_precomputed(ct, &factor))
                .collect();
            CipherMatrix::from_ciphertexts(cached.channels(), cached.blocks(), cts)
        } else {
            cached.rerandomize(pk_g, rng)
        };
        self.cached = Some(refreshed.clone());
        SuRequestMsg {
            su_id: self.id,
            region_blocks: refreshed.blocks(),
            f_matrix: refreshed,
            ct_bytes: pk_g.ciphertext_bytes(),
        }
    }

    /// Decrypts the SDC's response and checks the license: `true` iff
    /// the recovered signature verifies — i.e. the request was granted.
    ///
    /// No other party can perform this step: `G̃` is encrypted under
    /// `pk_j`.
    pub fn handle_response(&self, msg: &SdcResponseMsg, sdc_signing_key: &RsaPublicKey) -> bool {
        let _span = pisa_obs::span("su.verify_license");
        let plain = self.keys.secret().decrypt(&msg.g_cipher);
        // A valid signature is a non-negative integer below the RSA
        // modulus; a garbled one decodes to anything in the plaintext
        // space — reduce and try to verify, rejecting on mismatch.
        let candidate = Signature(plain.rem_euclid(sdc_signing_key.modulus()));
        msg.license.verify(sdc_signing_key, &candidate).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SystemConfig, PaillierKeyPair, SuClient, StdRng) {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = SystemConfig::small_test();
        let global = PaillierKeyPair::generate(&mut rng, 256);
        let su = SuClient::new(SuId(1), BlockId(7), &cfg, &mut rng);
        (cfg, global, su, rng)
    }

    #[test]
    fn request_covers_full_area_by_default() {
        let (cfg, global, mut su, mut rng) = setup();
        let msg = su.build_request(&cfg, global.public(), &[Channel(0)], &mut rng);
        assert_eq!(msg.region_blocks, cfg.blocks());
        assert_eq!(msg.f_matrix.len(), cfg.channels() * cfg.blocks());
    }

    #[test]
    fn request_decrypts_to_f_matrix() {
        let (cfg, global, mut su, mut rng) = setup();
        let msg = su.build_request(&cfg, global.public(), &[Channel(2)], &mut rng);
        let plain =
            SuRequest::full_power(cfg.watch(), BlockId(7), &[Channel(2)]).f_matrix(cfg.watch());
        let decrypted = msg.f_matrix.decrypt(global.secret());
        assert_eq!(decrypted, plain);
    }

    #[test]
    fn region_restriction_shrinks_matrix() {
        let (cfg, global, mut su, mut rng) = setup();
        su.set_privacy(LocationPrivacy::Region(10));
        let msg = su.build_request(&cfg, global.public(), &[Channel(0)], &mut rng);
        assert_eq!(msg.region_blocks, 10);
        assert_eq!(msg.f_matrix.len(), cfg.channels() * 10);
    }

    #[test]
    #[should_panic(expected = "excludes the SU's own block")]
    fn region_must_contain_su() {
        let (cfg, global, mut su, mut rng) = setup();
        su.set_privacy(LocationPrivacy::Region(3)); // SU is at block 7
        let _ = su.build_request(&cfg, global.public(), &[Channel(0)], &mut rng);
    }

    #[test]
    fn refresh_changes_ciphertexts_not_plaintexts() {
        let (cfg, global, mut su, mut rng) = setup();
        let first = su.build_request(&cfg, global.public(), &[Channel(1)], &mut rng);
        let refreshed = su.refresh_request(global.public(), &mut rng);
        assert_eq!(first.region_blocks, refreshed.region_blocks);
        for (a, b) in first
            .f_matrix
            .ciphertexts()
            .iter()
            .zip(refreshed.f_matrix.ciphertexts())
        {
            assert_ne!(a, b);
        }
        assert_eq!(
            first.f_matrix.decrypt(global.secret()),
            refreshed.f_matrix.decrypt(global.secret())
        );
    }

    #[test]
    fn pooled_refresh_matches_online_refresh_semantics() {
        let (cfg, global, mut su, mut rng) = setup();
        let first = su.build_request(&cfg, global.public(), &[Channel(0)], &mut rng);
        su.precompute_refresh(global.public(), &mut rng);
        let refreshed = su.refresh_request(global.public(), &mut rng);
        // Pool drained, plaintexts unchanged, ciphertexts fresh.
        for (a, b) in first
            .f_matrix
            .ciphertexts()
            .iter()
            .zip(refreshed.f_matrix.ciphertexts())
        {
            assert_ne!(a, b);
        }
        assert_eq!(
            first.f_matrix.decrypt(global.secret()),
            refreshed.f_matrix.decrypt(global.secret())
        );
        // A second refresh without a pool still works (online fallback).
        let again = su.refresh_request(global.public(), &mut rng);
        assert_eq!(
            again.f_matrix.decrypt(global.secret()),
            first.f_matrix.decrypt(global.secret())
        );
    }

    #[test]
    #[should_panic(expected = "previously built request")]
    fn refresh_without_request_panics() {
        let (_cfg, global, mut su, mut rng) = setup();
        let _ = su.refresh_request(global.public(), &mut rng);
    }
}
