//! # PISA — Privacy-preserving fine-grained spectrum access
//!
//! A full reproduction of *"When Smart TV Meets CRN: Privacy-Preserving
//! Fine-Grained Spectrum Access"* (ICDCS 2017): dynamic spectrum
//! allocation between primary TV receivers (PUs) and secondary WiFi
//! users (SUs) where the Spectrum Database Controller (SDC) computes the
//! allocation decision **over Paillier ciphertexts**, so that neither
//! the SDC nor the semi-trusted third party (STP) learns:
//!
//! * which channel any PU is watching,
//! * any SU's location, EIRP or antenna parameters, or
//! * whether a given SU's request was granted.
//!
//! ## Protocol in one paragraph
//!
//! PUs upload `W̃ᵢ = Enc(T − E)` columns under the global key; the SDC
//! aggregates them into the encrypted budget matrix `Ñ` (eqs. 8–10). An
//! SU requests by uploading its encrypted interference profile `F̃`
//! (eq. 5); the SDC forms `Ĩ = Ñ ⊖ X ⊗ F̃` (eqs. 11–12), blinds every
//! entry as `Ṽ = ε ⊗ (α ⊗ Ĩ ⊖ β̃)` (eq. 14) and ships it to the STP,
//! which decrypts only the blinded values, maps them to signs (eq. 15)
//! and re-encrypts under the SU's own key (key conversion). The SDC
//! unblinds homomorphically into `Q̃ ∈ {0, −2}` (eqs. 13, 16) and
//! releases `G̃ = S̃G ⊕ η ⊗ ΣQ̃` (eq. 17): the SU recovers a valid RSA
//! license signature exactly when every interference budget stayed
//! positive.
//!
//! ## Quickstart
//!
//! ```
//! use pisa::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let config = SystemConfig::small_test();
//! let mut system = PisaSystem::setup(config, &mut rng);
//!
//! // A PU tunes to channel 1; its update is encrypted end-to-end.
//! system.pu_update(0, BlockId(12), Some(Channel(1)), &mut rng);
//!
//! // An SU nearby asks for full power on the same channel: denied —
//! // and only the SU itself learns that.
//! let su = system.register_su(BlockId(13), &mut rng);
//! let outcome = system.request(su, &[Channel(1)], &mut rng);
//! assert!(!outcome.granted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adversary;
mod cipher_matrix;
mod config;
pub mod durable;
mod engine;
mod error;
mod keys;
mod license;
mod messages;
mod netstorm;
mod privacy;
mod protocol;
mod pu;
mod sdc;
mod session;
mod stp;
mod su;
mod system;
pub mod trace;
mod wire;

pub use cipher_matrix::CipherMatrix;
pub use config::SystemConfig;
pub use engine::{
    SdcSessionEngine, StpSessionEngine, SuAction, SuEvent, SuSessionEngine, SuSessionParams,
};
pub use error::PisaError;
pub use keys::{GlobalKeys, SuId, SuKeyDirectory};
pub use license::License;
pub use messages::{
    PisaMessage, PuUpdateMsg, SdcResponseMsg, SdcToStpMsg, StpToSdcMsg, SuRequestMsg,
};
pub use netstorm::{
    run_memory_baseline, run_su_storm, storm_fixture, DurableOpts, NetStormOpts, SdcService,
    StormFixture, StpService,
};
pub use privacy::LocationPrivacy;
pub use protocol::{
    run_concurrent_requests, run_request_direct, run_request_direct_tuned,
    run_request_over_network, NetworkRun, RequestOutcome,
};
pub use pu::PuClient;
pub use sdc::SdcServer;
pub use session::{
    corrupt_session_frame, run_storm, EngineConfig, EngineReport, SessionMsg, SessionOutcome,
};
pub use stp::StpServer;
pub use su::SuClient;
pub use system::PisaSystem;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::{
        CipherMatrix, GlobalKeys, License, LocationPrivacy, PisaSystem, PuClient, RequestOutcome,
        SdcServer, StpServer, SuClient, SuId, SystemConfig,
    };
    pub use pisa_radio::{tv::Channel, BlockId};
    pub use pisa_watch::{Decision, WatchConfig};
}
