//! Encrypted channel × block matrices.

use pisa_bigint::Ibig;
use pisa_crypto::paillier::{Ciphertext, PaillierPublicKey};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense `C × B` matrix of Paillier ciphertexts — the encrypted
/// counterpart of [`pisa_watch::IntMatrix`].
///
/// All operations take the public key explicitly so a matrix can be
/// moved between parties as plain data.
///
/// # Examples
///
/// ```
/// use pisa::CipherMatrix;
/// use pisa_crypto::paillier::PaillierKeyPair;
/// use pisa_watch::IntMatrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let kp = PaillierKeyPair::generate(&mut rng, 256);
/// let m = IntMatrix::from_fn(2, 2, |c, b| (c + b) as i128);
/// let enc = CipherMatrix::encrypt(&m, kp.public(), &mut rng);
/// let dec = enc.decrypt(kp.secret());
/// assert_eq!(dec, m);
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct CipherMatrix {
    channels: usize,
    blocks: usize,
    data: Vec<Ciphertext>,
}

impl CipherMatrix {
    /// Encrypts every entry of a plaintext matrix with fresh randomness.
    pub fn encrypt<R: rand::Rng + ?Sized>(
        m: &pisa_watch::IntMatrix,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> Self {
        CipherMatrix {
            channels: m.channels(),
            blocks: m.blocks(),
            data: m
                .as_slice()
                .iter()
                .map(|&v| pk.encrypt(&i128_to_ibig(v), rng))
                .collect(),
        }
    }

    /// Parallel variant of [`encrypt`](Self::encrypt): splits the
    /// entries across `threads` scoped workers. Randomness is derived
    /// *per entry* from a single draw on `rng`, so the output is
    /// byte-identical for any thread count (it differs from the
    /// sequential [`encrypt`](Self::encrypt), which streams `rng`
    /// entry by entry).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker panics.
    pub fn encrypt_parallel<R: rand::Rng + ?Sized>(
        m: &pisa_watch::IntMatrix,
        pk: &PaillierPublicKey,
        threads: usize,
        rng: &mut R,
    ) -> Self {
        let base = rng.next_u64();
        CipherMatrix {
            channels: m.channels(),
            blocks: m.blocks(),
            data: par_map(m.as_slice(), threads, |idx, &v| {
                let mut erng = crate::sdc::entry_rng(base, idx);
                pk.encrypt(&i128_to_ibig(v), &mut erng)
            }),
        }
    }

    /// Deterministic encryption (r = 1) for **public** matrices such as
    /// **E** — not semantically secure, used only where the paper treats
    /// the data as public knowledge.
    pub fn encrypt_public(m: &pisa_watch::IntMatrix, pk: &PaillierPublicKey) -> Self {
        CipherMatrix {
            channels: m.channels(),
            blocks: m.blocks(),
            data: m
                .as_slice()
                .iter()
                .map(|&v| pk.encrypt_public_constant(&i128_to_ibig(v)))
                .collect(),
        }
    }

    /// A matrix of trivial encryptions of zero (the ⊕-identity).
    pub fn zeros(channels: usize, blocks: usize, pk: &PaillierPublicKey) -> Self {
        CipherMatrix {
            channels,
            blocks,
            data: (0..channels * blocks).map(|_| pk.trivial_zero()).collect(),
        }
    }

    /// Builds a matrix from raw ciphertexts (row-major, channel-major).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * blocks`.
    pub fn from_ciphertexts(channels: usize, blocks: usize, data: Vec<Ciphertext>) -> Self {
        assert_eq!(data.len(), channels * blocks, "ciphertext count mismatch");
        CipherMatrix {
            channels,
            blocks,
            data,
        }
    }

    /// Channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Blocks `B`.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Number of ciphertexts.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix has no entries (never for valid dims).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry `(c, b)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, c: usize, b: usize) -> &Ciphertext {
        &self.data[self.index(c, b)]
    }

    /// Replaces entry `(c, b)`.
    pub fn set(&mut self, c: usize, b: usize, ct: Ciphertext) {
        let i = self.index(c, b);
        self.data[i] = ct;
    }

    /// The flat ciphertext storage (channel-major).
    pub fn ciphertexts(&self) -> &[Ciphertext] {
        &self.data
    }

    /// Element-wise homomorphic addition ⊕.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &CipherMatrix, pk: &PaillierPublicKey) -> CipherMatrix {
        self.zip(other, |a, b| pk.add(a, b))
    }

    /// Parallel ⊕ across `threads` scoped workers — same result as
    /// [`add`](Self::add) (the operation is deterministic), just fanned
    /// out row-wise for big matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, `threads == 0`, or a worker panic.
    pub fn add_parallel(
        &self,
        other: &CipherMatrix,
        pk: &PaillierPublicKey,
        threads: usize,
    ) -> CipherMatrix {
        self.check_shape(other);
        CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: par_map(&self.data, threads, |idx, a| pk.add(a, &other.data[idx])),
        }
    }

    /// Element-wise homomorphic subtraction ⊖. Fails on the first
    /// non-unit (adversarial) ciphertext in `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(
        &self,
        other: &CipherMatrix,
        pk: &PaillierPublicKey,
    ) -> Result<CipherMatrix, pisa_crypto::CryptoError> {
        self.try_zip(other, |a, b| pk.sub(a, b))
    }

    /// Parallel ⊖ across `threads` scoped workers; identical result to
    /// [`sub`](Self::sub), and like it fails on any non-unit
    /// (adversarial) ciphertext in `other` — every entry is checked, not
    /// just the ones before the first failure.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, `threads == 0`, or a worker panic.
    pub fn sub_parallel(
        &self,
        other: &CipherMatrix,
        pk: &PaillierPublicKey,
        threads: usize,
    ) -> Result<CipherMatrix, pisa_crypto::CryptoError> {
        self.check_shape(other);
        Ok(CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: par_map(&self.data, threads, |idx, a| pk.sub(a, &other.data[idx]))
                .into_iter()
                .collect::<Result<_, _>>()?,
        })
    }

    /// Scalar multiplication ⊗ of every entry by `k`. Fails on the first
    /// non-unit (adversarial) ciphertext when `k` is negative.
    pub fn scale(
        &self,
        k: &Ibig,
        pk: &PaillierPublicKey,
    ) -> Result<CipherMatrix, pisa_crypto::CryptoError> {
        Ok(CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self
                .data
                .iter()
                .map(|c| pk.scalar_mul(c, k))
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parallel ⊗ across `threads` scoped workers; identical result to
    /// [`scale`](Self::scale).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker panics.
    pub fn scale_parallel(
        &self,
        k: &Ibig,
        pk: &PaillierPublicKey,
        threads: usize,
    ) -> Result<CipherMatrix, pisa_crypto::CryptoError> {
        Ok(CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: par_map(&self.data, threads, |_, c| pk.scalar_mul(c, k))
                .into_iter()
                .collect::<Result<_, _>>()?,
        })
    }

    /// Re-randomizes every entry (the paper's cheap request refresh).
    pub fn rerandomize<R: rand::Rng + ?Sized>(
        &self,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> CipherMatrix {
        CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self.data.iter().map(|c| pk.rerandomize(c, rng)).collect(),
        }
    }

    /// Parallel re-randomization across `threads` scoped workers.
    /// Randomness is derived *per entry* from a single draw on `rng`, so
    /// the output is byte-identical for any thread count (it differs
    /// from the sequential [`rerandomize`](Self::rerandomize), which
    /// streams `rng` entry by entry).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker panics.
    pub fn rerandomize_parallel<R: rand::Rng + ?Sized>(
        &self,
        pk: &PaillierPublicKey,
        threads: usize,
        rng: &mut R,
    ) -> CipherMatrix {
        let base = rng.next_u64();
        CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: par_map(&self.data, threads, |idx, c| {
                let mut erng = crate::sdc::entry_rng(base, idx);
                pk.rerandomize(c, &mut erng)
            }),
        }
    }

    /// Decrypts every entry (test/diagnostic use by key holders).
    pub fn decrypt(&self, sk: &pisa_crypto::paillier::PaillierSecretKey) -> pisa_watch::IntMatrix {
        pisa_watch::IntMatrix::from_fn(self.channels, self.blocks, |c, b| {
            ibig_to_i128(&sk.decrypt(self.get(c, b)))
        })
    }

    /// Parallel decryption across `threads` scoped workers; identical
    /// result to [`decrypt`](Self::decrypt).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker panics.
    pub fn decrypt_parallel(
        &self,
        sk: &pisa_crypto::paillier::PaillierSecretKey,
        threads: usize,
    ) -> pisa_watch::IntMatrix {
        let plain = par_map(&self.data, threads, |_, c| ibig_to_i128(&sk.decrypt(c)));
        pisa_watch::IntMatrix::from_fn(self.channels, self.blocks, |c, b| {
            plain[c * self.blocks + b]
        })
    }

    /// Total serialized size in bytes: every ciphertext padded to the
    /// `n²` width (how the paper computes its 29 MB request size).
    pub fn wire_bytes(&self, pk: &PaillierPublicKey) -> usize {
        self.data.len() * pk.ciphertext_bytes()
    }

    fn index(&self, c: usize, b: usize) -> usize {
        assert!(
            c < self.channels && b < self.blocks,
            "index ({c}, {b}) out of {}x{} cipher matrix",
            self.channels,
            self.blocks
        );
        c * self.blocks + b
    }

    fn check_shape(&self, other: &CipherMatrix) {
        assert!(
            self.channels == other.channels && self.blocks == other.blocks,
            "cipher matrix shape mismatch"
        );
    }

    fn zip(
        &self,
        other: &CipherMatrix,
        f: impl Fn(&Ciphertext, &Ciphertext) -> Ciphertext,
    ) -> CipherMatrix {
        self.check_shape(other);
        CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        }
    }

    fn try_zip<E>(
        &self,
        other: &CipherMatrix,
        f: impl Fn(&Ciphertext, &Ciphertext) -> Result<Ciphertext, E>,
    ) -> Result<CipherMatrix, E> {
        self.check_shape(other);
        Ok(CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect::<Result<_, _>>()?,
        })
    }
}

impl fmt::Debug for CipherMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CipherMatrix({}x{})", self.channels, self.blocks)
    }
}

/// Fans `f` out over `items` on `threads` scoped workers, preserving
/// entry order. Entry `i` always receives index `i` regardless of which
/// chunk it lands in, so index-derived randomness is invariant under the
/// thread count. A worker panic is re-raised on the caller with its
/// original payload.
fn par_map<T: Sync, U: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(usize, &T) -> U + Sync,
) -> Vec<U> {
    assert!(threads > 0, "need at least one worker");
    let chunk_len = items.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(chunk_no, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(k, item)| f(chunk_no * chunk_len + k, item))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Converts a plaintext i128 into the signed big-integer domain.
pub(crate) fn i128_to_ibig(v: i128) -> Ibig {
    let magnitude = pisa_bigint::Ubig::from(v.unsigned_abs());
    let sign = if v < 0 {
        pisa_bigint::Sign::Negative
    } else {
        pisa_bigint::Sign::Positive
    };
    Ibig::from_sign_magnitude(sign, magnitude)
}

/// Converts back, panicking on overflow (plaintext domain values always
/// fit: quantizer width + headroom ≪ 127 bits).
pub(crate) fn ibig_to_i128(v: &Ibig) -> i128 {
    let mag = u128::try_from(v.magnitude()).expect("plaintext fits i128");
    let mag = i128::try_from(mag).expect("plaintext fits i128");
    if v.is_negative() {
        -mag
    } else {
        mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_crypto::paillier::PaillierKeyPair;
    use pisa_watch::IntMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kp() -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(10);
        PaillierKeyPair::generate(&mut rng, 256)
    }

    #[test]
    fn i128_ibig_roundtrip() {
        for v in [i128::MIN + 1, -1, 0, 1, i128::MAX] {
            assert_eq!(ibig_to_i128(&i128_to_ibig(v)), v);
        }
    }

    #[test]
    fn encrypt_decrypt_matrix() {
        let kp = kp();
        let mut rng = StdRng::seed_from_u64(11);
        let m = IntMatrix::from_fn(3, 4, |c, b| c as i128 * 100 - b as i128);
        let enc = CipherMatrix::encrypt(&m, kp.public(), &mut rng);
        assert_eq!(enc.decrypt(kp.secret()), m);
    }

    #[test]
    fn homomorphic_matrix_ops() {
        let kp = kp();
        let mut rng = StdRng::seed_from_u64(12);
        let a = IntMatrix::from_fn(2, 3, |c, b| (c * 3 + b) as i128);
        let b = IntMatrix::from_fn(2, 3, |_, _| 10);
        let ea = CipherMatrix::encrypt(&a, kp.public(), &mut rng);
        let eb = CipherMatrix::encrypt(&b, kp.public(), &mut rng);

        assert_eq!(ea.add(&eb, kp.public()).decrypt(kp.secret()), &a + &b);
        assert_eq!(
            ea.sub(&eb, kp.public()).unwrap().decrypt(kp.secret()),
            &a - &b
        );
        assert_eq!(
            ea.scale(&Ibig::from(-3i64), kp.public())
                .unwrap()
                .decrypt(kp.secret()),
            a.scale(-3)
        );
    }

    #[test]
    fn rerandomize_changes_every_ciphertext() {
        let kp = kp();
        let mut rng = StdRng::seed_from_u64(13);
        let m = IntMatrix::from_fn(2, 2, |_, _| 7);
        let enc = CipherMatrix::encrypt(&m, kp.public(), &mut rng);
        let re = enc.rerandomize(kp.public(), &mut rng);
        for (a, b) in enc.ciphertexts().iter().zip(re.ciphertexts()) {
            assert_ne!(a, b);
        }
        assert_eq!(re.decrypt(kp.secret()), m);
    }

    #[test]
    fn wire_bytes_scales_with_entries() {
        let kp = kp();
        let m = IntMatrix::zeros(4, 25);
        let enc = CipherMatrix::encrypt_public(&m, kp.public());
        assert_eq!(
            enc.wire_bytes(kp.public()),
            100 * kp.public().ciphertext_bytes()
        );
    }

    #[test]
    fn parallel_row_ops_match_sequential() {
        let kp = kp();
        let mut rng = StdRng::seed_from_u64(14);
        let a = IntMatrix::from_fn(3, 5, |c, b| c as i128 * 7 - b as i128 * 3);
        let b = IntMatrix::from_fn(3, 5, |_, b| b as i128 + 1);
        let ea = CipherMatrix::encrypt(&a, kp.public(), &mut rng);
        let eb = CipherMatrix::encrypt(&b, kp.public(), &mut rng);
        let k = Ibig::from(-5i64);
        for threads in [1usize, 2, 8] {
            assert_eq!(
                ea.add_parallel(&eb, kp.public(), threads).ciphertexts(),
                ea.add(&eb, kp.public()).ciphertexts(),
                "add, {threads} threads"
            );
            assert_eq!(
                ea.sub_parallel(&eb, kp.public(), threads)
                    .unwrap()
                    .ciphertexts(),
                ea.sub(&eb, kp.public()).unwrap().ciphertexts(),
                "sub, {threads} threads"
            );
            assert_eq!(
                ea.scale_parallel(&k, kp.public(), threads)
                    .unwrap()
                    .ciphertexts(),
                ea.scale(&k, kp.public()).unwrap().ciphertexts(),
                "scale, {threads} threads"
            );
            assert_eq!(
                ea.decrypt_parallel(kp.secret(), threads),
                a,
                "decrypt, {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_encrypt_and_rerandomize_are_thread_count_invariant() {
        let kp = kp();
        let m = IntMatrix::from_fn(2, 6, |c, b| (c * 6 + b) as i128);
        let one =
            CipherMatrix::encrypt_parallel(&m, kp.public(), 1, &mut StdRng::seed_from_u64(15));
        for threads in [2usize, 8] {
            let many = CipherMatrix::encrypt_parallel(
                &m,
                kp.public(),
                threads,
                &mut StdRng::seed_from_u64(15),
            );
            assert_eq!(one.ciphertexts(), many.ciphertexts(), "{threads} threads");
        }
        assert_eq!(one.decrypt(kp.secret()), m);

        let re_one = one.rerandomize_parallel(kp.public(), 1, &mut StdRng::seed_from_u64(16));
        for threads in [2usize, 8] {
            let re_many =
                one.rerandomize_parallel(kp.public(), threads, &mut StdRng::seed_from_u64(16));
            assert_eq!(
                re_one.ciphertexts(),
                re_many.ciphertexts(),
                "{threads} threads"
            );
        }
        for (a, b) in one.ciphertexts().iter().zip(re_one.ciphertexts()) {
            assert_ne!(a, b, "rerandomize must change every ciphertext");
        }
        assert_eq!(re_one.decrypt(kp.secret()), m);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let kp = kp();
        let a = CipherMatrix::zeros(2, 2, kp.public());
        let b = CipherMatrix::zeros(2, 3, kp.public());
        let _ = a.add(&b, kp.public());
    }
}
