//! Encrypted channel × block matrices.

use pisa_bigint::Ibig;
use pisa_crypto::paillier::{Ciphertext, PaillierPublicKey};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense `C × B` matrix of Paillier ciphertexts — the encrypted
/// counterpart of [`pisa_watch::IntMatrix`].
///
/// All operations take the public key explicitly so a matrix can be
/// moved between parties as plain data.
///
/// # Examples
///
/// ```
/// use pisa::CipherMatrix;
/// use pisa_crypto::paillier::PaillierKeyPair;
/// use pisa_watch::IntMatrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let kp = PaillierKeyPair::generate(&mut rng, 256);
/// let m = IntMatrix::from_fn(2, 2, |c, b| (c + b) as i128);
/// let enc = CipherMatrix::encrypt(&m, kp.public(), &mut rng);
/// let dec = enc.decrypt(kp.secret());
/// assert_eq!(dec, m);
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct CipherMatrix {
    channels: usize,
    blocks: usize,
    data: Vec<Ciphertext>,
}

impl CipherMatrix {
    /// Encrypts every entry of a plaintext matrix with fresh randomness.
    pub fn encrypt<R: rand::Rng + ?Sized>(
        m: &pisa_watch::IntMatrix,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> Self {
        CipherMatrix {
            channels: m.channels(),
            blocks: m.blocks(),
            data: m
                .as_slice()
                .iter()
                .map(|&v| pk.encrypt(&i128_to_ibig(v), rng))
                .collect(),
        }
    }

    /// Deterministic encryption (r = 1) for **public** matrices such as
    /// **E** — not semantically secure, used only where the paper treats
    /// the data as public knowledge.
    pub fn encrypt_public(m: &pisa_watch::IntMatrix, pk: &PaillierPublicKey) -> Self {
        CipherMatrix {
            channels: m.channels(),
            blocks: m.blocks(),
            data: m
                .as_slice()
                .iter()
                .map(|&v| pk.encrypt_public_constant(&i128_to_ibig(v)))
                .collect(),
        }
    }

    /// A matrix of trivial encryptions of zero (the ⊕-identity).
    pub fn zeros(channels: usize, blocks: usize, pk: &PaillierPublicKey) -> Self {
        CipherMatrix {
            channels,
            blocks,
            data: (0..channels * blocks).map(|_| pk.trivial_zero()).collect(),
        }
    }

    /// Builds a matrix from raw ciphertexts (row-major, channel-major).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * blocks`.
    pub fn from_ciphertexts(channels: usize, blocks: usize, data: Vec<Ciphertext>) -> Self {
        assert_eq!(data.len(), channels * blocks, "ciphertext count mismatch");
        CipherMatrix {
            channels,
            blocks,
            data,
        }
    }

    /// Channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Blocks `B`.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Number of ciphertexts.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix has no entries (never for valid dims).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry `(c, b)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, c: usize, b: usize) -> &Ciphertext {
        &self.data[self.index(c, b)]
    }

    /// Replaces entry `(c, b)`.
    pub fn set(&mut self, c: usize, b: usize, ct: Ciphertext) {
        let i = self.index(c, b);
        self.data[i] = ct;
    }

    /// The flat ciphertext storage (channel-major).
    pub fn ciphertexts(&self) -> &[Ciphertext] {
        &self.data
    }

    /// Element-wise homomorphic addition ⊕.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &CipherMatrix, pk: &PaillierPublicKey) -> CipherMatrix {
        self.zip(other, |a, b| pk.add(a, b))
    }

    /// Element-wise homomorphic subtraction ⊖. Fails on the first
    /// non-unit (adversarial) ciphertext in `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(
        &self,
        other: &CipherMatrix,
        pk: &PaillierPublicKey,
    ) -> Result<CipherMatrix, pisa_crypto::CryptoError> {
        self.try_zip(other, |a, b| pk.sub(a, b))
    }

    /// Scalar multiplication ⊗ of every entry by `k`. Fails on the first
    /// non-unit (adversarial) ciphertext when `k` is negative.
    pub fn scale(
        &self,
        k: &Ibig,
        pk: &PaillierPublicKey,
    ) -> Result<CipherMatrix, pisa_crypto::CryptoError> {
        Ok(CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self
                .data
                .iter()
                .map(|c| pk.scalar_mul(c, k))
                .collect::<Result<_, _>>()?,
        })
    }

    /// Re-randomizes every entry (the paper's cheap request refresh).
    pub fn rerandomize<R: rand::Rng + ?Sized>(
        &self,
        pk: &PaillierPublicKey,
        rng: &mut R,
    ) -> CipherMatrix {
        CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self.data.iter().map(|c| pk.rerandomize(c, rng)).collect(),
        }
    }

    /// Decrypts every entry (test/diagnostic use by key holders).
    pub fn decrypt(&self, sk: &pisa_crypto::paillier::PaillierSecretKey) -> pisa_watch::IntMatrix {
        pisa_watch::IntMatrix::from_fn(self.channels, self.blocks, |c, b| {
            ibig_to_i128(&sk.decrypt(self.get(c, b)))
        })
    }

    /// Total serialized size in bytes: every ciphertext padded to the
    /// `n²` width (how the paper computes its 29 MB request size).
    pub fn wire_bytes(&self, pk: &PaillierPublicKey) -> usize {
        self.data.len() * pk.ciphertext_bytes()
    }

    fn index(&self, c: usize, b: usize) -> usize {
        assert!(
            c < self.channels && b < self.blocks,
            "index ({c}, {b}) out of {}x{} cipher matrix",
            self.channels,
            self.blocks
        );
        c * self.blocks + b
    }

    fn zip(
        &self,
        other: &CipherMatrix,
        f: impl Fn(&Ciphertext, &Ciphertext) -> Ciphertext,
    ) -> CipherMatrix {
        assert!(
            self.channels == other.channels && self.blocks == other.blocks,
            "cipher matrix shape mismatch"
        );
        CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        }
    }

    fn try_zip<E>(
        &self,
        other: &CipherMatrix,
        f: impl Fn(&Ciphertext, &Ciphertext) -> Result<Ciphertext, E>,
    ) -> Result<CipherMatrix, E> {
        assert!(
            self.channels == other.channels && self.blocks == other.blocks,
            "cipher matrix shape mismatch"
        );
        Ok(CipherMatrix {
            channels: self.channels,
            blocks: self.blocks,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect::<Result<_, _>>()?,
        })
    }
}

impl fmt::Debug for CipherMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CipherMatrix({}x{})", self.channels, self.blocks)
    }
}

/// Converts a plaintext i128 into the signed big-integer domain.
pub(crate) fn i128_to_ibig(v: i128) -> Ibig {
    let magnitude = pisa_bigint::Ubig::from(v.unsigned_abs());
    let sign = if v < 0 {
        pisa_bigint::Sign::Negative
    } else {
        pisa_bigint::Sign::Positive
    };
    Ibig::from_sign_magnitude(sign, magnitude)
}

/// Converts back, panicking on overflow (plaintext domain values always
/// fit: quantizer width + headroom ≪ 127 bits).
pub(crate) fn ibig_to_i128(v: &Ibig) -> i128 {
    let mag = u128::try_from(v.magnitude()).expect("plaintext fits i128");
    let mag = i128::try_from(mag).expect("plaintext fits i128");
    if v.is_negative() {
        -mag
    } else {
        mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_crypto::paillier::PaillierKeyPair;
    use pisa_watch::IntMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kp() -> PaillierKeyPair {
        let mut rng = StdRng::seed_from_u64(10);
        PaillierKeyPair::generate(&mut rng, 256)
    }

    #[test]
    fn i128_ibig_roundtrip() {
        for v in [i128::MIN + 1, -1, 0, 1, i128::MAX] {
            assert_eq!(ibig_to_i128(&i128_to_ibig(v)), v);
        }
    }

    #[test]
    fn encrypt_decrypt_matrix() {
        let kp = kp();
        let mut rng = StdRng::seed_from_u64(11);
        let m = IntMatrix::from_fn(3, 4, |c, b| c as i128 * 100 - b as i128);
        let enc = CipherMatrix::encrypt(&m, kp.public(), &mut rng);
        assert_eq!(enc.decrypt(kp.secret()), m);
    }

    #[test]
    fn homomorphic_matrix_ops() {
        let kp = kp();
        let mut rng = StdRng::seed_from_u64(12);
        let a = IntMatrix::from_fn(2, 3, |c, b| (c * 3 + b) as i128);
        let b = IntMatrix::from_fn(2, 3, |_, _| 10);
        let ea = CipherMatrix::encrypt(&a, kp.public(), &mut rng);
        let eb = CipherMatrix::encrypt(&b, kp.public(), &mut rng);

        assert_eq!(ea.add(&eb, kp.public()).decrypt(kp.secret()), &a + &b);
        assert_eq!(
            ea.sub(&eb, kp.public()).unwrap().decrypt(kp.secret()),
            &a - &b
        );
        assert_eq!(
            ea.scale(&Ibig::from(-3i64), kp.public())
                .unwrap()
                .decrypt(kp.secret()),
            a.scale(-3)
        );
    }

    #[test]
    fn rerandomize_changes_every_ciphertext() {
        let kp = kp();
        let mut rng = StdRng::seed_from_u64(13);
        let m = IntMatrix::from_fn(2, 2, |_, _| 7);
        let enc = CipherMatrix::encrypt(&m, kp.public(), &mut rng);
        let re = enc.rerandomize(kp.public(), &mut rng);
        for (a, b) in enc.ciphertexts().iter().zip(re.ciphertexts()) {
            assert_ne!(a, b);
        }
        assert_eq!(re.decrypt(kp.secret()), m);
    }

    #[test]
    fn wire_bytes_scales_with_entries() {
        let kp = kp();
        let m = IntMatrix::zeros(4, 25);
        let enc = CipherMatrix::encrypt_public(&m, kp.public());
        assert_eq!(
            enc.wire_bytes(kp.public()),
            100 * kp.public().ciphertext_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let kp = kp();
        let a = CipherMatrix::zeros(2, 2, kp.public());
        let b = CipherMatrix::zeros(2, 3, kp.public());
        let _ = a.add(&b, kp.public());
    }
}
