//! The primary-user (TV receiver) client.

use crate::config::SystemConfig;
use crate::messages::PuUpdateMsg;
use pisa_crypto::paillier::PaillierPublicKey;
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use pisa_watch::{IntMatrix, PuInput};
use rand::Rng;

/// A TV receiver participating in PISA.
///
/// The PU's block is public (TV receiver locations are fixed and
/// registered, §III-D); the *tuned channel* is the private datum. Every
/// channel change produces an encrypted update of `C` ciphertexts
/// (paper Figure 4) — one per channel, so the SDC cannot tell which
/// entry is live.
#[derive(Debug)]
pub struct PuClient {
    id: u64,
    block: BlockId,
    tuned: Option<Channel>,
}

impl PuClient {
    /// A PU registered at `block`, initially off.
    pub fn new(id: u64, block: BlockId) -> Self {
        PuClient {
            id,
            block,
            tuned: None,
        }
    }

    /// This PU's registration id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The (public) block.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// The (private) tuned channel.
    pub fn tuned(&self) -> Option<Channel> {
        self.tuned
    }

    /// Tunes to `channel` (or off) and builds the encrypted update for
    /// the SDC: `W̃(k, i) = Enc(T(k,i) − E(k,i))` for the tuned entry,
    /// `Enc(0)` for every other channel (eq. 9's comparison-free
    /// encoding).
    ///
    /// All `C` entries are freshly encrypted — an eavesdropper (or the
    /// SDC) sees `C` indistinguishable ciphertexts.
    pub fn tune<R: Rng + ?Sized>(
        &mut self,
        channel: Option<Channel>,
        cfg: &SystemConfig,
        e: &IntMatrix,
        pk_g: &PaillierPublicKey,
        rng: &mut R,
    ) -> PuUpdateMsg {
        self.tuned = channel;
        let input = match channel {
            Some(c) => PuInput::tuned(cfg.watch(), self.block, c),
            None => PuInput::off(self.block),
        };
        let w_column = input.w_column(cfg.watch(), e);
        let ciphertexts = w_column
            .iter()
            .map(|&v| pk_g.encrypt(&crate::cipher_matrix::i128_to_ibig(v), rng))
            .collect();
        PuUpdateMsg {
            block: self.block,
            w_column: ciphertexts,
            ct_bytes: pk_g.ciphertext_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_watch::compute_e_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        SystemConfig,
        IntMatrix,
        pisa_crypto::paillier::PaillierKeyPair,
    ) {
        let cfg = SystemConfig::small_test();
        let e = compute_e_matrix(cfg.watch());
        let mut rng = StdRng::seed_from_u64(1);
        let kp = pisa_crypto::paillier::PaillierKeyPair::generate(&mut rng, 256);
        (cfg, e, kp)
    }

    #[test]
    fn update_has_one_ciphertext_per_channel() {
        let (cfg, e, kp) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut pu = PuClient::new(0, BlockId(3));
        let msg = pu.tune(Some(Channel(1)), &cfg, &e, kp.public(), &mut rng);
        assert_eq!(msg.w_column.len(), cfg.channels());
        assert_eq!(pu.tuned(), Some(Channel(1)));
    }

    #[test]
    fn update_decrypts_to_w_column() {
        let (cfg, e, kp) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut pu = PuClient::new(0, BlockId(3));
        let msg = pu.tune(Some(Channel(2)), &cfg, &e, kp.public(), &mut rng);
        let expected =
            PuInput::tuned(cfg.watch(), BlockId(3), Channel(2)).w_column(cfg.watch(), &e);
        for (ct, want) in msg.w_column.iter().zip(expected) {
            let got = crate::cipher_matrix::ibig_to_i128(&kp.secret().decrypt(ct));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn off_update_is_all_zeros() {
        let (cfg, e, kp) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut pu = PuClient::new(0, BlockId(3));
        pu.tune(Some(Channel(1)), &cfg, &e, kp.public(), &mut rng);
        let msg = pu.tune(None, &cfg, &e, kp.public(), &mut rng);
        for ct in &msg.w_column {
            assert!(kp.secret().decrypt(ct).is_zero());
        }
        assert_eq!(pu.tuned(), None);
    }

    #[test]
    fn ciphertexts_are_indistinguishable_fresh() {
        // Two consecutive identical tunes produce different ciphertexts.
        let (cfg, e, kp) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut pu = PuClient::new(0, BlockId(3));
        let a = pu.tune(Some(Channel(1)), &cfg, &e, kp.public(), &mut rng);
        let b = pu.tune(Some(Channel(1)), &cfg, &e, kp.public(), &mut rng);
        for (x, y) in a.w_column.iter().zip(&b.w_column) {
            assert_ne!(x, y);
        }
    }
}
