//! Networked storm: SDC, STP and the SU swarm as three real processes.
//!
//! [`run_storm`](crate::run_storm) keeps every party in one address
//! space; this module runs the *same* session engines over the framed
//! TCP transport in [`pisa_net::socket`], so a storm can execute as
//! three OS processes on loopback or across hosts:
//!
//! ```text
//!   pisa serve-stp  --listen 127.0.0.1:7002
//!   pisa serve-sdc  --listen 127.0.0.1:7001 --stp 127.0.0.1:7002
//!   pisa su         --sdc 127.0.0.1:7001 --sessions 16
//! ```
//!
//! All three processes derive the *entire system state* — keys, the PU
//! occupancy, every SU registration — from the same `(sessions, seed)`
//! pair via [`storm_fixture`], so no key distribution protocol is
//! needed for the reproduction: determinism is the key exchange. The
//! engine seeds match [`run_storm`](crate::run_storm) exactly
//! (`seed ^ 0x5dc` for the SDC, `seed ^ 0x517` for the STP,
//! `seed ^ (0x50 + i)` for SU *i*), so a networked storm reaches the
//! same grant/deny decisions as the in-memory engine on the same seed —
//! [`run_memory_baseline`] recomputes that reference for `--verify`.
//!
//! Fault injection ports to the socket layer unchanged: each process
//! installs [`SocketFaults`] on its *outbound* traffic, which covers
//! every directed link exactly once (SU→SDC in the SU process, SDC→STP
//! and SDC→SU in the SDC process, STP→SDC in the STP process).
//!
//! Shutdown is in-band and cascades: `pisa su --halt` sends a shutdown
//! frame to the SDC once its sessions are done; the SDC forwards it to
//! the STP and both service loops drain out.

use crate::durable::{
    self, Checkpoint, SDC_CHECKPOINT_FILE, SECTION_SDC_SESSIONS, SECTION_SDC_SNAPSHOT,
    SECTION_STP_DIRECTORY, STP_CHECKPOINT_FILE,
};
use crate::engine::{
    SdcSessionEngine, StpSessionEngine, SuAction, SuEvent, SuSessionEngine, SuSessionParams,
};
use crate::error::PisaError;
use crate::keys::SuId;
use crate::sdc::SdcServer;
use crate::session::{run_storm, EngineConfig, EngineReport, SessionMsg, SessionOutcome};
use crate::stp::StpServer;
use crate::su::SuClient;
use crate::SystemConfig;
use pisa_crypto::paillier::PaillierPublicKey;
use pisa_net::{
    FaultConfig, NetMetrics, Party, SocketConfig, SocketError, SocketEvent, SocketFaults,
    SocketNode,
};
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;

/// Everything a networked storm role needs to reconstruct the shared
/// system state and its own behaviour.
#[derive(Debug, Clone)]
pub struct NetStormOpts {
    /// Number of SU sessions in the storm (all three processes must
    /// agree — the servers derive per-SU keys from it).
    pub sessions: u32,
    /// Storm seed: system keys, engines and faults all derive from it.
    pub seed: u64,
    /// Timeout / retry / worker policy, as for the in-memory engine.
    pub engine: EngineConfig,
    /// Socket-layer fault injection for this process's outbound links
    /// (`None` = clean network).
    pub faults: Option<FaultConfig>,
    /// Transport tuning knobs.
    pub socket: SocketConfig,
    /// Checkpoint / crash-recovery policy (no-op by default).
    pub durable: DurableOpts,
}

/// Checkpoint / crash-recovery policy for the networked services.
#[derive(Debug, Clone)]
pub struct DurableOpts {
    /// Directory for checkpoint files (`None` disables durability).
    pub state_dir: Option<PathBuf>,
    /// Write a checkpoint after every N handled frames (clamped to at
    /// least 1); a final checkpoint is also forced at shutdown.
    pub checkpoint_every: u64,
    /// Load the checkpoint from `state_dir` at startup and resume
    /// mid-protocol instead of starting from the fixture state.
    pub resume: bool,
}

impl Default for DurableOpts {
    fn default() -> Self {
        DurableOpts {
            state_dir: None,
            checkpoint_every: 1,
            resume: false,
        }
    }
}

impl NetStormOpts {
    /// Defaults mirroring `run_storm`'s: `sessions` SUs on a clean
    /// network with the stock engine policy.
    pub fn new(sessions: u32, seed: u64) -> Self {
        NetStormOpts {
            sessions,
            seed,
            engine: EngineConfig::default(),
            faults: None,
            socket: SocketConfig::default(),
            durable: DurableOpts::default(),
        }
    }

    fn socket_faults(&self, metrics: &NetMetrics) -> Option<Arc<SocketFaults>> {
        self.faults
            .clone()
            .map(|config| Arc::new(SocketFaults::new(config, metrics.clone())))
    }
}

/// The deterministic storm scenario shared by every process: one PU on
/// channel 0 at block 0 (so sessions near it get denied and the storm
/// exercises both decisions), `sessions` SUs spread over the blocks and
/// channels, all registered with the STP.
#[derive(Debug)]
pub struct StormFixture {
    /// The SU clients with their requested channels.
    pub sus: Vec<(SuClient, Vec<Channel>)>,
    /// The SDC, already holding the PU's encrypted update.
    pub sdc: SdcServer,
    /// The STP, with every SU registered.
    pub stp: StpServer,
}

impl StormFixture {
    /// Per-SU public keys, as the SDC engine needs them.
    ///
    /// # Errors
    ///
    /// [`PisaError::UnknownSu`] if an SU was not registered — cannot
    /// happen for a fixture built by [`storm_fixture`].
    pub fn su_keys(&self) -> Result<HashMap<SuId, PaillierPublicKey>, PisaError> {
        self.sus
            .iter()
            .map(|(su, _)| {
                let pk = self
                    .stp
                    .su_key(su.id())
                    .ok_or(PisaError::UnknownSu(su.id()))?
                    .clone();
                Ok((su.id(), pk))
            })
            .collect()
    }
}

/// Builds the storm scenario every role derives from `(sessions, seed)`.
///
/// This must stay byte-identical across processes — all randomness
/// comes from one `StdRng` seeded with `seed`, consumed in a fixed
/// order — or the three trust domains would disagree about keys.
///
/// # Errors
///
/// Any [`PisaError`] from ingesting the PU update (dimension mismatch
/// or adversarial ciphertext — impossible for this fixed scenario).
pub fn storm_fixture(sessions: u32, seed: u64) -> Result<StormFixture, PisaError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SystemConfig::small_test();
    let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let mut sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.storm", &mut rng);

    let mut pu = crate::PuClient::new(0, BlockId(0));
    let e = sdc.e_matrix().clone();
    let update = pu.tune(Some(Channel(0)), &cfg, &e, stp.public_key(), &mut rng);
    sdc.handle_pu_update(pu.id(), update)?;

    let sus = (0..sessions)
        .map(|i| {
            let idx = crate::wire::widen(i);
            let su = SuClient::new(SuId(i), BlockId(idx % cfg.blocks()), &cfg, &mut rng);
            stp.register_su(su.id(), su.public_key().clone());
            (su, vec![Channel(idx % cfg.channels())])
        })
        .collect();
    Ok(StormFixture { sus, sdc, stp })
}

fn net_err(e: SocketError) -> PisaError {
    PisaError::Net(e.to_string())
}

/// The SDC as a networked service: listens for SU traffic, dials the
/// STP, and pumps frames through the [`SdcSessionEngine`].
pub struct SdcService {
    node: SocketNode<SessionMsg>,
    machine: SdcSessionEngine,
    poll: std::time::Duration,
    durable: DurableOpts,
    generation: u64,
    handled: u64,
}

impl SdcService {
    /// Reconstructs the fixture, binds `listen` and prepares the
    /// engine; `stp_addr` is dialed lazily on the first forward.
    ///
    /// With `opts.durable.resume`, the checkpoint in
    /// `opts.durable.state_dir` is loaded instead of starting from the
    /// fixture state: the matrix, contributions, pending ε vectors and
    /// the per-session protocol table all come back, and the engine RNG
    /// is reseeded per generation (see [`durable::resume_seed`]) so the
    /// resumed process never replays pre-crash Paillier randomness.
    ///
    /// # Errors
    ///
    /// [`PisaError::Net`] if the listener cannot bind,
    /// [`PisaError::Durable`] if resume was requested but the
    /// checkpoint is missing or invalid, or any fixture construction
    /// error.
    pub fn bind(opts: &NetStormOpts, listen: &str, stp_addr: &str) -> Result<Self, PisaError> {
        let fixture = storm_fixture(opts.sessions, opts.seed)?;
        let su_keys = fixture.su_keys()?;
        let metrics = NetMetrics::new();
        let faults = opts.socket_faults(&metrics);
        let node: SocketNode<SessionMsg> =
            SocketNode::new(Party::Sdc, opts.socket.clone(), metrics.clone(), faults);
        node.add_peer(Party::Stp, stp_addr);
        node.bind(listen).map_err(net_err)?;

        let mut generation = 0u64;
        let machine = if opts.durable.resume {
            let dir = opts
                .durable
                .state_dir
                .as_deref()
                .ok_or_else(|| PisaError::Durable("resume requires a state dir".into()))?;
            let ckpt = durable::load(&dir.join(SDC_CHECKPOINT_FILE))?;
            let snap = ckpt.section(SECTION_SDC_SNAPSHOT).ok_or_else(|| {
                PisaError::Durable("checkpoint has no SDC snapshot section".into())
            })?;
            let sdc = SdcServer::restore(
                fixture.sdc.config().clone(),
                fixture.stp.public_key().clone(),
                snap,
            )
            .map_err(|e| PisaError::Durable(format!("SDC snapshot invalid: {e}")))?;
            let mut machine = SdcSessionEngine::new(
                sdc,
                su_keys,
                opts.engine.workers,
                metrics,
                durable::resume_seed(opts.seed ^ 0x5dc, ckpt.generation()),
            );
            if let Some(table) = ckpt.section(SECTION_SDC_SESSIONS) {
                machine
                    .restore_sessions(table)
                    .map_err(|e| PisaError::Durable(format!("session table invalid: {e}")))?;
            }
            generation = ckpt.generation() + 1;
            machine
        } else {
            SdcSessionEngine::new(
                fixture.sdc,
                su_keys,
                opts.engine.workers,
                metrics,
                opts.seed ^ 0x5dc,
            )
        };
        Ok(SdcService {
            node,
            machine,
            poll: opts.engine.poll,
            durable: opts.durable.clone(),
            generation,
            handled: 0,
        })
    }

    /// The bound listen address (useful with a `:0` ephemeral port).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.node.local_addr()
    }

    /// The generation the next checkpoint will be written at (starts
    /// above the resumed checkpoint's generation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Serves until a shutdown frame arrives (which is forwarded to the
    /// STP so the whole deployment drains), then returns the server
    /// with its final state. With a state dir configured, a checkpoint
    /// is written every `checkpoint_every` handled frames and once more
    /// at shutdown.
    pub fn run(mut self) -> SdcServer {
        loop {
            match self.node.recv_timeout(self.poll) {
                Some(SocketEvent::Frame(env)) => {
                    for (to, frame) in self.machine.handle(env.payload) {
                        // A failed reply is a lost frame: the SU's retry
                        // budget covers it, exactly as with drop faults.
                        let _ = self.node.send_from(Party::Sdc, to, &frame);
                    }
                    self.handled += 1;
                    self.maybe_checkpoint(false);
                }
                Some(SocketEvent::Shutdown(_)) => {
                    let _ = self.node.send_shutdown(Party::Stp);
                    self.maybe_checkpoint(true);
                    break;
                }
                None => {
                    if self.node.stopping() {
                        self.maybe_checkpoint(true);
                        break;
                    }
                }
            }
        }
        self.node.stop();
        self.machine.into_server()
    }

    /// Writes a checkpoint if one is due (or `force`d). A failed write
    /// leaves the previous checkpoint intact and the service keeps
    /// serving — durability degrades to the last good generation, it
    /// never takes the protocol down.
    fn maybe_checkpoint(&mut self, force: bool) {
        let Some(dir) = self.durable.state_dir.clone() else {
            return;
        };
        let every = self.durable.checkpoint_every.max(1);
        if !force && !self.handled.is_multiple_of(every) {
            return;
        }
        if self.write_checkpoint(&dir).is_ok() {
            self.generation += 1;
        }
    }

    fn write_checkpoint(&self, dir: &Path) -> Result<(), PisaError> {
        let mut ckpt = Checkpoint::new(self.generation);
        ckpt.push_section(
            SECTION_SDC_SNAPSHOT,
            self.machine
                .server()
                .snapshot()
                .map_err(|e| PisaError::Durable(format!("SDC snapshot failed: {e}")))?,
        );
        ckpt.push_section(
            SECTION_SDC_SESSIONS,
            self.machine
                .snapshot_sessions()
                .map_err(|e| PisaError::Durable(format!("session snapshot failed: {e}")))?,
        );
        durable::write_atomic(dir, SDC_CHECKPOINT_FILE, &ckpt)?;
        Ok(())
    }

    /// Asks the service loop to wind down from another thread.
    pub fn handle(&self) -> SocketNode<SessionMsg> {
        self.node.clone()
    }
}

/// The STP as a networked service: listens for SDC queries and replies
/// on the learned route — no static peers at all.
pub struct StpService {
    node: SocketNode<SessionMsg>,
    machine: StpSessionEngine,
    poll: std::time::Duration,
    durable: DurableOpts,
    generation: u64,
    handled: u64,
}

impl StpService {
    /// Reconstructs the fixture, binds `listen` and prepares the engine.
    ///
    /// With `opts.durable.resume`, the per-SU key directory is restored
    /// from the checkpoint in `opts.durable.state_dir` and the engine
    /// RNG is reseeded per generation, as for [`SdcService::bind`]. The
    /// global secret `sk_G` is deliberately *not* persisted — it is
    /// re-derived from the fixture, keeping the highest-value secret
    /// off disk.
    ///
    /// # Errors
    ///
    /// [`PisaError::Net`] if the listener cannot bind,
    /// [`PisaError::Durable`] if resume was requested but the
    /// checkpoint is missing or invalid, or any fixture construction
    /// error.
    pub fn bind(opts: &NetStormOpts, listen: &str) -> Result<Self, PisaError> {
        let fixture = storm_fixture(opts.sessions, opts.seed)?;
        let metrics = NetMetrics::new();
        let faults = opts.socket_faults(&metrics);
        let node: SocketNode<SessionMsg> =
            SocketNode::new(Party::Stp, opts.socket.clone(), metrics.clone(), faults);
        node.bind(listen).map_err(net_err)?;

        let mut generation = 0u64;
        let machine = if opts.durable.resume {
            let dir = opts
                .durable
                .state_dir
                .as_deref()
                .ok_or_else(|| PisaError::Durable("resume requires a state dir".into()))?;
            let ckpt = durable::load(&dir.join(STP_CHECKPOINT_FILE))?;
            let directory = ckpt.section(SECTION_STP_DIRECTORY).ok_or_else(|| {
                PisaError::Durable("checkpoint has no STP directory section".into())
            })?;
            let mut machine = StpSessionEngine::new(
                fixture.stp,
                opts.engine.workers,
                metrics,
                durable::resume_seed(opts.seed ^ 0x517, ckpt.generation()),
            );
            machine
                .server_mut()
                .restore_directory(directory)
                .map_err(|e| PisaError::Durable(format!("STP directory invalid: {e}")))?;
            generation = ckpt.generation() + 1;
            machine
        } else {
            StpSessionEngine::new(fixture.stp, opts.engine.workers, metrics, opts.seed ^ 0x517)
        };
        Ok(StpService {
            node,
            machine,
            poll: opts.engine.poll,
            durable: opts.durable.clone(),
            generation,
            handled: 0,
        })
    }

    /// The bound listen address (useful with a `:0` ephemeral port).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.node.local_addr()
    }

    /// The generation the next checkpoint will be written at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Serves until a shutdown frame arrives, then returns the server.
    /// With a state dir configured, checkpoints as [`SdcService::run`].
    pub fn run(mut self) -> StpServer {
        loop {
            match self.node.recv_timeout(self.poll) {
                Some(SocketEvent::Frame(env)) => {
                    for (to, frame) in self.machine.handle(env.payload) {
                        let _ = self.node.send_from(Party::Stp, to, &frame);
                    }
                    self.handled += 1;
                    self.maybe_checkpoint(false);
                }
                Some(SocketEvent::Shutdown(_)) => {
                    self.maybe_checkpoint(true);
                    break;
                }
                None => {
                    if self.node.stopping() {
                        self.maybe_checkpoint(true);
                        break;
                    }
                }
            }
        }
        self.node.stop();
        self.machine.into_server()
    }

    /// Writes a checkpoint if one is due (or `force`d); failures leave
    /// the previous checkpoint intact, as for [`SdcService`].
    fn maybe_checkpoint(&mut self, force: bool) {
        let Some(dir) = self.durable.state_dir.clone() else {
            return;
        };
        let every = self.durable.checkpoint_every.max(1);
        if !force && !self.handled.is_multiple_of(every) {
            return;
        }
        if self.write_checkpoint(&dir).is_ok() {
            self.generation += 1;
        }
    }

    fn write_checkpoint(&self, dir: &Path) -> Result<(), PisaError> {
        let mut ckpt = Checkpoint::new(self.generation);
        ckpt.push_section(
            SECTION_STP_DIRECTORY,
            self.machine
                .server()
                .snapshot_directory()
                .map_err(|e| PisaError::Durable(format!("STP directory snapshot failed: {e}")))?,
        );
        durable::write_atomic(dir, STP_CHECKPOINT_FILE, &ckpt)?;
        Ok(())
    }

    /// Asks the service loop to wind down from another thread.
    pub fn handle(&self) -> SocketNode<SessionMsg> {
        self.node.clone()
    }
}

/// Runs the SU side of a networked storm: all `sessions` SU state
/// machines pooled over one dialed connection to the SDC, one thread
/// per session, exactly mirroring [`run_storm`](crate::run_storm)'s SU
/// loop (same engine, same per-session seeds, same backoff policy).
///
/// With `halt`, a shutdown frame is sent to the SDC after the last
/// session finishes, cascading to the STP — so one `pisa su --halt`
/// invocation tears down the whole loopback deployment.
///
/// # Errors
///
/// [`PisaError::UnknownSu`] on a malformed fixture,
/// [`PisaError::EngineFailure`] if a session thread panics.
///
/// # Panics
///
/// Panics if `opts.engine.workers == 0` (fixture construction).
pub fn run_su_storm(
    opts: &NetStormOpts,
    sdc_addr: &str,
    halt: bool,
) -> Result<EngineReport, PisaError> {
    let StormFixture { sus, sdc, stp } = storm_fixture(opts.sessions, opts.seed)?;
    let cfg = sdc.config().clone();
    let pk_g = stp.public_key().clone();
    let signing = sdc.signing_public_key().clone();
    let corrupt_possible = opts
        .faults
        .as_ref()
        .is_some_and(FaultConfig::any_corruption);

    let metrics = NetMetrics::new();
    let faults = opts.socket_faults(&metrics);
    // The node's own party only names shutdown frames; sessions send
    // with their explicit SU address via per-party endpoints.
    let node: SocketNode<SessionMsg> =
        SocketNode::new(Party::Su(0), opts.socket.clone(), metrics, faults);
    node.add_peer(Party::Sdc, sdc_addr);

    // One mailbox per session; a dispatcher thread demultiplexes the
    // node's single inbound queue by destination party.
    let mut mailboxes: HashMap<u32, mpsc::Sender<SessionMsg>> = HashMap::new();
    let mut receivers: Vec<mpsc::Receiver<SessionMsg>> = Vec::with_capacity(sus.len());
    for (su, _) in &sus {
        let (tx, rx) = mpsc::channel();
        mailboxes.insert(su.id().0, tx);
        receivers.push(rx);
    }
    let dispatcher = {
        let node = node.clone();
        let poll = opts.engine.poll;
        std::thread::spawn(move || loop {
            match node.recv_timeout(poll) {
                Some(SocketEvent::Frame(env)) => {
                    if let Party::Su(i) = env.to {
                        if let Some(tx) = mailboxes.get(&i) {
                            let _ = tx.send(env.payload);
                        }
                    }
                }
                Some(SocketEvent::Shutdown(_)) => {}
                None => {
                    if node.stopping() {
                        break;
                    }
                }
            }
        })
    };

    let seed = opts.seed;
    let mut su_handles = Vec::new();
    for (i, ((su, channels), rx)) in sus.into_iter().zip(receivers).enumerate() {
        let cfg = cfg.clone();
        let pk_g = pk_g.clone();
        let signing = signing.clone();
        let engine = opts.engine.clone();
        let node = node.clone();
        su_handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x50 + i as u64));
            let _session_span = pisa_obs::span("session");
            let me = Party::Su(su.id().0);
            let metrics = node.metrics().clone();
            let params = SuSessionParams {
                cfg: &cfg,
                pk_g: &pk_g,
                signing: &signing,
                corrupt_possible,
                engine: &engine,
                metrics: &metrics,
            };
            let mut machine = SuSessionEngine::new(su, &channels, &params, &mut rng);
            let mut action = machine.start();
            loop {
                match action {
                    SuAction::Continue { sends, deadline } => {
                        for frame in sends {
                            // A failed write is a lost frame; the
                            // deadline below turns it into a retry.
                            let _ = node.send_from(me, Party::Sdc, &frame);
                        }
                        action = match rx.recv_timeout(deadline) {
                            Ok(frame) => machine.on_event(SuEvent::Frame(frame)),
                            Err(_) => machine.on_event(SuEvent::Timeout),
                        };
                    }
                    SuAction::Finish(outcome) => break outcome,
                }
            }
        }));
    }

    let mut outcomes: Vec<SessionOutcome> = Vec::with_capacity(su_handles.len());
    let mut su_died = false;
    for h in su_handles {
        match h.join() {
            Ok(outcome) => outcomes.push(outcome),
            Err(_) => su_died = true,
        }
    }
    outcomes.sort_by_key(|o| o.su_id);

    if halt && !su_died {
        let _ = node.send_shutdown(Party::Sdc);
    }
    node.stop();
    let _ = dispatcher.join();

    if su_died {
        return Err(PisaError::EngineFailure("SU session thread panicked"));
    }
    Ok(EngineReport {
        outcomes,
        metrics: node.metrics().clone(),
    })
}

/// The in-memory reference run for `--verify`: the same fixture and
/// seed through [`run_storm`](crate::run_storm) on a clean network.
/// A networked storm — faulty or not — must reach these grant/deny
/// decisions (the chaos invariant, now across process boundaries).
///
/// # Errors
///
/// Whatever [`run_storm`](crate::run_storm) reports.
pub fn run_memory_baseline(opts: &NetStormOpts) -> Result<EngineReport, PisaError> {
    let StormFixture { sus, sdc, stp } = storm_fixture(opts.sessions, opts.seed)?;
    let (report, _sdc, _stp) = run_storm(sus, sdc, stp, None, &opts.engine, opts.seed)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The acceptance scenario in miniature: STP, SDC and the SU swarm
    /// as three independent service loops over real loopback sockets,
    /// reaching the in-memory engine's decisions on the same seed.
    #[test]
    fn loopback_storm_matches_memory_engine() {
        let mut opts = NetStormOpts::new(3, 0x3e7);
        // A generous deadline, as in the quiet-storm test: this asserts
        // protocol equivalence, not latency.
        opts.engine = EngineConfig::default().with_timeout(Duration::from_secs(5));

        let stp = StpService::bind(&opts, "127.0.0.1:0").expect("bind stp");
        let stp_addr = stp.local_addr().expect("stp addr").to_string();
        let stp_thread = std::thread::spawn(move || stp.run());

        let sdc = SdcService::bind(&opts, "127.0.0.1:0", &stp_addr).expect("bind sdc");
        let sdc_addr = sdc.local_addr().expect("sdc addr").to_string();
        let sdc_thread = std::thread::spawn(move || sdc.run());

        let report = run_su_storm(&opts, &sdc_addr, true).expect("su storm");
        let baseline = run_memory_baseline(&opts).expect("baseline");

        assert!(report.all_completed());
        assert_eq!(report.decisions(), baseline.decisions());
        // The halt cascaded: both services drained and returned.
        let _sdc_server = sdc_thread.join().expect("sdc joined");
        let _stp_server = stp_thread.join().expect("stp joined");
    }

    #[test]
    fn fixture_is_deterministic_across_processes() {
        let a = storm_fixture(4, 0xf17).expect("fixture");
        let b = storm_fixture(4, 0xf17).expect("fixture");
        assert_eq!(
            a.stp.public_key().modulus(),
            b.stp.public_key().modulus(),
            "global key must be derived identically"
        );
        let ka = a.su_keys().expect("keys");
        let kb = b.su_keys().expect("keys");
        assert_eq!(ka.len(), 4);
        for (id, pk) in &ka {
            assert_eq!(Some(pk.modulus()), kb.get(id).map(|k| k.modulus()));
        }
    }
}
