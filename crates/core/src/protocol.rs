//! End-to-end request orchestration: direct calls and over the
//! simulated network.

use crate::error::PisaError;

use crate::license::License;
use crate::messages::PisaMessage;
use crate::sdc::SdcServer;
use crate::stp::{StpObservation, StpServer};
use crate::su::SuClient;
use pisa_net::{LatencyModel, NetMetrics, Network, Party, WireSize};
use pisa_radio::tv::Channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Result of one full transmission-request round.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Did the SU recover a valid license signature?
    pub granted: bool,
    /// The license document returned by the SDC.
    pub license: License,
    /// Bytes of the SU → SDC request (the paper's ≈29 MB at full scale).
    pub request_bytes: usize,
    /// Bytes of the SDC → STP blinded query.
    pub sdc_to_stp_bytes: usize,
    /// Bytes of the STP → SDC key-converted reply.
    pub stp_to_sdc_bytes: usize,
    /// Bytes of the SDC → SU response (the paper's ≈4.1 kb).
    pub response_bytes: usize,
    /// What the STP observed (for privacy analysis).
    pub stp_observation: StpObservation,
}

impl RequestOutcome {
    /// Total bytes moved in the round.
    pub fn total_bytes(&self) -> usize {
        self.request_bytes + self.sdc_to_stp_bytes + self.stp_to_sdc_bytes + self.response_bytes
    }
}

/// Runs one complete request round with direct in-process calls
/// (Figure 5 end to end): build → phase 1 → key conversion → phase 2 →
/// SU verification.
///
/// # Errors
///
/// Propagates any [`PisaError`] from the SDC or STP steps.
pub fn run_request_direct<R: Rng + ?Sized>(
    su: &mut SuClient,
    sdc: &mut SdcServer,
    stp: &StpServer,
    channels: &[Channel],
    rng: &mut R,
) -> Result<RequestOutcome, PisaError> {
    let cfg = sdc.config().clone();
    let request = su.build_request(&cfg, stp.public_key(), channels, rng);
    let request_bytes = request.wire_bytes();

    let to_stp = sdc.process_request_phase1(&request, rng)?;
    let sdc_to_stp_bytes = to_stp.wire_bytes();

    let (to_sdc, observation) = stp.key_convert(&to_stp, rng)?;
    let stp_to_sdc_bytes = to_sdc.wire_bytes();

    let su_pk = stp
        .su_key(su.id())
        .ok_or(PisaError::UnknownSu(su.id()))?
        .clone();
    let response = sdc.process_request_phase2(&to_sdc, &su_pk, rng)?;
    let response_bytes = response.wire_bytes();

    let granted = su.handle_response(&response, sdc.signing_public_key());
    Ok(RequestOutcome {
        granted,
        license: response.license,
        request_bytes,
        sdc_to_stp_bytes,
        stp_to_sdc_bytes,
        response_bytes,
        stp_observation: observation,
    })
}

/// [`run_request_direct`] with a worker-thread budget: `threads == 1`
/// takes the sequential phase paths, `threads > 1` fans the SDC sign
/// test and the STP key conversion out over that many scoped workers.
/// Per-entry randomness is derived by index, so the outcome is
/// byte-identical across thread counts (the `parallel_equivalence`
/// guarantee).
///
/// # Errors
///
/// Propagates any [`PisaError`] from the SDC or STP steps.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_request_direct_tuned<R: Rng + ?Sized>(
    su: &mut SuClient,
    sdc: &mut SdcServer,
    stp: &StpServer,
    channels: &[Channel],
    threads: usize,
    rng: &mut R,
) -> Result<RequestOutcome, PisaError> {
    assert!(threads > 0, "need at least one worker");
    if threads == 1 {
        return run_request_direct(su, sdc, stp, channels, rng);
    }
    let cfg = sdc.config().clone();
    let request = su.build_request(&cfg, stp.public_key(), channels, rng);
    let request_bytes = request.wire_bytes();

    let to_stp = sdc.process_request_phase1_parallel(&request, threads, rng)?;
    let sdc_to_stp_bytes = to_stp.wire_bytes();

    let (to_sdc, observation) = stp.key_convert_parallel(&to_stp, threads, rng)?;
    let stp_to_sdc_bytes = to_sdc.wire_bytes();

    let su_pk = stp
        .su_key(su.id())
        .ok_or(PisaError::UnknownSu(su.id()))?
        .clone();
    let response = sdc.process_request_phase2(&to_sdc, &su_pk, rng)?;
    let response_bytes = response.wire_bytes();

    let granted = su.handle_response(&response, sdc.signing_public_key());
    Ok(RequestOutcome {
        granted,
        license: response.license,
        request_bytes,
        sdc_to_stp_bytes,
        stp_to_sdc_bytes,
        response_bytes,
        stp_observation: observation,
    })
}

/// A request round executed over the simulated network, with traffic
/// metrics and a latency estimate.
#[derive(Debug)]
pub struct NetworkRun {
    /// The protocol outcome.
    pub outcome: RequestOutcome,
    /// Per-link traffic recorded by the network.
    pub metrics: NetMetrics,
    /// Estimated network time under the given latency model.
    pub estimated_network_time: Duration,
}

/// Runs one request round with the SDC and STP on their own threads,
/// exchanging [`PisaMessage`]s over a [`Network`] — the deployment shape
/// of Figure 3. Returns the servers so state persists across rounds.
///
/// # Errors
///
/// Propagates protocol errors from either server thread.
///
/// # Panics
///
/// Panics if a server thread panics.
pub fn run_request_over_network(
    su: &mut SuClient,
    mut sdc: SdcServer,
    stp: StpServer,
    channels: &[Channel],
    latency: LatencyModel,
    seed: u64,
) -> Result<(NetworkRun, SdcServer, StpServer), PisaError> {
    let cfg = sdc.config().clone();
    let pk_g = stp.public_key().clone();
    let su_pk = stp
        .su_key(su.id())
        .ok_or(PisaError::UnknownSu(su.id()))?
        .clone();
    let sdc_signing_key = sdc.signing_public_key().clone();
    let su_party = Party::Su(su.id().0);

    let net: Network<PisaMessage> = Network::new();
    let su_ep = net.endpoint(su_party);
    let sdc_ep = net.endpoint(Party::Sdc);
    let stp_ep = net.endpoint(Party::Stp);

    // SDC thread: request → phase 1 → STP; reply → phase 2 → SU.
    let sdc_handle = std::thread::spawn(move || -> Result<SdcServer, PisaError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5dc);
        let env = sdc_ep.recv().expect("request arrives");
        let PisaMessage::SuRequest(req) = env.payload else {
            unreachable!("first SDC message is the request");
        };
        let to_stp = sdc.process_request_phase1(&req, &mut rng)?;
        sdc_ep.send(Party::Stp, PisaMessage::SdcToStp(to_stp));

        let env = sdc_ep.recv().expect("STP reply arrives");
        let PisaMessage::StpToSdc(reply) = env.payload else {
            unreachable!("second SDC message is the STP reply");
        };
        let response = sdc.process_request_phase2(&reply, &su_pk, &mut rng)?;
        sdc_ep.send(su_party, PisaMessage::SdcResponse(response));
        Ok(sdc)
    });

    // STP thread: one key conversion.
    let stp_handle =
        std::thread::spawn(move || -> Result<(StpServer, StpObservation), PisaError> {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x517);
            let env = stp_ep.recv().expect("blinded query arrives");
            let PisaMessage::SdcToStp(query) = env.payload else {
                unreachable!("STP only receives blinded queries");
            };
            let (reply, obs) = stp.key_convert(&query, &mut rng)?;
            stp_ep.send(Party::Sdc, PisaMessage::StpToSdc(reply));
            Ok((stp, obs))
        });

    // SU (this thread): send the request, await the response.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50);
    let request = su.build_request(&cfg, &pk_g, channels, &mut rng);
    su_ep.send(Party::Sdc, PisaMessage::SuRequest(request));

    let env = su_ep.recv().expect("response arrives");
    let PisaMessage::SdcResponse(response) = env.payload else {
        unreachable!("SU only receives responses");
    };
    let granted = su.handle_response(&response, &sdc_signing_key);

    let sdc = sdc_handle.join().expect("SDC thread healthy")?;
    let (stp, observation) = stp_handle.join().expect("STP thread healthy")?;

    let metrics = net.metrics().clone();
    let link = |from, to| metrics.link(from, to).map(|s| s.bytes).unwrap_or(0) as usize;
    let outcome = RequestOutcome {
        granted,
        license: response.license,
        request_bytes: link(su_party, Party::Sdc),
        sdc_to_stp_bytes: link(Party::Sdc, Party::Stp),
        stp_to_sdc_bytes: link(Party::Stp, Party::Sdc),
        response_bytes: link(Party::Sdc, su_party),
        stp_observation: observation,
    };
    let estimated_network_time =
        latency.transfer_time(metrics.total_bytes(), metrics.total_messages());
    Ok((
        NetworkRun {
            outcome,
            metrics,
            estimated_network_time,
        },
        sdc,
        stp,
    ))
}

/// Per-SU `(id, granted)` decisions in completion order.
pub type RequestDecisions = Vec<(crate::keys::SuId, bool)>;

/// Runs several SUs' requests concurrently over one network: each SU on
/// its own thread, the SDC and STP serving interleaved messages in
/// arrival order — the deployment shape of Figure 3 with a realistic
/// request mix. Returns `(su_id, outcome)` pairs in completion order
/// plus the servers.
///
/// Interleaving exercises the SDC's per-SU pending-request state: phase
/// 1 of one SU may land between phase 1 and phase 2 of another.
///
/// # Errors
///
/// Propagates the first protocol error from any party.
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_concurrent_requests(
    sus: Vec<(SuClient, Vec<Channel>)>,
    mut sdc: SdcServer,
    stp: StpServer,
    seed: u64,
) -> Result<(RequestDecisions, SdcServer, StpServer), PisaError> {
    let cfg = sdc.config().clone();
    let pk_g = stp.public_key().clone();
    let sdc_signing_key = sdc.signing_public_key().clone();
    let su_keys: std::collections::HashMap<_, _> = sus
        .iter()
        .map(|(su, _)| {
            let pk = stp
                .su_key(su.id())
                .ok_or(PisaError::UnknownSu(su.id()))?
                .clone();
            Ok((su.id(), pk))
        })
        .collect::<Result<_, PisaError>>()?;
    let total = sus.len();

    let net: Network<PisaMessage> = Network::new();
    let sdc_ep = net.endpoint(Party::Sdc);
    let stp_ep = net.endpoint(Party::Stp);
    let su_eps: Vec<_> = sus
        .iter()
        .map(|(su, _)| net.endpoint(Party::Su(su.id().0)))
        .collect();

    // SDC: serves 2·N messages (one request + one STP reply per SU).
    let sdc_handle = std::thread::spawn(move || -> Result<SdcServer, PisaError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5dc);
        for _ in 0..2 * total {
            let env = sdc_ep.recv().expect("message arrives");
            match env.payload {
                PisaMessage::SuRequest(req) => {
                    let to_stp = sdc.process_request_phase1(&req, &mut rng)?;
                    sdc_ep.send(Party::Stp, PisaMessage::SdcToStp(to_stp));
                }
                PisaMessage::StpToSdc(reply) => {
                    let su_pk = &su_keys[&reply.su_id];
                    let su_party = Party::Su(reply.su_id.0);
                    let response = sdc.process_request_phase2(&reply, su_pk, &mut rng)?;
                    sdc_ep.send(su_party, PisaMessage::SdcResponse(response));
                }
                other => unreachable!("unexpected SDC message {other:?}"),
            }
        }
        Ok(sdc)
    });

    // STP: serves N key conversions.
    let stp_handle = std::thread::spawn(move || -> Result<StpServer, PisaError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517);
        for _ in 0..total {
            let env = stp_ep.recv().expect("query arrives");
            let PisaMessage::SdcToStp(query) = env.payload else {
                unreachable!("STP only receives blinded queries");
            };
            let (reply, _obs) = stp.key_convert(&query, &mut rng)?;
            stp_ep.send(Party::Sdc, PisaMessage::StpToSdc(reply));
        }
        Ok(stp)
    });

    // One thread per SU.
    let mut su_handles = Vec::new();
    for (i, ((mut su, channels), ep)) in sus.into_iter().zip(su_eps).enumerate() {
        let cfg = cfg.clone();
        let pk_g = pk_g.clone();
        let signing = sdc_signing_key.clone();
        su_handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x50 + i as u64));
            let request = su.build_request(&cfg, &pk_g, &channels, &mut rng);
            ep.send(Party::Sdc, PisaMessage::SuRequest(request));
            let env = ep.recv().expect("response arrives");
            let PisaMessage::SdcResponse(response) = env.payload else {
                unreachable!("SU only receives responses");
            };
            (su.id(), su.handle_response(&response, &signing))
        }));
    }

    let outcomes = su_handles
        .into_iter()
        .map(|h| h.join().expect("SU thread healthy"))
        .collect();
    let sdc = sdc_handle.join().expect("SDC thread healthy")?;
    let stp = stp_handle.join().expect("STP thread healthy")?;
    Ok((outcomes, sdc, stp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::SuId;
    use crate::SystemConfig;
    use pisa_radio::BlockId;

    #[test]
    fn direct_round_grants_on_empty_system() {
        let mut rng = StdRng::seed_from_u64(77);
        let cfg = SystemConfig::small_test();
        let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
        let mut sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.test", &mut rng);
        let mut su = SuClient::new(SuId(0), BlockId(5), &cfg, &mut rng);
        stp.register_su(SuId(0), su.public_key().clone());

        let outcome = run_request_direct(&mut su, &mut sdc, &stp, &[Channel(0)], &mut rng).unwrap();
        assert!(outcome.granted, "no PUs ⇒ the request must be granted");
        assert!(outcome.request_bytes > outcome.response_bytes);
        assert_eq!(outcome.license.su_id, SuId(0));
    }

    #[test]
    fn network_round_matches_direct() {
        let mut rng = StdRng::seed_from_u64(78);
        let cfg = SystemConfig::small_test();
        let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
        let sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.test", &mut rng);
        let mut su = SuClient::new(SuId(1), BlockId(3), &cfg, &mut rng);
        stp.register_su(SuId(1), su.public_key().clone());

        let (run, _sdc, _stp) =
            run_request_over_network(&mut su, sdc, stp, &[Channel(2)], LatencyModel::lan(), 99)
                .unwrap();
        assert!(run.outcome.granted);
        assert_eq!(run.metrics.total_messages(), 4);
        assert!(run.estimated_network_time > Duration::ZERO);
        // The request dominates traffic (C×B ciphertexts vs 1).
        assert!(run.outcome.request_bytes > 10 * run.outcome.response_bytes);
    }
}
