//! Durable checkpoints: atomic, integrity-checked on-disk state.
//!
//! The SDC re-aggregates the encrypted budget matrix `Ñ` from scratch
//! at ~seconds per update, so losing SDC state on a crash is the single
//! most expensive failure in a deployment. This module packages the
//! serialized state of a service (SDC matrix + pending phase-1 sessions,
//! engine session table, STP key directory) into a [`Checkpoint`]
//! container and writes it **atomically**: the frame is written to
//! `<name>.tmp`, fsynced, then renamed over `<name>`. A crash at any
//! point leaves either the previous complete checkpoint or the new
//! complete checkpoint — never a torn file.
//!
//! # Container format
//!
//! ```text
//! magic    8 bytes  "PISACKPT"
//! version  u8       CHECKPOINT_VERSION
//! gen      u64      checkpoint generation (monotonic per service)
//! count    u32      number of sections
//! sections count ×  { kind: u8, payload: length-prefixed bytes }
//! checksum 32 bytes SHA-256 over every preceding byte
//! ```
//!
//! Sections are opaque length-prefixed frames tagged by a `kind` byte
//! ([`SECTION_SDC_SNAPSHOT`], [`SECTION_SDC_SESSIONS`],
//! [`SECTION_STP_DIRECTORY`]); each payload carries its own format
//! version so sections evolve independently of the container.
//!
//! # What a checkpoint is *not*
//!
//! Checkpoints are **plaintext state dumps, not sealed storage**: the
//! SDC section embeds the RSA signing key and the per-SU blinding sign
//! vectors ε (see `SdcServer::snapshot`). The state directory must have
//! the same protection as the service's key material.

use pisa_crypto::sha256::sha256;
use pisa_net::codec::{CodecError, Reader, Writer};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// File magic identifying a PISA checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"PISACKPT";

/// Container format version.
pub const CHECKPOINT_VERSION: u8 = 1;

/// Section kind: `SdcServer::snapshot` payload (matrix, contributions,
/// signing key, pending phase-1 sessions).
pub const SECTION_SDC_SNAPSHOT: u8 = 1;

/// Section kind: `SdcSessionEngine::snapshot_sessions` payload (the
/// replay/resend table keyed by SU id).
pub const SECTION_SDC_SESSIONS: u8 = 2;

/// Section kind: `StpServer::snapshot_directory` payload (registered
/// per-SU Paillier public keys).
pub const SECTION_STP_DIRECTORY: u8 = 3;

/// File name of the SDC checkpoint inside a state directory.
pub const SDC_CHECKPOINT_FILE: &str = "sdc.ckpt";

/// File name of the STP checkpoint inside a state directory.
pub const STP_CHECKPOINT_FILE: &str = "stp.ckpt";

/// SHA-256 trailer width.
const CHECKSUM_BYTES: usize = 32;

/// Smallest possible encoded section: one kind byte plus a u32 length
/// prefix. Used to bound the section-count pre-allocation.
const MIN_SECTION_BYTES: usize = 5;

/// A versioned, checksummed bundle of service-state sections.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    generation: u64,
    sections: Vec<(u8, bytes::Bytes)>,
}

impl Checkpoint {
    /// An empty checkpoint at the given generation.
    pub fn new(generation: u64) -> Self {
        Checkpoint {
            generation,
            sections: Vec::new(),
        }
    }

    /// The generation counter this checkpoint was written at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends a section. Kinds must be unique within one checkpoint;
    /// [`Checkpoint::decode`] rejects duplicates.
    pub fn push_section(&mut self, kind: u8, payload: bytes::Bytes) {
        self.sections.push((kind, payload));
    }

    /// Looks up a section payload by kind.
    pub fn section(&self, kind: u8) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| p.as_ref())
    }

    /// Number of sections.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Serializes the container, appending the SHA-256 trailer.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadLength`] if a count cannot fit the wire's `u32`
    /// fields or a section exceeds the frame ceiling.
    pub fn encode(&self) -> Result<bytes::Bytes, CodecError> {
        let mut w = Writer::with_capacity(
            32 + self
                .sections
                .iter()
                .map(|(_, p)| p.len() + MIN_SECTION_BYTES)
                .sum::<usize>(),
        );
        w.put_raw(&CHECKPOINT_MAGIC);
        w.put_u8(CHECKPOINT_VERSION);
        w.put_u64(self.generation);
        let count = u32::try_from(self.sections.len())
            .map_err(|_| CodecError::BadLength(self.sections.len() as u64))?;
        w.put_u32(count);
        for (kind, payload) in &self.sections {
            w.put_u8(*kind);
            w.put_bytes(payload)?;
        }
        let body = w.finish();
        let digest = sha256(&body);
        let mut framed = Writer::with_capacity(body.len() + CHECKSUM_BYTES);
        framed.put_raw(&body);
        framed.put_raw(&digest);
        Ok(framed.finish())
    }

    /// Parses and integrity-checks a container frame.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] on a bad magic, version, checksum or
    /// duplicate section kind; [`CodecError::Oversized`] when the
    /// declared section count exceeds what the frame could possibly
    /// hold; any other [`CodecError`] on truncated or malformed frames.
    pub fn decode(frame: &[u8]) -> Result<Checkpoint, CodecError> {
        if frame.len() < CHECKPOINT_MAGIC.len() + 1 + 8 + 4 + CHECKSUM_BYTES {
            return Err(CodecError::UnexpectedEof);
        }
        let (body, trailer) = frame.split_at(frame.len() - CHECKSUM_BYTES);
        if sha256(body) != *trailer {
            return Err(CodecError::Invalid("checkpoint checksum mismatch".into()));
        }
        let mut r = Reader::new(body);
        if r.get_raw(CHECKPOINT_MAGIC.len())? != CHECKPOINT_MAGIC {
            return Err(CodecError::Invalid("not a PISA checkpoint".into()));
        }
        let version = r.get_u8()?;
        if version != CHECKPOINT_VERSION {
            return Err(CodecError::Invalid(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let generation = r.get_u64()?;
        let count = crate::wire::widen(r.get_u32()?);
        let most = r.remaining() / MIN_SECTION_BYTES;
        if count > most {
            return Err(CodecError::Oversized(count as u64, most as u64));
        }
        let mut sections: Vec<(u8, bytes::Bytes)> = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = r.get_u8()?;
            if sections.iter().any(|(k, _)| *k == kind) {
                return Err(CodecError::Invalid(format!(
                    "duplicate checkpoint section kind {kind}"
                )));
            }
            let payload = bytes::Bytes::copy_from_slice(r.get_bytes()?);
            sections.push((kind, payload));
        }
        r.finish()?;
        Ok(Checkpoint {
            generation,
            sections,
        })
    }
}

/// Failure writing or loading a checkpoint.
#[derive(Debug)]
pub enum DurableError {
    /// Filesystem operation failed.
    Io(io::Error),
    /// The checkpoint frame failed to encode or decode.
    Codec(CodecError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            DurableError::Codec(e) => write!(f, "checkpoint frame invalid: {e}"),
        }
    }
}

impl Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<CodecError> for DurableError {
    fn from(e: CodecError) -> Self {
        DurableError::Codec(e)
    }
}

impl From<DurableError> for crate::PisaError {
    fn from(e: DurableError) -> Self {
        crate::PisaError::Durable(e.to_string())
    }
}

/// Atomically writes `ckpt` to `<dir>/<name>`.
///
/// The frame is first written to `<dir>/<name>.tmp` and fsynced, then
/// renamed into place — rename is atomic on POSIX filesystems, so a
/// crash mid-write leaves the previous checkpoint intact. Returns the
/// final path.
///
/// # Errors
///
/// [`DurableError::Io`] on any filesystem failure (the previous
/// checkpoint, if any, is untouched); [`DurableError::Codec`] if the
/// checkpoint cannot be serialized.
pub fn write_atomic(dir: &Path, name: &str, ckpt: &Checkpoint) -> Result<PathBuf, DurableError> {
    let _span = pisa_obs::span("checkpoint.write");
    let frame = ckpt.encode()?;
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{name}.tmp"));
    let mut f = fs::File::create(&tmp)?;
    f.write_all(&frame)?;
    f.sync_all()?;
    drop(f);
    let path = dir.join(name);
    fs::rename(&tmp, &path)?;
    pisa_obs::count(pisa_obs::Op::CheckpointWrite);
    Ok(path)
}

/// Loads and integrity-checks a checkpoint file.
///
/// # Errors
///
/// [`DurableError::Io`] if the file cannot be read;
/// [`DurableError::Codec`] if the frame is truncated, corrupt or fails
/// its checksum.
pub fn load(path: &Path) -> Result<Checkpoint, DurableError> {
    let _span = pisa_obs::span("checkpoint.restore");
    let frame = fs::read(path)?;
    let ckpt = Checkpoint::decode(&frame)?;
    pisa_obs::count(pisa_obs::Op::CheckpointLoad);
    Ok(ckpt)
}

/// Derives a fresh RNG seed for a resumed service.
///
/// Every PISA process derives its RNG stream deterministically from the
/// storm seed; a resumed service must NOT replay the stream it already
/// consumed before the crash (Paillier randomizer reuse leaks blinding
/// relations). Mixing the checkpoint generation through a splitmix64
/// finalizer yields an independent stream per resume while staying
/// fully deterministic for the replay harness. Protocol *decisions*
/// depend only on plaintexts, never on ciphertext randomness, so the
/// reseeded service still reaches byte-identical outcomes.
pub fn resume_seed(base: u64, generation: u64) -> u64 {
    let mut z = base
        .wrapping_add(1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(generation);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new(7);
        c.push_section(
            SECTION_SDC_SNAPSHOT,
            bytes::Bytes::copy_from_slice(b"matrix"),
        );
        c.push_section(SECTION_SDC_SESSIONS, bytes::Bytes::copy_from_slice(b"tbl"));
        c
    }

    #[test]
    fn container_roundtrip() {
        let c = sample();
        let frame = c.encode().unwrap();
        let back = Checkpoint::decode(&frame).unwrap();
        assert_eq!(back.generation(), 7);
        assert_eq!(back.section(SECTION_SDC_SNAPSHOT), Some(&b"matrix"[..]));
        assert_eq!(back.section(SECTION_SDC_SESSIONS), Some(&b"tbl"[..]));
        assert_eq!(back.section(SECTION_STP_DIRECTORY), None);
        assert_eq!(back.encode().unwrap(), frame, "re-encode is byte-identical");
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let frame = sample().encode().unwrap().to_vec();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn truncation_rejected() {
        let frame = sample().encode().unwrap();
        for cut in 0..frame.len() {
            assert!(Checkpoint::decode(&frame[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn section_count_bomb_rejected() {
        // Hand-craft a frame claiming u32::MAX sections, with a valid
        // checksum so the count check itself is what rejects it.
        let mut w = Writer::new();
        w.put_raw(&CHECKPOINT_MAGIC);
        w.put_u8(CHECKPOINT_VERSION);
        w.put_u64(1);
        w.put_u32(u32::MAX);
        let body = w.finish();
        let digest = sha256(&body);
        let mut framed = Writer::new();
        framed.put_raw(&body);
        framed.put_raw(&digest);
        assert!(matches!(
            Checkpoint::decode(&framed.finish()),
            Err(CodecError::Oversized(_, _))
        ));
    }

    #[test]
    fn duplicate_section_kind_rejected() {
        let mut c = Checkpoint::new(1);
        c.push_section(SECTION_SDC_SNAPSHOT, bytes::Bytes::copy_from_slice(b"a"));
        c.push_section(SECTION_SDC_SNAPSHOT, bytes::Bytes::copy_from_slice(b"b"));
        let frame = c.encode().unwrap();
        assert!(matches!(
            Checkpoint::decode(&frame),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join(format!("pisa-durable-{}", std::process::id()));
        let c = sample();
        let path = write_atomic(&dir, SDC_CHECKPOINT_FILE, &c).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.encode().unwrap(), c.encode().unwrap());
        assert!(!dir.join(format!("{SDC_CHECKPOINT_FILE}.tmp")).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_seed_varies_per_generation() {
        let a = resume_seed(0x5dc, 0);
        let b = resume_seed(0x5dc, 1);
        let c = resume_seed(0x5dc, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, resume_seed(0x5dc, 0), "deterministic");
    }
}
