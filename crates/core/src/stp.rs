//! The Semi-trusted Third Party: key generation and key conversion.

use crate::cipher_matrix::CipherMatrix;
use crate::error::PisaError;
use crate::keys::{GlobalKeys, SuId, SuKeyDirectory};
use crate::messages::{SdcToStpMsg, StpToSdcMsg};
use pisa_bigint::Ibig;
use pisa_crypto::paillier::{PaillierPublicKey, Randomizer, RandomizerPool};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the STP observes while serving one key-conversion request —
/// exactly the blinded values `V(c,i)` of eq. (14). Exposed so the
/// privacy tests can verify that these observations carry (statistically)
/// no information about the true indicator signs.
#[derive(Debug, Clone)]
pub struct StpObservation {
    /// The decrypted blinded values, in entry order.
    pub v_values: Vec<Ibig>,
}

/// The STP: holds the global secret key `sk_G` and the directory of SU
/// public keys, and converts blinded ciphertexts from `pk_G` to `pk_j`
/// (Figure 5 steps 6–8).
///
/// The STP never sees `Ñ`, `F̃` or any unblinded value; by Lemma V.1 the
/// blinded `V` values give it only negligible advantage over guessing.
pub struct StpServer {
    global: GlobalKeys,
    directory: SuKeyDirectory,
    /// Per-SU pools of precomputed `rⁿ` factors under `pk_j`, consumed
    /// by key conversion for its ±1 re-encryptions (paper §VI-A
    /// offline/online split). Empty map keeps the fully online path.
    pools: HashMap<SuId, Arc<RandomizerPool>>,
}

impl std::fmt::Debug for StpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StpServer({} SUs registered)", self.directory.len())
    }
}

impl StpServer {
    /// Creates the STP with a fresh global key pair of `bits` bits.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        StpServer {
            global: GlobalKeys::generate(rng, bits),
            directory: SuKeyDirectory::new(),
            pools: HashMap::new(),
        }
    }

    /// Creates (idempotently) a pool of `capacity` precomputed `rⁿ`
    /// factors under an SU's key, which key conversion then consumes to
    /// re-encrypt each ±1 sign with two multiplications instead of a
    /// full exponentiation. Returns the shared handle, or `None` for an
    /// SU that never registered a key. Pools start empty — top them up
    /// with [`refill_pools`](Self::refill_pools).
    pub fn enable_su_pool(&mut self, id: SuId, capacity: usize) -> Option<Arc<RandomizerPool>> {
        let pk = self.directory.lookup(id)?;
        let pool = self
            .pools
            .entry(id)
            .or_insert_with(|| Arc::new(RandomizerPool::new(pk, capacity)));
        Some(Arc::clone(pool))
    }

    /// The pool enabled for an SU, if any.
    pub fn su_pool(&self, id: SuId) -> Option<&Arc<RandomizerPool>> {
        self.pools.get(&id)
    }

    /// Tops every SU pool back up — the offline phase between request
    /// batches. Pools refill in SU-id order so a seeded `rng` produces
    /// the same factors on every run.
    pub fn refill_pools<R: Rng + ?Sized>(&self, rng: &mut R) {
        let mut ids: Vec<SuId> = self.pools.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if let Some(pool) = self.pools.get(&id) {
                pool.refill(rng);
            }
        }
    }

    /// Pre-takes one pooled factor per entry (empty when the SU has no
    /// pool), indexed by entry order so the sequential and parallel
    /// conversion paths consume identical factors.
    fn take_su_factors(&self, id: SuId, entries: usize) -> Vec<Randomizer> {
        self.pools
            .get(&id)
            .map(|pool| pool.take_batch(entries))
            .unwrap_or_default()
    }

    /// The global public key `pk_G` (anyone can retrieve it).
    pub fn public_key(&self) -> &PaillierPublicKey {
        self.global.public()
    }

    /// Registers an SU's public key (SUs upload `pk_j` on joining).
    pub fn register_su(&mut self, id: SuId, pk: PaillierPublicKey) {
        self.directory.publish(id, pk);
    }

    /// Looks up a registered SU key (the directory is public).
    pub fn su_key(&self, id: SuId) -> Option<&PaillierPublicKey> {
        self.directory.lookup(id)
    }

    /// Serializes the STP's per-SU state — the public-key directory —
    /// for crash recovery. `sk_G` is deliberately *not* persisted
    /// (§III-C: it never leaves the STP; a restarted STP re-derives it
    /// from its own key source, here the deterministic storm fixture),
    /// and the randomizer pools are transient precomputation.
    ///
    /// # Errors
    ///
    /// Any [`pisa_net::codec::CodecError`] if a field cannot fit its
    /// wire width; in-range state never fails.
    pub fn snapshot_directory(&self) -> Result<bytes::Bytes, pisa_net::codec::CodecError> {
        use pisa_net::codec::Writer;
        let mut ids: Vec<SuId> = self.directory.iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        let mut w = Writer::with_capacity(16 + ids.len() * 80);
        w.put_u8(DIRECTORY_VERSION);
        w.put_u32(crate::wire::wire_u32(ids.len())?);
        for id in ids {
            // The id came from the directory's own key set just above.
            let Some(pk) = self.directory.lookup(id) else {
                continue;
            };
            w.put_u32(id.0);
            w.put_bytes(&pk.modulus().to_be_bytes())?;
        }
        Ok(w.finish())
    }

    /// Replaces the SU key directory from a
    /// [`snapshot_directory`](Self::snapshot_directory) frame. The
    /// frame is treated as adversarial: the entry count is bounded by
    /// the remaining bytes before allocation, SU ids must be strictly
    /// increasing, and every modulus must be an odd number of at least
    /// [`pisa_crypto::paillier::MIN_KEY_BITS`] bits (the preconditions
    /// `PaillierPublicKey::from_modulus` would otherwise panic on).
    ///
    /// # Errors
    ///
    /// Any [`pisa_net::codec::CodecError`] on a malformed frame; the
    /// existing directory is left untouched on error.
    pub fn restore_directory(&mut self, frame: &[u8]) -> Result<(), pisa_net::codec::CodecError> {
        use pisa_crypto::paillier::MIN_KEY_BITS;
        use pisa_net::codec::{CodecError, Reader};
        let mut r = Reader::new(frame);
        let version = r.get_u8()?;
        if version != DIRECTORY_VERSION {
            return Err(CodecError::Invalid(format!(
                "unknown directory version {version}"
            )));
        }
        let count = crate::wire::widen(r.get_u32()?);
        let min_entry = 4 + 4 + MIN_KEY_BITS / 8;
        let most = r.remaining() / min_entry;
        if count > most {
            return Err(CodecError::Oversized(count as u64, most as u64));
        }
        let mut directory = SuKeyDirectory::new();
        let mut last: Option<u32> = None;
        for _ in 0..count {
            let raw_id = r.get_u32()?;
            if let Some(prev) = last {
                if raw_id <= prev {
                    return Err(CodecError::Invalid(format!(
                        "directory SU ids must be strictly increasing (saw {raw_id} after {prev})"
                    )));
                }
            }
            last = Some(raw_id);
            let n = pisa_bigint::Ubig::from_be_bytes(r.get_bytes()?);
            if n.bit_len() < MIN_KEY_BITS || !n.is_odd() {
                return Err(CodecError::Invalid(format!(
                    "SU {raw_id} modulus is not a valid Paillier modulus ({} bits)",
                    n.bit_len()
                )));
            }
            directory.publish(SuId(raw_id), PaillierPublicKey::from_modulus(n));
        }
        r.finish()?;
        self.directory = directory;
        Ok(())
    }

    /// Audit interface: decrypts a `pk_G` cipher matrix.
    ///
    /// This models a capability the STP genuinely has (it holds `sk_G`)
    /// and is used by the equivalence tests to check that the SDC's
    /// encrypted budget matrix `Ñ` tracks the plaintext WATCH baseline.
    /// PISA's privacy argument rests on the SDC never *sending* `Ñ` to
    /// the STP — not on the STP being unable to decrypt.
    pub fn audit_decrypt_matrix(&self, m: &CipherMatrix) -> pisa_watch::IntMatrix {
        m.decrypt(self.global.secret())
    }

    /// Key conversion (Figure 5 steps 6–8): decrypts each blinded
    /// `Ṽ(c,i)`, maps it to `X = ±1` by sign (eq. 15), and re-encrypts
    /// `X` under the SU's own key.
    ///
    /// Returns the reply for the SDC together with the observation
    /// record (what a curious STP would have learned).
    ///
    /// # Errors
    ///
    /// [`PisaError::UnknownSu`] if the SU never registered a key.
    pub fn key_convert<R: Rng + ?Sized>(
        &self,
        msg: &SdcToStpMsg,
        rng: &mut R,
    ) -> Result<(StpToSdcMsg, StpObservation), PisaError> {
        let _span = pisa_obs::span("key_conversion");
        let su_pk = self
            .directory
            .lookup(msg.su_id)
            .ok_or(PisaError::UnknownSu(msg.su_id))?;

        let mut v_values = Vec::with_capacity(msg.v_matrix.len());
        let mut x_entries = Vec::with_capacity(msg.v_matrix.len());
        let base = rng.next_u64();
        let factors = self.take_su_factors(msg.su_id, msg.v_matrix.len());
        for (idx, ct) in msg.v_matrix.ciphertexts().iter().enumerate() {
            let mut erng = crate::sdc::entry_rng(base, idx);
            let v = self.global.secret().decrypt(ct);
            let x = if v.is_positive() {
                Ibig::from(1i64)
            } else {
                Ibig::from(-1i64)
            };
            x_entries.push(match factors.get(idx) {
                Some(f) => su_pk.encrypt_with_randomizer(&x, f),
                None => su_pk.encrypt(&x, &mut erng),
            });
            v_values.push(v);
        }

        Ok((
            StpToSdcMsg {
                su_id: msg.su_id,
                x_matrix: CipherMatrix::from_ciphertexts(
                    msg.v_matrix.channels(),
                    msg.v_matrix.blocks(),
                    x_entries,
                ),
                region_blocks: msg.region_blocks,
                ct_bytes: su_pk.ciphertext_bytes(),
            },
            StpObservation { v_values },
        ))
    }

    /// Parallel key conversion: the per-entry decrypt + re-encrypt work
    /// is independent, so it splits across `threads` worker threads.
    /// Entry order is preserved, and randomness is derived *per entry*
    /// from a single draw on `rng`, so the reply is byte-identical to
    /// the sequential path for any thread count.
    ///
    /// # Errors
    ///
    /// [`PisaError::UnknownSu`] if the SU never registered a key, and
    /// [`PisaError::EngineFailure`] if a worker thread panics.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn key_convert_parallel<R: Rng + ?Sized>(
        &self,
        msg: &SdcToStpMsg,
        threads: usize,
        rng: &mut R,
    ) -> Result<(StpToSdcMsg, StpObservation), PisaError> {
        assert!(threads > 0, "need at least one worker");
        let _span = pisa_obs::span("key_conversion");
        let su_pk = self
            .directory
            .lookup(msg.su_id)
            .ok_or(PisaError::UnknownSu(msg.su_id))?;

        let cts = msg.v_matrix.ciphertexts();
        let chunk_len = cts.len().div_ceil(threads).max(1);
        let base = rng.next_u64();
        // Pre-take the pooled factors before the fan-out, indexed by entry
        // order, so a pooled parallel conversion is byte-identical to the
        // pooled sequential one regardless of thread count.
        let factors = self.take_su_factors(msg.su_id, cts.len());
        let factors = &factors;

        let results: Result<Vec<(pisa_crypto::paillier::Ciphertext, Ibig)>, PisaError> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = cts
                    .chunks(chunk_len)
                    .enumerate()
                    .map(|(chunk_no, chunk)| {
                        let sk = self.global.secret();
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .enumerate()
                                .map(|(k, ct)| {
                                    let idx = chunk_no * chunk_len + k;
                                    let mut erng = crate::sdc::entry_rng(base, idx);
                                    let v = sk.decrypt(ct);
                                    let x = if v.is_positive() {
                                        Ibig::from(1i64)
                                    } else {
                                        Ibig::from(-1i64)
                                    };
                                    let ct = match factors.get(idx) {
                                        Some(f) => su_pk.encrypt_with_randomizer(&x, f),
                                        None => su_pk.encrypt(&x, &mut erng),
                                    };
                                    (ct, v)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                // Join every handle before reporting a dead worker so the
                // scope never re-raises a swallowed panic.
                let mut entries = Vec::with_capacity(cts.len());
                let mut worker_died = false;
                for handle in handles {
                    match handle.join() {
                        Ok(chunk) => entries.extend(chunk),
                        Err(_) => worker_died = true,
                    }
                }
                if worker_died {
                    return Err(PisaError::EngineFailure("key-conversion worker panicked"));
                }
                Ok(entries)
            });

        let (x_entries, v_values): (Vec<_>, Vec<_>) = results?.into_iter().unzip();
        Ok((
            StpToSdcMsg {
                su_id: msg.su_id,
                x_matrix: CipherMatrix::from_ciphertexts(
                    msg.v_matrix.channels(),
                    msg.v_matrix.blocks(),
                    x_entries,
                ),
                region_blocks: msg.region_blocks,
                ct_bytes: su_pk.ciphertext_bytes(),
            },
            StpObservation { v_values },
        ))
    }
}

/// SU-key-directory serialization format version.
const DIRECTORY_VERSION: u8 = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_crypto::paillier::PaillierKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unknown_su_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let stp = StpServer::new(&mut rng, 256);
        let msg = SdcToStpMsg {
            su_id: SuId(9),
            v_matrix: CipherMatrix::zeros(1, 1, stp.public_key()),
            region_blocks: 1,
            ct_bytes: 64,
        };
        assert_eq!(
            stp.key_convert(&msg, &mut rng).unwrap_err(),
            PisaError::UnknownSu(SuId(9))
        );
    }

    #[test]
    fn key_conversion_signs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut stp = StpServer::new(&mut rng, 256);
        let su_keys = PaillierKeyPair::generate(&mut rng, 256);
        stp.register_su(SuId(0), su_keys.public().clone());

        // Build V ciphertexts for known plaintexts.
        let pk_g = stp.public_key().clone();
        let values = [5i64, -3, 1, -1];
        let cts: Vec<_> = values
            .iter()
            .map(|&v| pk_g.encrypt(&Ibig::from(v), &mut rng))
            .collect();
        let msg = SdcToStpMsg {
            su_id: SuId(0),
            v_matrix: CipherMatrix::from_ciphertexts(2, 2, cts),
            region_blocks: 2,
            ct_bytes: pk_g.ciphertext_bytes(),
        };
        let (reply, obs) = stp.key_convert(&msg, &mut rng).unwrap();

        // Observation is the plaintext V values.
        assert_eq!(obs.v_values, values.map(Ibig::from).to_vec());
        // Reply decrypts (under the SU key) to the signs.
        let expected_signs = [1i64, -1, 1, -1];
        for (ct, want) in reply.x_matrix.ciphertexts().iter().zip(expected_signs) {
            assert_eq!(su_keys.secret().decrypt(ct), Ibig::from(want));
        }
        assert_eq!(reply.ct_bytes, su_keys.public().ciphertext_bytes());
    }

    #[test]
    fn zero_maps_to_minus_one() {
        // eq. (15): V ≤ 0 ⇒ X = −1 (β > 0 ensures V = 0 cannot occur for
        // honest SDCs, but the mapping must still be total).
        let mut rng = StdRng::seed_from_u64(3);
        let mut stp = StpServer::new(&mut rng, 256);
        let su_keys = PaillierKeyPair::generate(&mut rng, 256);
        stp.register_su(SuId(0), su_keys.public().clone());
        let ct = stp.public_key().encrypt(&Ibig::zero(), &mut rng);
        let msg = SdcToStpMsg {
            su_id: SuId(0),
            v_matrix: CipherMatrix::from_ciphertexts(1, 1, vec![ct]),
            region_blocks: 1,
            ct_bytes: 64,
        };
        let (reply, _) = stp.key_convert(&msg, &mut rng).unwrap();
        assert_eq!(
            su_keys.secret().decrypt(&reply.x_matrix.ciphertexts()[0]),
            Ibig::from(-1i64)
        );
    }

    #[test]
    fn pooled_key_convert_parallel_matches_pooled_sequential() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut stp = StpServer::new(&mut rng, 256);
        let su_keys = PaillierKeyPair::generate(&mut rng, 256);
        stp.register_su(SuId(0), su_keys.public().clone());

        let pk_g = stp.public_key().clone();
        let values = [5i64, -3, 1, -1, 9, -9];
        let cts: Vec<_> = values
            .iter()
            .map(|&v| pk_g.encrypt(&Ibig::from(v), &mut rng))
            .collect();
        let msg = SdcToStpMsg {
            su_id: SuId(0),
            v_matrix: CipherMatrix::from_ciphertexts(2, 3, cts),
            region_blocks: 3,
            ct_bytes: pk_g.ciphertext_bytes(),
        };

        // Prime the pool identically before each run so the factor stream
        // the conversion consumes is the same every time.
        let prime = |stp: &mut StpServer| {
            let pool = stp.enable_su_pool(SuId(0), values.len()).unwrap();
            let mut prng = StdRng::seed_from_u64(0xf00d);
            pool.refill(&mut prng);
        };

        prime(&mut stp);
        let mut seq_rng = StdRng::seed_from_u64(7);
        let (seq, seq_obs) = stp.key_convert(&msg, &mut seq_rng).unwrap();
        for threads in [1usize, 2, 8] {
            prime(&mut stp);
            let mut par_rng = StdRng::seed_from_u64(7);
            let (par, par_obs) = stp
                .key_convert_parallel(&msg, threads, &mut par_rng)
                .unwrap();
            assert_eq!(
                seq.x_matrix.ciphertexts(),
                par.x_matrix.ciphertexts(),
                "threads = {threads}"
            );
            assert_eq!(seq_obs.v_values, par_obs.v_values, "threads = {threads}");
        }

        // Pooled conversion still decrypts to the right signs.
        let expected_signs = [1i64, -1, 1, -1, 1, -1];
        for (ct, want) in seq.x_matrix.ciphertexts().iter().zip(expected_signs) {
            assert_eq!(su_keys.secret().decrypt(ct), Ibig::from(want));
        }
    }

    #[test]
    fn su_pool_requires_registered_key() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut stp = StpServer::new(&mut rng, 256);
        assert!(stp.enable_su_pool(SuId(3), 4).is_none());
        assert!(stp.su_pool(SuId(3)).is_none());
    }
}
