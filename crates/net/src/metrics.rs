//! Per-link traffic accounting.

use crate::transport::Party;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Traffic counters for one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
}

/// Shared traffic metrics for a [`Network`](crate::Network).
///
/// Cloning shares the counters.
#[derive(Clone, Default)]
pub struct NetMetrics {
    inner: Arc<Mutex<HashMap<(Party, Party), LinkStats>>>,
}

impl NetMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered message.
    pub fn record(&self, from: Party, to: Party, bytes: usize) {
        let mut inner = self.inner.lock();
        let stats = inner.entry((from, to)).or_default();
        stats.messages += 1;
        stats.bytes += bytes as u64;
    }

    /// Counters for one directed link, if any traffic flowed.
    pub fn link(&self, from: Party, to: Party) -> Option<LinkStats> {
        self.inner.lock().get(&(from, to)).copied()
    }

    /// Total bytes across all links.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().values().map(|s| s.bytes).sum()
    }

    /// Total messages across all links.
    pub fn total_messages(&self) -> u64 {
        self.inner.lock().values().map(|s| s.messages).sum()
    }

    /// Bytes sent *to* a party (e.g. everything the SDC received).
    pub fn bytes_to(&self, to: Party) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|((_, t), _)| *t == to)
            .map(|(_, s)| s.bytes)
            .sum()
    }

    /// Bytes sent *by* a party.
    pub fn bytes_from(&self, from: Party) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, s)| s.bytes)
            .sum()
    }

    /// Snapshot of every link, sorted by address pair.
    pub fn snapshot(&self) -> Vec<((Party, Party), LinkStats)> {
        let mut v: Vec<_> = self
            .inner
            .lock()
            .iter()
            .map(|(k, s)| (*k, *s))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Resets all counters (start of a new measured phase).
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

impl fmt::Debug for NetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NetMetrics({} msgs, {} bytes)",
            self.total_messages(),
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let m = NetMetrics::new();
        m.record(Party::Su(0), Party::Sdc, 100);
        m.record(Party::Su(0), Party::Sdc, 50);
        m.record(Party::Sdc, Party::Stp, 10);
        assert_eq!(m.total_bytes(), 160);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.bytes_to(Party::Sdc), 150);
        assert_eq!(m.bytes_from(Party::Sdc), 10);
        assert_eq!(m.link(Party::Stp, Party::Sdc), None);
    }

    #[test]
    fn snapshot_sorted_and_reset() {
        let m = NetMetrics::new();
        m.record(Party::Su(1), Party::Sdc, 1);
        m.record(Party::Pu(0), Party::Sdc, 2);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].0 < snap[1].0);
        m.reset();
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn shared_between_clones() {
        let m = NetMetrics::new();
        let m2 = m.clone();
        m.record(Party::Sdc, Party::Stp, 5);
        assert_eq!(m2.total_bytes(), 5);
    }
}
