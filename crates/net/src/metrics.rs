//! Per-link traffic accounting.

use crate::transport::Party;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Traffic counters for one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
}

/// Injected-fault counters for one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back and swapped with a later one.
    pub reordered: u64,
    /// Messages bit-flipped but still parseable (delivered mangled).
    pub corrupted: u64,
    /// Messages bit-flipped into garbage (absorbed like a drop).
    pub corrupt_dropped: u64,
}

impl FaultStats {
    /// Total faults injected on this link.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.corrupted + self.corrupt_dropped
    }

    fn add(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.corrupted += other.corrupted;
        self.corrupt_dropped += other.corrupt_dropped;
    }
}

/// Which fault the network injected (see [`FaultStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Message silently disappeared.
    Dropped,
    /// Message delivered twice.
    Duplicated,
    /// Message held back and swapped with a later one.
    Reordered,
    /// Message mangled but still parseable.
    Corrupted,
    /// Message mangled into garbage and absorbed.
    CorruptDropped,
}

/// Resilience counters for one protocol session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Requests re-sent after a lost or late reply.
    pub retries: u64,
    /// `recv_timeout` deadlines that expired.
    pub timeouts: u64,
    /// Malformed or out-of-order messages rejected.
    pub rejected: u64,
}

impl SessionStats {
    fn add(&mut self, other: &SessionStats) {
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.rejected += other.rejected;
    }
}

/// Shared traffic metrics for a [`Network`](crate::Network).
///
/// Cloning shares the counters.
#[derive(Clone, Default)]
pub struct NetMetrics {
    inner: Arc<Mutex<HashMap<(Party, Party), LinkStats>>>,
    faults: Arc<Mutex<HashMap<(Party, Party), FaultStats>>>,
    sessions: Arc<Mutex<HashMap<u64, SessionStats>>>,
}

impl NetMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered message.
    pub fn record(&self, from: Party, to: Party, bytes: usize) {
        let mut inner = self.inner.lock();
        let stats = inner.entry((from, to)).or_default();
        stats.messages += 1;
        stats.bytes += bytes as u64;
    }

    /// Counters for one directed link, if any traffic flowed.
    pub fn link(&self, from: Party, to: Party) -> Option<LinkStats> {
        self.inner.lock().get(&(from, to)).copied()
    }

    /// Total bytes across all links.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().values().map(|s| s.bytes).sum()
    }

    /// Total messages across all links.
    pub fn total_messages(&self) -> u64 {
        self.inner.lock().values().map(|s| s.messages).sum()
    }

    /// Bytes sent *to* a party (e.g. everything the SDC received).
    pub fn bytes_to(&self, to: Party) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|((_, t), _)| *t == to)
            .map(|(_, s)| s.bytes)
            .sum()
    }

    /// Bytes sent *by* a party.
    pub fn bytes_from(&self, from: Party) -> u64 {
        self.inner
            .lock()
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, s)| s.bytes)
            .sum()
    }

    /// Snapshot of every link, sorted by address pair.
    pub fn snapshot(&self) -> Vec<((Party, Party), LinkStats)> {
        let mut v: Vec<_> = self.inner.lock().iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Records one injected fault on a directed link.
    pub fn record_fault(&self, from: Party, to: Party, kind: FaultKind) {
        let mut faults = self.faults.lock();
        let stats = faults.entry((from, to)).or_default();
        match kind {
            FaultKind::Dropped => stats.dropped += 1,
            FaultKind::Duplicated => stats.duplicated += 1,
            FaultKind::Reordered => stats.reordered += 1,
            FaultKind::Corrupted => stats.corrupted += 1,
            FaultKind::CorruptDropped => stats.corrupt_dropped += 1,
        }
    }

    /// Fault counters for one directed link, if any fault fired there.
    pub fn link_faults(&self, from: Party, to: Party) -> Option<FaultStats> {
        self.faults.lock().get(&(from, to)).copied()
    }

    /// Faults absorbed across all links.
    pub fn fault_totals(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for stats in self.faults.lock().values() {
            total.add(stats);
        }
        total
    }

    /// Records one request retry for `session`.
    pub fn record_session_retry(&self, session: u64) {
        self.sessions.lock().entry(session).or_default().retries += 1;
    }

    /// Records one expired receive deadline for `session`.
    pub fn record_session_timeout(&self, session: u64) {
        self.sessions.lock().entry(session).or_default().timeouts += 1;
    }

    /// Records one rejected (malformed / out-of-order) message for
    /// `session`.
    pub fn record_session_reject(&self, session: u64) {
        self.sessions.lock().entry(session).or_default().rejected += 1;
    }

    /// Resilience counters for one session, if it reported anything.
    pub fn session(&self, session: u64) -> Option<SessionStats> {
        self.sessions.lock().get(&session).copied()
    }

    /// Resilience counters summed over every session.
    pub fn session_totals(&self) -> SessionStats {
        let mut total = SessionStats::default();
        for stats in self.sessions.lock().values() {
            total.add(stats);
        }
        total
    }

    /// Per-session counters, sorted by session id.
    pub fn session_snapshot(&self) -> Vec<(u64, SessionStats)> {
        let mut v: Vec<_> = self.sessions.lock().iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Resets all counters (start of a new measured phase).
    pub fn reset(&self) {
        self.inner.lock().clear();
        self.faults.lock().clear();
        self.sessions.lock().clear();
    }
}

impl fmt::Debug for NetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NetMetrics({} msgs, {} bytes)",
            self.total_messages(),
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let m = NetMetrics::new();
        m.record(Party::Su(0), Party::Sdc, 100);
        m.record(Party::Su(0), Party::Sdc, 50);
        m.record(Party::Sdc, Party::Stp, 10);
        assert_eq!(m.total_bytes(), 160);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.bytes_to(Party::Sdc), 150);
        assert_eq!(m.bytes_from(Party::Sdc), 10);
        assert_eq!(m.link(Party::Stp, Party::Sdc), None);
    }

    #[test]
    fn snapshot_sorted_and_reset() {
        let m = NetMetrics::new();
        m.record(Party::Su(1), Party::Sdc, 1);
        m.record(Party::Pu(0), Party::Sdc, 2);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].0 < snap[1].0);
        m.reset();
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn shared_between_clones() {
        let m = NetMetrics::new();
        let m2 = m.clone();
        m.record(Party::Sdc, Party::Stp, 5);
        assert_eq!(m2.total_bytes(), 5);
    }

    #[test]
    fn fault_counters_accumulate() {
        let m = NetMetrics::new();
        m.record_fault(Party::Su(0), Party::Sdc, FaultKind::Dropped);
        m.record_fault(Party::Su(0), Party::Sdc, FaultKind::Dropped);
        m.record_fault(Party::Su(0), Party::Sdc, FaultKind::Corrupted);
        m.record_fault(Party::Sdc, Party::Stp, FaultKind::Duplicated);
        m.record_fault(Party::Sdc, Party::Stp, FaultKind::Reordered);
        m.record_fault(Party::Sdc, Party::Stp, FaultKind::CorruptDropped);
        let link = m.link_faults(Party::Su(0), Party::Sdc).unwrap();
        assert_eq!(link.dropped, 2);
        assert_eq!(link.corrupted, 1);
        let totals = m.fault_totals();
        assert_eq!(totals.total(), 6);
        assert_eq!(totals.duplicated, 1);
        assert_eq!(m.link_faults(Party::Stp, Party::Sdc), None);
    }

    #[test]
    fn session_counters_accumulate() {
        let m = NetMetrics::new();
        m.record_session_retry(3);
        m.record_session_retry(3);
        m.record_session_timeout(3);
        m.record_session_reject(7);
        assert_eq!(
            m.session(3),
            Some(SessionStats {
                retries: 2,
                timeouts: 1,
                rejected: 0
            })
        );
        let totals = m.session_totals();
        assert_eq!(totals.retries, 2);
        assert_eq!(totals.rejected, 1);
        let snap = m.session_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].0 < snap[1].0);
        m.reset();
        assert_eq!(m.session_totals(), SessionStats::default());
        assert_eq!(m.fault_totals(), FaultStats::default());
    }
}
