//! Simulated message transport for the PISA parties.
//!
//! The paper's prototype connects four kinds of parties — PUs, SUs, the
//! SDC server and the STP — over a network whose *communication
//! overhead* is one of the two evaluation criteria (§VI-A: a 29 MB
//! request, a 0.05 MB PU update, a 4.1 kb response). This crate provides
//! an in-memory network with:
//!
//! * typed party addresses ([`Party`]),
//! * reliable in-order delivery over [`crossbeam`] channels,
//! * per-link byte and message accounting ([`NetMetrics`]) driven by the
//!   [`WireSize`] trait,
//! * a configurable latency model ([`LatencyModel`]) for estimating
//!   end-to-end protocol latency from the accounted traffic, and
//! * deterministic, seedable fault injection ([`FaultConfig`]) with
//!   per-link drop/duplicate/reorder/corrupt probabilities and
//!   absorbed-fault counters surfaced through [`NetMetrics`].
//!
//! # Examples
//!
//! ```
//! use pisa_net::{Network, Party, WireSize};
//!
//! #[derive(Clone)]
//! struct Ping(Vec<u8>);
//! impl WireSize for Ping {
//!     fn wire_bytes(&self) -> usize { self.0.len() }
//! }
//!
//! let net: Network<Ping> = Network::new();
//! let sdc = net.endpoint(Party::Sdc);
//! let stp = net.endpoint(Party::Stp);
//! sdc.send(Party::Stp, Ping(vec![0; 128]));
//! assert_eq!(stp.recv().unwrap().payload.0.len(), 128);
//! assert_eq!(net.metrics().total_bytes(), 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod error;
mod fault;
mod latency;
mod metrics;
pub mod socket;
mod transport;

pub use error::NetError;
pub use fault::{link_stream_seed, Corruptor, FaultConfig, FaultDraw, FaultLottery, FaultPlan};
pub use latency::LatencyModel;
pub use metrics::{FaultKind, FaultStats, LinkStats, NetMetrics, SessionStats};
pub use socket::{
    FrameCodec, SocketConfig, SocketEndpoint, SocketError, SocketEvent, SocketFaults, SocketNode,
};
pub use transport::{Endpoint, Envelope, Network, Party, Transport};

/// Serialized size of a message on the wire, in bytes.
///
/// PISA messages are dominated by Paillier ciphertexts of a fixed width
/// (`2·|n|` bits), so sizes are computed analytically rather than by
/// running a serializer — exactly how the paper reports its
/// communication numbers.
pub trait WireSize {
    /// Number of bytes this message occupies on the wire.
    fn wire_bytes(&self) -> usize;
}

impl WireSize for Vec<u8> {
    fn wire_bytes(&self) -> usize {
        self.len()
    }
}
