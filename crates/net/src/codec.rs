//! Binary wire codec primitives.
//!
//! A minimal length-prefixed framing layer on [`bytes`]: big-endian
//! fixed-width integers and `u32`-length-prefixed byte strings. The PISA
//! message types in `pisa-core` build their wire format from these
//! primitives, so the 29 MB request of Figure 6 is a real byte string,
//! not just an accounting fiction.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Hard ceiling on any single length-prefixed field or framed message.
///
/// 64 MiB comfortably fits the paper's 29 MB Figure-6 request while keeping a
/// corrupted 4-byte prefix off a socket from forcing a multi-GiB allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Errors produced while encoding or decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// Bytes remained after the frame was fully decoded.
    TrailingBytes(usize),
    /// An unknown message tag.
    BadTag(u8),
    /// A length prefix exceeded the remaining buffer (or a sanity cap).
    BadLength(u64),
    /// A length exceeded the frame-size ceiling (limit in `.1`).
    Oversized(u64, u64),
    /// A decoded value violated an invariant (context in the message).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => f.write_str("unexpected end of frame"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            CodecError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            CodecError::Oversized(n, max) => {
                write!(f, "length {n} exceeds frame ceiling {max}")
            }
            CodecError::Invalid(msg) => write!(f, "invalid field: {msg}"),
        }
    }
}

impl Error for CodecError {}

/// A frame writer.
///
/// # Examples
///
/// ```
/// use pisa_net::codec::{Writer, Reader};
///
/// let mut w = Writer::new();
/// w.put_u32(7);
/// w.put_bytes(b"abc").unwrap();
/// let frame = w.finish();
///
/// let mut r = Reader::new(&frame);
/// assert_eq!(r.get_u32().unwrap(), 7);
/// assert_eq!(r.get_bytes().unwrap(), b"abc");
/// r.finish().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// An empty frame.
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::new(),
        }
    }

    /// A frame with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends a byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Appends a `u32`-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Oversized`] if `v` exceeds [`MAX_FRAME_LEN`]: a frame
    /// that the hardened reader would refuse must not be encodable either.
    pub fn put_bytes(&mut self, v: &[u8]) -> Result<(), CodecError> {
        let oversized = CodecError::Oversized(v.len() as u64, MAX_FRAME_LEN as u64);
        if v.len() > MAX_FRAME_LEN {
            return Err(oversized);
        }
        // MAX_FRAME_LEN < u32::MAX, so the check above makes this infallible.
        let Ok(len) = u32::try_from(v.len()) else {
            return Err(oversized);
        };
        self.put_u32(len);
        self.buf.put_slice(v);
        Ok(())
    }

    /// Appends raw bytes without a length prefix (fixed-width fields).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Current frame length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before anything was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes the frame.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A frame reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    max_bytes: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a received frame with the default [`MAX_FRAME_LEN`] ceiling.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            max_bytes: MAX_FRAME_LEN,
        }
    }

    /// Wraps a received frame with a custom byte-string ceiling.
    ///
    /// Length prefixes above `max_bytes` are rejected with
    /// [`CodecError::Oversized`] before any allocation or slicing happens.
    pub fn with_limit(buf: &'a [u8], max_bytes: usize) -> Self {
        Reader { buf, max_bytes }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if empty.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        if self.buf.remaining() < 1 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(self.buf.get_u8())
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] on a short buffer.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        if self.buf.remaining() < 4 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(self.buf.get_u32())
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] on a short buffer.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        if self.buf.remaining() < 8 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(self.buf.get_u64())
    }

    /// Reads a `u32`-length-prefixed byte string.
    ///
    /// The decoded prefix is untrusted input: it is checked against the
    /// reader's ceiling *before* it is used, so a corrupted prefix off a
    /// socket cannot force an oversized allocation or slice.
    ///
    /// # Errors
    ///
    /// [`CodecError::Oversized`] if the prefix exceeds the ceiling, and
    /// [`CodecError::BadLength`] if it overruns the buffer.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = u64::from(self.get_u32()?);
        if len > self.max_bytes as u64 {
            return Err(CodecError::Oversized(len, self.max_bytes as u64));
        }
        // Bounded by max_bytes (a usize), so the conversion is infallible.
        let Ok(len) = usize::try_from(len) else {
            return Err(CodecError::BadLength(len));
        };
        if self.buf.remaining() < len {
            return Err(CodecError::BadLength(len as u64));
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Reads exactly `len` raw bytes (fixed-width fields).
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] on a short buffer.
    pub fn get_raw(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.remaining() < len {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Asserts the frame was fully consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] if bytes remain.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = Writer::new();
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_bytes(b"hello").unwrap();
        w.put_bytes(b"").unwrap();
        w.put_raw(&[1, 2, 3]);
        let frame = w.finish();

        let mut r = Reader::new(&frame);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_bytes().unwrap(), b"");
        assert_eq!(r.get_raw(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn eof_detection() {
        let frame = {
            let mut w = Writer::new();
            w.put_u32(5);
            w.finish()
        };
        let mut r = Reader::new(&frame);
        assert_eq!(r.get_u64().unwrap_err(), CodecError::UnexpectedEof);
        // The u32 length prefix claims 5 bytes but none follow.
        let mut r = Reader::new(&frame);
        assert_eq!(r.get_bytes().unwrap_err(), CodecError::BadLength(5));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let frame = w.finish();
        let mut r = Reader::new(&frame);
        let _ = r.get_u8().unwrap();
        assert_eq!(r.finish().unwrap_err(), CodecError::TrailingBytes(1));
    }

    #[test]
    fn display_messages() {
        assert!(CodecError::BadTag(7).to_string().contains("0x07"));
        assert!(CodecError::TrailingBytes(3).to_string().contains('3'));
        assert!(CodecError::Oversized(99, 10).to_string().contains("99"));
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        // A hostile 4-byte prefix claiming ~4 GiB must fail fast with
        // Oversized, not BadLength (and certainly not an allocation).
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let frame = w.finish();
        let mut r = Reader::new(&frame);
        assert_eq!(
            r.get_bytes().unwrap_err(),
            CodecError::Oversized(u64::from(u32::MAX), MAX_FRAME_LEN as u64)
        );
    }

    #[test]
    fn custom_limit_enforced() {
        let mut w = Writer::new();
        w.put_bytes(b"hello world").unwrap();
        let frame = w.finish();

        let mut r = Reader::with_limit(&frame, 4);
        assert_eq!(r.get_bytes().unwrap_err(), CodecError::Oversized(11, 4));

        let mut r = Reader::with_limit(&frame, 11);
        assert_eq!(r.get_bytes().unwrap(), b"hello world");
    }

    #[test]
    fn writer_rejects_oversized_field() {
        // Zero-filled vec keeps this cheap; the point is the length check.
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let mut w = Writer::new();
        assert_eq!(
            w.put_bytes(&huge).unwrap_err(),
            CodecError::Oversized(MAX_FRAME_LEN as u64 + 1, MAX_FRAME_LEN as u64)
        );
    }
}
