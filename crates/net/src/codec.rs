//! Binary wire codec primitives.
//!
//! A minimal length-prefixed framing layer on [`bytes`]: big-endian
//! fixed-width integers and `u32`-length-prefixed byte strings. The PISA
//! message types in `pisa-core` build their wire format from these
//! primitives, so the 29 MB request of Figure 6 is a real byte string,
//! not just an accounting fiction.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Errors produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// Bytes remained after the frame was fully decoded.
    TrailingBytes(usize),
    /// An unknown message tag.
    BadTag(u8),
    /// A length prefix exceeded the remaining buffer (or a sanity cap).
    BadLength(u64),
    /// A decoded value violated an invariant (context in the message).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => f.write_str("unexpected end of frame"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            CodecError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            CodecError::Invalid(msg) => write!(f, "invalid field: {msg}"),
        }
    }
}

impl Error for CodecError {}

/// A frame writer.
///
/// # Examples
///
/// ```
/// use pisa_net::codec::{Writer, Reader};
///
/// let mut w = Writer::new();
/// w.put_u32(7);
/// w.put_bytes(b"abc");
/// let frame = w.finish();
///
/// let mut r = Reader::new(&frame);
/// assert_eq!(r.get_u32().unwrap(), 7);
/// assert_eq!(r.get_bytes().unwrap(), b"abc");
/// r.finish().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// An empty frame.
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::new(),
        }
    }

    /// A frame with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends a byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Appends a `u32`-length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `u32::MAX` bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(u32::try_from(v.len()).expect("field under 4 GiB"));
        self.buf.put_slice(v);
    }

    /// Appends raw bytes without a length prefix (fixed-width fields).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Current frame length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before anything was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes the frame.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A frame reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a received frame.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if empty.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        if self.buf.remaining() < 1 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(self.buf.get_u8())
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] on a short buffer.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        if self.buf.remaining() < 4 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(self.buf.get_u32())
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] on a short buffer.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        if self.buf.remaining() < 8 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(self.buf.get_u64())
    }

    /// Reads a `u32`-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadLength`] if the prefix overruns the buffer.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        if self.buf.remaining() < len {
            return Err(CodecError::BadLength(len as u64));
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Reads exactly `len` raw bytes (fixed-width fields).
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] on a short buffer.
    pub fn get_raw(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.remaining() < len {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Asserts the frame was fully consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] if bytes remain.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = Writer::new();
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_bytes(b"hello");
        w.put_bytes(b"");
        w.put_raw(&[1, 2, 3]);
        let frame = w.finish();

        let mut r = Reader::new(&frame);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_bytes().unwrap(), b"");
        assert_eq!(r.get_raw(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn eof_detection() {
        let frame = {
            let mut w = Writer::new();
            w.put_u32(5);
            w.finish()
        };
        let mut r = Reader::new(&frame);
        assert_eq!(r.get_u64().unwrap_err(), CodecError::UnexpectedEof);
        // The u32 length prefix claims 5 bytes but none follow.
        let mut r = Reader::new(&frame);
        assert_eq!(r.get_bytes().unwrap_err(), CodecError::BadLength(5));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let frame = w.finish();
        let mut r = Reader::new(&frame);
        let _ = r.get_u8().unwrap();
        assert_eq!(r.finish().unwrap_err(), CodecError::TrailingBytes(1));
    }

    #[test]
    fn display_messages() {
        assert!(CodecError::BadTag(7).to_string().contains("0x07"));
        assert!(CodecError::TrailingBytes(3).to_string().contains('3'));
    }
}
