//! Socket-layer fault injection.
//!
//! The same seeded drop/duplicate/reorder/corrupt knobs as the
//! in-memory [`Network`](crate::Network), applied to **encoded envelope
//! bytes** just before they are written to a TCP stream. The pipeline
//! mirrors `Network::deliver` stage for stage (latency → drop → corrupt
//! → reorder holdback → duplicate), drawing from the identical per-link
//! [`FaultLottery`] streams, so a storm over real sockets sees the same
//! fault sequence per link as the threaded engine with the same seed.
//!
//! Corruption flips one tweak-chosen bit of the *payload* region — the
//! exact bytes the in-memory corruption oracle flips — then asks the
//! caller whether the mangled payload still parses: if yes the frame is
//! delivered wrong-but-well-formed (the protocol layer must reject it),
//! if no the frame is absorbed like a drop, counted separately.

use super::frame::ENVELOPE_HEADER_BYTES;
use crate::fault::{FaultConfig, FaultLottery};
use crate::metrics::{FaultKind, NetMetrics};
use crate::transport::Party;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Seeded fault pipeline for one process's outbound socket traffic.
pub struct SocketFaults {
    config: FaultConfig,
    lottery: Mutex<FaultLottery>,
    holdback: Mutex<HashMap<(Party, Party), Vec<u8>>>,
    metrics: NetMetrics,
}

impl std::fmt::Debug for SocketFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SocketFaults(seed {})", self.config.seed)
    }
}

impl SocketFaults {
    /// A pipeline drawing from `config`'s seed, counting into `metrics`.
    pub fn new(config: FaultConfig, metrics: NetMetrics) -> Self {
        SocketFaults {
            lottery: Mutex::new(FaultLottery::new(config.clone())),
            config,
            holdback: Mutex::new(HashMap::new()),
            metrics,
        }
    }

    /// The fault policy this pipeline draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Runs one encoded envelope through the pipeline and returns the
    /// frames to actually write, in order (possibly none: dropped,
    /// absorbed, or held back; possibly several: duplicate and/or a
    /// released held-back frame).
    ///
    /// `payload_parses` is the corruption oracle's decode check over the
    /// payload region of a mangled envelope.
    pub fn apply(
        &self,
        from: Party,
        to: Party,
        frame: Vec<u8>,
        payload_parses: &dyn Fn(&[u8]) -> bool,
    ) -> Vec<Vec<u8>> {
        if let Some(model) = self.config.latency {
            let payload = frame.len().saturating_sub(ENVELOPE_HEADER_BYTES);
            std::thread::sleep(model.transfer_time(payload as u64, 1));
        }
        let draw = self.lottery.lock().draw(from, to);
        if draw.dropped {
            self.metrics.record_fault(from, to, FaultKind::Dropped);
            return Vec::new();
        }
        let mut frame = frame;
        if let Some(tweak) = draw.corrupt {
            match corrupt_envelope(&frame, tweak, payload_parses) {
                Some(mangled) => {
                    self.metrics.record_fault(from, to, FaultKind::Corrupted);
                    frame = mangled;
                }
                None => {
                    self.metrics
                        .record_fault(from, to, FaultKind::CorruptDropped);
                    return Vec::new();
                }
            }
        }
        // Reorder = hold one frame back and release it after the next
        // send on the same link (a one-slot swap), as in-memory.
        let held = self.holdback.lock().remove(&(from, to));
        if draw.reordered && held.is_none() {
            self.metrics.record_fault(from, to, FaultKind::Reordered);
            self.holdback.lock().insert((from, to), frame);
            return Vec::new();
        }
        let mut out = Vec::with_capacity(3);
        if draw.duplicated {
            self.metrics.record_fault(from, to, FaultKind::Duplicated);
            out.push(frame.clone());
        }
        out.push(frame);
        if let Some(prev) = held {
            out.push(prev);
        }
        out
    }

    /// Removes and returns every held-back frame with its link, so a
    /// shutting-down node can flush stragglers.
    pub fn drain_held(&self) -> Vec<((Party, Party), Vec<u8>)> {
        self.holdback.lock().drain().collect()
    }
}

/// Flips the tweak-chosen bit of the envelope's payload region; returns
/// `None` (absorb) if the payload is empty or no longer parses.
fn corrupt_envelope(
    frame: &[u8],
    tweak: u64,
    payload_parses: &dyn Fn(&[u8]) -> bool,
) -> Option<Vec<u8>> {
    let payload_len = frame.len().checked_sub(ENVELOPE_HEADER_BYTES)?;
    let nbits = (payload_len as u64).saturating_mul(8);
    if nbits == 0 {
        return None;
    }
    let bit = usize::try_from(tweak % nbits).unwrap_or(0);
    let mut mangled = frame.to_vec();
    let byte = mangled.get_mut(ENVELOPE_HEADER_BYTES + bit / 8)?;
    *byte ^= 1 << (bit % 8);
    let payload = mangled.get(ENVELOPE_HEADER_BYTES..)?;
    if payload_parses(payload) {
        Some(mangled)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::socket::frame::{encode_envelope, FrameKind};

    fn faults(plan: FaultPlan, seed: u64) -> SocketFaults {
        SocketFaults::new(
            FaultConfig::new(seed).with_default_plan(plan),
            NetMetrics::new(),
        )
    }

    fn env(payload: &[u8]) -> Vec<u8> {
        encode_envelope(FrameKind::Data, Party::Su(0), Party::Sdc, payload)
    }

    #[test]
    fn quiet_pipeline_passes_through() {
        let f = faults(FaultPlan::none(), 1);
        let frame = env(b"abc");
        let out = f.apply(Party::Su(0), Party::Sdc, frame.clone(), &|_| true);
        assert_eq!(out, vec![frame]);
    }

    #[test]
    fn drop_absorbs_frame() {
        let f = faults(FaultPlan::none().with_drop(1.0), 2);
        assert!(f
            .apply(Party::Su(0), Party::Sdc, env(b"abc"), &|_| true)
            .is_empty());
        assert_eq!(f.metrics.fault_totals().dropped, 1);
    }

    #[test]
    fn duplicate_writes_twice() {
        let f = faults(FaultPlan::none().with_duplicate(1.0), 3);
        let frame = env(b"abc");
        let out = f.apply(Party::Su(0), Party::Sdc, frame.clone(), &|_| true);
        assert_eq!(out, vec![frame.clone(), frame]);
        assert_eq!(f.metrics.fault_totals().duplicated, 1);
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        let f = faults(FaultPlan::none().with_reorder(1.0), 4);
        let a = env(b"first");
        let b = env(b"second");
        assert!(f
            .apply(Party::Su(0), Party::Sdc, a.clone(), &|_| true)
            .is_empty());
        let out = f.apply(Party::Su(0), Party::Sdc, b.clone(), &|_| true);
        assert_eq!(out, vec![b, a]);
    }

    #[test]
    fn drain_recovers_stranded_holdback() {
        let f = faults(FaultPlan::none().with_reorder(1.0), 5);
        let a = env(b"stranded");
        assert!(f
            .apply(Party::Su(0), Party::Sdc, a.clone(), &|_| true)
            .is_empty());
        let held = f.drain_held();
        assert_eq!(held, vec![((Party::Su(0), Party::Sdc), a)]);
    }

    #[test]
    fn corruption_flips_exactly_one_payload_bit() {
        let f = faults(FaultPlan::none().with_corrupt(1.0), 6);
        let frame = env(&[0u8; 8]);
        let out = f.apply(Party::Su(0), Party::Sdc, frame.clone(), &|_| true);
        assert_eq!(out.len(), 1);
        let header_same = out[0][..ENVELOPE_HEADER_BYTES] == frame[..ENVELOPE_HEADER_BYTES];
        assert!(header_same, "corruption must not touch the header");
        let flipped: u32 = out[0][ENVELOPE_HEADER_BYTES..]
            .iter()
            .map(|b| b.count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(f.metrics.fault_totals().corrupted, 1);
    }

    #[test]
    fn unparseable_corruption_is_absorbed() {
        let f = faults(FaultPlan::none().with_corrupt(1.0), 7);
        let out = f.apply(Party::Su(0), Party::Sdc, env(&[0u8; 8]), &|_| false);
        assert!(out.is_empty());
        assert_eq!(f.metrics.fault_totals().corrupt_dropped, 1);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| {
            let f = faults(FaultPlan::uniform(0.3), seed);
            (0..64)
                .map(|i| {
                    f.apply(Party::Su(0), Party::Sdc, env(&[i]), &|_| true)
                        .len()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0xabc), run(0xabc));
        assert_ne!(run(0xabc), run(0xdef));
    }
}
