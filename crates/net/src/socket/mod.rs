//! Framed TCP transport for PISA parties.
//!
//! The in-memory [`Network`](crate::Network) keeps all four parties in
//! one address space — fine for measurement, wrong for the paper's
//! trust model, where SU, SDC and STP are *separate trust domains*.
//! This module promotes the wire codec to a real socket protocol so a
//! storm can run as three processes on loopback or across hosts:
//!
//! * [`frame`] — `u32` length-prefixed frames with a hard size ceiling,
//!   an incremental [`FrameBuffer`] deframer, and the envelope format
//!   (kind, from-party, to-party, payload);
//! * [`SocketFaults`] — the seeded drop/dup/reorder/corrupt pipeline
//!   applied to encoded bytes at the sender, mirroring the in-memory
//!   fault semantics stage for stage;
//! * [`SocketNode`] — listener + per-peer connection pool with
//!   reconnect/backoff, reader threads, learned reply routes, in-band
//!   graceful shutdown, and a [`Transport`](crate::Transport) adapter
//!   ([`SocketEndpoint`]) so the session engines run unmodified.
//!
//! Everything is `std` networking — no new dependencies.

mod faults;
pub mod frame;
mod node;

pub use faults::SocketFaults;
pub use frame::{FrameBuffer, FrameCodec};
pub use node::{SocketEndpoint, SocketEvent, SocketNode};

use crate::codec::{CodecError, MAX_FRAME_LEN};
use crate::transport::Party;
use crate::NetError;
use std::time::Duration;

/// Tuning knobs for a [`SocketNode`].
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Ceiling on any frame accepted or written (default
    /// [`MAX_FRAME_LEN`]).
    pub max_frame: usize,
    /// Read timeout slice per connection: how often reader threads wake
    /// to check the stop flag.
    pub read_poll: Duration,
    /// Accept-loop poll interval while no connection is pending.
    pub accept_poll: Duration,
    /// Dial attempts before a connect fails.
    pub connect_attempts: u32,
    /// Base backoff between dial attempts (doubles, capped at 16×).
    pub connect_backoff: Duration,
    /// Read buffer chunk size.
    pub read_chunk: usize,
    /// Write timeout on every stream. The sender holds the per-connection
    /// mutex across `write_frame`; without a bound, a peer that stops
    /// draining (zero TCP window) parks the writer — and every thread
    /// queued on that connection — forever.
    pub write_timeout: Duration,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            max_frame: MAX_FRAME_LEN,
            read_poll: Duration::from_millis(50),
            accept_poll: Duration::from_millis(5),
            connect_attempts: 40,
            connect_backoff: Duration::from_millis(25),
            read_chunk: 64 * 1024,
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Errors from the socket transport.
#[derive(Debug)]
#[non_exhaustive]
pub enum SocketError {
    /// An operating-system I/O failure.
    Io(std::io::ErrorKind),
    /// Encoding or deframing failed.
    Codec(CodecError),
    /// No dialable peer or learned route for the recipient.
    NoRoute(Party),
    /// The node is shutting down.
    Stopped,
}

impl SocketError {
    /// Maps onto the [`Transport`](crate::Transport) error surface.
    pub fn into_net_error(self, to: Party) -> NetError {
        match self {
            SocketError::Io(kind) => NetError::Socket(kind),
            SocketError::Codec(_) => NetError::Socket(std::io::ErrorKind::InvalidData),
            SocketError::NoRoute(p) => NetError::UnknownParty(p),
            SocketError::Stopped => NetError::Disconnected(to),
        }
    }
}

impl std::fmt::Display for SocketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketError::Io(kind) => write!(f, "socket I/O error: {kind:?}"),
            SocketError::Codec(e) => write!(f, "socket codec error: {e}"),
            SocketError::NoRoute(p) => write!(f, "no route to {p}"),
            SocketError::Stopped => f.write_str("socket node is shutting down"),
        }
    }
}

impl std::error::Error for SocketError {}

impl From<std::io::Error> for SocketError {
    fn from(e: std::io::Error) -> Self {
        SocketError::Io(e.kind())
    }
}

impl From<CodecError> for SocketError {
    fn from(e: CodecError) -> Self {
        SocketError::Codec(e)
    }
}
