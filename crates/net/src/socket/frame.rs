//! Length-prefixed framing and the socket envelope format.
//!
//! Every TCP segment boundary is invisible to the protocol: a stream is
//! deframed by a [`FrameBuffer`] that accumulates whatever chunk sizes
//! the kernel hands us and yields complete frames. A frame is a `u32`
//! big-endian length prefix followed by that many bytes of **envelope**:
//!
//! ```text
//! [len: u32]                         outer frame prefix (≤ max_frame)
//!   [kind: u8]                       0 = data, 1 = shutdown
//!   [from: u8 tag + u32 index]       sender party
//!   [to:   u8 tag + u32 index]       recipient party
//!   [payload: raw bytes]             FrameCodec message (data frames)
//! ```
//!
//! The length prefix is untrusted input off a socket: it is checked
//! against the configured ceiling *before* any allocation, so a hostile
//! or corrupted prefix cannot force a multi-GiB buffer.

use crate::codec::{CodecError, Reader, Writer};
use crate::transport::Party;
use bytes::Bytes;
use std::io::Write;

/// Messages that can travel as socket frame payloads.
///
/// `pisa-core` implements this for `SessionMsg`, keeping the socket
/// layer free of protocol knowledge.
pub trait FrameCodec: Sized {
    /// Serializes to the payload bytes of a data frame.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] — well-formed messages never fail.
    fn encode_frame(&self) -> Result<Bytes, CodecError>;

    /// Parses the payload bytes of a data frame.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on truncated, oversized or malformed frames.
    fn decode_frame(frame: &[u8]) -> Result<Self, CodecError>;
}

/// Byte width of the envelope header (kind + from + to).
pub const ENVELOPE_HEADER_BYTES: usize = 11;

const KIND_DATA: u8 = 0;
const KIND_SHUTDOWN: u8 = 1;

const PARTY_SDC: u8 = 1;
const PARTY_STP: u8 = 2;
const PARTY_PU: u8 = 3;
const PARTY_SU: u8 = 4;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A protocol message for the session engine.
    Data,
    /// An in-band graceful-shutdown request.
    Shutdown,
}

/// A decoded socket envelope; the payload is still raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEnvelope {
    /// Data or shutdown.
    pub kind: FrameKind,
    /// Sender address.
    pub from: Party,
    /// Recipient address.
    pub to: Party,
    /// Raw payload bytes (empty for shutdown frames).
    pub payload: Vec<u8>,
}

fn put_party(w: &mut Writer, p: Party) {
    match p {
        Party::Sdc => {
            w.put_u8(PARTY_SDC);
            w.put_u32(0);
        }
        Party::Stp => {
            w.put_u8(PARTY_STP);
            w.put_u32(0);
        }
        Party::Pu(i) => {
            w.put_u8(PARTY_PU);
            w.put_u32(i);
        }
        Party::Su(i) => {
            w.put_u8(PARTY_SU);
            w.put_u32(i);
        }
    }
}

fn get_party(r: &mut Reader<'_>) -> Result<Party, CodecError> {
    let tag = r.get_u8()?;
    let idx = r.get_u32()?;
    match tag {
        PARTY_SDC => Ok(Party::Sdc),
        PARTY_STP => Ok(Party::Stp),
        PARTY_PU => Ok(Party::Pu(idx)),
        PARTY_SU => Ok(Party::Su(idx)),
        other => Err(CodecError::BadTag(other)),
    }
}

/// Encodes an envelope (header + raw payload), without the length prefix.
pub fn encode_envelope(kind: FrameKind, from: Party, to: Party, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(ENVELOPE_HEADER_BYTES + payload.len());
    w.put_u8(match kind {
        FrameKind::Data => KIND_DATA,
        FrameKind::Shutdown => KIND_SHUTDOWN,
    });
    put_party(&mut w, from);
    put_party(&mut w, to);
    w.put_raw(payload);
    w.finish().to_vec()
}

/// Decodes an envelope produced by [`encode_envelope`].
///
/// # Errors
///
/// Any [`CodecError`] on a truncated header or unknown kind/party tag.
pub fn decode_envelope(bytes: &[u8]) -> Result<WireEnvelope, CodecError> {
    let mut r = Reader::new(bytes);
    let kind = match r.get_u8()? {
        KIND_DATA => FrameKind::Data,
        KIND_SHUTDOWN => FrameKind::Shutdown,
        other => return Err(CodecError::BadTag(other)),
    };
    let from = get_party(&mut r)?;
    let to = get_party(&mut r)?;
    let payload = r.get_raw(r.remaining())?.to_vec();
    r.finish()?;
    Ok(WireEnvelope {
        kind,
        from,
        to,
        payload,
    })
}

/// Incremental deframer for a byte stream.
///
/// Feed it arbitrary chunks with [`extend`](Self::extend) and drain
/// complete frames with [`next_frame`](Self::next_frame); partial
/// frames stay buffered until their bytes arrive. The length prefix is
/// validated against the ceiling before the frame body is awaited, so
/// an adversarial prefix fails fast instead of stalling or allocating.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameBuffer {
    /// An empty buffer enforcing `max_frame` on every length prefix.
    pub fn new(max_frame: usize) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Appends a received chunk.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, or `None` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`CodecError::Oversized`] if the pending length prefix exceeds
    /// the ceiling — the stream is poisoned and must be closed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        let Some(prefix) = self.buf.get(..4) else {
            return Ok(None);
        };
        let Ok(prefix) = <[u8; 4]>::try_from(prefix) else {
            return Ok(None);
        };
        let len = u64::from(u32::from_be_bytes(prefix));
        if len > self.max_frame as u64 {
            return Err(CodecError::Oversized(len, self.max_frame as u64));
        }
        let Ok(len) = usize::try_from(len) else {
            return Err(CodecError::BadLength(len));
        };
        let total = len.saturating_add(4);
        if self.buf.len() < total {
            return Ok(None);
        }
        // total ≥ 4 and total ≤ buf.len(), so both splits are in range.
        let rest = self.buf.split_off(total);
        let mut frame = std::mem::replace(&mut self.buf, rest);
        frame.drain(..4);
        Ok(Some(frame))
    }
}

/// Writes one length-prefixed frame to `w` as a single `write_all`.
///
/// # Errors
///
/// [`CodecError::Oversized`] (wrapped) if `frame` exceeds `max_frame`,
/// or the underlying I/O error.
pub fn write_frame<W: Write>(
    w: &mut W,
    frame: &[u8],
    max_frame: usize,
) -> Result<(), super::SocketError> {
    if frame.len() > max_frame {
        return Err(super::SocketError::Codec(CodecError::Oversized(
            frame.len() as u64,
            max_frame as u64,
        )));
    }
    let Ok(len) = u32::try_from(frame.len()) else {
        return Err(super::SocketError::Codec(CodecError::BadLength(
            frame.len() as u64,
        )));
    };
    // One buffer, one write_all: a frame is never interleaved with
    // another thread's frame as long as callers hold the stream lock.
    let mut out = Vec::with_capacity(4 + frame.len());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(frame);
    w.write_all(&out).map_err(super::SocketError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip_all_parties() {
        for party in [Party::Sdc, Party::Stp, Party::Pu(7), Party::Su(u32::MAX)] {
            let env = encode_envelope(FrameKind::Data, party, Party::Sdc, b"payload");
            let back = decode_envelope(&env).unwrap();
            assert_eq!(back.kind, FrameKind::Data);
            assert_eq!(back.from, party);
            assert_eq!(back.to, Party::Sdc);
            assert_eq!(back.payload, b"payload");
        }
        let env = encode_envelope(FrameKind::Shutdown, Party::Su(0), Party::Sdc, b"");
        assert_eq!(decode_envelope(&env).unwrap().kind, FrameKind::Shutdown);
    }

    #[test]
    fn envelope_header_width_is_declared() {
        let env = encode_envelope(FrameKind::Data, Party::Su(1), Party::Sdc, b"xyz");
        assert_eq!(env.len(), ENVELOPE_HEADER_BYTES + 3);
    }

    #[test]
    fn bad_envelope_tags_rejected() {
        let mut env = encode_envelope(FrameKind::Data, Party::Su(1), Party::Sdc, b"");
        env[0] = 9; // unknown kind
        assert!(matches!(
            decode_envelope(&env).unwrap_err(),
            CodecError::BadTag(9)
        ));
        let mut env = encode_envelope(FrameKind::Data, Party::Su(1), Party::Sdc, b"");
        env[1] = 0; // unknown party tag
        assert!(decode_envelope(&env).is_err());
        assert!(decode_envelope(&[]).is_err());
    }

    #[test]
    fn frame_buffer_reassembles_split_reads() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello", 1024).unwrap();
        write_frame(&mut wire, b"", 1024).unwrap();
        write_frame(&mut wire, &[7u8; 300], 1024).unwrap();

        // Feed one byte at a time: frames must come out intact, in order.
        let mut fb = FrameBuffer::new(1024);
        let mut out = Vec::new();
        for b in &wire {
            fb.extend(std::slice::from_ref(b));
            while let Some(frame) = fb.next_frame().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], b"hello");
        assert_eq!(out[1], b"");
        assert_eq!(out[2], vec![7u8; 300]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_prefix_poisons_stream_before_body_arrives() {
        let mut fb = FrameBuffer::new(16);
        // Claim a 1 MiB frame; only the prefix has arrived.
        fb.extend(&1_048_576u32.to_be_bytes());
        assert!(matches!(
            fb.next_frame().unwrap_err(),
            CodecError::Oversized(1_048_576, 16)
        ));
    }

    #[test]
    fn truncated_frame_stays_pending() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef", 64).unwrap();
        let mut fb = FrameBuffer::new(64);
        fb.extend(&wire[..wire.len() - 1]);
        assert_eq!(fb.next_frame().unwrap(), None);
        fb.extend(&wire[wire.len() - 1..]);
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"abcdef");
    }

    #[test]
    fn write_frame_refuses_oversized() {
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &[0u8; 32], 16).is_err());
        assert!(sink.is_empty());
    }
}
