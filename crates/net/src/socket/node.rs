//! A TCP node: listener, per-peer connection pool, reader threads.
//!
//! One [`SocketNode`] serves a whole process, whichever PISA roles it
//! hosts. Outbound routes come from two places:
//!
//! * **dialed peers** — static addresses registered with
//!   [`add_peer`](SocketNode::add_peer), connected lazily with capped
//!   exponential backoff and redialed once after a write failure;
//! * **learned routes** — every inbound data frame maps its `from`
//!   party to the connection it arrived on, so servers reply to clients
//!   without any static configuration (latest connection wins).
//!
//! Each live connection has exactly one reader thread deframing with a
//! [`FrameBuffer`] and pushing decoded messages onto the node's inbound
//! queue; writes from any thread serialize on a per-connection mutex.
//! Shutdown is in-band (a control frame), so a remote operator can
//! drain a fleet gracefully: the accept loop polls a stop flag, reader
//! threads wake on their read timeout and exit.

use super::faults::SocketFaults;
use super::frame::{
    decode_envelope, encode_envelope, write_frame, FrameBuffer, FrameCodec, FrameKind,
    ENVELOPE_HEADER_BYTES,
};
use super::{SocketConfig, SocketError};
use crate::metrics::NetMetrics;
use crate::transport::{Envelope, Party, Transport};
use crate::NetError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a node's inbound queue yields.
#[derive(Debug)]
pub enum SocketEvent<M> {
    /// A decoded protocol message.
    Frame(Envelope<M>),
    /// A peer asked this node to shut down gracefully.
    Shutdown(Party),
}

/// A pooled write handle onto one TCP connection.
#[derive(Clone)]
struct Conn {
    stream: Arc<Mutex<TcpStream>>,
}

struct NodeInner<M> {
    party: Party,
    cfg: SocketConfig,
    metrics: NetMetrics,
    faults: Option<Arc<SocketFaults>>,
    /// Write halves by party: learned from inbound frames or dialed.
    routes: Mutex<HashMap<Party, Conn>>,
    /// Static dial addresses for peers this node initiates to.
    peers: Mutex<HashMap<Party, String>>,
    inbound_tx: Sender<SocketEvent<M>>,
    inbound_rx: Receiver<SocketEvent<M>>,
    stop: AtomicBool,
    local_addr: Mutex<Option<SocketAddr>>,
}

/// One process's handle onto the PISA TCP fabric. Cheap to clone; all
/// clones share the pool, metrics and inbound queue.
pub struct SocketNode<M> {
    inner: Arc<NodeInner<M>>,
}

impl<M> Clone for SocketNode<M> {
    fn clone(&self) -> Self {
        SocketNode {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M> std::fmt::Debug for SocketNode<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SocketNode({})", self.inner.party)
    }
}

impl<M: FrameCodec + Send + 'static> SocketNode<M> {
    /// A node identified as `party`, with optional fault injection on
    /// its outbound traffic.
    pub fn new(
        party: Party,
        cfg: SocketConfig,
        metrics: NetMetrics,
        faults: Option<Arc<SocketFaults>>,
    ) -> Self {
        let (inbound_tx, inbound_rx) = unbounded();
        SocketNode {
            inner: Arc::new(NodeInner {
                party,
                cfg,
                metrics,
                faults,
                routes: Mutex::new(HashMap::new()),
                peers: Mutex::new(HashMap::new()),
                inbound_tx,
                inbound_rx,
                stop: AtomicBool::new(false),
                local_addr: Mutex::new(None),
            }),
        }
    }

    /// This node's own address.
    pub fn party(&self) -> Party {
        self.inner.party
    }

    /// The shared traffic metrics.
    pub fn metrics(&self) -> &NetMetrics {
        &self.inner.metrics
    }

    /// The fault pipeline, if one is installed.
    pub fn faults(&self) -> Option<&SocketFaults> {
        self.inner.faults.as_deref()
    }

    /// The bound listen address, once [`bind`](Self::bind) succeeded.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        *self.inner.local_addr.lock()
    }

    /// `true` once [`stop`](Self::stop) was called or a shutdown frame
    /// was processed by a service loop that called it.
    pub fn stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Registers the dial address for a peer this node initiates to.
    pub fn add_peer(&self, party: Party, addr: impl Into<String>) {
        self.inner.peers.lock().insert(party, addr.into());
    }

    /// Binds a listener and spawns the accept loop.
    ///
    /// Accepted connections get a reader thread each; their sender
    /// parties become reply routes as frames arrive.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding.
    pub fn bind(&self, addr: &str) -> Result<SocketAddr, SocketError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        *self.inner.local_addr.lock() = Some(local);
        let inner = Arc::clone(&self.inner);
        std::thread::spawn(move || accept_loop(&inner, &listener));
        Ok(local)
    }

    /// Sends `msg` from `from` to `to`, running outbound faults.
    ///
    /// A process may host many parties (e.g. 16 SU sessions pooled over
    /// one connection), so the sender address is explicit.
    ///
    /// # Errors
    ///
    /// [`SocketError::NoRoute`] if `to` is neither a registered peer
    /// nor a learned route, codec errors from encoding, or the I/O
    /// error after a failed write + redial.
    pub fn send_from(&self, from: Party, to: Party, msg: &M) -> Result<(), SocketError> {
        let payload = msg.encode_frame()?;
        let frame = encode_envelope(FrameKind::Data, from, to, &payload);
        let frames = match &self.inner.faults {
            Some(faults) => faults.apply(from, to, frame, &|bytes: &[u8]| {
                M::decode_frame(bytes).is_ok()
            }),
            None => vec![frame],
        };
        for frame in frames {
            let payload_bytes = frame.len().saturating_sub(ENVELOPE_HEADER_BYTES);
            self.write_to(to, &frame)?;
            self.inner.metrics.record(from, to, payload_bytes);
        }
        Ok(())
    }

    /// Sends an in-band shutdown request to `to` (bypasses faults:
    /// control frames must not be dropped by chaos knobs).
    ///
    /// # Errors
    ///
    /// Same as [`send_from`](Self::send_from).
    pub fn send_shutdown(&self, to: Party) -> Result<(), SocketError> {
        let frame = encode_envelope(FrameKind::Shutdown, self.inner.party, to, &[]);
        self.write_to(to, &frame)
    }

    /// Receives the next inbound event, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<SocketEvent<M>> {
        self.inner.inbound_rx.recv_timeout(timeout).ok()
    }

    /// Asks the accept loop and every reader thread to wind down (they
    /// notice within one read-poll interval).
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }

    /// A [`Transport`] view of this node for one hosted party.
    pub fn endpoint(&self, party: Party) -> SocketEndpoint<M> {
        SocketEndpoint {
            node: self.clone(),
            party,
        }
    }

    fn write_to(&self, to: Party, frame: &[u8]) -> Result<(), SocketError> {
        let conn = self.route_or_dial(to)?;
        let first = {
            let _span = pisa_obs::span("net.write");
            let mut stream = conn.stream.lock();
            // pisa-lint: allow(blocking-call): the mutex exists to serialize frame writes; the write is bounded by cfg.write_timeout set on every stream at dial/accept
            write_frame(&mut *stream, frame, self.inner.cfg.max_frame)
        };
        let Err(err) = first else {
            return Ok(());
        };
        // One redial for dialed peers; learned routes cannot be redialed
        // (the peer connects to us), so the failure surfaces and the
        // protocol's retry budget covers the lost frame.
        self.inner.routes.lock().remove(&to);
        if !self.inner.peers.lock().contains_key(&to) {
            return Err(err);
        }
        let conn = self.route_or_dial(to)?;
        let _span = pisa_obs::span("net.write");
        let mut stream = conn.stream.lock();
        // pisa-lint: allow(blocking-call): same as above — bounded by cfg.write_timeout on the redialed stream
        write_frame(&mut *stream, frame, self.inner.cfg.max_frame)
    }

    fn route_or_dial(&self, to: Party) -> Result<Conn, SocketError> {
        if let Some(conn) = self.inner.routes.lock().get(&to) {
            return Ok(conn.clone());
        }
        let addr = self
            .inner
            .peers
            .lock()
            .get(&to)
            .cloned()
            .ok_or(SocketError::NoRoute(to))?;
        let stream = self.dial(&addr)?;
        let conn = Conn {
            stream: Arc::new(Mutex::new(stream.try_clone()?)),
        };
        // Replies to a dialed peer come back on the same connection, so
        // it needs a reader thread just like an accepted one.
        let inner = Arc::clone(&self.inner);
        std::thread::spawn(move || reader_loop(&inner, stream));
        self.inner.routes.lock().insert(to, conn.clone());
        Ok(conn)
    }

    fn dial(&self, addr: &str) -> Result<TcpStream, SocketError> {
        let cfg = &self.inner.cfg;
        let mut last = SocketError::Io(std::io::ErrorKind::NotConnected);
        for attempt in 0..cfg.connect_attempts.max(1) {
            if self.stopping() {
                return Err(SocketError::Stopped);
            }
            let _span = pisa_obs::span("net.connect");
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(cfg.read_poll))?;
                    stream.set_write_timeout(Some(cfg.write_timeout))?;
                    return Ok(stream);
                }
                Err(e) => last = SocketError::from(e),
            }
            let shift = attempt.min(4);
            std::thread::sleep(cfg.connect_backoff * (1 << shift));
        }
        Err(last)
    }
}

fn accept_loop<M: FrameCodec + Send + 'static>(inner: &Arc<NodeInner<M>>, listener: &TcpListener) {
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _span = pisa_obs::span("net.accept");
                // The listener is non-blocking; accepted streams must
                // block (with a poll timeout) for the reader thread.
                let ready = stream.set_nonblocking(false).is_ok()
                    && stream.set_nodelay(true).is_ok()
                    && stream.set_read_timeout(Some(inner.cfg.read_poll)).is_ok()
                    && stream
                        .set_write_timeout(Some(inner.cfg.write_timeout))
                        .is_ok();
                if !ready {
                    continue;
                }
                let inner = Arc::clone(inner);
                std::thread::spawn(move || reader_loop(&inner, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(inner.cfg.accept_poll);
            }
            Err(_) => std::thread::sleep(inner.cfg.accept_poll),
        }
    }
}

/// Deframes one connection until EOF, error, or node stop. Every data
/// frame learns a reply route and lands on the inbound queue; frames
/// whose payload fails to decode are discarded (genuine wire damage —
/// injected corruption is classified on the sender side).
fn reader_loop<M: FrameCodec + Send + 'static>(inner: &Arc<NodeInner<M>>, mut stream: TcpStream) {
    let write_half = match stream.try_clone() {
        Ok(clone) => Conn {
            stream: Arc::new(Mutex::new(clone)),
        },
        Err(_) => return,
    };
    let mut fb = FrameBuffer::new(inner.cfg.max_frame);
    let mut chunk = vec![0u8; inner.cfg.read_chunk.max(1)];
    while !inner.stop.load(Ordering::SeqCst) {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // clean EOF
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        let _span = pisa_obs::span("net.read");
        let Some(received) = chunk.get(..n) else {
            return;
        };
        fb.extend(received);
        loop {
            let frame = match fb.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                // Oversized prefix: the stream is poisoned, close it.
                Err(_) => return,
            };
            let Ok(env) = decode_envelope(&frame) else {
                continue;
            };
            match env.kind {
                FrameKind::Shutdown => {
                    let _ = inner.inbound_tx.send(SocketEvent::Shutdown(env.from));
                }
                FrameKind::Data => {
                    inner.routes.lock().insert(env.from, write_half.clone());
                    inner.metrics.record(env.from, env.to, env.payload.len());
                    let Ok(msg) = M::decode_frame(&env.payload) else {
                        continue;
                    };
                    let _ = inner.inbound_tx.send(SocketEvent::Frame(Envelope {
                        from: env.from,
                        to: env.to,
                        payload: msg,
                    }));
                }
            }
        }
    }
}

/// A [`Transport`] adapter: one hosted party's send surface over a
/// shared [`SocketNode`], mirroring the in-memory
/// [`Endpoint`](crate::Endpoint).
pub struct SocketEndpoint<M> {
    node: SocketNode<M>,
    party: Party,
}

impl<M> std::fmt::Debug for SocketEndpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SocketEndpoint({})", self.party)
    }
}

impl<M: FrameCodec + Send + 'static> Transport<M> for SocketEndpoint<M> {
    fn party(&self) -> Party {
        self.party
    }

    fn try_send(&self, to: Party, payload: M) -> Result<(), NetError> {
        self.node
            .send_from(self.party, to, &payload)
            .map_err(|e| e.into_net_error(to))
    }
}
