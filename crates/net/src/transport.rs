//! Party addressing and in-memory message delivery.

use crate::metrics::NetMetrics;
use crate::{NetError, WireSize};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Address of a protocol party.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Party {
    /// The spectrum database controller.
    Sdc,
    /// The semi-trusted third party (key conversion service).
    Stp,
    /// A primary user (TV receiver) by index.
    Pu(u32),
    /// A secondary user by index.
    Su(u32),
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Party::Sdc => f.write_str("SDC"),
            Party::Stp => f.write_str("STP"),
            Party::Pu(i) => write!(f, "PU{i}"),
            Party::Su(i) => write!(f, "SU{i}"),
        }
    }
}

/// A delivered message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender address.
    pub from: Party,
    /// Recipient address.
    pub to: Party,
    /// The message itself.
    pub payload: M,
}

struct Mailboxes<M> {
    senders: HashMap<Party, Sender<Envelope<M>>>,
    receivers: HashMap<Party, Receiver<Envelope<M>>>,
}

/// An in-memory network connecting PISA parties.
///
/// Cloning shares the underlying mailboxes and metrics, so a network can
/// be handed to several threads.
pub struct Network<M> {
    boxes: Arc<Mutex<Mailboxes<M>>>,
    metrics: NetMetrics,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            boxes: Arc::clone(&self.boxes),
            metrics: self.metrics.clone(),
        }
    }
}

impl<M> Default for Network<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network({} bytes total)", self.metrics.total_bytes())
    }
}

impl<M> Network<M> {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network {
            boxes: Arc::new(Mutex::new(Mailboxes {
                senders: HashMap::new(),
                receivers: HashMap::new(),
            })),
            metrics: NetMetrics::new(),
        }
    }
}

impl<M: WireSize> Network<M> {
    /// Returns (creating on first use) the endpoint for `party`.
    pub fn endpoint(&self, party: Party) -> Endpoint<M> {
        let mut boxes = self.boxes.lock();
        if !boxes.senders.contains_key(&party) {
            let (tx, rx) = unbounded();
            boxes.senders.insert(party, tx);
            boxes.receivers.insert(party, rx);
        }
        Endpoint {
            party,
            net: self.clone(),
            rx: boxes.receivers[&party].clone(),
        }
    }

    /// The shared traffic metrics.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    fn deliver(&self, env: Envelope<M>) -> Result<(), NetError> {
        let bytes = env.payload.wire_bytes();
        let sender = {
            let boxes = self.boxes.lock();
            boxes
                .senders
                .get(&env.to)
                .cloned()
                .ok_or(NetError::UnknownParty(env.to))?
        };
        self.metrics.record(env.from, env.to, bytes);
        sender
            .send(env)
            .map_err(|e| NetError::Disconnected(e.into_inner().to))
    }
}

/// One party's handle onto the network.
pub struct Endpoint<M> {
    party: Party,
    net: Network<M>,
    rx: Receiver<Envelope<M>>,
}

impl<M: WireSize> Endpoint<M> {
    /// This endpoint's address.
    pub fn party(&self) -> Party {
        self.party
    }

    /// Sends `payload` to `to`, recording its wire size.
    ///
    /// # Panics
    ///
    /// Panics if the recipient endpoint was never created — PISA wires
    /// all four parties up front, so an unknown party is a programming
    /// error.
    pub fn send(&self, to: Party, payload: M) {
        self.try_send(to, payload).expect("recipient registered");
    }

    /// Sends, reporting unknown/disconnected recipients as errors.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownParty`] if `to` has no endpoint.
    pub fn try_send(&self, to: Party, payload: M) -> Result<(), NetError> {
        self.net.deliver(Envelope {
            from: self.party,
            to,
            payload,
        })
    }

    /// Receives the next message, blocking.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if every sender is gone.
    pub fn recv(&self) -> Result<Envelope<M>, NetError> {
        self.rx
            .recv()
            .map_err(|_| NetError::Disconnected(self.party))
    }

    /// Receives without blocking; `None` when the mailbox is empty.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Receives with a deadline; `None` if nothing arrives in time (the
    /// caller decides whether that is a retry or a protocol failure).
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Envelope<M>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

impl<M> fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.party)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_display() {
        assert_eq!(Party::Sdc.to_string(), "SDC");
        assert_eq!(Party::Pu(3).to_string(), "PU3");
        assert_eq!(Party::Su(0).to_string(), "SU0");
        assert_eq!(Party::Stp.to_string(), "STP");
    }

    #[test]
    fn send_recv_roundtrip() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Su(1));
        let b = net.endpoint(Party::Sdc);
        a.send(Party::Sdc, vec![1, 2, 3]);
        let env = b.recv().unwrap();
        assert_eq!(env.from, Party::Su(1));
        assert_eq!(env.payload, vec![1, 2, 3]);
    }

    #[test]
    fn in_order_delivery() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Pu(0));
        let b = net.endpoint(Party::Sdc);
        for i in 0..10u8 {
            a.send(Party::Sdc, vec![i]);
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap().payload, vec![i]);
        }
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn unknown_recipient_is_error() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Sdc);
        assert_eq!(
            a.try_send(Party::Su(9), vec![1]),
            Err(NetError::UnknownParty(Party::Su(9)))
        );
    }

    #[test]
    fn metrics_accumulate() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Su(0));
        let _b = net.endpoint(Party::Sdc);
        a.send(Party::Sdc, vec![0; 100]);
        a.send(Party::Sdc, vec![0; 28]);
        assert_eq!(net.metrics().total_bytes(), 128);
        assert_eq!(net.metrics().total_messages(), 2);
        let link = net.metrics().link(Party::Su(0), Party::Sdc).unwrap();
        assert_eq!(link.bytes, 128);
        assert_eq!(link.messages, 2);
    }

    #[test]
    fn recv_timeout_behaviour() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Sdc);
        let b = net.endpoint(Party::Stp);
        assert!(b
            .recv_timeout(std::time::Duration::from_millis(5))
            .is_none());
        a.send(Party::Stp, vec![9]);
        let env = b
            .recv_timeout(std::time::Duration::from_millis(100))
            .expect("delivered");
        assert_eq!(env.payload, vec![9]);
    }

    #[test]
    fn cross_thread_delivery() {
        let net: Network<Vec<u8>> = Network::new();
        let sdc = net.endpoint(Party::Sdc);
        let su = net.endpoint(Party::Su(0));
        let handle = std::thread::spawn(move || {
            su.send(Party::Sdc, vec![42; 7]);
        });
        let env = sdc.recv().unwrap();
        assert_eq!(env.payload.len(), 7);
        handle.join().unwrap();
    }
}
