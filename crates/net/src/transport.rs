//! Party addressing and in-memory message delivery.

use crate::fault::{Corruptor, FaultConfig, FaultState};
use crate::metrics::{FaultKind, NetMetrics};
use crate::{NetError, WireSize};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Address of a protocol party.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Party {
    /// The spectrum database controller.
    Sdc,
    /// The semi-trusted third party (key conversion service).
    Stp,
    /// A primary user (TV receiver) by index.
    Pu(u32),
    /// A secondary user by index.
    Su(u32),
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Party::Sdc => f.write_str("SDC"),
            Party::Stp => f.write_str("STP"),
            Party::Pu(i) => write!(f, "PU{i}"),
            Party::Su(i) => write!(f, "SU{i}"),
        }
    }
}

/// A delivered message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender address.
    pub from: Party,
    /// Recipient address.
    pub to: Party,
    /// The message itself.
    pub payload: M,
}

struct Mailboxes<M> {
    senders: HashMap<Party, Sender<Envelope<M>>>,
    receivers: HashMap<Party, Receiver<Envelope<M>>>,
}

/// An in-memory network connecting PISA parties.
///
/// Cloning shares the underlying mailboxes and metrics, so a network can
/// be handed to several threads.
pub struct Network<M> {
    boxes: Arc<Mutex<Mailboxes<M>>>,
    metrics: NetMetrics,
    faults: Option<Arc<FaultState<M>>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            boxes: Arc::clone(&self.boxes),
            metrics: self.metrics.clone(),
            faults: self.faults.clone(),
        }
    }
}

impl<M> Default for Network<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network({} bytes total)", self.metrics.total_bytes())
    }
}

impl<M> Network<M> {
    /// Creates an empty, fault-free network.
    pub fn new() -> Self {
        Network {
            boxes: Arc::new(Mutex::new(Mailboxes {
                senders: HashMap::new(),
                receivers: HashMap::new(),
            })),
            metrics: NetMetrics::new(),
            faults: None,
        }
    }

    /// Creates a network that injects faults according to `config`.
    pub fn with_faults(config: FaultConfig) -> Self {
        let mut net = Self::new();
        net.faults = Some(Arc::new(FaultState::new(config)));
        net
    }

    /// The fault policy, if this network injects faults.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_deref().map(FaultState::config)
    }

    /// Installs the corruption oracle: how a bit flip mangles a payload
    /// (`None` = the flipped frame no longer parses and is absorbed).
    /// No-op on a fault-free network.
    pub fn set_corruptor(&self, corruptor: Corruptor<M>) {
        if let Some(faults) = &self.faults {
            faults.set_corruptor(corruptor);
        }
    }
}

impl<M: WireSize> Network<M> {
    /// Returns (creating on first use) the endpoint for `party`.
    pub fn endpoint(&self, party: Party) -> Endpoint<M> {
        let mut boxes = self.boxes.lock();
        let rx = match boxes.receivers.get(&party) {
            Some(rx) => rx.clone(),
            // First use (or a sender somehow orphaned from its
            // receiver): wire both maps together.
            None => {
                let (tx, rx) = unbounded();
                boxes.senders.insert(party, tx);
                boxes.receivers.insert(party, rx.clone());
                rx
            }
        };
        Endpoint {
            party,
            net: self.clone(),
            rx,
        }
    }

    /// The shared traffic metrics.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Puts `env` in the recipient's mailbox, recording its wire size.
    fn deliver_direct(&self, env: Envelope<M>) -> Result<(), NetError> {
        let _span = pisa_obs::span("net.send");
        let bytes = env.payload.wire_bytes();
        let sender = {
            let boxes = self.boxes.lock();
            boxes
                .senders
                .get(&env.to)
                .cloned()
                .ok_or(NetError::UnknownParty(env.to))?
        };
        self.metrics.record(env.from, env.to, bytes);
        sender
            .send(env)
            .map_err(|e| NetError::Disconnected(e.into_inner().to))
    }
}

impl<M: WireSize + Clone> Network<M> {
    fn deliver(&self, env: Envelope<M>) -> Result<(), NetError> {
        let Some(faults) = self.faults.clone() else {
            return self.deliver_direct(env);
        };
        if let Some(model) = faults.config().latency {
            std::thread::sleep(model.transfer_time(env.payload.wire_bytes() as u64, 1));
        }
        let link = (env.from, env.to);
        let draw = faults.draw(env.from, env.to);
        if draw.dropped {
            self.metrics
                .record_fault(env.from, env.to, FaultKind::Dropped);
            return Ok(());
        }
        let mut env = env;
        if let Some(tweak) = draw.corrupt {
            // Without an oracle a bit flip always destroys the frame;
            // with one, the flip may still decode into a wrong-but-
            // well-formed message the receiver must reject itself.
            match faults.corruptor().and_then(|c| c(&env.payload, tweak)) {
                Some(mangled) => {
                    self.metrics
                        .record_fault(env.from, env.to, FaultKind::Corrupted);
                    env.payload = mangled;
                }
                None => {
                    self.metrics
                        .record_fault(env.from, env.to, FaultKind::CorruptDropped);
                    return Ok(());
                }
            }
        }
        // Reorder = hold one message back and release it after the next
        // send on the same link (a one-slot swap).
        let held = faults.take_held(link);
        if draw.reordered && held.is_none() {
            self.metrics
                .record_fault(env.from, env.to, FaultKind::Reordered);
            faults.hold(link, env);
            return Ok(());
        }
        if draw.duplicated {
            self.metrics
                .record_fault(env.from, env.to, FaultKind::Duplicated);
            self.deliver_direct(env.clone())?;
        }
        self.deliver_direct(env)?;
        if let Some(prev) = held {
            self.deliver_direct(prev)?;
        }
        Ok(())
    }

    /// Delivers every message the reorder stage is still holding back.
    /// Returns how many were flushed. No-op on a fault-free network.
    pub fn flush_holdback(&self) -> usize {
        let Some(faults) = &self.faults else { return 0 };
        let held = faults.drain_held();
        let n = held.len();
        for env in held {
            let _ = self.deliver_direct(env);
        }
        n
    }
}

/// The send surface a protocol engine needs from its network: an
/// address and a fallible send. Implemented by the threaded
/// [`Endpoint`] and by the virtual-time simulator's transport, so the
/// session engines in `pisa-core` run unmodified on either.
///
/// Receiving is *not* part of the trait: the threaded engine blocks on
/// `recv_timeout` while the simulator inverts control and pushes events
/// into the state machines, so a shared receive surface would fit
/// neither. Engines return their outbound messages instead.
pub trait Transport<M> {
    /// This transport's own address.
    fn party(&self) -> Party;

    /// Sends `payload` to `to`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownParty`] if `to` has no endpoint, or
    /// [`NetError::Disconnected`] if its receiver is gone.
    fn try_send(&self, to: Party, payload: M) -> Result<(), NetError>;
}

impl<M: WireSize + Clone> Transport<M> for Endpoint<M> {
    fn party(&self) -> Party {
        Endpoint::party(self)
    }

    fn try_send(&self, to: Party, payload: M) -> Result<(), NetError> {
        Endpoint::try_send(self, to, payload)
    }
}

/// One party's handle onto the network.
pub struct Endpoint<M> {
    party: Party,
    net: Network<M>,
    rx: Receiver<Envelope<M>>,
}

impl<M: WireSize + Clone> Endpoint<M> {
    /// This endpoint's address.
    pub fn party(&self) -> Party {
        self.party
    }

    /// Sends `payload` to `to`, recording its wire size.
    ///
    /// # Panics
    ///
    /// Panics if the recipient endpoint was never created — PISA wires
    /// all four parties up front, so an unknown party is a programming
    /// error.
    pub fn send(&self, to: Party, payload: M) {
        self.try_send(to, payload).expect("recipient registered"); // pisa-lint: allow(panic-freedom): documented contract — the in-memory harness wires all four parties up front before any traffic; fallible callers use try_send
    }

    /// Sends, reporting unknown/disconnected recipients as errors.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownParty`] if `to` has no endpoint.
    pub fn try_send(&self, to: Party, payload: M) -> Result<(), NetError> {
        self.net.deliver(Envelope {
            from: self.party,
            to,
            payload,
        })
    }

    /// Receives the next message, blocking.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if every sender is gone.
    pub fn recv(&self) -> Result<Envelope<M>, NetError> {
        let received = self
            .rx
            .recv()
            .map_err(|_| NetError::Disconnected(self.party));
        if received.is_ok() {
            // Record only successful receives: blocking time is the
            // sender's latency, but an empty poll is not a "recv".
            let _span = pisa_obs::span("net.recv");
        }
        received
    }

    /// Receives without blocking; `None` when the mailbox is empty.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Receives with a deadline; `None` if nothing arrives in time (the
    /// caller decides whether that is a retry or a protocol failure).
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Envelope<M>> {
        let received = self.rx.recv_timeout(timeout).ok();
        if received.is_some() {
            let _span = pisa_obs::span("net.recv");
        }
        received
    }
}

impl<M> fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.party)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_display() {
        assert_eq!(Party::Sdc.to_string(), "SDC");
        assert_eq!(Party::Pu(3).to_string(), "PU3");
        assert_eq!(Party::Su(0).to_string(), "SU0");
        assert_eq!(Party::Stp.to_string(), "STP");
    }

    #[test]
    fn send_recv_roundtrip() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Su(1));
        let b = net.endpoint(Party::Sdc);
        a.send(Party::Sdc, vec![1, 2, 3]);
        let env = b.recv().unwrap();
        assert_eq!(env.from, Party::Su(1));
        assert_eq!(env.payload, vec![1, 2, 3]);
    }

    #[test]
    fn in_order_delivery() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Pu(0));
        let b = net.endpoint(Party::Sdc);
        for i in 0..10u8 {
            a.send(Party::Sdc, vec![i]);
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap().payload, vec![i]);
        }
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn unknown_recipient_is_error() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Sdc);
        assert_eq!(
            a.try_send(Party::Su(9), vec![1]),
            Err(NetError::UnknownParty(Party::Su(9)))
        );
    }

    #[test]
    fn metrics_accumulate() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Su(0));
        let _b = net.endpoint(Party::Sdc);
        a.send(Party::Sdc, vec![0; 100]);
        a.send(Party::Sdc, vec![0; 28]);
        assert_eq!(net.metrics().total_bytes(), 128);
        assert_eq!(net.metrics().total_messages(), 2);
        let link = net.metrics().link(Party::Su(0), Party::Sdc).unwrap();
        assert_eq!(link.bytes, 128);
        assert_eq!(link.messages, 2);
    }

    #[test]
    fn recv_timeout_behaviour() {
        let net: Network<Vec<u8>> = Network::new();
        let a = net.endpoint(Party::Sdc);
        let b = net.endpoint(Party::Stp);
        assert!(b
            .recv_timeout(std::time::Duration::from_millis(5))
            .is_none());
        a.send(Party::Stp, vec![9]);
        let env = b
            .recv_timeout(std::time::Duration::from_millis(100))
            .expect("delivered");
        assert_eq!(env.payload, vec![9]);
    }

    #[test]
    fn faulty_network_drops_and_counts() {
        use crate::fault::{FaultConfig, FaultPlan};
        let net: Network<Vec<u8>> = Network::with_faults(
            FaultConfig::new(0xfa11).with_default_plan(FaultPlan::none().with_drop(1.0)),
        );
        let a = net.endpoint(Party::Su(0));
        let b = net.endpoint(Party::Sdc);
        for _ in 0..5 {
            a.send(Party::Sdc, vec![1, 2, 3]);
        }
        assert!(b.try_recv().is_none());
        let faults = net.metrics().link_faults(Party::Su(0), Party::Sdc).unwrap();
        assert_eq!(faults.dropped, 5);
        // Dropped messages never hit the mailbox, so no bytes accrue.
        assert_eq!(net.metrics().total_bytes(), 0);
    }

    #[test]
    fn faulty_network_duplicates() {
        use crate::fault::{FaultConfig, FaultPlan};
        let net: Network<Vec<u8>> = Network::with_faults(
            FaultConfig::new(1).with_default_plan(FaultPlan::none().with_duplicate(1.0)),
        );
        let a = net.endpoint(Party::Su(0));
        let b = net.endpoint(Party::Sdc);
        a.send(Party::Sdc, vec![7]);
        assert_eq!(b.recv().unwrap().payload, vec![7]);
        assert_eq!(b.recv().unwrap().payload, vec![7]);
        assert!(b.try_recv().is_none());
        let faults = net.metrics().fault_totals();
        assert_eq!(faults.duplicated, 1);
    }

    #[test]
    fn faulty_network_reorders_adjacent_messages() {
        use crate::fault::{FaultConfig, FaultPlan};
        let net: Network<Vec<u8>> = Network::with_faults(
            FaultConfig::new(2).with_default_plan(FaultPlan::none().with_reorder(1.0)),
        );
        let a = net.endpoint(Party::Su(0));
        let b = net.endpoint(Party::Sdc);
        a.send(Party::Sdc, vec![1]);
        a.send(Party::Sdc, vec![2]);
        // First send was held back; second send releases it after itself.
        assert_eq!(b.recv().unwrap().payload, vec![2]);
        assert_eq!(b.recv().unwrap().payload, vec![1]);
        assert!(net.metrics().fault_totals().reordered >= 1);
    }

    #[test]
    fn holdback_flush_recovers_stranded_message() {
        use crate::fault::{FaultConfig, FaultPlan};
        let net: Network<Vec<u8>> = Network::with_faults(
            FaultConfig::new(3).with_default_plan(FaultPlan::none().with_reorder(1.0)),
        );
        let a = net.endpoint(Party::Su(0));
        let b = net.endpoint(Party::Sdc);
        a.send(Party::Sdc, vec![9]);
        assert!(b.try_recv().is_none());
        assert_eq!(net.flush_holdback(), 1);
        assert_eq!(b.recv().unwrap().payload, vec![9]);
    }

    #[test]
    fn corruption_without_oracle_absorbs_frame() {
        use crate::fault::{FaultConfig, FaultPlan};
        let net: Network<Vec<u8>> = Network::with_faults(
            FaultConfig::new(4).with_default_plan(FaultPlan::none().with_corrupt(1.0)),
        );
        let a = net.endpoint(Party::Su(0));
        let b = net.endpoint(Party::Sdc);
        a.send(Party::Sdc, vec![1, 2, 3]);
        assert!(b.try_recv().is_none());
        assert_eq!(net.metrics().fault_totals().corrupt_dropped, 1);
    }

    #[test]
    fn corruption_oracle_mangles_payload() {
        use crate::fault::{FaultConfig, FaultPlan};
        use std::sync::Arc;
        let net: Network<Vec<u8>> = Network::with_faults(
            FaultConfig::new(5).with_default_plan(FaultPlan::none().with_corrupt(1.0)),
        );
        net.set_corruptor(Arc::new(|payload: &Vec<u8>, tweak| {
            let mut flipped = payload.clone();
            let bit = tweak as usize % (flipped.len() * 8);
            flipped[bit / 8] ^= 1 << (bit % 8);
            Some(flipped)
        }));
        let a = net.endpoint(Party::Su(0));
        let b = net.endpoint(Party::Sdc);
        a.send(Party::Sdc, vec![0, 0, 0, 0]);
        let env = b.recv().unwrap();
        assert_eq!(env.payload.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        assert_eq!(net.metrics().fault_totals().corrupted, 1);
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        use crate::fault::{FaultConfig, FaultPlan};
        let run = |seed: u64| {
            let net: Network<Vec<u8>> = Network::with_faults(
                FaultConfig::new(seed).with_default_plan(FaultPlan::uniform(0.3)),
            );
            let a = net.endpoint(Party::Su(0));
            let b = net.endpoint(Party::Sdc);
            for i in 0..50u8 {
                a.send(Party::Sdc, vec![i]);
            }
            net.flush_holdback();
            let mut seen = Vec::new();
            while let Some(env) = b.try_recv() {
                seen.push(env.payload[0]);
            }
            (seen, net.metrics().fault_totals())
        };
        assert_eq!(run(0xcafe), run(0xcafe));
        assert_ne!(run(0xcafe).0, run(0xbeef).0);
    }

    #[test]
    fn cross_thread_delivery() {
        let net: Network<Vec<u8>> = Network::new();
        let sdc = net.endpoint(Party::Sdc);
        let su = net.endpoint(Party::Su(0));
        let handle = std::thread::spawn(move || {
            su.send(Party::Sdc, vec![42; 7]);
        });
        let env = sdc.recv().unwrap();
        assert_eq!(env.payload.len(), 7);
        handle.join().unwrap();
    }
}
