//! Deterministic, seedable fault injection for the simulated network.
//!
//! A [`FaultConfig`] attaches independent per-link probabilities for the
//! four classic link pathologies — drop, duplicate, reorder, corrupt —
//! plus an optional [`LatencyModel`] that is applied to every delivery.
//! Randomness is drawn from a dedicated RNG stream *per directed link*,
//! each seeded from the config seed and the link addresses, so the fault
//! pattern a given sender observes is a pure function of `(seed, link,
//! send index)` and does not depend on how concurrent sessions happen to
//! interleave on other links.
//!
//! Corruption needs to know what a "bit flip the receiver may or may not
//! detect" means for the payload type, so the network owns a pluggable
//! [`Corruptor`] oracle: given the payload and 64 tweak bits it returns
//! `Some(mangled)` when the flipped frame still decodes (the receiver
//! sees a wrong-but-well-formed message and must reject it at the
//! protocol layer) or `None` when the frame no longer parses (the
//! network absorbs it like a drop, counted separately). Without an
//! oracle, corruption always destroys the frame.

use crate::transport::{Envelope, Party};
use crate::LatencyModel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-link fault probabilities, each independently in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability a message silently disappears.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is held back and swapped with the next one
    /// on the same link.
    pub reorder: f64,
    /// Probability a message is bit-flipped in transit.
    pub corrupt: f64,
}

impl FaultPlan {
    /// A fault-free link.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The same probability for all four fault kinds.
    pub fn uniform(p: f64) -> Self {
        FaultPlan {
            drop: p,
            duplicate: p,
            reorder: p,
            corrupt: p,
        }
    }

    /// Sets the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Sets the duplicate probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Sets the corrupt probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    fn is_quiet(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.reorder <= 0.0 && self.corrupt <= 0.0
    }
}

/// A seedable fault-injection policy for a whole network.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Master seed; every per-link RNG stream derives from it.
    pub seed: u64,
    /// Plan applied to links without a dedicated override.
    pub default_plan: FaultPlan,
    /// Per-link overrides, keyed by `(from, to)`.
    pub per_link: HashMap<(Party, Party), FaultPlan>,
    /// Optional wire-time model applied to every delivery (the sender
    /// blocks for `transfer_time(bytes, 1)` before the message lands).
    pub latency: Option<LatencyModel>,
}

impl FaultConfig {
    /// A quiet config (no faults, no latency) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            default_plan: FaultPlan::none(),
            per_link: HashMap::new(),
            latency: None,
        }
    }

    /// Applies `plan` to every link without an override.
    pub fn with_default_plan(mut self, plan: FaultPlan) -> Self {
        self.default_plan = plan;
        self
    }

    /// Overrides the plan for one directed link.
    pub fn with_link(mut self, from: Party, to: Party, plan: FaultPlan) -> Self {
        self.per_link.insert((from, to), plan);
        self
    }

    /// Simulates wire time on every delivery.
    pub fn with_latency(mut self, model: LatencyModel) -> Self {
        self.latency = Some(model);
        self
    }

    /// The plan governing `from → to`.
    pub fn plan_for(&self, from: Party, to: Party) -> FaultPlan {
        self.per_link
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_plan)
    }

    /// `true` if any link can corrupt payloads. Protocol layers use this
    /// to decide whether a well-formed but unverifiable message can be
    /// trusted as-is or must be treated as possibly mangled.
    pub fn any_corruption(&self) -> bool {
        self.default_plan.corrupt > 0.0 || self.per_link.values().any(|p| p.corrupt > 0.0)
    }
}

/// What the fault layer decided for one message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDraw {
    /// The message silently disappears.
    pub dropped: bool,
    /// The message is delivered twice.
    pub duplicated: bool,
    /// The message is held back and swapped with the next on its link.
    pub reordered: bool,
    /// 64 tweak bits for the corruption oracle, when corruption fired.
    pub corrupt: Option<u64>,
}

/// Payload-corruption oracle: `Some(mangled)` if the flipped frame still
/// decodes, `None` if the receiver would discard it as unparseable.
pub type Corruptor<M> = Arc<dyn Fn(&M, u64) -> Option<M> + Send + Sync>;

/// The deterministic core of fault injection: a [`FaultConfig`] plus the
/// per-link RNG streams it seeds. Single-threaded by construction, so a
/// virtual-time simulator can drive it directly and observe the *same*
/// per-link fault sequence as the threaded [`Network`](crate::Network)
/// (which wraps one of these in a mutex): the draw for the k-th send on
/// a link is a pure function of `(seed, link, k)`.
#[derive(Debug)]
pub struct FaultLottery {
    config: FaultConfig,
    rngs: HashMap<(Party, Party), StdRng>,
}

impl FaultLottery {
    /// A lottery drawing from `config`'s seed.
    pub fn new(config: FaultConfig) -> Self {
        FaultLottery {
            config,
            rngs: HashMap::new(),
        }
    }

    /// The fault policy this lottery draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Rolls the dice for one message on `from → to`.
    pub fn draw(&mut self, from: Party, to: Party) -> FaultDraw {
        let plan = self.config.plan_for(from, to);
        if plan.is_quiet() {
            return FaultDraw::default();
        }
        let rng = self
            .rngs
            .entry((from, to))
            .or_insert_with(|| StdRng::seed_from_u64(link_stream_seed(self.config.seed, from, to)));
        let mut chance = |p: f64| (rng.next_u64() >> 11) as f64 * 2f64.powi(-53) < p;
        FaultDraw {
            dropped: chance(plan.drop),
            duplicated: chance(plan.duplicate),
            reordered: chance(plan.reorder),
            corrupt: chance(plan.corrupt).then(|| rng.next_u64()),
        }
    }
}

/// Shared mutable state backing fault injection on one network.
pub(crate) struct FaultState<M> {
    lottery: Mutex<FaultLottery>,
    config: FaultConfig,
    holdback: Mutex<HashMap<(Party, Party), Envelope<M>>>,
    corruptor: Mutex<Option<Corruptor<M>>>,
}

impl<M> FaultState<M> {
    pub fn new(config: FaultConfig) -> Self {
        FaultState {
            lottery: Mutex::new(FaultLottery::new(config.clone())),
            config,
            holdback: Mutex::new(HashMap::new()),
            corruptor: Mutex::new(None),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    pub fn set_corruptor(&self, corruptor: Corruptor<M>) {
        *self.corruptor.lock() = Some(corruptor);
    }

    pub fn corruptor(&self) -> Option<Corruptor<M>> {
        self.corruptor.lock().clone()
    }

    /// Rolls the dice for one message on `from → to`.
    pub fn draw(&self, from: Party, to: Party) -> FaultDraw {
        self.lottery.lock().draw(from, to)
    }

    /// Removes and returns the message held back on `link`, if any.
    pub fn take_held(&self, link: (Party, Party)) -> Option<Envelope<M>> {
        self.holdback.lock().remove(&link)
    }

    /// Holds `env` back until the next send on its link.
    pub fn hold(&self, link: (Party, Party), env: Envelope<M>) {
        self.holdback.lock().insert(link, env);
    }

    /// Removes and returns every held-back message.
    pub fn drain_held(&self) -> Vec<Envelope<M>> {
        self.holdback.lock().drain().map(|(_, env)| env).collect()
    }
}

/// Stable 64-bit code for a party (independent of hash seeds).
fn party_code(party: Party) -> u64 {
    match party {
        Party::Sdc => 1 << 32,
        Party::Stp => 2 << 32,
        Party::Pu(i) => (3 << 32) | u64::from(i),
        Party::Su(i) => (4 << 32) | u64::from(i),
    }
}

/// Per-link RNG seed: a splitmix64 mix of the master seed and both
/// endpoint codes, so distinct links get decorrelated streams. Public
/// so the virtual-time simulator can derive *other* per-link streams
/// (e.g. latency jitter) that are decorrelated from the fault streams
/// by salting the master seed.
pub fn link_stream_seed(seed: u64, from: Party, to: Party) -> u64 {
    let mut z = seed ^ party_code(from).rotate_left(17) ^ party_code(to).rotate_left(43);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_compose() {
        let p = FaultPlan::none().with_drop(0.1).with_corrupt(0.2);
        assert_eq!(p.drop, 0.1);
        assert_eq!(p.corrupt, 0.2);
        assert_eq!(p.duplicate, 0.0);
        assert!(FaultPlan::none().is_quiet());
        assert!(!FaultPlan::uniform(0.05).is_quiet());
    }

    #[test]
    fn per_link_overrides_default() {
        let cfg = FaultConfig::new(7)
            .with_default_plan(FaultPlan::uniform(0.5))
            .with_link(Party::Su(0), Party::Sdc, FaultPlan::none());
        assert!(cfg.plan_for(Party::Su(0), Party::Sdc).is_quiet());
        assert_eq!(cfg.plan_for(Party::Su(1), Party::Sdc).drop, 0.5);
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let draw_seq = |seed: u64| {
            let state: FaultState<Vec<u8>> =
                FaultState::new(FaultConfig::new(seed).with_default_plan(FaultPlan::uniform(0.3)));
            (0..64)
                .map(|_| {
                    let d = state.draw(Party::Su(0), Party::Sdc);
                    (d.dropped, d.duplicated, d.reordered, d.corrupt)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw_seq(42), draw_seq(42));
        assert_ne!(draw_seq(42), draw_seq(43));
    }

    #[test]
    fn links_have_independent_streams() {
        let state: FaultState<Vec<u8>> =
            FaultState::new(FaultConfig::new(9).with_default_plan(FaultPlan::uniform(0.5)));
        let a: Vec<bool> = (0..64)
            .map(|_| state.draw(Party::Su(0), Party::Sdc).dropped)
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|_| state.draw(Party::Su(1), Party::Sdc).dropped)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn lottery_matches_threaded_state_streams() {
        let cfg = FaultConfig::new(0x11ce).with_default_plan(FaultPlan::uniform(0.4));
        let state: FaultState<Vec<u8>> = FaultState::new(cfg.clone());
        let mut lottery = FaultLottery::new(cfg);
        for i in 0..128 {
            let from = Party::Su(i % 3);
            assert_eq!(state.draw(from, Party::Sdc), lottery.draw(from, Party::Sdc));
        }
    }

    #[test]
    fn quiet_plan_draws_nothing() {
        let state: FaultState<Vec<u8>> = FaultState::new(FaultConfig::new(1));
        let d = state.draw(Party::Su(0), Party::Sdc);
        assert!(!d.dropped && !d.duplicated && !d.reordered && d.corrupt.is_none());
    }
}
