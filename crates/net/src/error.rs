//! Error type for the simulated network.

use crate::transport::Party;
use std::error::Error;
use std::fmt;

/// Errors produced by the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The recipient never registered an endpoint.
    UnknownParty(Party),
    /// The counterpart hung up.
    Disconnected(Party),
    /// The socket transport hit an operating-system I/O failure.
    Socket(std::io::ErrorKind),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownParty(p) => write!(f, "no endpoint registered for {p}"),
            NetError::Disconnected(p) => write!(f, "channel to {p} disconnected"),
            NetError::Socket(kind) => write!(f, "socket I/O failure: {kind:?}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_party() {
        assert!(NetError::UnknownParty(Party::Su(3))
            .to_string()
            .contains("SU3"));
        assert!(NetError::Disconnected(Party::Stp)
            .to_string()
            .contains("STP"));
    }
}
