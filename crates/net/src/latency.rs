//! Link latency model.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A simple affine latency model: per-message overhead plus serialization
/// time proportional to bytes.
///
/// Used to translate the byte counts of [`NetMetrics`](crate::NetMetrics)
/// into an end-to-end latency estimate for the protocol round (the paper
/// reports computation times and message sizes separately; the latency
/// model ties them together for the system-level figures).
///
/// # Examples
///
/// ```
/// use pisa_net::LatencyModel;
/// use std::time::Duration;
///
/// let lan = LatencyModel::lan();
/// let t = lan.transfer_time(1_000_000, 1); // 1 MB over ~1 Gb/s
/// assert!(t > Duration::from_millis(7) && t < Duration::from_millis(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-message latency.
    pub per_message: Duration,
    /// Nanoseconds per payload byte (inverse bandwidth).
    pub ns_per_byte: f64,
}

impl LatencyModel {
    /// A LAN-class link: 0.2 ms RTT budget per message, ~1 Gb/s.
    pub fn lan() -> Self {
        LatencyModel {
            per_message: Duration::from_micros(200),
            ns_per_byte: 8.0, // 1 Gb/s
        }
    }

    /// A WAN-class link: 20 ms per message, ~100 Mb/s.
    pub fn wan() -> Self {
        LatencyModel {
            per_message: Duration::from_millis(20),
            ns_per_byte: 80.0, // 100 Mb/s
        }
    }

    /// An ideal link with zero latency (isolates computation time).
    pub fn ideal() -> Self {
        LatencyModel {
            per_message: Duration::ZERO,
            ns_per_byte: 0.0,
        }
    }

    /// Time to move `bytes` across the link in `messages` messages.
    pub fn transfer_time(&self, bytes: u64, messages: u64) -> Duration {
        let serialization = Duration::from_nanos((bytes as f64 * self.ns_per_byte) as u64);
        self.per_message * (messages as u32) + serialization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_zero() {
        assert_eq!(
            LatencyModel::ideal().transfer_time(1 << 30, 100),
            Duration::ZERO
        );
    }

    #[test]
    fn wan_slower_than_lan() {
        let bytes = 29 * 1024 * 1024; // the paper's request size
        let lan = LatencyModel::lan().transfer_time(bytes, 1);
        let wan = LatencyModel::wan().transfer_time(bytes, 1);
        assert!(wan > lan);
        // 29 MB over 1 Gb/s ≈ 0.24 s
        assert!(lan > Duration::from_millis(200) && lan < Duration::from_millis(300));
    }

    #[test]
    fn per_message_overhead_scales() {
        let m = LatencyModel::lan();
        let one = m.transfer_time(0, 1);
        let ten = m.transfer_time(0, 10);
        assert_eq!(ten, one * 10);
    }
}
