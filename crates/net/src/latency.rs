//! Link latency model.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A simple affine latency model: per-message overhead plus serialization
/// time proportional to bytes.
///
/// Used to translate the byte counts of [`NetMetrics`](crate::NetMetrics)
/// into an end-to-end latency estimate for the protocol round (the paper
/// reports computation times and message sizes separately; the latency
/// model ties them together for the system-level figures).
///
/// # Examples
///
/// ```
/// use pisa_net::LatencyModel;
/// use std::time::Duration;
///
/// let lan = LatencyModel::lan();
/// let t = lan.transfer_time(1_000_000, 1); // 1 MB over ~1 Gb/s
/// assert!(t > Duration::from_millis(7) && t < Duration::from_millis(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-message latency.
    pub per_message: Duration,
    /// Nanoseconds per payload byte (inverse bandwidth).
    pub ns_per_byte: f64,
}

impl LatencyModel {
    /// A LAN-class link: 0.2 ms RTT budget per message, ~1 Gb/s.
    pub fn lan() -> Self {
        LatencyModel {
            per_message: Duration::from_micros(200),
            ns_per_byte: 8.0, // 1 Gb/s
        }
    }

    /// A WAN-class link: 20 ms per message, ~100 Mb/s.
    pub fn wan() -> Self {
        LatencyModel {
            per_message: Duration::from_millis(20),
            ns_per_byte: 80.0, // 100 Mb/s
        }
    }

    /// An ideal link with zero latency (isolates computation time).
    pub fn ideal() -> Self {
        LatencyModel {
            per_message: Duration::ZERO,
            ns_per_byte: 0.0,
        }
    }

    /// Time to move `bytes` across the link in `messages` messages.
    ///
    /// Saturates at [`Duration::MAX`] instead of truncating or
    /// panicking: `messages` is multiplied at full `u64` width (the
    /// old implementation cast to `u32`, silently dropping the high
    /// bits above 2³²−1, and `Duration * u32` panics on overflow), and
    /// a NaN or negative `ns_per_byte` contributes zero serialization
    /// time rather than a garbage cast.
    pub fn transfer_time(&self, bytes: u64, messages: u64) -> Duration {
        let ser_ns = bytes as f64 * self.ns_per_byte;
        // `as` on floats saturates and maps NaN to 0; clamping the
        // negative side keeps a misconfigured model at "instant", not
        // huge-wrapped.
        let serialization = u128::from(ser_ns.max(0.0) as u64);
        let per_msg = self
            .per_message
            .as_nanos()
            .saturating_mul(u128::from(messages));
        duration_from_nanos_saturating(per_msg.saturating_add(serialization))
    }

    /// [`transfer_time`](Self::transfer_time) with multiplicative jitter
    /// drawn from a seeded RNG: the deterministic transfer time is
    /// scaled by a factor uniform in `[1 − jitter, 1 + jitter]`.
    ///
    /// Exactly **one** `u64` is consumed from `rng` per call, even when
    /// `jitter` is zero or degenerate, so the per-link RNG stream
    /// advances identically regardless of the jitter knob — a
    /// virtual-time simulator can therefore toggle jitter without
    /// perturbing every later draw on the link. A NaN, negative or
    /// over-unity `jitter` is clamped into `[0, 1]`.
    pub fn sample_transfer_time(
        &self,
        bytes: u64,
        messages: u64,
        jitter: f64,
        rng: &mut impl RngCore,
    ) -> Duration {
        let unit = (rng.next_u64() >> 11) as f64 * 2f64.powi(-53); // [0, 1)
        let jitter = if jitter.is_nan() {
            0.0
        } else {
            jitter.clamp(0.0, 1.0)
        };
        let base = self.transfer_time(bytes, messages);
        let scale = 1.0 + jitter * (2.0 * unit - 1.0);
        let ns = u64::try_from(base.as_nanos()).unwrap_or(u64::MAX) as f64 * scale;
        duration_from_nanos_saturating(u128::from(ns.max(0.0) as u64))
    }
}

/// Converts a nanosecond count to a `Duration`, clamping to
/// [`Duration::MAX`] when the seconds part exceeds `u64`.
fn duration_from_nanos_saturating(ns: u128) -> Duration {
    let secs = ns / 1_000_000_000;
    // The modulo bounds the remainder under 10⁹, well inside u32.
    let sub = u32::try_from(ns % 1_000_000_000).unwrap_or(0);
    match u64::try_from(secs) {
        Ok(s) => Duration::new(s, sub),
        Err(_) => Duration::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_zero() {
        assert_eq!(
            LatencyModel::ideal().transfer_time(1 << 30, 100),
            Duration::ZERO
        );
    }

    #[test]
    fn wan_slower_than_lan() {
        let bytes = 29 * 1024 * 1024; // the paper's request size
        let lan = LatencyModel::lan().transfer_time(bytes, 1);
        let wan = LatencyModel::wan().transfer_time(bytes, 1);
        assert!(wan > lan);
        // 29 MB over 1 Gb/s ≈ 0.24 s
        assert!(lan > Duration::from_millis(200) && lan < Duration::from_millis(300));
    }

    #[test]
    fn per_message_overhead_scales() {
        let m = LatencyModel::lan();
        let one = m.transfer_time(0, 1);
        let ten = m.transfer_time(0, 10);
        assert_eq!(ten, one * 10);
    }

    #[test]
    fn message_counts_above_u32_max_no_longer_truncate() {
        let m = LatencyModel::lan();
        // The old `messages as u32` cast wrapped this to 1 message.
        let wrapped = m.transfer_time(0, u64::from(u32::MAX) + 2);
        let one = m.transfer_time(0, 1);
        assert!(wrapped > one * 1_000_000);
        // Exact: (2^32 + 1) * 200 µs.
        let expected_ns = (u128::from(u32::MAX) + 2) * 200_000;
        assert_eq!(wrapped.as_nanos(), expected_ns);
    }

    #[test]
    fn extreme_inputs_saturate_instead_of_panicking() {
        let m = LatencyModel::wan();
        // 20 ms × 2⁶⁴ messages ≈ 3.7e17 s: huge but representable, and
        // it must not wrap or panic on the way there.
        let t = m.transfer_time(u64::MAX, u64::MAX);
        assert!(t > Duration::from_secs(1 << 57));
        let slow = LatencyModel {
            per_message: Duration::MAX,
            ns_per_byte: 0.0,
        };
        // Duration::MAX * 2 would panic under Mul<u32>.
        assert_eq!(slow.transfer_time(0, 2), Duration::MAX);
    }

    #[test]
    fn sampled_transfer_time_is_bounded_and_stream_stable() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let m = LatencyModel::lan();
        let base = m.transfer_time(4096, 1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let t = m.sample_transfer_time(4096, 1, 0.25, &mut rng);
            assert!(t >= base.mul_f64(0.74) && t <= base.mul_f64(1.26), "{t:?}");
        }

        // Zero jitter: exact base time, but the stream still advances —
        // the same number of draws regardless of the jitter knob.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..8 {
            assert_eq!(
                m.sample_transfer_time(100, 1, 0.0, &mut a),
                m.transfer_time(100, 1)
            );
            let _ = m.sample_transfer_time(100, 1, 0.9, &mut b);
        }
        assert_eq!(a.next_u64(), b.next_u64());

        // Degenerate jitter values are clamped, not propagated.
        let mut rng = StdRng::seed_from_u64(3);
        for bad in [f64::NAN, -3.0, 17.0] {
            let t = m.sample_transfer_time(100, 1, bad, &mut rng);
            assert!(t <= m.transfer_time(100, 1) * 2);
        }
    }

    #[test]
    fn degenerate_ns_per_byte_contributes_nothing() {
        for bad in [f64::NAN, -8.0, f64::NEG_INFINITY] {
            let m = LatencyModel {
                per_message: Duration::from_micros(200),
                ns_per_byte: bad,
            };
            assert_eq!(m.transfer_time(1 << 20, 1), Duration::from_micros(200));
        }
    }
}
