//! Property-based tests for the TCP framing layer: frames must survive
//! any segmentation the kernel produces (split reads, partial writes,
//! batched deliveries), truncated streams must stay pending rather than
//! yield garbage, and adversarial length prefixes must error before any
//! frame-sized allocation — plus a loopback smoke test driving real
//! sockets through [`SocketNode`].

use pisa_net::codec::{CodecError, Writer, MAX_FRAME_LEN};
use pisa_net::socket::frame::{
    decode_envelope, encode_envelope, write_frame, FrameKind, ENVELOPE_HEADER_BYTES,
};
use pisa_net::socket::FrameBuffer;
use pisa_net::{FrameCodec, NetMetrics, Party, SocketConfig, SocketEvent, SocketNode};
use proptest::prelude::*;

/// Opaque test payload: the socket layer must treat it as raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Blob(Vec<u8>);

impl FrameCodec for Blob {
    fn encode_frame(&self) -> Result<bytes::Bytes, CodecError> {
        let mut w = Writer::with_capacity(self.0.len());
        w.put_raw(&self.0);
        Ok(w.finish())
    }

    fn decode_frame(frame: &[u8]) -> Result<Self, CodecError> {
        Ok(Blob(frame.to_vec()))
    }
}

/// Splits `wire` into chunks at the given cut fractions and feeds them
/// to a fresh [`FrameBuffer`], collecting every complete frame.
fn reassemble(wire: &[u8], cuts: &[usize], max_frame: usize) -> Vec<Vec<u8>> {
    let mut fb = FrameBuffer::new(max_frame);
    let mut out = Vec::new();
    let mut cursor = 0usize;
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (wire.len() + 1)).collect();
    bounds.push(wire.len());
    bounds.sort_unstable();
    for b in bounds {
        if b > cursor {
            fb.extend(&wire[cursor..b]);
            cursor = b;
        }
        while let Some(frame) = fb.next_frame().expect("well-formed stream") {
            out.push(frame);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame sequence, chopped at any positions (1-byte reads, huge
    /// batched reads, anything between), reassembles byte-identically.
    #[test]
    fn frames_survive_arbitrary_segmentation(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f, 1 << 16).expect("fits");
        }
        let out = reassemble(&wire, &cuts, 1 << 16);
        prop_assert_eq!(out, frames);
    }

    /// A stream cut short mid-frame yields exactly the complete frames
    /// and keeps the tail pending — no partial frame ever escapes.
    #[test]
    fn truncated_stream_yields_only_complete_frames(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..100), 1..6),
        chop in any::<usize>(),
    ) {
        let mut wire = Vec::new();
        let mut ends = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f, 1 << 16).expect("fits");
            ends.push(wire.len());
        }
        let cut = chop % wire.len(); // strictly short of the last byte
        let mut fb = FrameBuffer::new(1 << 16);
        fb.extend(&wire[..cut]);
        let mut got = 0usize;
        while let Some(frame) = fb.next_frame().expect("well-formed prefix") {
            prop_assert_eq!(&frame, &frames[got]);
            got += 1;
        }
        // Exactly the frames whose bytes fully arrived.
        let complete = ends.iter().filter(|e| **e <= cut).count();
        prop_assert_eq!(got, complete);
        // The remainder is buffered, not lost: feed the rest and drain.
        fb.extend(&wire[cut..]);
        while let Some(frame) = fb.next_frame().expect("completed stream") {
            prop_assert_eq!(&frame, &frames[got]);
            got += 1;
        }
        prop_assert_eq!(got, frames.len());
        prop_assert_eq!(fb.pending(), 0);
    }

    /// A length prefix above the ceiling errors as soon as the four
    /// prefix bytes arrive — before the (absent) body could allocate.
    #[test]
    fn oversized_prefix_errors_before_body(
        limit in 1usize..4096,
        excess in 1u32..1 << 20,
    ) {
        let len = u32::try_from(limit).unwrap() + excess;
        let mut fb = FrameBuffer::new(limit);
        fb.extend(&len.to_be_bytes());
        match fb.next_frame() {
            Err(CodecError::Oversized(claimed, max)) => {
                prop_assert_eq!(claimed, u64::from(len));
                prop_assert_eq!(max, limit as u64);
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    /// Arbitrary garbage never panics the deframer: every outcome is a
    /// frame, a wait-for-more, or a typed error.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut fb = FrameBuffer::new(256);
        fb.extend(&bytes);
        while let Ok(Some(_)) = fb.next_frame() {}
    }

    /// Envelope encode/decode round-trips for every kind/party/payload.
    #[test]
    fn envelope_roundtrip(
        kind_data in any::<bool>(),
        from_tag in 0u8..4,
        to_tag in 0u8..4,
        idx in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let party = |tag: u8| match tag {
            0 => Party::Sdc,
            1 => Party::Stp,
            2 => Party::Pu(idx),
            _ => Party::Su(idx),
        };
        let kind = if kind_data { FrameKind::Data } else { FrameKind::Shutdown };
        let wire = encode_envelope(kind, party(from_tag), party(to_tag), &payload);
        prop_assert_eq!(wire.len(), ENVELOPE_HEADER_BYTES + payload.len());
        let env = decode_envelope(&wire).expect("own encoding");
        prop_assert_eq!(env.kind, kind);
        prop_assert_eq!(env.from, party(from_tag));
        prop_assert_eq!(env.to, party(to_tag));
        prop_assert_eq!(env.payload, payload);
    }

    /// A bit flip anywhere in the envelope either still decodes (the
    /// protocol layer must reject it) or errors — never panics.
    #[test]
    fn flipped_envelope_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        bit in any::<usize>(),
    ) {
        let mut wire = encode_envelope(FrameKind::Data, Party::Su(3), Party::Sdc, &payload);
        let nbits = wire.len() * 8;
        let bit = bit % nbits;
        wire[bit / 8] ^= 1 << (bit % 8);
        let _ = decode_envelope(&wire);
    }
}

#[test]
fn default_ceiling_is_the_codec_ceiling() {
    assert_eq!(SocketConfig::default().max_frame, MAX_FRAME_LEN);
}

/// Loopback smoke test over real sockets: a client node dials a bound
/// server node, the server replies over the learned route, and an
/// in-band shutdown frame arrives as a [`SocketEvent::Shutdown`].
#[test]
fn loopback_request_reply_shutdown() {
    use std::time::Duration;

    let server: SocketNode<Blob> =
        SocketNode::new(Party::Sdc, SocketConfig::default(), NetMetrics::new(), None);
    let addr = server.bind("127.0.0.1:0").expect("bind").to_string();

    let client: SocketNode<Blob> = SocketNode::new(
        Party::Su(5),
        SocketConfig::default(),
        NetMetrics::new(),
        None,
    );
    client.add_peer(Party::Sdc, &addr);

    client
        .send_from(Party::Su(5), Party::Sdc, &Blob(b"ping".to_vec()))
        .expect("send");
    let Some(SocketEvent::Frame(env)) = server.recv_timeout(Duration::from_secs(10)) else {
        panic!("server never received the request");
    };
    assert_eq!(env.from, Party::Su(5));
    assert_eq!(env.payload, Blob(b"ping".to_vec()));

    // Reply via the learned route — the server has no static peers.
    server
        .send_from(Party::Sdc, Party::Su(5), &Blob(b"pong".to_vec()))
        .expect("reply");
    let Some(SocketEvent::Frame(env)) = client.recv_timeout(Duration::from_secs(10)) else {
        panic!("client never received the reply");
    };
    assert_eq!(env.payload, Blob(b"pong".to_vec()));

    client.send_shutdown(Party::Sdc).expect("shutdown");
    let Some(SocketEvent::Shutdown(from)) = server.recv_timeout(Duration::from_secs(10)) else {
        panic!("server never received the shutdown");
    };
    assert_eq!(from, Party::Su(5));

    client.stop();
    server.stop();
}

/// Byte accounting matches on both ends of a clean loopback exchange.
#[test]
fn loopback_metrics_account_payload_bytes() {
    use std::time::Duration;

    let server: SocketNode<Blob> =
        SocketNode::new(Party::Stp, SocketConfig::default(), NetMetrics::new(), None);
    let addr = server.bind("127.0.0.1:0").expect("bind").to_string();
    let client: SocketNode<Blob> =
        SocketNode::new(Party::Sdc, SocketConfig::default(), NetMetrics::new(), None);
    client.add_peer(Party::Stp, &addr);

    let payload = Blob(vec![0xa5; 1000]);
    client
        .send_from(Party::Sdc, Party::Stp, &payload)
        .expect("send");
    assert!(matches!(
        server.recv_timeout(Duration::from_secs(10)),
        Some(SocketEvent::Frame(_))
    ));
    assert_eq!(client.metrics().total_bytes(), 1000);
    assert_eq!(server.metrics().total_bytes(), 1000);
    client.stop();
    server.stop();
}
