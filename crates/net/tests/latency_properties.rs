//! Property-based tests for the latency model: `transfer_time` must be
//! monotone in both arguments across the full `u64` range — including
//! message counts above `u32::MAX`, where the pre-fix implementation
//! truncated — and must never panic.

use pisa_net::LatencyModel;
use proptest::prelude::*;
use std::time::Duration;

fn models() -> [LatencyModel; 3] {
    [
        LatencyModel::ideal(),
        LatencyModel::lan(),
        LatencyModel::wan(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn monotone_in_messages(bytes in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for m in models() {
            prop_assert!(m.transfer_time(bytes, lo) <= m.transfer_time(bytes, hi));
        }
    }

    #[test]
    fn monotone_in_bytes(messages in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for m in models() {
            prop_assert!(m.transfer_time(lo, messages) <= m.transfer_time(hi, messages));
        }
    }

    #[test]
    fn beyond_u32_messages_dominate_the_wrapped_count(extra in 1u64..1_000_000) {
        // Regression for the `messages as u32` truncation: a count just
        // past 2^32 must cost at least as much as the full 2^32, not
        // wrap to `extra` messages.
        let big = u64::from(u32::MAX) + extra;
        for m in [LatencyModel::lan(), LatencyModel::wan()] {
            let t = m.transfer_time(0, big);
            prop_assert!(t >= m.transfer_time(0, u64::from(u32::MAX)));
            prop_assert!(t > Duration::from_secs(1000));
        }
    }

    #[test]
    fn never_panics_on_extremes(bytes in any::<u64>(), messages in any::<u64>()) {
        // The shim's `any::<u64>()` covers the full range; pin the
        // corners explicitly as well.
        for (b, n) in [(bytes, messages), (0, u64::MAX), (u64::MAX, 0), (u64::MAX, u64::MAX)] {
            for m in models() {
                let _ = m.transfer_time(b, n);
            }
        }
    }
}
