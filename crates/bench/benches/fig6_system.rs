//! Figure 6: system evaluation — request preparation (SU), request
//! processing (SDC + STP), request refresh (re-randomization), and PU
//! update, at a CI-scale configuration. The `fig6_system_eval` binary
//! extrapolates these per-entry costs to the paper's C=100 × B=600 ×
//! 2048-bit setting.

use criterion::{criterion_group, criterion_main, Criterion};
use pisa::prelude::*;
use pisa::{SdcServer, StpServer, SuClient, SuId};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KEY_BITS: usize = 512;

fn setup() -> (pisa::SystemConfig, StpServer, SdcServer) {
    let mut rng = StdRng::seed_from_u64(0xf16);
    let cfg = pisa_bench::scaled_config(4, 3, 5, KEY_BITS); // 4 ch × 15 blocks
    let stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.bench", &mut rng);
    (cfg, stp, sdc)
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);

    let (cfg, mut stp, mut sdc) = setup();
    let mut rng = StdRng::seed_from_u64(0xf17);
    let mut su = SuClient::new(SuId(0), BlockId(1), &cfg, &mut rng);
    stp.register_su(SuId(0), su.public_key().clone());

    group.bench_function("su_request_preparation", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng))
    });

    // Online cost only (rⁿ factors precomputed per iteration outside the
    // timed closure) — the paper's ~11 s number at full scale.
    {
        let su_cell = std::cell::RefCell::new(&mut su);
        let rng_cell = std::cell::RefCell::new(StdRng::seed_from_u64(7));
        group.bench_function("su_request_refresh_online", |b| {
            b.iter_batched(
                || {
                    su_cell
                        .borrow_mut()
                        .precompute_refresh(stp.public_key(), &mut *rng_cell.borrow_mut())
                },
                |()| {
                    su_cell
                        .borrow_mut()
                        .refresh_request(stp.public_key(), &mut *rng_cell.borrow_mut())
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }

    let request = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
    group.bench_function("sdc_phase1_blinding", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sdc.process_request_phase1(&request, &mut rng).unwrap())
    });

    group.bench_function("sdc_phase1_blinding_4threads", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| {
            sdc.process_request_phase1_parallel(&request, 4, &mut rng)
                .unwrap()
        })
    });

    let to_stp = sdc.process_request_phase1(&request, &mut rng).unwrap();
    group.bench_function("stp_key_conversion", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| stp.key_convert(&to_stp, &mut rng).unwrap())
    });

    group.bench_function("stp_key_conversion_4threads", |b| {
        let mut rng = StdRng::seed_from_u64(14);
        b.iter(|| stp.key_convert_parallel(&to_stp, 4, &mut rng).unwrap())
    });

    let (to_sdc, _) = stp.key_convert(&to_stp, &mut rng).unwrap();
    let su_pk = stp.su_key(SuId(0)).unwrap().clone();
    group.bench_function("sdc_phase2_response", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            // Phase 2 consumes the pending state; re-arm it each iter.
            let _ = sdc.process_request_phase1(&request, &mut rng).unwrap();
            sdc.process_request_phase2(&to_sdc, &su_pk, &mut rng)
                .unwrap()
        })
    });

    group.bench_function("pu_update_roundtrip", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let e = sdc.e_matrix().clone();
        let mut pu = pisa::PuClient::new(0, BlockId(2));
        b.iter(|| {
            let msg = pu.tune(Some(Channel(1)), &cfg, &e, stp.public_key(), &mut rng);
            sdc.handle_pu_update(0, msg).unwrap();
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_system
}
criterion_main!(benches);
