//! Table II: Paillier cryptosystem micro-benchmark.
//!
//! The paper reports, for `|n| = 2048`: encryption 30.4 ms, decryption
//! 21.2 ms, homomorphic addition 0.004 ms, subtraction 0.073 ms, scalar
//! multiplication 1.56 ms (100-bit constant) and 18.9 ms (full-size).
//! Absolute numbers here differ (our bignum vs GMP, different CPU); the
//! *ordering and ratios* are the reproduced shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pisa_bigint::random::random_bits;
use pisa_bigint::Ibig;
use pisa_crypto::paillier::PaillierKeyPair;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_paillier(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(30); // the paper's 30 iterations

    for bits in [1024usize, 2048] {
        let mut rng = StdRng::seed_from_u64(0x7ab1e2);
        let kp = PaillierKeyPair::generate(&mut rng, bits);
        let pk = kp.public();
        let m1 = Ibig::from(0x0123_4567_89ab_cdefi64);
        let m2 = Ibig::from(0x0fed_cba9_8765_4321i64);
        let c1 = pk.encrypt(&m1, &mut rng);
        let c2 = pk.encrypt(&m2, &mut rng);
        let k100 = Ibig::from(random_bits(&mut rng, 100));
        let kfull = Ibig::from(random_bits(&mut rng, bits - 8));

        group.bench_function(BenchmarkId::new("encryption", bits), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| pk.encrypt(&m1, &mut rng))
        });
        group.bench_function(BenchmarkId::new("decryption", bits), |b| {
            b.iter(|| kp.secret().decrypt(&c1))
        });
        group.bench_function(BenchmarkId::new("decryption_standard", bits), |b| {
            b.iter(|| kp.secret().decrypt_standard(&c1))
        });
        group.bench_function(BenchmarkId::new("hom_addition", bits), |b| {
            b.iter(|| pk.add(&c1, &c2))
        });
        group.bench_function(BenchmarkId::new("hom_subtraction", bits), |b| {
            b.iter(|| pk.sub(&c1, &c2).unwrap())
        });
        group.bench_function(BenchmarkId::new("hom_scale_100bit", bits), |b| {
            b.iter(|| pk.scalar_mul(&c1, &k100).unwrap())
        });
        group.bench_function(BenchmarkId::new("hom_scale_full", bits), |b| {
            b.iter(|| pk.scalar_mul(&c1, &kfull).unwrap())
        });
        group.bench_function(BenchmarkId::new("rerandomize", bits), |b| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| pk.rerandomize(&c1, &mut rng))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_paillier
}
criterion_main!(benches);
