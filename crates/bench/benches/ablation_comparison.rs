//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **PISA's blinded sign test vs bitwise secure comparison** — the
//!    paper's central efficiency argument (§IV-B): avoiding [13][12][18]
//!    style bit-by-bit comparison. One PISA entry costs a handful of
//!    homomorphic ops; one bitwise comparison costs ℓ=60 encryptions,
//!    O(ℓ) homomorphic ops and ℓ decryptions.
//! 2. **CRT vs standard Paillier decryption** — the STP decrypts one
//!    ciphertext per entry; CRT roughly quarters that cost.
//! 3. **Re-randomization vs re-encryption** — the paper's 221 s → 11 s
//!    request-refresh trick.

use criterion::{criterion_group, criterion_main, Criterion};
use pisa::ablation::BitwiseComparison;
use pisa_bigint::Ibig;
use pisa_crypto::blind::Blinder;
use pisa_crypto::paillier::PaillierKeyPair;
use rand::rngs::StdRng;
use rand::SeedableRng;

const KEY_BITS: usize = 512;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    let mut rng = StdRng::seed_from_u64(0xab1a);
    let kp = PaillierKeyPair::generate(&mut rng, KEY_BITS);
    let pk = kp.public();

    // --- 1. sign test: PISA vs bitwise --------------------------------
    let blinder = Blinder::new(128);
    let i_ct = pk.encrypt(&Ibig::from(123_456i64), &mut rng);
    group.bench_function("sign_test_pisa_per_entry", |b| {
        // SDC blind (eq. 14) + STP decrypt/sign + STP re-encrypt +
        // SDC unblind (eq. 16) — the full per-entry pipeline.
        let mut rng = StdRng::seed_from_u64(1);
        let one = pk.encrypt_public_constant(&Ibig::from(1i64));
        b.iter(|| {
            let f = blinder.sample(&mut rng);
            let scaled = pk.scalar_mul(&i_ct, &Ibig::from(f.alpha.clone())).unwrap();
            let beta_ct = pk.encrypt(&Ibig::from(f.beta.clone()), &mut rng);
            let v = pk
                .scalar_mul(&pk.sub(&scaled, &beta_ct).unwrap(), &f.epsilon.as_scalar())
                .unwrap();
            let plain = kp.secret().decrypt(&v);
            let x = if plain.is_positive() { 1i64 } else { -1 };
            let x_ct = pk.encrypt(&Ibig::from(x), &mut rng);
            let unblinded = pk.scalar_mul(&x_ct, &f.epsilon.as_scalar()).unwrap();
            pk.sub(&unblinded, &one).unwrap()
        })
    });

    group.bench_function("sign_test_bitwise_60bit_per_entry", |b| {
        let cmp = BitwiseComparison::paper_width();
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| cmp.compare(123_456, 999_999, pk, kp.secret(), &mut rng))
    });

    // --- 2. CRT vs standard decryption --------------------------------
    let ct = pk.encrypt(&Ibig::from(42i64), &mut rng);
    group.bench_function("decrypt_crt", |b| b.iter(|| kp.secret().decrypt(&ct)));
    group.bench_function("decrypt_standard", |b| {
        b.iter(|| kp.secret().decrypt_standard(&ct))
    });

    // --- 3. refresh: precomputed vs online vs re-encrypt --------------
    group.bench_function("refresh_precomputed_online_only", |b| {
        // The paper's trick: rⁿ computed offline, refresh = one modmul.
        let mut rng = StdRng::seed_from_u64(5);
        let factor = pk.precompute_randomizer(&mut rng);
        b.iter(|| pk.rerandomize_precomputed(&ct, &factor))
    });
    group.bench_function("refresh_rerandomize_online", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| pk.rerandomize(&ct, &mut rng))
    });
    group.bench_function("refresh_reencrypt", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| pk.encrypt(&Ibig::from(42i64), &mut rng))
    });

    // --- 4. the cost of privacy: plaintext WATCH vs PISA --------------
    // Same spectrum decision, same configuration; one in the clear, one
    // over ciphertexts (build + phase 1 + conversion + phase 2).
    {
        use pisa::prelude::*;
        use pisa::{SdcServer, StpServer, SuClient, SuId};
        let cfg = pisa_bench::scaled_config(4, 3, 5, KEY_BITS);
        let mut rng = StdRng::seed_from_u64(6);

        let watch_sdc = pisa_watch::WatchSdc::new(cfg.watch().clone());
        let request = pisa_watch::SuRequest::full_power(cfg.watch(), BlockId(1), &[Channel(0)]);
        group.bench_function("request_plaintext_watch", |b| {
            b.iter(|| watch_sdc.process_request(&request))
        });

        let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
        let mut sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc", &mut rng);
        let mut su = SuClient::new(SuId(0), BlockId(1), &cfg, &mut rng);
        stp.register_su(SuId(0), su.public_key().clone());
        group.bench_function("request_pisa_end_to_end", |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                pisa::run_request_direct(&mut su, &mut sdc, &stp, &[Channel(0)], &mut rng).unwrap()
            })
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_ablations
}
criterion_main!(benches);
