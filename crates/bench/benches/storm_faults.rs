//! Session-engine throughput: a small concurrent storm on a clean
//! network versus the same storm under drop/duplicate/reorder faults.
//! The gap is the price of retries + backoff; the decisions are the
//! same either way (see `tests/chaos.rs`), so this measures pure
//! resilience overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pisa::prelude::*;
use pisa::{run_storm, EngineConfig, SdcServer, StpServer, SuClient, SuId};
use pisa_net::{FaultConfig, FaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const KEY_BITS: usize = 512;
const SESSIONS: u32 = 3;
const SEED: u64 = 0x570a;

type System = (Vec<(SuClient, Vec<Channel>)>, SdcServer, StpServer);

fn build_system() -> System {
    let mut rng = StdRng::seed_from_u64(SEED);
    let cfg = pisa_bench::scaled_config(3, 3, 3, KEY_BITS); // 3 ch × 9 blocks
    let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let mut sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.bench", &mut rng);

    let mut pu = pisa::PuClient::new(0, BlockId(0));
    let e = sdc.e_matrix().clone();
    let update = pu.tune(Some(Channel(0)), &cfg, &e, stp.public_key(), &mut rng);
    sdc.handle_pu_update(pu.id(), update).unwrap();

    let sus = (0..SESSIONS)
        .map(|i| {
            let su = SuClient::new(SuId(i), BlockId(i as usize % cfg.blocks()), &cfg, &mut rng);
            stp.register_su(su.id(), su.public_key().clone());
            (su, vec![Channel(i as usize % cfg.channels())])
        })
        .collect();
    (sus, sdc, stp)
}

fn bench_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("storm");
    group.sample_size(10);

    group.bench_function("quiet_3_sessions", |b| {
        let engine = EngineConfig::default().with_timeout(Duration::from_secs(5));
        b.iter_batched(
            build_system,
            |(sus, sdc, stp)| {
                let (report, _, _) = run_storm(sus, sdc, stp, None, &engine, SEED).unwrap();
                assert!(report.all_completed());
                report
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("faulty_3_sessions_10pct", |b| {
        let engine = EngineConfig::default()
            .with_timeout(Duration::from_millis(600))
            .with_max_retries(12);
        b.iter_batched(
            build_system,
            |(sus, sdc, stp)| {
                let faults = FaultConfig::new(SEED ^ 0xfa17).with_default_plan(
                    FaultPlan::none()
                        .with_drop(0.10)
                        .with_duplicate(0.10)
                        .with_reorder(0.10),
                );
                let (report, _, _) = run_storm(sus, sdc, stp, Some(faults), &engine, SEED).unwrap();
                assert!(report.all_completed());
                report
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_storm
}
criterion_main!(benches);
