//! Substrate micro-benchmarks: the big-integer layer under Paillier
//! (the paper's GMP). Includes the Montgomery-vs-division ablation —
//! the optimization that makes modular exponentiation (and hence all of
//! Table II) tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pisa_bigint::modular::{mod_inverse, mod_pow, MontCtx};
use pisa_bigint::random::random_bits;
use pisa_bigint::Ubig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Naive square-and-multiply with division-based reduction (the
/// baseline Montgomery replaces).
fn naive_mod_pow(base: &Ubig, exp: &Ubig, modulus: &Ubig) -> Ubig {
    let mut acc = Ubig::one();
    let base = base % modulus;
    for i in (0..exp.bit_len()).rev() {
        acc = (&acc * &acc) % modulus;
        if exp.bit(i) {
            acc = (&acc * &base) % modulus;
        }
    }
    acc
}

fn bench_bigint(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint");
    group.sample_size(20);

    let mut rng = StdRng::seed_from_u64(0xb161);
    for bits in [2048usize, 4096] {
        let a = random_bits(&mut rng, bits);
        let b = random_bits(&mut rng, bits);
        let m = {
            let mut m = random_bits(&mut rng, bits);
            m.set_bit(0, true); // odd modulus
            m
        };
        group.bench_function(BenchmarkId::new("mul", bits), |bch| bch.iter(|| &a * &b));
        group.bench_function(BenchmarkId::new("div_rem", bits), |bch| {
            let wide = &a * &b;
            bch.iter(|| wide.div_rem(&m))
        });
        group.bench_function(BenchmarkId::new("mod_inverse", bits), |bch| {
            bch.iter(|| mod_inverse(&a, &m))
        });
    }

    // Montgomery vs naive exponentiation ablation (512-bit exponent so
    // the naive path finishes).
    let bits = 1024;
    let m = {
        let mut m = random_bits(&mut rng, bits);
        m.set_bit(0, true);
        m
    };
    let base = random_bits(&mut rng, bits - 1);
    let exp = random_bits(&mut rng, 512);
    group.bench_function("mod_pow_montgomery_1024", |bch| {
        bch.iter(|| mod_pow(&base, &exp, &m))
    });
    group.bench_function("mod_pow_montgomery_ctx_reuse_1024", |bch| {
        let ctx = MontCtx::new(&m).unwrap();
        bch.iter(|| ctx.pow(&base, &exp))
    });
    group.bench_function("mod_pow_naive_division_1024", |bch| {
        bch.iter(|| naive_mod_pow(&base, &exp, &m))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_bigint
}
criterion_main!(benches);
