//! §VI-A trade-off: SU location privacy vs request preparation and
//! processing time — both must scale linearly with the exposed region
//! size. The paper sweeps 300 vs 600 blocks; we sweep four region sizes
//! at CI scale (the `privacy_tradeoff` binary prints the full table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pisa::prelude::*;
use pisa::{LocationPrivacy, SdcServer, StpServer, SuClient, SuId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("privacy_tradeoff");
    group.sample_size(10);

    let mut rng = StdRng::seed_from_u64(0x7ade);
    // 2 channels × 40 blocks keeps entry counts proportional to the
    // paper's sweep while staying CI-fast.
    let cfg = pisa_bench::scaled_config(2, 4, 10, 512);
    let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let mut sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc", &mut rng);
    let mut su = SuClient::new(SuId(0), BlockId(0), &cfg, &mut rng);
    stp.register_su(SuId(0), su.public_key().clone());

    for region in [10usize, 20, 30, 40] {
        su.set_privacy(LocationPrivacy::Region(region));
        group.throughput(Throughput::Elements((cfg.channels() * region) as u64));

        group.bench_function(BenchmarkId::new("request_preparation", region), |b| {
            let mut rng = StdRng::seed_from_u64(region as u64);
            b.iter(|| su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng))
        });

        let request = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
        group.bench_function(BenchmarkId::new("request_processing", region), |b| {
            let mut rng = StdRng::seed_from_u64(region as u64 + 100);
            b.iter(|| sdc.process_request_phase1(&request, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_tradeoff
}
criterion_main!(benches);
