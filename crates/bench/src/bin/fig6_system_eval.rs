//! Regenerates **Figure 6** — "System Evaluation" — and prints
//! **Table I**'s settings.
//!
//! The paper reports, at C=100, B=600, n=2048 on an i5-2400:
//!   request preparation ≈ 221 s  (≈ 11 s with re-randomized refresh)
//!   request processing  ≈ 219 s (SDC) + STP conversion
//!   PU update processing ≈ 2.6 s
//!   request ≈ 29 MB, PU update ≈ 0.05 MB, response ≈ 4.1 kb
//!
//! By default this harness *measures* a scaled-down instance (same code
//! paths) and *extrapolates* to paper scale from measured per-entry
//! costs — the totals are exactly `#entries × per-entry`. Pass `--full`
//! to run the real C=100 × B=600 × 2048-bit workload (takes tens of
//! minutes, like the paper's prototype did).
//!
//! ```sh
//! cargo run --release -p pisa-bench --bin fig6_system_eval [--full]
//! ```

use pisa::prelude::*;
use pisa::{PuClient, SdcServer, StpServer, SuClient, SuId};
use pisa_bench::{fmt_bytes, fmt_duration, scaled_config};
use pisa_net::WireSize;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const PAPER_C: usize = 100;
const PAPER_B: usize = 600;
const PAPER_PUS: usize = 100;

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    println!("Table I: Parameter Settings (paper)");
    println!("  Number of PUs                        100");
    println!("  Number of blocks                     600");
    println!("  Number of channels                   100");
    println!("  Bit length of integer representation  60\n");

    let (cfg, label) = if full {
        (
            SystemConfig::paper(),
            "FULL paper scale (C=100, B=600, n=2048)",
        )
    } else {
        (
            scaled_config(4, 3, 5, 1024),
            "scaled instance (C=4, B=15, n=1024), extrapolated to paper scale",
        )
    };
    println!("Figure 6: System Evaluation — {label}\n");

    let mut rng = StdRng::seed_from_u64(0xf16);
    let t0 = Instant::now();
    let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let mut sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.eval", &mut rng);
    println!("setup (keygen + E matrix): {}", fmt_duration(t0.elapsed()));

    let mut su = SuClient::new(SuId(0), BlockId(1), &cfg, &mut rng);
    stp.register_su(SuId(0), su.public_key().clone());

    let entries = cfg.channels() * cfg.blocks();
    let paper_entries = PAPER_C * PAPER_B;
    let scale = paper_entries as f64 / entries as f64;

    // --- SU request preparation --------------------------------------
    let t = Instant::now();
    let request = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
    let prep = t.elapsed();
    let request_bytes = request.wire_bytes();

    // --- SU request refresh (re-randomization) ------------------------
    // Offline: precompute the rⁿ factors (unmeasured, like the paper's
    // offline preparation). Online: one multiplication per entry.
    su.precompute_refresh(stp.public_key(), &mut rng);
    let t = Instant::now();
    let refreshed = su.refresh_request(stp.public_key(), &mut rng);
    let refresh = t.elapsed();
    drop(refreshed);

    // --- SDC phase 1 + STP conversion + SDC phase 2 --------------------
    let t = Instant::now();
    let to_stp = sdc.process_request_phase1(&request, &mut rng).unwrap();
    let phase1 = t.elapsed();

    let t = Instant::now();
    let (to_sdc, _) = stp.key_convert(&to_stp, &mut rng).unwrap();
    let convert = t.elapsed();

    let su_pk = stp.su_key(SuId(0)).unwrap().clone();
    let t = Instant::now();
    let response = sdc
        .process_request_phase2(&to_sdc, &su_pk, &mut rng)
        .unwrap();
    let phase2 = t.elapsed();
    let response_bytes = response.wire_bytes();
    let granted = su.handle_response(&response, sdc.signing_public_key());
    assert!(granted, "empty system must grant");

    // --- PU update -----------------------------------------------------
    // Register a population of PUs so the re-aggregation cost (the
    // paper's eqs. 9–10 realization, ~2.6 s with 100 PUs) is populated.
    let e = sdc.e_matrix().clone();
    let sim_pus = if full { PAPER_PUS } else { 10 };
    for i in 1..sim_pus as u64 {
        let mut other = PuClient::new(i, BlockId((i as usize) % cfg.blocks()));
        let msg = other.tune(Some(Channel(0)), &cfg, &e, stp.public_key(), &mut rng);
        sdc.handle_pu_update(i, msg).unwrap();
    }
    let mut pu = PuClient::new(0, BlockId(2));
    let t = Instant::now();
    let update = pu.tune(Some(Channel(1)), &cfg, &e, stp.public_key(), &mut rng);
    let pu_prep = t.elapsed();
    let update_bytes = update.wire_bytes();
    let t = Instant::now();
    sdc.handle_pu_update(0, update).unwrap();
    let pu_incr = t.elapsed();
    let t = Instant::now();
    sdc.reaggregate_budget();
    let pu_proc = t.elapsed();

    // --- report ---------------------------------------------------------
    let ct_bytes_paper = 2 * 2048 / 8;
    // Extrapolation: totals are #entries × per-entry cost, and per-entry
    // cost is dominated by modular exponentiation, which is ~O(bits³)
    // (quadratic modmul × linear exponent) — doubling the key size costs
    // ×8.
    let key_factor = (2048.0 / cfg.paillier_bits() as f64).powi(3);
    let xp = |d: Duration| -> String {
        if full {
            fmt_duration(d)
        } else {
            fmt_duration(d.mul_f64(scale * key_factor))
        }
    };

    println!(
        "\n{:<38} {:>12} {:>16}",
        "phase",
        "measured",
        if full {
            "(=paper scale)"
        } else {
            "paper-scale est."
        }
    );
    println!(
        "{:<38} {:>12} {:>16}   paper: ~221 s",
        "SU request preparation",
        fmt_duration(prep),
        xp(prep)
    );
    println!(
        "{:<38} {:>12} {:>16}   paper: ~11 s",
        "SU request refresh (re-rand)",
        fmt_duration(refresh),
        xp(refresh)
    );
    println!(
        "{:<38} {:>12} {:>16}   paper: ~219 s (combined)",
        "SDC processing phase 1 (blind)",
        fmt_duration(phase1),
        xp(phase1)
    );
    println!(
        "{:<38} {:>12} {:>16}",
        "STP key conversion",
        fmt_duration(convert),
        xp(convert)
    );
    println!(
        "{:<38} {:>12} {:>16}",
        "SDC processing phase 2 (gate)",
        fmt_duration(phase2),
        xp(phase2)
    );
    // Re-aggregation scales with #PUs × C (homomorphic additions, whose
    // modmul cost is quadratic in the key size).
    let pu_scale = (PAPER_PUS as f64 / sim_pus as f64) * (PAPER_C as f64 / cfg.channels() as f64);
    let add_key_factor = (2048.0 / cfg.paillier_bits() as f64).powi(2);
    let pu_est = if full {
        fmt_duration(pu_proc)
    } else {
        fmt_duration(pu_proc.mul_f64(pu_scale * add_key_factor))
    };
    println!(
        "{:<38} {:>12} {:>16}   paper: ~2.6 s",
        format!("PU update, re-aggregation ({sim_pus} PUs)"),
        fmt_duration(pu_proc),
        pu_est
    );
    println!(
        "{:<38} {:>12}   (this library's incremental path)",
        "PU update, incremental (SDC)",
        fmt_duration(pu_incr)
    );
    println!(
        "{:<38} {:>12}",
        "PU update preparation (PU)",
        fmt_duration(pu_prep)
    );

    println!("\ncommunication (measured / paper-scale analytic / paper):");
    println!(
        "  SU request:  {} / {} / ~29 MB",
        fmt_bytes(request_bytes as u64),
        fmt_bytes((paper_entries * ct_bytes_paper) as u64)
    );
    println!(
        "  PU update:   {} / {} / ~0.05 MB",
        fmt_bytes(update_bytes as u64),
        fmt_bytes((PAPER_C * ct_bytes_paper) as u64)
    );
    println!(
        "  response:    {} / {} / ~4.1 kb",
        fmt_bytes(response_bytes as u64),
        fmt_bytes(ct_bytes_paper as u64)
    );
    println!("\n  (PU update size is independent of B; with {PAPER_PUS} PUs the SDC");
    println!("   holds {PAPER_PUS} stored columns and one aggregated budget matrix.)");

    println!("\nshape checks:");
    println!(
        "  refresh/prep speedup: {:.1}x (paper: 221/11 ≈ 20x)",
        prep.as_secs_f64() / refresh.as_secs_f64()
    );
    println!(
        "  prep ≈ SDC processing (paper: 221 s vs 219 s): ratio {:.2}",
        prep.as_secs_f64() / (phase1 + phase2).as_secs_f64()
    );
}
