//! Regenerates the observables of **Figures 8–11** (the §VI-B SDR
//! experiment) from the signal-level simulator + the protocol: packet
//! timelines, received amplitudes, and the scenario-4 decision.
//!
//! ```sh
//! cargo run --release -p pisa-bench --bin sdr_scenarios
//! ```

use pisa::prelude::*;
use pisa_radio::airsim::{AirSim, Node};
use pisa_radio::grid::Point;
use pisa_watch::SuRequest;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x5d2);
    let mut air = AirSim::wifi_channel6();
    let su1 = air.add_node(Node::usrp("SU1", Point { x: 3.0, y: 0.0 }));
    let su2 = air.add_node(Node::usrp("SU2", Point { x: 40.0, y: 0.0 }));
    let pu = air.add_node(Node::usrp("PU", Point { x: 0.0, y: 0.0 }));

    println!(
        "SDR experiment on WiFi channel 6 ({} MHz, cf. Figure 7)\n",
        air.freq_mhz()
    );

    // Figure 8: two packets within ~0.35 ms, different amplitudes.
    println!("Figure 8 — waveforms received by PU (scenario 1):");
    air.transmit(su1, 0.0, 120.0);
    air.transmit(su2, 230.0, 120.0);
    let seen = air.observe(pu);
    for p in &seen {
        println!(
            "  t={:>6.0} µs  {}  amplitude {:.5}  rx {:.1} dBm  {}",
            p.time_us,
            p.from,
            p.amplitude,
            p.rx_power_dbm,
            bar(p.amplitude, seen[0].amplitude)
        );
    }
    println!(
        "  amplitude ratio SU1/SU2 = {:.1} (unequal distances)",
        seen[0].amplitude / seen[1].amplitude
    );

    // The waveform itself, GNU-Radio style (60 samples across 420 µs).
    let trace = air.render_trace(pu, 420.0, 60.0 / 420.0);
    let peak = trace.iter().cloned().fold(0.0f64, f64::max);
    let rows = 6;
    println!("  envelope at PU (420 µs):");
    for row in (1..=rows).rev() {
        // Quadratic level spacing so the weaker burst stays visible.
        let frac = row as f64 / rows as f64;
        let threshold = peak * frac * frac;
        let line: String = trace
            .iter()
            .map(|&a| if a >= threshold { '█' } else { ' ' })
            .collect();
        println!("    |{line}");
    }
    println!("    +{}\n", "-".repeat(trace.len()));

    // Figure 10: PU update.
    let cfg = SystemConfig::small_test();
    let mut system = PisaSystem::setup(cfg.clone(), &mut rng);
    println!("Figure 10 — update from PU (scenario 2): PU claims the channel");
    system.pu_update(0, BlockId(0), Some(Channel(0)), &mut rng);
    air.clear_schedule();
    println!("  encrypted update applied; SDC notifies SUs to stop\n");

    // Figure 11: requests from SUs.
    println!("Figure 11 — requests from SUs (scenario 3):");
    let id1 = system.register_su(BlockId(1), &mut rng);
    let id2 = system.register_su(BlockId(24), &mut rng);
    let req1 = SuRequest::full_power(cfg.watch(), BlockId(1), &[Channel(0)]);
    let req2 = SuRequest::with_power_dbm(cfg.watch(), BlockId(24), &[Channel(0)], -30.0);
    let out1 = system.request_with(id1, &req1, &mut rng).unwrap();
    let out2 = system.request_with(id2, &req2, &mut rng).unwrap();
    println!(
        "  SU1 request sent ({} bytes), ack received",
        out1.request_bytes
    );
    println!(
        "  SU2 request sent ({} bytes), ack received\n",
        out2.request_bytes
    );

    // Figure 9: the granted SU transmits.
    println!("Figure 9 — scenario 4 outcome:");
    println!(
        "  SU1 (full power, adjacent): {}",
        if out1.granted { "granted" } else { "DENIED" }
    );
    println!(
        "  SU2 (-30 dBm, far):         {}",
        if out2.granted { "GRANTED" } else { "denied" }
    );
    assert!(!out1.granted && out2.granted, "scenario 4 decision");
    for i in 0..11 {
        air.transmit(su2, i as f64 * 1800.0, 300.0);
    }
    let burst = air.observe(pu);
    println!(
        "  PU observes {} packets from {} within {:.0} ms (paper: ~11 packets / 20 ms)",
        burst.len(),
        burst[0].from,
        (burst.last().unwrap().time_us + burst.last().unwrap().duration_us) / 1000.0
    );
}

fn bar(v: f64, max: f64) -> String {
    let n = ((v / max) * 30.0).round() as usize;
    "█".repeat(n.max(1))
}
