//! Regenerates the §VI-A **location privacy vs time** series: request
//! preparation and SDC processing time as a function of the exposed
//! region size, demonstrating the paper's "asymptotically linear"
//! relation (their example: a 100×300 matrix for "somewhere in the
//! north" vs 100×600 for full privacy).
//!
//! ```sh
//! cargo run --release -p pisa-bench --bin privacy_tradeoff [key_bits]
//! ```

use pisa::prelude::*;
use pisa::{LocationPrivacy, SdcServer, StpServer, SuClient, SuId};
use pisa_bench::{fmt_bytes, fmt_duration, scaled_config};
use pisa_net::WireSize;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let key_bits: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("key size in bits"))
        .unwrap_or(512);

    // 4 channels × 60 blocks — the paper's B=600 shape at 1/10 scale
    // (sweep points 15/30/45/60 mirror their 150/300/450/600).
    let cfg = scaled_config(4, 6, 10, key_bits);
    let blocks = cfg.blocks();
    let mut rng = StdRng::seed_from_u64(0x7ade0ff);
    let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
    let mut sdc = SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc", &mut rng);
    let mut su = SuClient::new(SuId(0), BlockId(0), &cfg, &mut rng);
    stp.register_su(SuId(0), su.public_key().clone());

    println!(
        "location privacy vs time ({} channels × {blocks} blocks, {key_bits}-bit keys)\n",
        cfg.channels()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>14} {:>14}",
        "region", "privacy", "request", "prep time", "SDC phase1", "STP convert"
    );

    let mut baseline: Option<(usize, f64)> = None;
    for region in [blocks / 4, blocks / 2, 3 * blocks / 4, blocks] {
        su.set_privacy(LocationPrivacy::Region(region));

        let t = Instant::now();
        let request = su.build_request(&cfg, stp.public_key(), &[Channel(0)], &mut rng);
        let prep = t.elapsed();

        let t = Instant::now();
        let to_stp = sdc.process_request_phase1(&request, &mut rng).unwrap();
        let phase1 = t.elapsed();

        let t = Instant::now();
        let (_reply, _) = stp.key_convert(&to_stp, &mut rng).unwrap();
        let convert = t.elapsed();

        println!(
            "{:>8} {:>9.0}% {:>12} {:>14} {:>14} {:>14}",
            region,
            100.0 * region as f64 / blocks as f64,
            fmt_bytes(request.wire_bytes() as u64),
            fmt_duration(prep),
            fmt_duration(phase1),
            fmt_duration(convert)
        );

        let total = (prep + phase1 + convert).as_secs_f64();
        if let Some((r0, t0)) = baseline {
            let expected = total / (region as f64 / r0 as f64);
            let ratio = expected / t0;
            if !(0.5..2.0).contains(&ratio) {
                println!("    (warning: deviation from linear scaling: {ratio:.2})");
            }
        } else {
            baseline = Some((region, total));
        }
    }
    println!("\nshape: time and bytes grow linearly with the exposed region,");
    println!("matching the paper's asymptotically-linear trade-off.");
}
