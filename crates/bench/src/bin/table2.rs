//! Regenerates **Table II** — "Benchmark of Paillier cryptosystem
//! (n is 2048-bit)" — with this implementation on this machine.
//!
//! ```sh
//! cargo run --release -p pisa-bench --bin table2 [key_bits]
//! ```

use pisa_bench::{fmt_duration, time_avg};
use pisa_bigint::random::random_bits;
use pisa_bigint::Ibig;
use pisa_crypto::paillier::PaillierKeyPair;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bits: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("key size in bits"))
        .unwrap_or(2048);
    let iters = 30; // paper: average of 30 iterations

    println!("Table II: Benchmark of Paillier cryptosystem (n is {bits}-bit)");
    println!("(paper values for n=2048 on an i5-2400 with GMP in parentheses)\n");

    let mut rng = StdRng::seed_from_u64(0x7ab1e);
    let kp = PaillierKeyPair::generate(&mut rng, bits);
    let pk = kp.public();

    println!(
        "{:<42} {:>12}",
        "Public key size",
        format!("{} bits", 2 * bits)
    );
    println!(
        "{:<42} {:>12}",
        "Secret key size",
        format!("{} bits", 2 * bits)
    );
    println!(
        "{:<42} {:>12}",
        "Plaintext message size",
        format!("{bits} bits")
    );
    println!(
        "{:<42} {:>12}",
        "Ciphertext size",
        format!("{} bits", pk.ciphertext_bytes() * 8)
    );

    let m = Ibig::from(0x0123_4567_89ab_cdefi64);
    let c1 = pk.encrypt(&m, &mut rng);
    let c2 = pk.encrypt(&Ibig::from(7i64), &mut rng);
    let k100 = Ibig::from(random_bits(&mut rng, 100));
    let kfull = Ibig::from(random_bits(&mut rng, bits - 8));

    let row = |name: &str, paper: &str, d: std::time::Duration| {
        println!("{:<42} {:>12}   (paper: {paper})", name, fmt_duration(d));
    };

    let mut enc_rng = StdRng::seed_from_u64(1);
    row(
        "Encryption",
        "30.378 ms",
        time_avg(iters, || pk.encrypt(&m, &mut enc_rng)),
    );
    row(
        "Decryption (CRT)",
        "21.170 ms",
        time_avg(iters, || kp.secret().decrypt(&c1)),
    );
    row(
        "Decryption (standard)",
        "-",
        time_avg(iters, || kp.secret().decrypt_standard(&c1)),
    );
    row(
        "Homomorphic addition",
        "0.004 ms",
        time_avg(iters, || pk.add(&c1, &c2)),
    );
    row(
        "Homomorphic subtraction",
        "0.073 ms",
        time_avg(iters, || pk.sub(&c1, &c2).unwrap()),
    );
    row(
        "Homomorphic scale (100-bit constant)",
        "1.564 ms",
        time_avg(iters, || pk.scalar_mul(&c1, &k100).unwrap()),
    );
    row(
        "Homomorphic scale (full-size)",
        "18.867 ms",
        time_avg(iters, || pk.scalar_mul(&c1, &kfull).unwrap()),
    );
    let mut rr_rng = StdRng::seed_from_u64(2);
    row(
        "Re-randomization",
        "-",
        time_avg(iters, || pk.rerandomize(&c1, &mut rr_rng)),
    );

    println!("\nshape checks: add ≪ sub ≪ scale(100) < scale(full) ≈ enc ≈ dec·(1..2)");
}
