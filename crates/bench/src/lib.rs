//! Shared helpers for the PISA benchmark harness.
//!
//! Every table and figure of the paper's evaluation (§VI) has a
//! regenerating target in this crate:
//!
//! | Paper artifact | Criterion bench | Harness binary |
//! |---|---|---|
//! | Table I (settings) | — | `fig6_system_eval` (header) |
//! | Table II (Paillier ops) | `table2_paillier` | `table2` |
//! | Figure 6 (system evaluation) | `fig6_system` | `fig6_system_eval` |
//! | §VI-A privacy/time trade-off | `privacy_tradeoff` | `privacy_tradeoff` |
//! | Figures 8–11 (SDR scenarios) | — | `sdr_scenarios` |
//! | FHE/bitwise comparison claim | `ablation_comparison` | — |

#![forbid(unsafe_code)]

use pisa::SystemConfig;
use pisa_radio::protection::ProtectionParams;
use pisa_radio::terrain::Terrain;
use pisa_radio::{Quantizer, ServiceArea};
use pisa_watch::WatchConfig;
use std::time::{Duration, Instant};

/// A scaled-down system configuration: `channels × (rows × cols)` blocks
/// with `key_bits` Paillier keys — same code paths as
/// [`SystemConfig::paper`], tractable in CI.
pub fn scaled_config(channels: usize, rows: usize, cols: usize, key_bits: usize) -> SystemConfig {
    let watch = WatchConfig::new(
        ServiceArea::new(rows, cols, 10.0),
        channels,
        ProtectionParams::atsc_defaults(),
        Quantizer::paper(),
        Terrain::flat(),
        Vec::new(),
    );
    SystemConfig::new(watch, key_bits, 128, 64)
}

/// Measures `f` averaged over `iters` runs (the paper's Table II uses
/// the average of 30 iterations).
pub fn time_avg<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed() / iters as u32
}

/// Pretty-prints a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Pretty-prints a byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b} B")
    } else if b < 1024 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_dimensions() {
        let cfg = scaled_config(4, 5, 6, 256);
        assert_eq!(cfg.channels(), 4);
        assert_eq!(cfg.blocks(), 30);
        assert_eq!(cfg.paillier_bits(), 256);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(29 * 1024 * 1024), "29.0 MiB");
    }

    #[test]
    fn time_avg_positive() {
        let d = time_avg(3, || (0..1000).sum::<u64>());
        assert!(d.as_nanos() > 0 || d.is_zero());
    }
}
