//! The [`StormReport`]: everything one simulated storm produced, in a
//! canonical, byte-reproducible form.
//!
//! Determinism is a *testable* property only if a whole run can be
//! compared cheaply. The report therefore carries a FNV-1a digest over
//! every per-session decision (in SU-id order) next to the aggregate
//! counters, and serializes to JSON through the same canonical writer
//! `pisa-obs` uses — same seed, same config ⇒ byte-identical
//! [`StormReport::to_json`] output.

use pisa_net::{FaultStats, SessionStats};
use pisa_obs::json::Value;

/// The terminal state of one simulated SU session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// The SU's id.
    pub su: u32,
    /// `Some(granted)`, or `None` when the retry budget ran dry.
    pub granted: Option<bool>,
    /// Requests sent before reaching a terminal state.
    pub attempts: u32,
    /// Virtual instant (ns) the session became terminal.
    pub finished_ns: u64,
}

/// What one seeded storm did, end to end.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// The storm seed.
    pub seed: u64,
    /// `"real"` or `"modeled"`.
    pub fidelity: &'static str,
    /// Sessions simulated.
    pub sus: u32,
    /// Sessions that ended in a verified grant.
    pub granted: u32,
    /// Sessions that concluded a denial.
    pub denied: u32,
    /// Sessions that exhausted their retry budget undecided.
    pub undecided: u32,
    /// Sessions that never reached a terminal state (always 0 on a
    /// healthy run — the event loop drains every deadline).
    pub unfinished: u32,
    /// Total requests sent across all sessions.
    pub attempts_total: u64,
    /// Largest per-session attempt count.
    pub max_attempts: u32,
    /// Virtual time (ns) of the last processed event.
    pub makespan_ns: u64,
    /// Events processed by the loop.
    pub events: u64,
    /// `true` if the event cap tripped (a bug: the storm did not
    /// quiesce).
    pub truncated: bool,
    /// Messages delivered by the virtual network.
    pub messages: u64,
    /// Bytes delivered by the virtual network.
    pub bytes: u64,
    /// Injected-fault totals.
    pub faults: FaultStats,
    /// Session-level retry/timeout/reject totals.
    pub sessions: SessionStats,
    /// FNV-1a digest over `(su, outcome, attempts)` in SU-id order.
    pub decisions_digest: u64,
    /// Per-session outcomes, in SU-id order.
    pub outcomes: Vec<SimOutcome>,
    /// Modeled runs only: the oracle's expected grant per SU, for
    /// decision-correctness checks. Empty in real fidelity.
    pub expected: Vec<bool>,
}

/// Seed/prime pair of 64-bit FNV-1a.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Digest of a decision vector: order-sensitive FNV-1a over
/// `(su, outcome code, attempts)` triples.
pub fn decisions_digest(outcomes: &[SimOutcome]) -> u64 {
    let mut hash = FNV_OFFSET;
    for o in outcomes {
        fnv1a(&mut hash, &o.su.to_le_bytes());
        let code: u8 = match o.granted {
            Some(true) => 1,
            Some(false) => 2,
            None => 0,
        };
        fnv1a(&mut hash, &[code]);
        fnv1a(&mut hash, &o.attempts.to_le_bytes());
    }
    hash
}

/// Outcome vectors longer than this are summarized in the JSON (the
/// digest still covers every entry).
const JSON_OUTCOME_CAP: usize = 256;

impl StormReport {
    /// `true` when every session reached a terminal state and the loop
    /// quiesced on its own.
    pub fn all_terminal(&self) -> bool {
        self.unfinished == 0 && !self.truncated
    }

    /// The report as a canonical JSON value. Keys are emitted in a
    /// fixed order and the decision digest as fixed-width hex, so equal
    /// reports render byte-identically.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("seed", Value::from_u64(self.seed)),
            ("fidelity", Value::Str(self.fidelity.to_owned())),
            ("sus", Value::from_u64(u64::from(self.sus))),
            ("granted", Value::from_u64(u64::from(self.granted))),
            ("denied", Value::from_u64(u64::from(self.denied))),
            ("undecided", Value::from_u64(u64::from(self.undecided))),
            ("unfinished", Value::from_u64(u64::from(self.unfinished))),
            ("attempts_total", Value::from_u64(self.attempts_total)),
            (
                "max_attempts",
                Value::from_u64(u64::from(self.max_attempts)),
            ),
            ("makespan_ns", Value::from_u64(self.makespan_ns)),
            ("events", Value::from_u64(self.events)),
            ("truncated", Value::Bool(self.truncated)),
            ("messages", Value::from_u64(self.messages)),
            ("bytes", Value::from_u64(self.bytes)),
            (
                "faults",
                Value::object(vec![
                    ("dropped", Value::from_u64(self.faults.dropped)),
                    ("duplicated", Value::from_u64(self.faults.duplicated)),
                    ("reordered", Value::from_u64(self.faults.reordered)),
                    ("corrupted", Value::from_u64(self.faults.corrupted)),
                    (
                        "corrupt_dropped",
                        Value::from_u64(self.faults.corrupt_dropped),
                    ),
                ]),
            ),
            (
                "sessions",
                Value::object(vec![
                    ("retries", Value::from_u64(self.sessions.retries)),
                    ("timeouts", Value::from_u64(self.sessions.timeouts)),
                    ("rejected", Value::from_u64(self.sessions.rejected)),
                ]),
            ),
            (
                "decisions_digest",
                Value::Str(format!("{:016x}", self.decisions_digest)),
            ),
        ];
        if self.outcomes.len() <= JSON_OUTCOME_CAP {
            let outcomes = self
                .outcomes
                .iter()
                .map(|o| {
                    Value::object(vec![
                        ("su", Value::from_u64(u64::from(o.su))),
                        (
                            "granted",
                            match o.granted {
                                Some(g) => Value::Bool(g),
                                None => Value::Null,
                            },
                        ),
                        ("attempts", Value::from_u64(u64::from(o.attempts))),
                        ("finished_ns", Value::from_u64(o.finished_ns)),
                    ])
                })
                .collect();
            fields.push(("outcomes", Value::Arr(outcomes)));
        }
        Value::object(fields)
    }

    /// The report as canonical JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(su: u32, granted: Option<bool>, attempts: u32) -> SimOutcome {
        SimOutcome {
            su,
            granted,
            attempts,
            finished_ns: u64::from(su) * 10,
        }
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = vec![outcome(0, Some(true), 1), outcome(1, Some(false), 2)];
        let b = vec![outcome(1, Some(false), 2), outcome(0, Some(true), 1)];
        assert_ne!(decisions_digest(&a), decisions_digest(&b));
        let mut c = a.clone();
        c[0].granted = None;
        assert_ne!(decisions_digest(&a), decisions_digest(&c));
        assert_eq!(decisions_digest(&a), decisions_digest(&a.clone()));
    }

    #[test]
    fn json_is_canonical_and_caps_outcome_lists() {
        let outcomes: Vec<SimOutcome> = (0..4).map(|i| outcome(i, Some(i % 2 == 0), 1)).collect();
        let report = StormReport {
            seed: 7,
            fidelity: "modeled",
            sus: 4,
            granted: 2,
            denied: 2,
            undecided: 0,
            unfinished: 0,
            attempts_total: 4,
            max_attempts: 1,
            makespan_ns: 30,
            events: 16,
            truncated: false,
            messages: 16,
            bytes: 1024,
            faults: FaultStats::default(),
            sessions: SessionStats::default(),
            decisions_digest: decisions_digest(&outcomes),
            outcomes,
            expected: vec![true, false, true, false],
        };
        assert!(report.all_terminal());
        let text = report.to_json();
        assert_eq!(text, report.clone().to_json(), "rendering is stable");
        assert!(text.contains("\"decisions_digest\":\""));
        assert!(text.contains("\"outcomes\":["));

        let mut big = report.clone();
        big.outcomes = (0..300).map(|i| outcome(i, Some(true), 1)).collect();
        assert!(!big.to_json().contains("\"outcomes\""));

        let parsed = Value::parse(&text).expect("canonical JSON parses");
        assert_eq!(parsed.get("sus").and_then(Value::as_u64), Some(4));
    }
}
