//! Modeled-fidelity protocol: the storm state machines without the
//! cryptography.
//!
//! A 10⁵-session storm cannot run real Paillier in CI, but almost none
//! of the *resilience* behaviour depends on the ciphertexts: grant/deny
//! decisions are a pure function of the plaintext WATCH matrices, and
//! the retry/replay/reject logic keys on session ids, attempt counters
//! and request digests. This module therefore mirrors the session
//! engines of `pisa-core` over a lightweight [`ModelMsg`] whose wire
//! size is computed analytically (exactly how the real messages size
//! themselves) and whose decisions come from the plaintext
//! [`WatchSdc`] oracle — the same oracle the watch-equivalence tests
//! pin the encrypted pipeline against.
//!
//! The mirroring is deliberate and per-arm: every match arm in
//! [`ModelSdc::handle`] / [`ModelSu`] corresponds to a named arm of
//! `SdcSessionEngine::handle` / `SuSessionEngine::on_event`, including
//! the replay, stale-duplicate, ε-preserving resend and
//! unverifiable-response paths.

use pisa::EngineConfig;
use pisa_net::{NetMetrics, Party, WireSize};
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use pisa_watch::{PuInput, SuRequest, WatchConfig, WatchSdc};
use std::collections::HashMap;

/// Bytes of the session header (id + attempt), as in the real codec.
const SESSION_HEADER_BYTES: usize = 12;
/// Bytes of the inner message header, as in the real codec.
const HEADER_BYTES: usize = 64;
/// Modeled size of a serialized license (id, serial, digest, padding).
const MODEL_LICENSE_BYTES: usize = 96;

/// The protocol step a [`ModelMsg`] carries, mirroring the four
/// in-session `PisaMessage` variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelPayload {
    /// SU → SDC encrypted request (`F̃`).
    Request {
        /// The requesting SU (mirrors `SuRequestMsg::su_id`).
        su: u32,
        /// Digest of the request content (mirrors the license digest
        /// over the `F̃` ciphertexts; corruption perturbs it).
        digest: u64,
    },
    /// SDC → STP blinded sign-test query (`Ṽ`).
    Query {
        /// Session owner.
        su: u32,
        /// Content digest carried through the round.
        digest: u64,
    },
    /// STP → SDC key-converted reply (`X̃`).
    Reply {
        /// Session owner.
        su: u32,
        /// Content digest carried through the round.
        digest: u64,
    },
    /// SDC → SU license release (`G̃`).
    Response {
        /// The SU named in the license.
        su: u32,
        /// Digest the license binds to (the SU rejects mismatches).
        digest: u64,
        /// Whether the plaintext decision granted the request.
        granted: bool,
        /// Whether the signature ciphertext was mangled in transit: a
        /// garbled response never verifies, like a flipped bit in
        /// `G̃` — and, like the real RSA signature, corruption can
        /// garble a grant but never forge one.
        garbled: bool,
    },
}

/// A modeled session frame: header fields plus payload, sized
/// analytically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelMsg {
    /// Session identifier (the engines use the SU id).
    pub session: u64,
    /// Originating SU attempt, as in `SessionMsg`.
    pub attempt: u32,
    /// The protocol step.
    pub payload: ModelPayload,
    /// Analytic wire size in bytes.
    pub bytes: usize,
}

impl WireSize for ModelMsg {
    fn wire_bytes(&self) -> usize {
        self.bytes
    }
}

/// Analytic wire sizes for one storm configuration, mirroring the
/// formulas in `pisa-core`'s message types: matrix-bearing messages
/// cost `channels × blocks` ciphertexts, the response one ciphertext
/// plus a license.
#[derive(Debug, Clone, Copy)]
pub struct ModelWire {
    request: usize,
    query: usize,
    reply: usize,
    response: usize,
}

impl ModelWire {
    /// Sizes for a `channels × blocks` system with `ct_bytes`-byte
    /// ciphertexts.
    pub fn new(channels: usize, blocks: usize, ct_bytes: usize) -> Self {
        let matrix = channels * blocks * ct_bytes;
        ModelWire {
            request: SESSION_HEADER_BYTES + HEADER_BYTES + matrix,
            query: SESSION_HEADER_BYTES + HEADER_BYTES + matrix,
            reply: SESSION_HEADER_BYTES + HEADER_BYTES + matrix,
            response: SESSION_HEADER_BYTES + HEADER_BYTES + MODEL_LICENSE_BYTES + ct_bytes,
        }
    }

    fn sized(&self, session: u64, attempt: u32, payload: ModelPayload) -> ModelMsg {
        let bytes = match payload {
            ModelPayload::Request { .. } => self.request,
            ModelPayload::Query { .. } => self.query,
            ModelPayload::Reply { .. } => self.reply,
            ModelPayload::Response { .. } => self.response,
        };
        ModelMsg {
            session,
            attempt,
            payload,
            bytes,
        }
    }
}

/// The canonical request digest of one SU's (only) request — the model
/// analog of `License::digest_request` over its ciphertexts.
pub fn model_digest(su: u32) -> u64 {
    let mut z = 0x00d1_6e57_u64 ^ (u64::from(su) << 1);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// The corruption oracle for modeled frames: a deterministic stand-in
/// for "flip one bit of the encoded frame and re-parse". Depending on
/// the tweak the flip lands in dead padding (absorbed), a header field
/// (attempt / session), the content (digest), or — for responses — the
/// signature ciphertext (garbled). Like the real oracle it never turns
/// a denial into a verifiable grant.
pub fn corrupt_model_frame(msg: &ModelMsg, tweak: u64) -> Option<ModelMsg> {
    let mut m = *msg;
    match tweak % 6 {
        // The flip lands somewhere the decoder chokes on: absorbed.
        0 => None,
        // Header attempt counter.
        1 => {
            m.attempt ^= 1 << (tweak >> 3 & 0x7);
            Some(m)
        }
        // Header session id.
        2 => {
            m.session ^= 1 << (tweak >> 3 & 0x3f);
            Some(m)
        }
        // Payload identity: the embedded SU id.
        3 => {
            let flip = 1u32 << (tweak >> 3 & 0x7);
            match &mut m.payload {
                ModelPayload::Request { su, .. }
                | ModelPayload::Query { su, .. }
                | ModelPayload::Reply { su, .. }
                | ModelPayload::Response { su, .. } => *su ^= flip,
            }
            Some(m)
        }
        // Payload content: the digest.
        4 => {
            let flip = (tweak >> 3) | 1;
            match &mut m.payload {
                ModelPayload::Request { digest, .. }
                | ModelPayload::Query { digest, .. }
                | ModelPayload::Reply { digest, .. }
                | ModelPayload::Response { digest, .. } => *digest ^= flip,
            }
            Some(m)
        }
        // The ciphertext: responses garble (unverifiable, never
        // forged), matrix messages take a content flip instead.
        _ => {
            match &mut m.payload {
                ModelPayload::Response { garbled, .. } => *garbled = true,
                ModelPayload::Request { digest, .. }
                | ModelPayload::Query { digest, .. }
                | ModelPayload::Reply { digest, .. } => *digest ^= 0x8000_0000_0000_0001,
            }
            Some(m)
        }
    }
}

/// The plaintext decision oracle: one [`WatchSdc`] with the storm's PU
/// population applied, memoized per `(block, channel)` — 10⁵ SUs share
/// at most `blocks × channels` distinct decisions.
pub struct ModelOracle {
    watch: WatchSdc,
    cfg: WatchConfig,
    channels: usize,
    blocks: usize,
    cache: HashMap<(usize, usize), bool>,
}

impl ModelOracle {
    /// Builds the oracle for the canonical storm population: one PU at
    /// block 0 tuned to channel 0 (the `pisa storm` recipe), SU `i` at
    /// block `i % blocks` requesting channel `i % channels`.
    pub fn new(cfg: &WatchConfig) -> Self {
        let mut watch = WatchSdc::new(cfg.clone());
        watch.pu_update(0, PuInput::tuned(cfg, BlockId(0), Channel(0)));
        ModelOracle {
            watch,
            cfg: cfg.clone(),
            channels: cfg.channels(),
            blocks: cfg.blocks(),
            cache: HashMap::new(),
        }
    }

    /// Whether a full-power request at `block` for `channel` is
    /// granted.
    pub fn decision(&mut self, block: usize, channel: usize) -> bool {
        let block = block % self.blocks;
        let channel = channel % self.channels;
        if let Some(&cached) = self.cache.get(&(block, channel)) {
            return cached;
        }
        let req = SuRequest::full_power(&self.cfg, BlockId(block), &[Channel(channel)]);
        let granted = self.watch.process_request(&req).is_granted();
        self.cache.insert((block, channel), granted);
        granted
    }

    /// The decision for storm SU `i` under the canonical placement.
    pub fn su_decision(&mut self, su: u32) -> bool {
        let su = su as usize; // pisa-lint: allow(panic-freedom): u32 → usize never truncates
        self.decision(su % self.blocks, su % self.channels)
    }
}

/// Where one modeled session stands inside the SDC, mirroring the
/// real engine's `SessionPhase`.
enum Phase {
    AwaitingStp {
        attempt: u32,
        digest: u64,
        granted: bool,
    },
    Completed {
        attempt: u32,
        digest: u64,
        granted: bool,
    },
}

/// The modeled SDC service engine: same replay/resend/reject state
/// machine as `SdcSessionEngine`, decisions from the plaintext oracle.
pub struct ModelSdc {
    sus: u32,
    sessions: HashMap<u32, Phase>,
    oracle: ModelOracle,
    wire: ModelWire,
    metrics: NetMetrics,
}

impl ModelSdc {
    /// An engine serving `sus` registered SUs.
    pub fn new(sus: u32, oracle: ModelOracle, wire: ModelWire, metrics: NetMetrics) -> Self {
        ModelSdc {
            sus,
            sessions: HashMap::new(),
            oracle,
            wire,
            metrics,
        }
    }

    /// Processes one frame addressed to the SDC; returns the responses.
    pub fn handle(&mut self, frame: ModelMsg) -> Vec<(Party, ModelMsg)> {
        match frame.payload {
            ModelPayload::Request { su, digest } => {
                let session = u64::from(su);
                enum Action {
                    Replay(bool, u32),
                    Resend(u32),
                    Reject,
                    Fresh,
                }
                let action = match self.sessions.get_mut(&su) {
                    // Idempotent replay of an answered attempt.
                    Some(Phase::Completed {
                        attempt,
                        digest: d,
                        granted,
                    }) if *d == digest && frame.attempt == *attempt => {
                        Action::Replay(*granted, *attempt)
                    }
                    // Stale duplicate of a superseded attempt.
                    Some(Phase::Completed {
                        attempt, digest: d, ..
                    }) if *d == digest && frame.attempt < *attempt => Action::Reject,
                    // Sign test in flight: re-send the same query under
                    // the newest attempt (ε must not change).
                    Some(Phase::AwaitingStp {
                        attempt, digest: d, ..
                    }) if *d == digest => {
                        *attempt = (*attempt).max(frame.attempt);
                        Action::Resend(*attempt)
                    }
                    // Fresh request or corrupted digest: phase 1.
                    _ => Action::Fresh,
                };
                match action {
                    Action::Replay(granted, attempt) => vec![(
                        Party::Su(su),
                        self.wire.sized(
                            session,
                            attempt,
                            ModelPayload::Response {
                                su,
                                digest,
                                granted,
                                garbled: false,
                            },
                        ),
                    )],
                    Action::Resend(attempt) => vec![(
                        Party::Stp,
                        self.wire
                            .sized(session, attempt, ModelPayload::Query { su, digest }),
                    )],
                    Action::Reject => {
                        self.metrics.record_session_reject(session);
                        Vec::new()
                    }
                    Action::Fresh => {
                        // A digest that is not the SU's canonical one is
                        // a corrupted request: garbage plaintexts can
                        // never satisfy every budget, so it resolves to
                        // a denial — exactly like the encrypted path.
                        let granted = digest == model_digest(su) && self.oracle.su_decision(su);
                        self.sessions.insert(
                            su,
                            Phase::AwaitingStp {
                                attempt: frame.attempt,
                                digest,
                                granted,
                            },
                        );
                        vec![(
                            Party::Stp,
                            self.wire.sized(
                                session,
                                frame.attempt,
                                ModelPayload::Query { su, digest },
                            ),
                        )]
                    }
                }
            }
            ModelPayload::Reply { su, .. } => {
                let session = u64::from(su);
                let current = match self.sessions.get(&su) {
                    Some(Phase::AwaitingStp {
                        attempt,
                        digest,
                        granted,
                    }) if *attempt == frame.attempt => Some((*attempt, *digest, *granted)),
                    // Stale attempt, consumed reply, or no phase-1
                    // state.
                    _ => None,
                };
                let Some((attempt, digest, granted)) = current else {
                    self.metrics.record_session_reject(session);
                    return Vec::new();
                };
                // Mirror of the phase-2 key lookup: an unknown SU has
                // no key directory entry.
                if su >= self.sus {
                    self.metrics.record_session_reject(session);
                    return Vec::new();
                }
                self.sessions.insert(
                    su,
                    Phase::Completed {
                        attempt,
                        digest,
                        granted,
                    },
                );
                vec![(
                    Party::Su(su),
                    self.wire.sized(
                        session,
                        attempt,
                        ModelPayload::Response {
                            su,
                            digest,
                            granted,
                            garbled: false,
                        },
                    ),
                )]
            }
            // Out-of-protocol traffic: reject, never panic.
            _ => {
                self.metrics.record_session_reject(frame.session);
                Vec::new()
            }
        }
    }
}

/// The modeled STP: stateless key conversion, mirroring
/// `StpSessionEngine` (including the reject on an unregistered SU,
/// whose key the conversion would need).
pub struct ModelStp {
    sus: u32,
    wire: ModelWire,
    metrics: NetMetrics,
}

impl ModelStp {
    /// An engine serving `sus` registered SUs.
    pub fn new(sus: u32, wire: ModelWire, metrics: NetMetrics) -> Self {
        ModelStp { sus, wire, metrics }
    }

    /// Processes one frame addressed to the STP.
    pub fn handle(&mut self, frame: ModelMsg) -> Vec<(Party, ModelMsg)> {
        match frame.payload {
            ModelPayload::Query { su, digest } if su < self.sus => vec![(
                Party::Sdc,
                self.wire.sized(
                    frame.session,
                    frame.attempt,
                    ModelPayload::Reply { su, digest },
                ),
            )],
            _ => {
                self.metrics.record_session_reject(frame.session);
                Vec::new()
            }
        }
    }
}

/// What one modeled SU wants next, mirroring `SuAction`.
pub enum ModelSuStep {
    /// Send these frames, then wait out `deadline_ns` of virtual time.
    Wait {
        /// Frames for the SDC, in order.
        sends: Vec<ModelMsg>,
        /// Full receive deadline (re-armed even after rejects).
        deadline_ns: u64,
    },
    /// Terminal state.
    Done {
        /// `Some(granted)`, or `None` when the retry budget ran dry.
        granted: Option<bool>,
        /// Requests sent.
        attempts: u32,
    },
}

/// One modeled SU session: the exact state machine of
/// `SuSessionEngine` over model frames.
pub struct ModelSu {
    su: u32,
    session: u64,
    digest: u64,
    attempt: u32,
    max_retries: u32,
    timeout_ns: u64,
    corrupt_possible: bool,
    wire: ModelWire,
    metrics: NetMetrics,
}

impl ModelSu {
    /// A session for SU `su` under the given retry policy.
    pub fn new(
        su: u32,
        engine: &EngineConfig,
        corrupt_possible: bool,
        wire: ModelWire,
        metrics: NetMetrics,
    ) -> Self {
        ModelSu {
            su,
            session: u64::from(su),
            digest: model_digest(su),
            attempt: 0,
            max_retries: engine.max_retries,
            timeout_ns: u64::try_from(engine.timeout.as_nanos()).unwrap_or(u64::MAX),
            corrupt_possible,
            wire,
            metrics,
        }
    }

    fn request(&self) -> ModelMsg {
        self.wire.sized(
            self.session,
            self.attempt,
            ModelPayload::Request {
                su: self.su,
                digest: self.digest,
            },
        )
    }

    /// Exponential-backoff deadline, mirroring `EngineConfig::deadline`.
    fn deadline_ns(&self) -> u64 {
        self.timeout_ns.saturating_mul(1 << self.attempt.min(3))
    }

    fn wait(&self, sends: Vec<ModelMsg>) -> ModelSuStep {
        ModelSuStep::Wait {
            sends,
            deadline_ns: self.deadline_ns(),
        }
    }

    fn finish(&self, granted: Option<bool>) -> ModelSuStep {
        ModelSuStep::Done {
            granted,
            attempts: self.attempt + 1,
        }
    }

    fn retry(&mut self) -> ModelSuStep {
        self.attempt += 1;
        self.metrics.record_session_retry(self.session);
        self.wait(vec![self.request()])
    }

    /// Kicks the session off: the attempt-0 request and its deadline.
    pub fn start(&self) -> ModelSuStep {
        self.wait(vec![self.request()])
    }

    /// A frame was delivered to this SU.
    pub fn on_frame(&mut self, frame: ModelMsg) -> ModelSuStep {
        match frame.payload {
            ModelPayload::Response {
                su,
                digest,
                granted,
                garbled,
            } if su == self.su && digest == self.digest => {
                if granted && !garbled {
                    // A verified grant is final (corruption cannot
                    // forge a signature).
                    return self.finish(Some(true));
                }
                if !self.corrupt_possible {
                    // Links never mangle payloads: an unverifiable
                    // response IS the deny.
                    return self.finish(Some(false));
                }
                // Denial or flipped bit — indistinguishable; spend a
                // retry to find out.
                self.metrics.record_session_reject(self.session);
                if self.attempt >= self.max_retries {
                    return self.finish(Some(false));
                }
                self.retry()
            }
            // Foreign digest / foreign SU / out-of-protocol: reject
            // and wait out a fresh full deadline.
            _ => {
                self.metrics.record_session_reject(self.session);
                self.wait(Vec::new())
            }
        }
    }

    /// The receive deadline expired with nothing acceptable.
    pub fn on_timeout(&mut self) -> ModelSuStep {
        self.metrics.record_session_timeout(self.session);
        if self.attempt >= self.max_retries {
            return self.finish(None);
        }
        self.retry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> ModelWire {
        ModelWire::new(4, 25, 96)
    }

    #[test]
    fn wire_sizes_mirror_real_formulas() {
        let w = wire();
        // 12 (session header) + 64 (message header) + 4·25·96.
        assert_eq!(w.request, 12 + 64 + 9600);
        assert_eq!(w.response, 12 + 64 + 96 + 96);
        let msg = w.sized(0, 0, ModelPayload::Request { su: 0, digest: 1 });
        assert_eq!(msg.wire_bytes(), w.request);
    }

    #[test]
    fn corruption_is_deterministic_and_never_forges_a_grant() {
        let w = wire();
        let denied = w.sized(
            3,
            1,
            ModelPayload::Response {
                su: 3,
                digest: model_digest(3),
                granted: false,
                garbled: false,
            },
        );
        for tweak in 0..4096u64 {
            let a = corrupt_model_frame(&denied, tweak);
            let b = corrupt_model_frame(&denied, tweak);
            assert_eq!(a, b, "oracle must be deterministic");
            if let Some(m) = a {
                assert_ne!(m, denied, "a corrupted frame must differ");
                if let ModelPayload::Response {
                    su,
                    digest,
                    granted,
                    garbled,
                } = m.payload
                {
                    let verifiable = granted
                        && !garbled
                        && su == 3
                        && digest == model_digest(3)
                        && m.session == denied.session;
                    assert!(!verifiable, "tweak {tweak} forged a grant");
                }
            }
        }
    }

    #[test]
    fn oracle_matches_watch_decisions_and_caches() {
        let cfg = WatchConfig::small_test();
        let mut oracle = ModelOracle::new(&cfg);
        // SU 0 sits on the PU's block and channel: denied.
        assert!(!oracle.su_decision(0));
        // Far block on another channel: granted.
        let far = (cfg.blocks() - 2) as u32 * cfg.channels() as u32 + 1;
        let _ = oracle.su_decision(far);
        // Cache stays bounded by the grid.
        for su in 0..1000 {
            let _ = oracle.su_decision(su);
        }
        assert!(oracle.cache.len() <= cfg.blocks() * cfg.channels());
    }

    #[test]
    fn quiet_round_grants_per_oracle() {
        let cfg = WatchConfig::small_test();
        let metrics = NetMetrics::new();
        let mut oracle = ModelOracle::new(&cfg);
        let su_id = 5u32;
        let expect = oracle.su_decision(su_id);
        let mut sdc = ModelSdc::new(16, oracle, wire(), metrics.clone());
        let mut stp = ModelStp::new(16, wire(), metrics.clone());
        let engine = EngineConfig::default();
        let mut su = ModelSu::new(su_id, &engine, false, wire(), metrics);

        let ModelSuStep::Wait { sends, .. } = su.start() else {
            panic!("fresh session cannot be terminal");
        };
        let query = sdc.handle(sends[0]);
        assert_eq!(query.len(), 1);
        assert_eq!(query[0].0, Party::Stp);
        let reply = stp.handle(query[0].1);
        let response = sdc.handle(reply[0].1);
        assert_eq!(response[0].0, Party::Su(su_id));
        match su.on_frame(response[0].1) {
            ModelSuStep::Done { granted, attempts } => {
                assert_eq!(granted, Some(expect));
                assert_eq!(attempts, 1);
            }
            ModelSuStep::Wait { .. } => panic!("matching response must be terminal"),
        }
    }

    #[test]
    fn replayed_request_is_idempotent_and_stale_reply_rejected() {
        let cfg = WatchConfig::small_test();
        let metrics = NetMetrics::new();
        let oracle = ModelOracle::new(&cfg);
        let mut sdc = ModelSdc::new(8, oracle, wire(), metrics.clone());
        let mut stp = ModelStp::new(8, wire(), metrics.clone());
        let req = wire().sized(
            2,
            0,
            ModelPayload::Request {
                su: 2,
                digest: model_digest(2),
            },
        );
        let q1 = sdc.handle(req);
        // Duplicate request while awaiting the STP: resend, not
        // re-blind (same query again).
        let q2 = sdc.handle(req);
        assert_eq!(q1, q2);
        let reply = stp.handle(q1[0].1);
        let r1 = sdc.handle(reply[0].1);
        assert!(matches!(
            r1[0].1.payload,
            ModelPayload::Response { garbled: false, .. }
        ));
        // Replay of the answered request: identical response, no state
        // change.
        let r2 = sdc.handle(req);
        assert_eq!(r1, r2);
        // A duplicate of the consumed reply is rejected.
        let rejected = sdc.handle(reply[0].1);
        assert!(rejected.is_empty());
        assert!(metrics.session_totals().rejected >= 1);
    }

    #[test]
    fn su_timeout_exhaustion_and_full_deadline_rearm() {
        let metrics = NetMetrics::new();
        let engine = EngineConfig::default().with_max_retries(2);
        let mut su = ModelSu::new(1, &engine, true, wire(), metrics.clone());
        let base = u64::try_from(engine.timeout.as_nanos()).unwrap();
        let ModelSuStep::Wait { deadline_ns, .. } = su.start() else {
            panic!("fresh session cannot be terminal");
        };
        assert_eq!(deadline_ns, base);
        // Foreign frame: reject, re-arm the FULL current deadline, no
        // sends.
        let foreign = wire().sized(9, 0, ModelPayload::Request { su: 9, digest: 0 });
        match su.on_frame(foreign) {
            ModelSuStep::Wait { sends, deadline_ns } => {
                assert!(sends.is_empty());
                assert_eq!(deadline_ns, base);
            }
            ModelSuStep::Done { .. } => panic!("foreign frame must not finish the session"),
        }
        // Timeouts: exponential backoff, then budget exhaustion.
        match su.on_timeout() {
            ModelSuStep::Wait { sends, deadline_ns } => {
                assert_eq!(sends.len(), 1);
                assert_eq!(deadline_ns, base * 2);
            }
            ModelSuStep::Done { .. } => panic!("retry budget not exhausted yet"),
        }
        let _ = su.on_timeout();
        match su.on_timeout() {
            ModelSuStep::Done { granted, attempts } => {
                assert_eq!(granted, None);
                assert_eq!(attempts, 3);
            }
            ModelSuStep::Wait { .. } => panic!("budget of 2 retries must be exhausted"),
        }
        assert_eq!(metrics.session_totals().timeouts, 3);
        assert_eq!(metrics.session_totals().retries, 2);
    }
}
