//! A [`Transport`] implementation for the simulator.
//!
//! The session engines in `pisa-core` are written against the
//! [`Transport`] send surface (an address plus a fallible send) so that
//! the same protocol code runs over the threaded
//! [`pisa_net::Endpoint`] and over virtual time. [`SimTransport`] is
//! the virtual side: sends accumulate in an outbox the event loop
//! drains into [`SimNet`](crate::SimNet) at the current virtual
//! instant — nothing moves until the simulator schedules it.

use pisa_net::{NetError, Party, Transport, WireSize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A virtual-time transport: same send surface as a threaded endpoint,
/// but sends land in an outbox instead of a mailbox.
///
/// Cloning shares the outbox, so protocol code can hold the transport
/// while the event loop holds the drain side. Single-threaded by
/// design (the simulator is one thread), hence `Rc`.
///
/// # Examples
///
/// ```
/// use pisa_net::{Party, Transport};
/// use pisa_sim::SimTransport;
///
/// let tx: SimTransport<Vec<u8>> = SimTransport::new(Party::Sdc);
/// assert_eq!(tx.party(), Party::Sdc);
/// tx.try_send(Party::Stp, vec![1, 2, 3]).unwrap();
/// assert_eq!(tx.drain(), vec![(Party::Stp, vec![1, 2, 3])]);
/// assert!(tx.drain().is_empty());
/// ```
pub struct SimTransport<M> {
    party: Party,
    outbox: Rc<RefCell<VecDeque<(Party, M)>>>,
}

impl<M> Clone for SimTransport<M> {
    fn clone(&self) -> Self {
        SimTransport {
            party: self.party,
            outbox: Rc::clone(&self.outbox),
        }
    }
}

impl<M> SimTransport<M> {
    /// A transport speaking as `party` with an empty outbox.
    pub fn new(party: Party) -> Self {
        SimTransport {
            party,
            outbox: Rc::new(RefCell::new(VecDeque::new())),
        }
    }

    /// Removes and returns every queued send, in send order.
    pub fn drain(&self) -> Vec<(Party, M)> {
        self.outbox.borrow_mut().drain(..).collect()
    }
}

impl<M: WireSize + Clone> Transport<M> for SimTransport<M> {
    fn party(&self) -> Party {
        self.party
    }

    fn try_send(&self, to: Party, payload: M) -> Result<(), NetError> {
        self.outbox.borrow_mut().push_back((to, payload));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_preserves_send_order_across_clones() {
        let tx: SimTransport<Vec<u8>> = SimTransport::new(Party::Su(3));
        let tx2 = tx.clone();
        tx.try_send(Party::Sdc, vec![1]).unwrap();
        tx2.try_send(Party::Stp, vec![2]).unwrap();
        tx.try_send(Party::Sdc, vec![3]).unwrap();
        let drained = tx2.drain();
        assert_eq!(
            drained,
            vec![
                (Party::Sdc, vec![1]),
                (Party::Stp, vec![2]),
                (Party::Sdc, vec![3]),
            ]
        );
    }
}
