//! `pisa-sim`: a deterministic discrete-event simulator for PISA
//! session storms.
//!
//! The threaded storm engine in `pisa-core` answers "does the protocol
//! survive a hostile network?" — but it runs on wall-clock time, so a
//! big storm is slow and a failing storm is hard to replay. This crate
//! re-runs the same protocol on *virtual* time: a single thread pops
//! events off a `(virtual_time, seq)`-keyed heap, the network is the
//! exact fault pipeline of `pisa-net` driven by the same seeded
//! per-link streams, and the parties are either the real `pisa-core`
//! session engines ([`Fidelity::Real`]) or plaintext mirrors of them
//! ([`Fidelity::Modeled`]) that trade the Paillier arithmetic for the
//! WATCH decision oracle — which is what makes a 10⁵-session storm
//! finish in seconds.
//!
//! Everything is bit-deterministic per seed: [`run_sim_storm`] with
//! the same `(seed, config)` produces a byte-identical
//! [`StormReport::to_json`], which the sweep harness ([`run_sweep`])
//! exploits to run thousands of seeded storms, check invariants, probe
//! determinism, and shrink any failure into a [`RegressionCase`]
//! small enough to check in.
//!
//! ```
//! use pisa_sim::{run_sim_storm, SimConfig};
//!
//! let report = run_sim_storm(7, &SimConfig::modeled(32));
//! assert!(report.all_terminal());
//! assert_eq!(report.sus, 32);
//! // Same seed, same bytes.
//! assert_eq!(report.to_json(), run_sim_storm(7, &SimConfig::modeled(32)).to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod model;
mod net;
mod report;
mod storm;
mod sweep;
mod transport;

pub use event::EventQueue;
pub use net::{Delivery, SimNet};
pub use report::{decisions_digest, SimOutcome, StormReport};
pub use storm::{run_sim_storm, run_sim_storm_with, Fidelity, SimConfig};
pub use sweep::{check_storm, run_sweep, shrink, RegressionCase, SweepConfig, SweepReport};
pub use transport::SimTransport;
