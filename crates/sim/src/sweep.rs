//! The multi-seed sweep harness: many storms, hard invariants, and a
//! shrinker that turns a failing storm into a small checked-in
//! regression case.
//!
//! A single seeded storm is a point probe; the sweep is the search.
//! [`run_sweep`] walks a `session-count × fault-rate` grid, runs
//! `seeds_per_cell` independently seeded storms per cell inside
//! `catch_unwind`, checks every storm against the invariants in
//! [`check_storm`], and periodically re-runs a storm to prove byte
//! determinism. A failure is never reported raw: [`shrink`] first
//! halves the session count and zeroes fault kinds while the failure
//! still reproduces, so the checked-in [`RegressionCase`] is the
//! smallest storm known to exhibit it.

use crate::report::StormReport;
use crate::storm::{run_sim_storm, Fidelity, SimConfig};
use pisa_net::FaultPlan;
use pisa_obs::json::Value;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The sweep grid and policy.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Master seed; every storm seed derives from it.
    pub seed: u64,
    /// Session counts to sweep.
    pub session_counts: Vec<u32>,
    /// Uniform fault rates to sweep (0.0 = quiet network).
    pub fault_rates: Vec<f64>,
    /// Independently seeded storms per `(count, rate)` cell.
    pub seeds_per_cell: u32,
    /// Fidelity every storm runs at.
    pub fidelity: Fidelity,
    /// Template config (engine policy, latency, jitter); `sus` and
    /// `plan` are overwritten per cell.
    pub template: SimConfig,
    /// Re-run every Nth passing storm and require byte-identical
    /// output (0 disables the determinism probes).
    pub determinism_every: u32,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 2017,
            session_counts: vec![16, 64],
            fault_rates: vec![0.0, 0.1],
            seeds_per_cell: 3,
            fidelity: Fidelity::Modeled,
            template: SimConfig::modeled(16),
            determinism_every: 8,
        }
    }
}

/// A failing storm reduced to its smallest reproducing shape.
#[derive(Debug, Clone)]
pub struct RegressionCase {
    /// The storm seed.
    pub seed: u64,
    /// Smallest failing session count.
    pub sus: u32,
    /// Smallest failing fault plan.
    pub plan: FaultPlan,
    /// Fidelity the failure reproduces at.
    pub fidelity: &'static str,
    /// What the invariant check reported.
    pub reason: String,
}

impl RegressionCase {
    /// One line suitable for a regression-seed file:
    /// `seed sus drop duplicate reorder corrupt # reason`.
    pub fn to_line(&self) -> String {
        format!(
            "{} {} {} {} {} {} # {}",
            self.seed,
            self.sus,
            self.plan.drop,
            self.plan.duplicate,
            self.plan.reorder,
            self.plan.corrupt,
            self.reason.replace('\n', " "),
        )
    }
}

/// What a sweep covered and what it caught.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Storms run.
    pub storms: u32,
    /// Total SU sessions simulated.
    pub sessions: u64,
    /// Byte-determinism double-runs performed.
    pub determinism_checks: u32,
    /// Shrunken failures (empty on a healthy sweep).
    pub failures: Vec<RegressionCase>,
}

impl SweepReport {
    /// `true` when every storm satisfied every invariant.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The report as a canonical JSON value.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("storms", Value::from_u64(u64::from(self.storms))),
            ("sessions", Value::from_u64(self.sessions)),
            (
                "determinism_checks",
                Value::from_u64(u64::from(self.determinism_checks)),
            ),
            (
                "failures",
                Value::Arr(
                    self.failures
                        .iter()
                        .map(|f| Value::Str(f.to_line()))
                        .collect(),
                ),
            ),
        ])
    }

    /// The report as canonical JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

/// Runs one storm under `catch_unwind` and checks the storm
/// invariants. Returns the report on success, the violated invariant
/// on failure.
pub fn check_storm(seed: u64, config: &SimConfig) -> Result<StormReport, String> {
    let cfg = config.clone();
    let report =
        catch_unwind(AssertUnwindSafe(move || run_sim_storm(seed, &cfg))).map_err(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            format!("panicked: {msg}")
        })?;
    if report.truncated {
        return Err(format!(
            "event cap tripped after {} events: the storm did not quiesce",
            report.events
        ));
    }
    if report.unfinished > 0 {
        return Err(format!(
            "{} session(s) never reached a terminal state",
            report.unfinished
        ));
    }
    let accounted = report.granted + report.denied + report.undecided;
    if accounted != report.sus {
        return Err(format!(
            "outcome counts {accounted} != {} sessions",
            report.sus
        ));
    }
    // Decision soundness against the plaintext oracle (modeled runs
    // carry the expectations).
    for (o, &want) in report.outcomes.iter().zip(&report.expected) {
        if o.granted == Some(true) && !want {
            return Err(format!(
                "SU {} obtained a grant the WATCH oracle denies",
                o.su
            ));
        }
    }
    let quiet = report.faults.total() == 0;
    if quiet && !report.expected.is_empty() {
        for (o, &want) in report.outcomes.iter().zip(&report.expected) {
            if o.granted != Some(want) {
                return Err(format!(
                    "fault-free SU {} decided {:?}, oracle says {}",
                    o.su, o.granted, want
                ));
            }
        }
    }
    Ok(report)
}

/// Greedily minimizes a failing `(session count, fault plan)` under
/// `fails` (which must be deterministic): first halves the session
/// count, then zeroes each fault kind, keeping every reduction that
/// still reproduces the failure.
pub fn shrink(
    mut sus: u32,
    mut plan: FaultPlan,
    fails: &dyn Fn(u32, FaultPlan) -> bool,
) -> (u32, FaultPlan) {
    while sus > 1 && fails(sus / 2, plan) {
        sus /= 2;
    }
    let without: [fn(FaultPlan) -> FaultPlan; 4] = [
        |p| FaultPlan { drop: 0.0, ..p },
        |p| FaultPlan {
            duplicate: 0.0,
            ..p
        },
        |p| FaultPlan { reorder: 0.0, ..p },
        |p| FaultPlan { corrupt: 0.0, ..p },
    ];
    for f in without {
        let candidate = f(plan);
        if candidate != plan && fails(sus, candidate) {
            plan = candidate;
        }
    }
    (sus, plan)
}

fn shrink_case(seed: u64, failing: &SimConfig, reason: String) -> RegressionCase {
    let fails = |sus: u32, plan: FaultPlan| {
        let mut c = failing.clone();
        c.sus = sus;
        c.plan = plan;
        check_storm(seed, &c).is_err()
    };
    let (sus, plan) = shrink(failing.sus, failing.plan, &fails);
    RegressionCase {
        seed,
        sus,
        plan,
        fidelity: failing.fidelity.label(),
        reason,
    }
}

/// Sweeps the grid. Deterministic end to end: the storm seeds come
/// from a [`StdRng`] over `config.seed`, so the same sweep config
/// always runs the same storms.
pub fn run_sweep(config: &SweepConfig) -> SweepReport {
    let mut master = StdRng::seed_from_u64(config.seed);
    let mut report = SweepReport {
        storms: 0,
        sessions: 0,
        determinism_checks: 0,
        failures: Vec::new(),
    };
    for &sus in &config.session_counts {
        for &rate in &config.fault_rates {
            let mut sim = config.template.clone();
            sim.sus = sus;
            sim.fidelity = config.fidelity;
            sim.plan = FaultPlan::uniform(rate);
            for _ in 0..config.seeds_per_cell {
                let storm_seed = master.next_u64();
                report.storms += 1;
                report.sessions += u64::from(sus);
                match check_storm(storm_seed, &sim) {
                    Ok(first) => {
                        let probe = config.determinism_every > 0
                            && report.storms.is_multiple_of(config.determinism_every);
                        if probe {
                            report.determinism_checks += 1;
                            match check_storm(storm_seed, &sim) {
                                Ok(second) if second.to_json() == first.to_json() => {}
                                Ok(_) => report.failures.push(shrink_case(
                                    storm_seed,
                                    &sim,
                                    "nondeterministic: two runs of one seed diverged".to_owned(),
                                )),
                                Err(reason) => report.failures.push(shrink_case(
                                    storm_seed,
                                    &sim,
                                    format!("flaky: passed once, then {reason}"),
                                )),
                            }
                        }
                    }
                    Err(reason) => {
                        report.failures.push(shrink_case(storm_seed, &sim, reason));
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa::EngineConfig;
    use std::time::Duration;

    #[test]
    fn shrinker_minimizes_against_a_synthetic_predicate() {
        // Failure reproduces whenever ≥ 6 sessions AND drop is on;
        // duplicate/reorder/corrupt are red herrings.
        let fails = |sus: u32, plan: FaultPlan| sus >= 6 && plan.drop > 0.0;
        let start = FaultPlan::uniform(0.3);
        let (sus, plan) = shrink(96, start, &fails);
        assert_eq!(sus, 6);
        assert!(plan.drop > 0.0, "the culprit survives");
        assert_eq!(plan.duplicate, 0.0);
        assert_eq!(plan.reorder, 0.0);
        assert_eq!(plan.corrupt, 0.0);
        assert!(fails(sus, plan), "shrinking must preserve the failure");
    }

    #[test]
    fn shrinker_keeps_irreducible_failures_intact() {
        let fails = |_: u32, _: FaultPlan| true;
        let (sus, plan) = shrink(64, FaultPlan::none(), &fails);
        assert_eq!(sus, 1);
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn tiny_sweep_is_clean_and_deterministic() {
        let config = SweepConfig {
            seed: 41,
            session_counts: vec![8, 16],
            fault_rates: vec![0.0, 0.2],
            seeds_per_cell: 2,
            fidelity: Fidelity::Modeled,
            template: SimConfig::modeled(8)
                .with_engine(EngineConfig::default().with_timeout(Duration::from_millis(50))),
            determinism_every: 3,
        };
        let a = run_sweep(&config);
        assert_eq!(a.storms, 8);
        assert_eq!(a.sessions, 2 * (8 + 8 + 16 + 16));
        assert!(a.determinism_checks >= 2);
        assert!(a.clean(), "failures: {:?}", a.failures);
        let b = run_sweep(&config);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn regression_line_round_trips_the_shape() {
        let case = RegressionCase {
            seed: 99,
            sus: 4,
            plan: FaultPlan::none().with_drop(0.25),
            fidelity: "modeled",
            reason: "demo\nmultiline".to_owned(),
        };
        let line = case.to_line();
        assert!(line.starts_with("99 4 0.25 0 0 0 #"));
        assert!(!line.contains('\n'));
    }
}
