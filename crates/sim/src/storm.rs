//! The storm driver: one event loop, two fidelities.
//!
//! [`run_sim_storm`] replays the `pisa storm` scenario — N concurrent
//! SU sessions against one SDC and one STP over a faulty network — on
//! virtual time. In [`Fidelity::Real`] the loop drives the *actual*
//! `pisa-core` session engines (Paillier, blinding, RSA licenses and
//! all) through [`SimTransport`](crate::SimTransport) and
//! [`SimNet`](crate::SimNet); in [`Fidelity::Modeled`] it drives the
//! plaintext mirrors from [`crate::model`], which makes a 10⁵-session
//! storm a sub-second affair while keeping the session semantics —
//! retries, replays, reorder holdback, corruption — bit-exact.
//!
//! Both fidelities share one generic [`drive`] loop, so an event-order
//! bug cannot hide in just one of them.

use crate::event::EventQueue;
use crate::model::{
    corrupt_model_frame, ModelMsg, ModelOracle, ModelSdc, ModelStp, ModelSu, ModelSuStep, ModelWire,
};
use crate::net::{Delivery, SimNet};
use crate::report::{decisions_digest, SimOutcome, StormReport};
use crate::transport::SimTransport;
use pisa::{
    corrupt_session_frame, EngineConfig, PisaError, PuClient, SdcServer, SdcSessionEngine,
    SessionMsg, StpServer, StpSessionEngine, SuAction, SuClient, SuEvent, SuSessionEngine,
    SuSessionParams, SystemConfig,
};
use pisa_net::{FaultConfig, FaultPlan, LatencyModel, Party, Transport, WireSize};
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// How faithfully the storm executes the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// The real `pisa-core` engines: every ciphertext computed. Costs
    /// real crypto time per session; right for ≲10³ SUs.
    Real,
    /// The plaintext mirrors: same state machines, decisions from the
    /// WATCH oracle, analytic wire sizes. Right for 10⁴–10⁵ SUs.
    Modeled,
}

impl Fidelity {
    /// The report label.
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::Real => "real",
            Fidelity::Modeled => "modeled",
        }
    }
}

/// One storm's shape: how many sessions, which fidelity, what the
/// network does to them.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Concurrent SU sessions.
    pub sus: u32,
    /// Real engines or plaintext mirrors.
    pub fidelity: Fidelity,
    /// Fault probabilities applied to every link.
    pub plan: FaultPlan,
    /// Wire-time model; `None` for a zero-latency network.
    pub latency: Option<LatencyModel>,
    /// Multiplicative latency jitter amplitude in `[0, 1]`.
    pub jitter: f64,
    /// Session timeout / retry policy.
    pub engine: EngineConfig,
}

impl SimConfig {
    /// A modeled storm of `sus` sessions over a quiet LAN.
    pub fn modeled(sus: u32) -> Self {
        SimConfig {
            sus,
            fidelity: Fidelity::Modeled,
            plan: FaultPlan::none(),
            latency: Some(LatencyModel::lan()),
            jitter: 0.1,
            engine: EngineConfig::default(),
        }
    }

    /// A real-engine storm of `sus` sessions over a quiet LAN.
    pub fn real(sus: u32) -> Self {
        SimConfig {
            fidelity: Fidelity::Real,
            ..SimConfig::modeled(sus)
        }
    }

    /// Replaces the fault plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replaces the latency model (`None` = instantaneous wire).
    pub fn with_latency(mut self, latency: Option<LatencyModel>) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the jitter amplitude.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Replaces the engine (timeout / retry) policy.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// The fault config this storm hands the lottery (same
    /// `seed ^ 0xfa17` derivation as the threaded `pisa storm`).
    fn fault_config(&self, seed: u64) -> FaultConfig {
        let mut cfg = FaultConfig::new(seed ^ 0xfa17).with_default_plan(self.plan);
        if let Some(model) = self.latency {
            cfg = cfg.with_latency(model);
        }
        cfg
    }
}

/// What one SU session wants next, fidelity-neutral.
enum SuStep<M> {
    Wait {
        sends: Vec<M>,
        deadline_ns: u64,
    },
    Done {
        granted: Option<bool>,
        attempts: u32,
    },
}

/// The fidelity seam: the driver talks to the parties only through
/// this surface, so real and modeled storms share every line of the
/// event loop.
trait StormLogic {
    type Msg: Clone + WireSize;
    fn su_count(&self) -> u32;
    /// The network address of SU index `i`.
    fn su_party(&self, i: u32) -> Party;
    /// Maps a delivered `Party::Su(id)` back to an index.
    fn su_index(&self, id: u32) -> Option<u32>;
    fn su_start(&mut self, i: u32) -> SuStep<Self::Msg>;
    fn su_frame(&mut self, i: u32, msg: Self::Msg) -> SuStep<Self::Msg>;
    fn su_timeout(&mut self, i: u32) -> SuStep<Self::Msg>;
    fn sdc_handle(&mut self, msg: Self::Msg) -> Vec<(Party, Self::Msg)>;
    fn stp_handle(&mut self, msg: Self::Msg) -> Vec<(Party, Self::Msg)>;
}

/// An event on the heap: a scheduled delivery, or an SU receive
/// deadline. The epoch stamps a deadline to its arming; re-arming
/// bumps the epoch so stale timers pop as no-ops (the threaded engine
/// gets this for free from `recv_timeout`).
enum Ev<M> {
    Deliver(Delivery<M>),
    SuTimeout { su: u32, epoch: u32 },
}

/// What [`drive`] hands back for report assembly.
struct DriveResult {
    outcomes: Vec<SimOutcome>,
    unfinished: u32,
    makespan_ns: u64,
    events: u64,
    truncated: bool,
}

/// Generous per-session event budget: ≤ 7 attempts, each at most a
/// handful of deliveries even under duplication, plus timeouts.
const EVENTS_PER_SU: u64 = 200;
const EVENT_FLOOR: u64 = 10_000;

/// Widens an SU index into a vector slot.
fn slot(i: u32) -> usize {
    i as usize // pisa-lint: allow(panic-freedom): u32 → usize never truncates
}

/// Narrows a population count; storm populations are `u32`-sized by
/// construction ([`SimConfig::sus`] is `u32`), so saturation is
/// unreachable but panic-free.
fn narrow(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// The heap plus the per-SU bookkeeping the loop threads through every
/// step.
struct DriveState<M> {
    queue: EventQueue<Ev<M>>,
    deliveries: Vec<Delivery<M>>,
    epochs: Vec<u32>,
    done: Vec<Option<(Option<bool>, u32)>>,
    finish_ns: Vec<u64>,
}

impl<M: Clone + WireSize> DriveState<M> {
    fn new(n: u32) -> Self {
        DriveState {
            queue: EventQueue::new(),
            deliveries: Vec::new(),
            epochs: vec![0u32; slot(n)],
            done: vec![None; slot(n)],
            finish_ns: vec![0u64; slot(n)],
        }
    }

    /// Whether session `i` has reached a terminal outcome.
    fn is_done(&self, i: u32) -> bool {
        self.done.get(slot(i)).is_some_and(Option::is_some)
    }

    /// Applies one SU step at virtual time `now`: route its sends into
    /// the network and (re-)arm its deadline, or record its outcome.
    fn apply(&mut self, net: &mut SimNet<M>, from: Party, i: u32, step: SuStep<M>, now: u64) {
        match step {
            SuStep::Wait { sends, deadline_ns } => {
                for msg in sends {
                    net.send(now, from, Party::Sdc, msg, &mut self.deliveries);
                }
                let Some(epoch) = self.epochs.get_mut(slot(i)) else {
                    return;
                };
                *epoch = epoch.wrapping_add(1);
                let epoch = *epoch;
                self.queue.push(
                    now.saturating_add(deadline_ns),
                    Ev::SuTimeout { su: i, epoch },
                );
            }
            SuStep::Done { granted, attempts } => {
                if let Some(d) = self.done.get_mut(slot(i)) {
                    *d = Some((granted, attempts));
                }
                if let Some(f) = self.finish_ns.get_mut(slot(i)) {
                    *f = now;
                }
            }
        }
    }

    /// Moves freshly scheduled deliveries onto the heap.
    fn commit(&mut self) {
        for d in self.deliveries.drain(..) {
            self.queue.push(d.at, Ev::Deliver(d));
        }
    }
}

/// The discrete-event loop: pop the earliest event, advance the clock,
/// let the party schedule more. Runs until the heap drains (every
/// session terminal, nothing in flight) or the event cap trips.
fn drive<L: StormLogic>(logic: &mut L, net: &mut SimNet<L::Msg>) -> DriveResult {
    let n = logic.su_count();
    let cap = EVENTS_PER_SU * u64::from(n) + EVENT_FLOOR;
    let mut st: DriveState<L::Msg> = DriveState::new(n);
    let mut now = 0u64;
    let mut events = 0u64;
    let mut truncated = false;

    for i in 0..n {
        let step = logic.su_start(i);
        st.apply(net, logic.su_party(i), i, step, 0);
        st.commit();
    }

    while let Some((at, ev)) = st.queue.pop() {
        now = at;
        events += 1;
        if events > cap {
            truncated = true;
            break;
        }
        match ev {
            Ev::Deliver(d) => match d.to {
                Party::Sdc => {
                    for (to, msg) in logic.sdc_handle(d.msg) {
                        net.send(now, Party::Sdc, to, msg, &mut st.deliveries);
                    }
                }
                Party::Stp => {
                    for (to, msg) in logic.stp_handle(d.msg) {
                        net.send(now, Party::Stp, to, msg, &mut st.deliveries);
                    }
                }
                Party::Su(id) => {
                    // A corrupted frame can name a party that does not
                    // exist; the threaded network's send just errors,
                    // here the delivery is simply unclaimed.
                    if let Some(i) = logic.su_index(id) {
                        if !st.is_done(i) {
                            let step = logic.su_frame(i, d.msg);
                            st.apply(net, logic.su_party(i), i, step, now);
                        }
                    }
                }
                Party::Pu(_) => {}
            },
            Ev::SuTimeout { su, epoch } => {
                if !st.is_done(su) && st.epochs.get(slot(su)) == Some(&epoch) {
                    let step = logic.su_timeout(su);
                    st.apply(net, logic.su_party(su), su, step, now);
                }
            }
        }
        st.commit();
    }

    // Mirror the threaded engine's end-of-run drain: stranded holdback
    // messages still count as delivered traffic.
    net.flush_holdback(now, &mut st.deliveries);
    st.deliveries.clear();

    let mut outcomes = Vec::with_capacity(slot(n));
    let mut unfinished = 0u32;
    for i in 0..n {
        let su = match logic.su_party(i) {
            Party::Su(id) => id,
            _ => i,
        };
        let (granted, attempts) = match st.done.get(slot(i)).copied().flatten() {
            Some((granted, attempts)) => (granted, attempts),
            None => {
                unfinished += 1;
                (None, 0)
            }
        };
        let finished_ns = st.finish_ns.get(slot(i)).copied().unwrap_or(0);
        outcomes.push(SimOutcome {
            su,
            granted,
            attempts,
            finished_ns,
        });
        pisa_obs::record_span("sim.session", 0, finished_ns);
    }
    // Stale timers from already-finished sessions still pop (as
    // no-ops), so "last popped event" overstates the storm: the
    // makespan is when the last session went terminal.
    let makespan_ns = st.finish_ns.iter().copied().max().unwrap_or(0);
    pisa_obs::record_span("sim.storm", 0, makespan_ns);

    DriveResult {
        outcomes,
        unfinished,
        makespan_ns,
        events,
        truncated,
    }
}

/// Assembles the report from a finished drive.
fn assemble(
    seed: u64,
    fidelity: Fidelity,
    net: &SimNet<impl Clone + WireSize>,
    result: DriveResult,
    expected: Vec<bool>,
) -> StormReport {
    let metrics = net.metrics();
    let granted = narrow(
        result
            .outcomes
            .iter()
            .filter(|o| o.granted == Some(true))
            .count(),
    );
    let denied = narrow(
        result
            .outcomes
            .iter()
            .filter(|o| o.granted == Some(false))
            .count(),
    );
    let undecided = narrow(
        result
            .outcomes
            .iter()
            .filter(|o| o.granted.is_none())
            .count(),
    )
    .saturating_sub(result.unfinished);
    StormReport {
        seed,
        fidelity: fidelity.label(),
        sus: narrow(result.outcomes.len()),
        granted,
        denied,
        undecided,
        unfinished: result.unfinished,
        attempts_total: result.outcomes.iter().map(|o| u64::from(o.attempts)).sum(),
        max_attempts: result
            .outcomes
            .iter()
            .map(|o| o.attempts)
            .max()
            .unwrap_or(0),
        makespan_ns: result.makespan_ns,
        events: result.events,
        truncated: result.truncated,
        messages: metrics.total_messages(),
        bytes: metrics.total_bytes(),
        faults: metrics.fault_totals(),
        sessions: metrics.session_totals(),
        decisions_digest: decisions_digest(&result.outcomes),
        outcomes: result.outcomes,
        expected,
    }
}

// ---------------------------------------------------------------------
// Real fidelity
// ---------------------------------------------------------------------

/// The real engines behind the [`StormLogic`] seam. The SDC and STP
/// send through [`SimTransport`] — the same `Transport` surface the
/// threaded endpoints implement — so the engines stay byte-for-byte
/// the ones the threaded storm runs.
struct RealLogic {
    sdc: SdcSessionEngine,
    stp: StpSessionEngine,
    sdc_tx: SimTransport<SessionMsg>,
    stp_tx: SimTransport<SessionMsg>,
    sus: Vec<SuSessionEngine>,
    index_of: HashMap<u32, u32>,
}

impl StormLogic for RealLogic {
    type Msg = SessionMsg;

    fn su_count(&self) -> u32 {
        narrow(self.sus.len())
    }

    fn su_party(&self, i: u32) -> Party {
        match self.sus.get(slot(i)) {
            Some(su) => Party::Su(su.su_id().0),
            None => Party::Su(i),
        }
    }

    fn su_index(&self, id: u32) -> Option<u32> {
        self.index_of.get(&id).copied()
    }

    fn su_start(&mut self, i: u32) -> SuStep<SessionMsg> {
        match self.sus.get_mut(slot(i)) {
            Some(su) => action_to_step(su.start()),
            None => missing_su(),
        }
    }

    fn su_frame(&mut self, i: u32, msg: SessionMsg) -> SuStep<SessionMsg> {
        match self.sus.get_mut(slot(i)) {
            Some(su) => action_to_step(su.on_event(SuEvent::Frame(msg))),
            None => missing_su(),
        }
    }

    fn su_timeout(&mut self, i: u32) -> SuStep<SessionMsg> {
        match self.sus.get_mut(slot(i)) {
            Some(su) => action_to_step(su.on_event(SuEvent::Timeout)),
            None => missing_su(),
        }
    }

    fn sdc_handle(&mut self, msg: SessionMsg) -> Vec<(Party, SessionMsg)> {
        for (to, frame) in self.sdc.handle(msg) {
            let _ = self.sdc_tx.try_send(to, frame);
        }
        self.sdc_tx.drain()
    }

    fn stp_handle(&mut self, msg: SessionMsg) -> Vec<(Party, SessionMsg)> {
        for (to, frame) in self.stp.handle(msg) {
            let _ = self.stp_tx.try_send(to, frame);
        }
        self.stp_tx.drain()
    }
}

/// The step for an out-of-range SU index. [`drive`] only produces
/// indices below `su_count`, so this is dead in practice; a terminal
/// no-outcome step keeps the loop honest instead of panicking.
fn missing_su<M>() -> SuStep<M> {
    SuStep::Done {
        granted: None,
        attempts: 0,
    }
}

fn action_to_step(action: SuAction) -> SuStep<SessionMsg> {
    match action {
        SuAction::Continue { sends, deadline } => SuStep::Wait {
            sends,
            deadline_ns: u64::try_from(deadline.as_nanos()).unwrap_or(u64::MAX),
        },
        SuAction::Finish(outcome) => SuStep::Done {
            granted: outcome.granted,
            attempts: outcome.attempts,
        },
    }
}

/// Runs a real-fidelity storm on virtual time over explicitly built
/// parties — the same signature shape as `pisa::run_storm`, which is
/// exactly what the sim-vs-threaded equivalence test wants. The per-SU
/// request randomness, the SDC/STP engine seeds and the fault streams
/// all derive from `seed` the way the threaded storm derives them, so
/// a fault-free sim storm and a fault-free threaded storm of the same
/// seed make identical decisions.
pub fn run_sim_storm_with(
    sus: Vec<(SuClient, Vec<Channel>)>,
    sdc: SdcServer,
    stp: StpServer,
    faults: Option<FaultConfig>,
    engine: &EngineConfig,
    seed: u64,
    jitter: f64,
) -> Result<StormReport, PisaError> {
    let cfg = sdc.config().clone();
    let pk_g = stp.public_key().clone();
    let signing = sdc.signing_public_key().clone();
    let su_keys: HashMap<_, _> = sus
        .iter()
        .map(|(su, _)| {
            let pk = stp
                .su_key(su.id())
                .ok_or(PisaError::UnknownSu(su.id()))?
                .clone();
            Ok((su.id(), pk))
        })
        .collect::<Result<_, PisaError>>()?;
    let corrupt_possible = faults.as_ref().is_some_and(FaultConfig::any_corruption);

    let mut net: SimNet<SessionMsg> = SimNet::new(faults, jitter);
    net.set_corruptor(Arc::new(corrupt_session_frame));
    let metrics = net.metrics().clone();

    let sdc_engine =
        SdcSessionEngine::new(sdc, su_keys, engine.workers, metrics.clone(), seed ^ 0x5dc);
    let stp_engine = StpSessionEngine::new(stp, engine.workers, metrics.clone(), seed ^ 0x517);

    let params = SuSessionParams {
        cfg: &cfg,
        pk_g: &pk_g,
        signing: &signing,
        corrupt_possible,
        engine,
        metrics: &metrics,
    };
    let mut engines = Vec::with_capacity(sus.len());
    let mut index_of = HashMap::with_capacity(sus.len());
    for (i, (su, channels)) in sus.into_iter().enumerate() {
        // The same dedicated request-randomness stream as the threaded
        // storm's SU thread.
        let mut rng = StdRng::seed_from_u64(seed ^ (0x50 + i as u64));
        index_of.insert(su.id().0, narrow(i));
        engines.push(SuSessionEngine::new(su, &channels, &params, &mut rng));
    }

    let mut logic = RealLogic {
        sdc: sdc_engine,
        stp: stp_engine,
        sdc_tx: SimTransport::new(Party::Sdc),
        stp_tx: SimTransport::new(Party::Stp),
        sus: engines,
        index_of,
    };
    let result = drive(&mut logic, &mut net);
    Ok(assemble(seed, Fidelity::Real, &net, result, Vec::new()))
}

// ---------------------------------------------------------------------
// Modeled fidelity
// ---------------------------------------------------------------------

/// The plaintext mirrors behind the [`StormLogic`] seam.
struct ModelLogic {
    sdc: ModelSdc,
    stp: ModelStp,
    sus: Vec<ModelSu>,
}

impl StormLogic for ModelLogic {
    type Msg = ModelMsg;

    fn su_count(&self) -> u32 {
        narrow(self.sus.len())
    }

    fn su_party(&self, i: u32) -> Party {
        Party::Su(i)
    }

    fn su_index(&self, id: u32) -> Option<u32> {
        (id < self.su_count()).then_some(id)
    }

    fn su_start(&mut self, i: u32) -> SuStep<ModelMsg> {
        match self.sus.get_mut(slot(i)) {
            Some(su) => model_step(su.start()),
            None => missing_su(),
        }
    }

    fn su_frame(&mut self, i: u32, msg: ModelMsg) -> SuStep<ModelMsg> {
        match self.sus.get_mut(slot(i)) {
            Some(su) => model_step(su.on_frame(msg)),
            None => missing_su(),
        }
    }

    fn su_timeout(&mut self, i: u32) -> SuStep<ModelMsg> {
        match self.sus.get_mut(slot(i)) {
            Some(su) => model_step(su.on_timeout()),
            None => missing_su(),
        }
    }

    fn sdc_handle(&mut self, msg: ModelMsg) -> Vec<(Party, ModelMsg)> {
        self.sdc.handle(msg)
    }

    fn stp_handle(&mut self, msg: ModelMsg) -> Vec<(Party, ModelMsg)> {
        self.stp.handle(msg)
    }
}

fn model_step(step: ModelSuStep) -> SuStep<ModelMsg> {
    match step {
        ModelSuStep::Wait { sends, deadline_ns } => SuStep::Wait { sends, deadline_ns },
        ModelSuStep::Done { granted, attempts } => SuStep::Done { granted, attempts },
    }
}

// ---------------------------------------------------------------------
// The storm entry point
// ---------------------------------------------------------------------

/// Runs one seeded storm of the canonical `pisa storm` population —
/// one PU at block 0 on channel 0, SU `i` at block `i % blocks`
/// requesting channel `i % channels` — and returns its report.
/// Bit-deterministic: the same `(seed, config)` always produces a
/// byte-identical [`StormReport::to_json`].
pub fn run_sim_storm(seed: u64, config: &SimConfig) -> StormReport {
    let faults = Some(config.fault_config(seed));
    match config.fidelity {
        Fidelity::Real => {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = SystemConfig::small_test();
            let mut stp = StpServer::new(&mut rng, cfg.paillier_bits());
            let mut sdc =
                SdcServer::new(cfg.clone(), stp.public_key().clone(), "sdc.storm", &mut rng);
            let mut pu = PuClient::new(0, BlockId(0));
            let e = sdc.e_matrix().clone();
            let update = pu.tune(Some(Channel(0)), &cfg, &e, stp.public_key(), &mut rng);
            sdc.handle_pu_update(pu.id(), update)
                // pisa-lint: allow(panic-freedom): setup-time, before any wire traffic — the canonical PU update matches the storm config by construction
                .expect("canonical PU update matches the storm config");
            let sus: Vec<(SuClient, Vec<Channel>)> = (0..config.sus)
                .map(|i| {
                    let su = SuClient::new(
                        pisa::SuId(i),
                        BlockId(slot(i) % cfg.blocks()),
                        &cfg,
                        &mut rng,
                    );
                    stp.register_su(su.id(), su.public_key().clone());
                    let channels = vec![Channel(slot(i) % cfg.channels())];
                    (su, channels)
                })
                .collect();
            run_sim_storm_with(sus, sdc, stp, faults, &config.engine, seed, config.jitter)
                // pisa-lint: allow(panic-freedom): setup-time, before any wire traffic — every storm SU was registered in the loop above
                .expect("every storm SU is registered")
        }
        Fidelity::Modeled => {
            let cfg = SystemConfig::small_test();
            let watch = cfg.watch().clone();
            let ct_bytes = cfg.paillier_bits() * 2 / 8;
            let wire = ModelWire::new(cfg.channels(), cfg.blocks(), ct_bytes);

            let mut net: SimNet<ModelMsg> = SimNet::new(faults, config.jitter);
            net.set_corruptor(Arc::new(corrupt_model_frame));
            let metrics = net.metrics().clone();
            let corrupt_possible = net.corrupt_possible();

            let mut expected_oracle = ModelOracle::new(&watch);
            let expected: Vec<bool> = (0..config.sus)
                .map(|i| expected_oracle.su_decision(i))
                .collect();

            let oracle = ModelOracle::new(&watch);
            let mut logic = ModelLogic {
                sdc: ModelSdc::new(config.sus, oracle, wire, metrics.clone()),
                stp: ModelStp::new(config.sus, wire, metrics.clone()),
                sus: (0..config.sus)
                    .map(|i| {
                        ModelSu::new(i, &config.engine, corrupt_possible, wire, metrics.clone())
                    })
                    .collect(),
            };
            let result = drive(&mut logic, &mut net);
            assemble(seed, Fidelity::Modeled, &net, result, expected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quick_engine() -> EngineConfig {
        EngineConfig::default().with_timeout(Duration::from_millis(50))
    }

    #[test]
    fn modeled_quiet_storm_matches_oracle() {
        let config = SimConfig::modeled(64).with_engine(quick_engine());
        let report = run_sim_storm(0xbead, &config);
        assert!(report.all_terminal());
        assert_eq!(report.undecided, 0);
        assert_eq!(report.sus, 64);
        for (o, &want) in report.outcomes.iter().zip(&report.expected) {
            assert_eq!(o.granted, Some(want), "SU {} diverged from oracle", o.su);
            assert_eq!(o.attempts, 1, "quiet network needs one attempt");
        }
        // The grid has grants and denials both.
        assert!(report.granted > 0 && report.denied > 0);
        // Virtual LAN time elapsed.
        assert!(report.makespan_ns > 0);
    }

    #[test]
    fn modeled_storm_is_bit_deterministic() {
        let config = SimConfig::modeled(48)
            .with_plan(FaultPlan::uniform(0.2))
            .with_engine(quick_engine());
        let a = run_sim_storm(17, &config);
        let b = run_sim_storm(17, &config);
        assert_eq!(a.to_json(), b.to_json());
        let c = run_sim_storm(18, &config);
        assert_ne!(
            a.to_json(),
            c.to_json(),
            "different seeds must diverge somewhere"
        );
    }

    #[test]
    fn modeled_lossy_storm_stays_terminal_and_honest() {
        let config = SimConfig::modeled(96)
            .with_plan(FaultPlan::uniform(0.25))
            .with_engine(quick_engine());
        let report = run_sim_storm(0xc405, &config);
        assert!(report.all_terminal());
        assert!(report.faults.total() > 0, "a 25% plan must inject faults");
        assert!(report.sessions.retries > 0, "faults must cost retries");
        for (o, &want) in report.outcomes.iter().zip(&report.expected) {
            if o.granted == Some(true) {
                assert!(want, "SU {} was granted against the oracle", o.su);
            }
        }
    }

    #[test]
    fn real_quiet_storm_runs_on_virtual_time() {
        let config = SimConfig::real(3).with_engine(quick_engine());
        let report = run_sim_storm(0xe403, &config);
        assert!(report.all_terminal());
        assert_eq!(report.undecided, 0);
        assert_eq!(report.fidelity, "real");
        for o in &report.outcomes {
            assert_eq!(o.attempts, 1);
            assert!(o.granted.is_some());
        }
    }

    #[test]
    fn zero_latency_storm_finishes_at_time_zero() {
        let config = SimConfig::modeled(8)
            .with_latency(None)
            .with_engine(quick_engine());
        let report = run_sim_storm(3, &config);
        assert!(report.all_terminal());
        assert_eq!(report.makespan_ns, 0, "no latency model: everything at t=0");
    }
}
