//! The virtual-time event heap.
//!
//! A discrete-event simulation is a loop over a priority queue: pop the
//! earliest event, advance the clock to its timestamp, let the handler
//! schedule more events. Determinism requires a total order, so ties on
//! the timestamp are broken by a monotonically increasing sequence
//! number — two events scheduled for the same instant pop in the order
//! they were pushed, regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry. Ordering looks only at `(at, seq)` so the
/// payload type needs no bounds.
struct Slot<E> {
    at: u64,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Slot<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Slot<E> {}

impl<E> PartialOrd for Slot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Slot<E> {
    /// Reversed so the std max-heap pops the *earliest* `(at, seq)`.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic event queue keyed by `(virtual_time_ns, seq)`.
///
/// # Examples
///
/// ```
/// use pisa_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(20, "late");
/// q.push(10, "early");
/// q.push(10, "early-too"); // same instant: FIFO by push order
/// assert_eq!(q.pop(), Some((10, "early")));
/// assert_eq!(q.pop(), Some((10, "early-too")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Slot<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `ev` at virtual time `at` (nanoseconds).
    pub fn push(&mut self, at: u64, ev: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Slot { at, seq, ev });
    }

    /// Pops the earliest event and its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|s| (s.at, s.ev))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5, 'c');
        q.push(1, 'a');
        q.push(3, 'b');
        assert_eq!(q.peek_time(), Some(1));
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(7, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_stay_ordered() {
        let mut q = EventQueue::new();
        q.push(10, "first@10");
        assert_eq!(q.pop(), Some((10, "first@10")));
        // Later pushes at earlier times still pop first.
        q.push(20, "late");
        q.push(15, "early");
        assert_eq!(q.pop(), Some((15, "early")));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((20, "late")));
        assert!(q.is_empty());
    }
}
