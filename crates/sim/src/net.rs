//! Virtual-time port of the threaded [`pisa_net::Network`] fault path.
//!
//! [`SimNet::send`] walks the exact pipeline of `Network::deliver` —
//! latency, fault draw, drop, corrupt, one-slot reorder holdback,
//! duplicate, deliver — but instead of sleeping and pushing into
//! mailboxes it returns the scheduled [`Delivery`] records for the
//! event heap. The fault draws come from the same [`FaultLottery`]
//! streams the threaded network uses (per-link, seeded by
//! [`link_stream_seed`]), so for a given `(seed, link, send-index)` the
//! simulator and the threaded engine observe the *same* fault.
//!
//! Latency is drawn per delivery from the config's
//! [`LatencyModel`](pisa_net::LatencyModel) via
//! [`sample_transfer_time`](pisa_net::LatencyModel::sample_transfer_time),
//! with per-link jitter streams salted away from the fault streams so
//! turning jitter on or off never perturbs a fault draw.

use pisa_net::{
    link_stream_seed, Corruptor, FaultConfig, FaultKind, FaultLottery, NetMetrics, Party, WireSize,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Salt xored into the master seed for the latency-jitter streams, so
/// they are decorrelated from the fault streams on the same link.
const LATENCY_SALT: u64 = 0x1a7e_57a7_e000_0001;

/// One message scheduled to land at a virtual instant.
#[derive(Debug, Clone)]
pub struct Delivery<M> {
    /// Virtual arrival time in nanoseconds.
    pub at: u64,
    /// Sender address.
    pub from: Party,
    /// Recipient address.
    pub to: Party,
    /// The (possibly mangled) payload.
    pub msg: M,
}

/// The virtual-time network: same fault semantics as the threaded
/// [`pisa_net::Network`], inverted control.
pub struct SimNet<M> {
    lottery: Option<FaultLottery>,
    corruptor: Option<Corruptor<M>>,
    jitter: f64,
    latency_seed: u64,
    latency_rngs: BTreeMap<(Party, Party), StdRng>,
    /// One-slot reorder holdback per directed link. A `BTreeMap` so the
    /// end-of-run flush drains in a deterministic order.
    holdback: BTreeMap<(Party, Party), M>,
    metrics: NetMetrics,
}

impl<M: WireSize + Clone> SimNet<M> {
    /// A network injecting faults (and simulating wire time) per
    /// `config`; `None` is a perfect zero-latency network. `jitter` is
    /// the multiplicative latency jitter amplitude in `[0, 1]` (only
    /// meaningful when the config carries a latency model).
    pub fn new(config: Option<FaultConfig>, jitter: f64) -> Self {
        let latency_seed = config.as_ref().map_or(0, |c| c.seed ^ LATENCY_SALT);
        SimNet {
            lottery: config.map(FaultLottery::new),
            corruptor: None,
            jitter,
            latency_seed,
            latency_rngs: BTreeMap::new(),
            holdback: BTreeMap::new(),
            metrics: NetMetrics::new(),
        }
    }

    /// The shared traffic/fault/session counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Installs the corruption oracle (see
    /// [`pisa_net::Network::set_corruptor`]).
    pub fn set_corruptor(&mut self, corruptor: Corruptor<M>) {
        self.corruptor = Some(corruptor);
    }

    /// `true` if any link can corrupt payloads.
    pub fn corrupt_possible(&self) -> bool {
        self.lottery
            .as_ref()
            .is_some_and(|l| l.config().any_corruption())
    }

    /// Virtual wire time for one message of `bytes` bytes on
    /// `from → to`, consuming one jitter draw iff a latency model is
    /// configured.
    fn wire_ns(&mut self, from: Party, to: Party, bytes: u64) -> u64 {
        let Some(model) = self.lottery.as_ref().and_then(|l| l.config().latency) else {
            return 0;
        };
        let seed = self.latency_seed;
        let rng = self
            .latency_rngs
            .entry((from, to))
            .or_insert_with(|| StdRng::seed_from_u64(link_stream_seed(seed, from, to)));
        let t = model.sample_transfer_time(bytes, 1, self.jitter, rng);
        u64::try_from(t.as_nanos()).unwrap_or(u64::MAX)
    }

    fn record_delivery(&self, from: Party, to: Party, msg: &M, at: u64, out: &mut Vec<Delivery<M>>)
    where
        M: Clone,
    {
        self.metrics.record(from, to, msg.wire_bytes());
        out.push(Delivery {
            at,
            from,
            to,
            msg: msg.clone(),
        });
    }

    /// Sends `msg` on `from → to` at virtual time `now`, appending the
    /// resulting deliveries (zero, one or two messages, plus a possible
    /// released holdback) to `out`. Mirrors `Network::deliver` stage by
    /// stage so the fault streams line up draw for draw.
    pub fn send(&mut self, now: u64, from: Party, to: Party, msg: M, out: &mut Vec<Delivery<M>>) {
        let arrival = now.saturating_add(self.wire_ns(from, to, msg.wire_bytes() as u64));
        let Some(lottery) = self.lottery.as_mut() else {
            self.record_delivery(from, to, &msg, arrival, out);
            return;
        };
        let draw = lottery.draw(from, to);
        if draw.dropped {
            self.metrics.record_fault(from, to, FaultKind::Dropped);
            return;
        }
        let mut msg = msg;
        if let Some(tweak) = draw.corrupt {
            match self.corruptor.as_ref().and_then(|c| c(&msg, tweak)) {
                Some(mangled) => {
                    self.metrics.record_fault(from, to, FaultKind::Corrupted);
                    msg = mangled;
                }
                None => {
                    self.metrics
                        .record_fault(from, to, FaultKind::CorruptDropped);
                    return;
                }
            }
        }
        let link = (from, to);
        let held = self.holdback.remove(&link);
        if draw.reordered && held.is_none() {
            self.metrics.record_fault(from, to, FaultKind::Reordered);
            self.holdback.insert(link, msg);
            return;
        }
        if draw.duplicated {
            self.metrics.record_fault(from, to, FaultKind::Duplicated);
            self.record_delivery(from, to, &msg, arrival, out);
        }
        self.record_delivery(from, to, &msg, arrival, out);
        if let Some(prev) = held {
            self.record_delivery(from, to, &prev, arrival, out);
        }
    }

    /// Delivers every message the reorder stage still holds, at virtual
    /// time `now`, in deterministic link order. Returns how many were
    /// flushed (mirrors [`pisa_net::Network::flush_holdback`]).
    pub fn flush_holdback(&mut self, now: u64, out: &mut Vec<Delivery<M>>) -> usize {
        let held = std::mem::take(&mut self.holdback);
        let n = held.len();
        for ((from, to), msg) in held {
            self.record_delivery(from, to, &msg, now, out);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_net::{FaultPlan, LatencyModel, Network};
    use std::sync::Arc;

    fn lossy(seed: u64, plan: FaultPlan) -> SimNet<Vec<u8>> {
        SimNet::new(Some(FaultConfig::new(seed).with_default_plan(plan)), 0.0)
    }

    #[test]
    fn perfect_network_delivers_instantly() {
        let mut net: SimNet<Vec<u8>> = SimNet::new(None, 0.0);
        let mut out = Vec::new();
        net.send(5, Party::Su(0), Party::Sdc, vec![1, 2, 3], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].at, 5);
        assert_eq!(net.metrics().total_bytes(), 3);
    }

    #[test]
    fn latency_delays_arrival_deterministically() {
        let cfg = FaultConfig::new(9).with_latency(LatencyModel::lan());
        let mut net: SimNet<Vec<u8>> = SimNet::new(Some(cfg.clone()), 0.0);
        let mut out = Vec::new();
        net.send(0, Party::Su(0), Party::Sdc, vec![0; 1000], &mut out);
        // 200 µs per message + 8 ns/byte.
        assert_eq!(out[0].at, 200_000 + 8_000);

        // Same seed, same arrivals — including with jitter on.
        let run = |jitter: f64| {
            let mut net: SimNet<Vec<u8>> = SimNet::new(Some(cfg.clone()), jitter);
            let mut out = Vec::new();
            for i in 0..32 {
                net.send(0, Party::Su(0), Party::Sdc, vec![0; 100 + i], &mut out);
            }
            out.iter().map(|d| d.at).collect::<Vec<_>>()
        };
        assert_eq!(run(0.3), run(0.3));
        assert_ne!(run(0.3), run(0.0));
    }

    #[test]
    fn fault_draws_match_threaded_network() {
        // Drive the threaded Network and the SimNet with the same seed
        // and send sequence; the surviving payload sequence must match.
        let plan = FaultPlan::none().with_drop(0.4).with_duplicate(0.3);
        let seed = 0x51f7;

        let threaded: Network<Vec<u8>> =
            Network::with_faults(FaultConfig::new(seed).with_default_plan(plan));
        let a = threaded.endpoint(Party::Su(0));
        let b = threaded.endpoint(Party::Sdc);
        for i in 0..64u8 {
            a.send(Party::Sdc, vec![i]);
        }
        let mut threaded_seen = Vec::new();
        while let Some(env) = b.try_recv() {
            threaded_seen.push(env.payload[0]);
        }

        let mut sim = lossy(seed, plan);
        let mut out = Vec::new();
        for i in 0..64u8 {
            sim.send(0, Party::Su(0), Party::Sdc, vec![i], &mut out);
        }
        let sim_seen: Vec<u8> = out.iter().map(|d| d.msg[0]).collect();

        assert_eq!(sim_seen, threaded_seen);
        assert_eq!(
            sim.metrics().fault_totals(),
            threaded.metrics().fault_totals()
        );
    }

    #[test]
    fn reorder_swaps_adjacent_and_flush_recovers_stranded() {
        let mut net = lossy(2, FaultPlan::none().with_reorder(1.0));
        let mut out = Vec::new();
        net.send(0, Party::Su(0), Party::Sdc, vec![1], &mut out);
        assert!(out.is_empty()); // held back
        net.send(10, Party::Su(0), Party::Sdc, vec![2], &mut out);
        // Second send releases the first after itself.
        let payloads: Vec<u8> = out.iter().map(|d| d.msg[0]).collect();
        assert_eq!(payloads, vec![2, 1]);

        out.clear();
        net.send(20, Party::Su(0), Party::Sdc, vec![3], &mut out);
        assert!(out.is_empty());
        assert_eq!(net.flush_holdback(30, &mut out), 1);
        assert_eq!(out[0].at, 30);
        assert_eq!(net.metrics().total_messages(), 3);
    }

    #[test]
    fn corruption_oracle_mangles_or_absorbs() {
        let mut net = lossy(4, FaultPlan::none().with_corrupt(1.0));
        // No oracle: every corrupted frame is absorbed.
        let mut out = Vec::new();
        net.send(0, Party::Su(0), Party::Sdc, vec![0, 0], &mut out);
        assert!(out.is_empty());
        assert_eq!(net.metrics().fault_totals().corrupt_dropped, 1);

        net.set_corruptor(Arc::new(|payload: &Vec<u8>, tweak| {
            let mut flipped = payload.clone();
            let bit = tweak as usize % (flipped.len() * 8);
            flipped[bit / 8] ^= 1 << (bit % 8);
            Some(flipped)
        }));
        net.send(0, Party::Su(0), Party::Sdc, vec![0, 0], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].msg.iter().map(|b| b.count_ones()).sum::<u32>(),
            1,
            "exactly one bit flipped"
        );
        assert_eq!(net.metrics().fault_totals().corrupted, 1);
    }
}
