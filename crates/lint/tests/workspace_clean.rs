//! Self-gate: the real workspace, linted with the real `lint.toml`,
//! must be clean under `--deny all`. This is the same check CI runs
//! via the binary; having it as a test means `cargo test` alone
//! catches a regression (e.g. reverting one of the hygiene fixes made
//! alongside the linter) without needing the CI job.
#![forbid(unsafe_code)]

use std::path::PathBuf;

use pisa_lint::{parse_config, run_lint, LevelOverrides};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint always sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let root = workspace_root();
    let cfg_src =
        std::fs::read_to_string(root.join("lint.toml")).expect("workspace lint.toml exists");
    let cfg = parse_config(&cfg_src).expect("workspace lint.toml parses");
    let levels = LevelOverrides {
        deny: vec!["all".to_string()],
        warn: Vec::new(),
    };
    let report = run_lint(&root, &cfg, &levels);
    assert!(
        report.files_scanned > 50,
        "sanity: expected to scan the whole workspace, got {} files",
        report.files_scanned
    );
    assert!(
        report.parse_failures.is_empty(),
        "all workspace sources must parse: {:?}",
        report.parse_failures
    );
    assert_eq!(
        report.deny_count(),
        0,
        "workspace has lint findings:\n{}",
        report.render_text()
    );
    assert_eq!(
        report.warn_count(),
        0,
        "workspace has lint warnings:\n{}",
        report.render_text()
    );
}

/// Every suppression must carry a reason — the allowlist formats make
/// reasons syntactically mandatory, but this pins it end to end.
#[test]
fn every_allowed_finding_has_a_nonempty_reason() {
    let root = workspace_root();
    let cfg = parse_config(&std::fs::read_to_string(root.join("lint.toml")).unwrap()).unwrap();
    let report = run_lint(&root, &cfg, &LevelOverrides::default());
    for f in report.findings.iter().filter(|f| f.allowed.is_some()) {
        let reason = f.allowed.as_deref().unwrap_or_default();
        assert!(
            reason.trim().len() >= 10,
            "{}:{} [{}] allowed without a substantive reason: {reason:?}",
            f.file,
            f.line,
            f.rule
        );
    }
}
