//! Golden tests: each fixture mini-crate under `tests/fixtures/` is
//! linted with its own `lint.toml` and the rendered report must match
//! the checked-in `expected.txt` byte for byte.
//!
//! The fixtures prove both directions of every rule family: the four
//! `*_bad` crates show the rules *fire* on violating code (with the
//! exact messages, line numbers, and taint-chain notes pinned), and
//! `clean` shows they stay *quiet* on well-behaved code.
#![forbid(unsafe_code)]

use std::path::PathBuf;

use pisa_lint::{parse_config, run_lint, LevelOverrides};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints one fixture with `--deny all` semantics and compares the
/// rustc-style rendering against its golden file.
fn check_fixture(name: &str) {
    let root = fixture_root(name);
    let cfg_src = std::fs::read_to_string(root.join("lint.toml"))
        .unwrap_or_else(|e| panic!("fixture {name}: read lint.toml: {e}"));
    let cfg = parse_config(&cfg_src).unwrap_or_else(|e| panic!("fixture {name}: parse: {e}"));
    let levels = LevelOverrides {
        deny: vec!["all".to_string()],
        warn: Vec::new(),
    };
    let report = run_lint(&root, &cfg, &levels);
    let rendered = report.render_text();
    let expected = std::fs::read_to_string(root.join("expected.txt"))
        .unwrap_or_else(|e| panic!("fixture {name}: read expected.txt: {e}"));
    assert_eq!(
        rendered, expected,
        "fixture {name}: report drifted from golden expected.txt\n\
         --- got ---\n{rendered}\n--- want ---\n{expected}"
    );
}

#[test]
fn secret_bad_fires_all_hygiene_rules() {
    check_fixture("secret_bad");
}

#[test]
fn panic_bad_fires_all_panic_rules() {
    check_fixture("panic_bad");
}

#[test]
fn branch_bad_fires_taint_tracking() {
    check_fixture("branch_bad");
}

#[test]
fn convention_bad_fires_convention_rules() {
    check_fixture("convention_bad");
}

#[test]
fn lock_bad_fires_inversion_and_poisoning() {
    check_fixture("lock_bad");
}

#[test]
fn blocking_bad_fires_direct_and_interprocedural() {
    check_fixture("blocking_bad");
}

#[test]
fn flow_bad_fires_laundered_taint() {
    check_fixture("flow_bad");
}

/// Reports are byte-stable: two runs over the same tree render
/// identical text and JSON, regardless of directory-walk or hash-map
/// iteration order inside the engine.
#[test]
fn reports_are_deterministic_across_runs() {
    for name in ["lock_bad", "blocking_bad", "flow_bad", "secret_bad"] {
        let root = fixture_root(name);
        let cfg = parse_config(&std::fs::read_to_string(root.join("lint.toml")).unwrap()).unwrap();
        let levels = LevelOverrides {
            deny: vec!["all".to_string()],
            warn: Vec::new(),
        };
        let a = run_lint(&root, &cfg, &levels);
        let b = run_lint(&root, &cfg, &levels);
        assert_eq!(
            a.render_text(),
            b.render_text(),
            "fixture {name}: text rendering drifted between identical runs"
        );
        assert_eq!(
            a.render_json(),
            b.render_json(),
            "fixture {name}: JSON rendering drifted between identical runs"
        );
    }
}

#[test]
fn clean_fixture_is_quiet() {
    check_fixture("clean");
    // Belt and braces: the clean fixture must have zero findings, not
    // merely match a golden that happens to contain findings.
    let root = fixture_root("clean");
    let cfg = parse_config(&std::fs::read_to_string(root.join("lint.toml")).unwrap()).unwrap();
    let report = run_lint(&root, &cfg, &LevelOverrides::default());
    assert_eq!(report.deny_count(), 0);
    assert_eq!(report.warn_count(), 0);
    assert_eq!(report.allowed_count(), 0);
}

/// `--warn` downgrades findings without hiding them; `--deny` wins
/// when both name a rule.
#[test]
fn warn_override_downgrades_without_hiding() {
    let root = fixture_root("convention_bad");
    let cfg = parse_config(&std::fs::read_to_string(root.join("lint.toml")).unwrap()).unwrap();
    let levels = LevelOverrides {
        deny: Vec::new(),
        warn: vec!["all".to_string()],
    };
    let report = run_lint(&root, &cfg, &levels);
    assert_eq!(
        report.deny_count(),
        0,
        "warn-all must leave no deny findings"
    );
    assert_eq!(
        report.warn_count(),
        4,
        "all four findings survive as warnings"
    );

    let levels = LevelOverrides {
        deny: vec!["conventions".to_string()],
        warn: vec!["all".to_string()],
    };
    let report = run_lint(&root, &cfg, &levels);
    assert_eq!(report.deny_count(), 4, "--deny re-upgrades past --warn all");
}

/// The allowed finding in `panic_bad` (a justified inline allow) is
/// visible in the JSON report even though the text rendering hides it.
#[test]
fn panic_bad_allowed_finding_survives_in_json() {
    let root = fixture_root("panic_bad");
    let cfg = parse_config(&std::fs::read_to_string(root.join("lint.toml")).unwrap()).unwrap();
    let report = run_lint(&root, &cfg, &LevelOverrides::default());
    assert_eq!(report.allowed_count(), 1);
    let json = report.render_json();
    assert!(
        json.contains("\"allowed\": 1"),
        "JSON must count the suppressed finding: {json}"
    );
    assert!(
        json.contains("v is a header field checked < 16"),
        "JSON must carry the allow reason: {json}"
    );
}
