//! Fixture: secret taint laundered through helpers and field reads —
//! flows the intraprocedural `secret-branching` rule cannot see.
#![forbid(unsafe_code)]

/// A tagged secret scalar.
#[doc(alias = "pisa_secret")]
pub struct SessionKey {
    pub limbs: Vec<u64>,
}

impl Drop for SessionKey {
    fn drop(&mut self) {
        self.limbs.clear();
    }
}

impl std::fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SessionKey(<redacted>)")
    }
}

/// A plain config struct; not secret itself, but carries one.
pub struct Endpoint {
    pub key: SessionKey,
    pub rounds: u32,
}

/// Launders the key's width through a return value.
fn key_width(ep: &Endpoint) -> usize {
    ep.key.limbs.len()
}

/// Branches on the laundered width: the caller never names the key,
/// so only the interprocedural summary connects the dots.
pub fn pad(ep: &Endpoint, buf: &mut Vec<u8>) {
    let width = key_width(ep);
    while buf.len() < width {
        buf.push(0);
    }
}

/// Branches on a secret-carrying field read of a non-secret struct.
pub fn has_spare(ep: &Endpoint) -> bool {
    if ep.key.limbs.len() > 2 {
        return true;
    }
    false
}

/// Formats the laundered width — a secret-derived escape.
pub fn describe(ep: &Endpoint) -> String {
    let width = key_width(ep);
    format!("key width {}", width)
}

/// Branching on the public field stays quiet.
pub fn budget(ep: &Endpoint) -> u32 {
    if ep.rounds > 8 {
        8
    } else {
        ep.rounds
    }
}
