//! Fixture: a well-behaved crate every rule family stays quiet on.
#![forbid(unsafe_code)]

/// A properly handled secret: redacted Debug, wiped on drop, never
/// serialized, never branched on.
#[doc(alias = "pisa_secret")]
#[derive(Clone)]
pub struct CarefulKey {
    lambda: u64,
}

impl std::fmt::Debug for CarefulKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CarefulKey(<redacted>)")
    }
}

impl Drop for CarefulKey {
    fn drop(&mut self) {
        self.lambda = 0;
    }
}

/// Total decoding: typed errors instead of panics, `try_from` instead
/// of truncating casts, `get` instead of indexing.
pub fn decode(frame: &[u8]) -> Result<u16, String> {
    let first = frame.first().ok_or("empty frame")?;
    let value = u16::try_from(*first).map_err(|_| "overflow".to_string())?;
    Ok(value)
}

/// Branching on public lengths only.
pub fn clamp(len: usize) -> usize {
    if len > 64 {
        64
    } else {
        len
    }
}
