//! Fixture: guards held across blocking receives, directly and through
//! a helper only the interprocedural summary can see.
#![forbid(unsafe_code)]

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

/// An inbox guarded by a mutex, fed by a channel.
pub struct Inbox {
    queue: Mutex<Vec<u8>>,
    rx: Receiver<u8>,
}

impl Inbox {
    /// Blocks on the channel with the queue guard held — every other
    /// thread touching `queue` now waits on a sender that may be gone.
    pub fn wait_direct(&self) {
        let mut q = self.queue.lock();
        if let Ok(byte) = self.rx.recv() {
            q.push(byte);
        }
    }

    /// The same unbounded wait, laundered through a helper: only the
    /// callee's concurrency summary shows the `recv`.
    pub fn wait_via_helper(&self) {
        let mut q = self.queue.lock();
        if let Some(byte) = self.pump_one() {
            q.push(byte);
        }
    }

    /// Blocks on the channel; innocuous on its own.
    fn pump_one(&self) -> Option<u8> {
        self.rx.recv().ok()
    }

    /// Bounded wait under the guard stays quiet, as does a blocking
    /// wait with no guard held.
    pub fn drain_politely(&self, timeout: std::time::Duration) {
        let byte = self.rx.recv_timeout(timeout).ok();
        if let Some(byte) = byte {
            self.queue.lock().push(byte);
        }
    }
}
