//! Fixture: workspace-convention violations (no `#![forbid(unsafe_code)]`
//! attribute anywhere in this file, debug printing in library code).

pub fn inspect(value: u64) -> u64 {
    let doubled = dbg!(value * 2);
    println!("value = {value}");
    eprintln!("doubled = {doubled}");
    doubled
}
