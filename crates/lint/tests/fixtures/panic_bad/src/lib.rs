//! Fixture: every panic-oracle pattern the rule must catch.
#![forbid(unsafe_code)]

pub fn decode(frame: &[u8]) -> u32 {
    let tag = frame[0];
    let len = frame.len() as u32;
    let body = std::str::from_utf8(&frame[1..]).unwrap();
    let n: u32 = body.parse().expect("numeric body");
    if tag == 0 {
        panic!("zero tag");
    }
    match tag {
        1 => n,
        2 => len,
        _ => unreachable!(),
    }
}

pub fn truncate(v: u64) -> u16 {
    v as u16
}

pub fn justified(v: u64) -> usize {
    // pisa-lint: allow(panic-freedom): v is a header field checked < 16
    v as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v: Option<u32> = None;
        let _ = v.unwrap_or(0);
        assert!(super::decode(&[1, 0x35]) == 5);
    }
}
