//! Fixture: every way to mishandle a secret-tagged type.
#![forbid(unsafe_code)]

/// Tagged secret that leaks through derives and never wipes itself.
#[doc(alias = "pisa_secret")]
#[derive(Debug, Clone, Serialize)]
pub struct LeakyKey {
    lambda: u64,
}

impl std::fmt::Display for LeakyKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.lambda)
    }
}

/// Manual Debug that still prints the secret field.
#[doc(alias = "pisa_secret")]
pub struct ChattyKey {
    d: u64,
}

impl std::fmt::Debug for ChattyKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChattyKey({})", self.d)
    }
}

impl Drop for ChattyKey {
    fn drop(&mut self) {
        self.d = 0;
    }
}

/// Not tagged itself, but holds a secret — serializing it exfiltrates
/// the key.
#[derive(Serialize, Deserialize)]
pub struct Envelope {
    inner: LeakyKey,
}

/// Named in `[secret] types` but nowhere marked in source.
pub struct SomethingElse {
    x: u64,
}
