//! Fixture: secret-dependent control flow the rule must catch.
#![forbid(unsafe_code)]

/// A tagged secret scalar.
#[doc(alias = "pisa_secret")]
pub struct SecretExponent {
    pub bits: Vec<bool>,
}

impl Drop for SecretExponent {
    fn drop(&mut self) {
        self.bits.clear();
    }
}

impl std::fmt::Debug for SecretExponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretExponent(<redacted>)")
    }
}

/// Branches directly on a secret-typed parameter.
pub fn square_and_multiply(base: u64, exp: &SecretExponent) -> u64 {
    let mut acc = 1u64;
    for &bit in &exp.bits {
        acc = acc.wrapping_mul(acc);
        if bit {
            acc = acc.wrapping_mul(base);
        }
    }
    acc
}

/// Taint flows through a let binding before the branch.
pub fn leading_zeros(exp: &SecretExponent) -> u32 {
    let width = exp.bits.len();
    let mut count = 0;
    while count < width {
        count += 1;
    }
    count as u32
}

/// Seeded by `[branching] secret_params` even though the type is plain.
pub fn mod_pow(base: u64, exponent: u64, modulus: u64) -> u64 {
    if exponent == 0 {
        return 1 % modulus;
    }
    base % modulus
}

/// Branching on public data stays quiet.
pub fn public_branch(len: usize) -> usize {
    if len > 16 {
        16
    } else {
        len
    }
}
