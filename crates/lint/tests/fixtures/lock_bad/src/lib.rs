//! Fixture: lock-order inversion and poisoning the rule must catch.
#![forbid(unsafe_code)]

use std::sync::Mutex;

/// A connection pool with two independent tables.
pub struct Pool {
    peers: Mutex<Vec<u32>>,
    routes: Mutex<Vec<u32>>,
}

impl Pool {
    /// Acquires `peers` then `routes`.
    pub fn forward(&self) -> usize {
        let p = self.peers.lock();
        let r = self.routes.lock();
        p.len() + r.len()
    }

    /// Acquires `routes` then `peers` — the inversion: two threads in
    /// `forward` and `reclaim` deadlock holding one lock each.
    pub fn reclaim(&self) -> usize {
        let r = self.routes.lock();
        let p = self.peers.lock();
        r.len() + p.len()
    }

    /// `.lock().unwrap()` — a poisoned mutex panics every later caller.
    pub fn poisoned_len(&self) -> usize {
        let g = self.peers.lock().unwrap();
        g.len()
    }

    /// Ordered consistently with `forward` and guard-free between
    /// tables: stays quiet.
    pub fn audit(&self) -> usize {
        let n = { self.peers.lock().len() };
        n + self.routes.lock().len()
    }
}
