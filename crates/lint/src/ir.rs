//! Function-level IR for the interprocedural analyses.
//!
//! Each non-test function in the workspace is lowered to a linear
//! *event stream*: lock acquisitions and call sites, each annotated
//! with the set of guards held at that point and whether the event
//! sits inside a loop. The lowering is a single guarded walk over the
//! raw body token stream (the `shims/syn` parser keeps bodies as
//! balanced token slices, not statement trees), tracking:
//!
//! * brace depth, so guards die at the end of their lexical block;
//! * `let`-bound guards (live until `drop(name)` or end of block) vs
//!   temporary guards (live until the end of the statement);
//! * loop nesting (`loop` / `while` / `for` bodies).
//!
//! Lock identity is *name-based*: the workspace-wide
//! [`LockUniverse`] collects every struct field typed `Mutex<…>` /
//! `RwLock<…>` and every fn returning a lock handle; `.lock()` /
//! `.read()` / `.write()` with **empty** parentheses on one of those
//! names is an acquisition. The empty-parens requirement is what keeps
//! `io::Read::read(&mut buf)` from being misread as an `RwLock` read
//! acquisition. Two locks with the same field name in different types
//! are conflated — a documented soundness trade (DESIGN.md §13).

use std::collections::BTreeMap;

use crate::scan::{for_each_fn, for_each_type, ty_mentions, Workspace};
use syn::{Token, TokenKind};

/// Which primitive a lock name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// Workspace-wide map from lock names (struct fields typed
/// `Mutex<…>`/`RwLock<…>`, fns returning lock handles) to their kind.
#[derive(Debug, Default)]
pub struct LockUniverse {
    pub kinds: BTreeMap<String, LockKind>,
}

impl LockUniverse {
    pub fn build(ws: &Workspace) -> Self {
        let mut kinds = BTreeMap::new();
        for file in &ws.files {
            for_each_type(&file.ast, &mut |td| {
                for f in td.fields() {
                    if ty_mentions(&f.ty, "Mutex") {
                        kinds.insert(f.name.clone(), LockKind::Mutex);
                    } else if ty_mentions(&f.ty, "RwLock") {
                        kinds.insert(f.name.clone(), LockKind::RwLock);
                    }
                }
            });
            for_each_fn(&file.ast, &mut |ctx| {
                let ret = &ctx.func.sig.ret_ty;
                if ty_mentions(ret, "Mutex") {
                    kinds.insert(ctx.func.sig.ident.clone(), LockKind::Mutex);
                } else if ty_mentions(ret, "RwLock") {
                    kinds.insert(ctx.func.sig.ident.clone(), LockKind::RwLock);
                }
            });
        }
        LockUniverse { kinds }
    }
}

/// A guard held at an event, by lock name and acquisition line.
#[derive(Debug, Clone)]
pub struct Held {
    pub lock: String,
    pub line: u32,
}

/// One lowered event.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// `.lock()` / `.read()` / `.write()` on a known lock name.
    Acquire {
        lock: String,
        /// `.lock().unwrap()` / `.expect(…)` — a poisoning panic site.
        unwrapped: bool,
    },
    /// A call site: `name(…)`, `recv.name(…)` or `Qual::name(…)`.
    Call {
        name: String,
        /// `true` for `.name(…)` method syntax.
        method: bool,
        /// `Qual` in `Qual::name(…)` (type or module path segment).
        qualifier: Option<String>,
        /// `true` when the argument list is empty (`name()`).
        no_args: bool,
    },
}

#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    pub line: u32,
    /// Guards held when this event executes, in acquisition order.
    pub held: Vec<Held>,
    /// `true` when the event sits inside a `loop`/`while`/`for` body.
    pub in_loop: bool,
}

/// One lowered function.
pub struct FnIr<'a> {
    pub file: String,
    pub crate_path: String,
    pub name: String,
    pub self_ty: Option<String>,
    pub trait_: Option<String>,
    pub has_self: bool,
    pub line: u32,
    pub sig: &'a syn::Signature,
    pub body: &'a [Token],
    pub events: Vec<Event>,
}

/// The lowered workspace.
pub struct Program<'a> {
    pub fns: Vec<FnIr<'a>>,
    pub locks: LockUniverse,
}

pub fn build(ws: &Workspace) -> Program<'_> {
    let locks = LockUniverse::build(ws);
    let mut fns = Vec::new();
    for file in &ws.files {
        for_each_fn(&file.ast, &mut |ctx| {
            let events = lower_body(&ctx.func.body, &locks);
            fns.push(FnIr {
                file: file.rel_path.clone(),
                crate_path: file.crate_path.clone(),
                name: ctx.func.sig.ident.clone(),
                self_ty: ctx.self_ty.map(|s| s.to_string()),
                trait_: ctx.trait_.map(|s| s.to_string()),
                has_self: ctx.func.sig.has_self,
                line: ctx.func.line,
                sig: &ctx.func.sig,
                body: &ctx.func.body,
                events,
            });
        });
    }
    Program { fns, locks }
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "in",
    "as", "ref", "mut", "move", "fn", "unsafe", "impl", "dyn", "where", "struct", "enum", "const",
    "static", "use", "pub", "true", "false",
];

struct Guard {
    lock: String,
    name: Option<String>,
    /// Brace depth at acquisition; the guard dies when depth drops below.
    brace: i32,
    line: u32,
}

struct PendingLet {
    names: Vec<String>,
    brace: i32,
    bound: bool,
}

fn lower_body(body: &[Token], locks: &LockUniverse) -> Vec<Event> {
    let mut events = Vec::new();
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    // Brace depth just outside each active loop body.
    let mut loops: Vec<i32> = Vec::new();
    let mut pending_loop = false;
    let mut pending_let: Option<PendingLet> = None;

    let held_snapshot = |guards: &[Guard]| -> Vec<Held> {
        guards
            .iter()
            .map(|g| Held {
                lock: g.lock.clone(),
                line: g.line,
            })
            .collect()
    };

    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        match t.kind {
            TokenKind::Open('{') => {
                if pending_loop {
                    loops.push(brace);
                    pending_loop = false;
                }
                // `while let pat = expr {` — the binding scopes to the
                // condition, not the body; stop waiting for a `;`.
                if let Some(pl) = &pending_let {
                    if pl.brace == brace {
                        pending_let = None;
                    }
                }
                brace += 1;
                i += 1;
            }
            TokenKind::Close('}') => {
                brace -= 1;
                while loops.last().copied() == Some(brace) {
                    loops.pop();
                }
                // Inner-scope guards die; so do unnamed temporaries at
                // the depth we return to — an `if let`/`match` scrutinee
                // temporary (`routes.lock().get(..)`) lives through the
                // arms and drops when the statement's block closes.
                guards.retain(|g| g.brace < brace || (g.brace == brace && g.name.is_some()));
                if let Some(pl) = &pending_let {
                    if pl.brace > brace {
                        pending_let = None;
                    }
                }
                i += 1;
            }
            TokenKind::Open(_) => {
                paren += 1;
                i += 1;
            }
            TokenKind::Close(_) => {
                paren -= 1;
                i += 1;
            }
            TokenKind::Punct if t.text == ";" && paren == 0 => {
                // Statement end: temporaries die, a pending `let` closes.
                guards.retain(|g| g.name.is_some() || g.brace < brace);
                if let Some(pl) = &pending_let {
                    if pl.brace >= brace {
                        pending_let = None;
                    }
                }
                i += 1;
            }
            TokenKind::Ident if t.text == "let" => {
                let (names, resume) = let_pattern(body, i);
                match resume {
                    LetResume::AtInit(j) => {
                        pending_let = Some(PendingLet {
                            names,
                            brace,
                            bound: false,
                        });
                        i = j;
                    }
                    LetResume::NoInit(j) => {
                        i = j;
                    }
                }
            }
            TokenKind::Ident if t.text == "loop" || t.text == "while" || t.text == "for" => {
                pending_loop = true;
                i += 1;
            }
            TokenKind::Ident
                if t.text == "drop"
                    && matches!(body.get(i + 1), Some(n) if n.kind == TokenKind::Open('('))
                    && matches!(body.get(i + 2), Some(n) if n.kind == TokenKind::Ident)
                    && matches!(body.get(i + 3), Some(n) if n.kind == TokenKind::Close(')')) =>
            {
                let name = &body[i + 2].text;
                guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                i += 4;
            }
            TokenKind::Ident
                if (t.text == "lock" || t.text == "read" || t.text == "write")
                    && is_acquire(body, i, locks) =>
            {
                let lock = receiver_ident(body, i).unwrap_or_default();
                let unwrapped = matches!(body.get(i + 3), Some(n) if n.is_punct('.'))
                    && matches!(
                        body.get(i + 4),
                        Some(n) if n.is_ident("unwrap") || n.is_ident("expect")
                    );
                events.push(Event {
                    kind: EventKind::Acquire {
                        lock: lock.clone(),
                        unwrapped,
                    },
                    line: t.line,
                    held: held_snapshot(&guards),
                    in_loop: !loops.is_empty(),
                });
                // The `let` name binds the *guard* only when the lock
                // call is the whole initializer (`let g = x.lock();`,
                // optionally `.unwrap()`). In a longer chain
                // (`let v = x.lock().get(k).cloned()`) the name binds
                // the chain's result and the guard is a temporary.
                let name = match &mut pending_let {
                    Some(pl) if !pl.bound && pl.names.len() == 1 && whole_initializer(body, i) => {
                        pl.bound = true;
                        Some(pl.names[0].clone())
                    }
                    _ => None,
                };
                guards.push(Guard {
                    lock,
                    name,
                    brace,
                    line: t.line,
                });
                i += 3; // past `lock ( )`
            }
            TokenKind::Ident
                if matches!(body.get(i + 1), Some(n) if n.kind == TokenKind::Open('('))
                    && !KEYWORDS.contains(&t.text.as_str()) =>
            {
                let method =
                    matches!(body.get(i.wrapping_sub(1)), Some(p) if i > 0 && p.is_punct('.'));
                let qualifier = if i >= 3
                    && body[i - 1].is_punct(':')
                    && body[i - 2].is_punct(':')
                    && body[i - 3].kind == TokenKind::Ident
                {
                    Some(body[i - 3].text.clone())
                } else {
                    None
                };
                let no_args = matches!(body.get(i + 2), Some(n) if n.kind == TokenKind::Close(')'));
                events.push(Event {
                    kind: EventKind::Call {
                        name: t.text.clone(),
                        method,
                        qualifier,
                        no_args,
                    },
                    line: t.line,
                    held: held_snapshot(&guards),
                    in_loop: !loops.is_empty(),
                });
                i += 1;
            }
            _ => i += 1,
        }
    }
    events
}

enum LetResume {
    /// Resume just after the `=` (initializer start).
    AtInit(usize),
    /// Uninitialized `let x;` — resume after the `;`.
    NoInit(usize),
}

/// Extracts binding names from a `let` pattern starting at `body[start]`
/// (the `let` keyword), stopping at the `=` or `;`.
fn let_pattern(body: &[Token], start: usize) -> (Vec<String>, LetResume) {
    let mut names = Vec::new();
    let mut depth = 0i32;
    let mut in_ty = false;
    let mut i = start + 1;
    while i < body.len() {
        let t = &body[i];
        match t.kind {
            TokenKind::Punct if t.text == "=" && depth == 0 => {
                // `==` can't appear in a pattern; a plain `=` ends it.
                return (names, LetResume::AtInit(i + 1));
            }
            TokenKind::Punct if t.text == ";" && depth == 0 => {
                return (names, LetResume::NoInit(i + 1));
            }
            TokenKind::Punct if t.text == ":" && depth == 0 => in_ty = true,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    return (names, LetResume::NoInit(i));
                }
            }
            TokenKind::Ident if !in_ty && t.text != "mut" && t.text != "ref" => {
                let ctor = matches!(body.get(i + 1), Some(n) if n.kind == TokenKind::Open('('));
                if !ctor {
                    names.push(t.text.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (names, LetResume::NoInit(i))
}

/// `true` when the acquisition at `body[i]` is the whole `let`
/// initializer: after `lock ( )` and an optional `.unwrap()` /
/// `.expect(…)`, the next token is the statement's `;`.
fn whole_initializer(body: &[Token], i: usize) -> bool {
    let mut j = i + 3; // past `lock ( )`
    if matches!(body.get(j), Some(n) if n.is_punct('.'))
        && matches!(
            body.get(j + 1),
            Some(n) if n.is_ident("unwrap") || n.is_ident("expect")
        )
        && matches!(body.get(j + 2), Some(n) if n.kind == TokenKind::Open('('))
    {
        let mut depth = 0i32;
        j += 2;
        while j < body.len() {
            match body[j].kind {
                TokenKind::Open('(') => depth += 1,
                TokenKind::Close(')') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    matches!(body.get(j), Some(n) if n.is_punct(';'))
}

/// `true` when `body[i]` (`lock`/`read`/`write`) is a lock acquisition:
/// method syntax, **empty** parens, receiver in the lock universe with a
/// compatible kind.
fn is_acquire(body: &[Token], i: usize, locks: &LockUniverse) -> bool {
    if i == 0 || !body[i - 1].is_punct('.') {
        return false;
    }
    if !matches!(body.get(i + 1), Some(n) if n.kind == TokenKind::Open('('))
        || !matches!(body.get(i + 2), Some(n) if n.kind == TokenKind::Close(')'))
    {
        return false;
    }
    let Some(recv) = receiver_ident(body, i) else {
        return false;
    };
    match locks.kinds.get(&recv) {
        Some(LockKind::Mutex) => body[i].text == "lock",
        Some(LockKind::RwLock) => body[i].text == "read" || body[i].text == "write",
        None => false,
    }
}

/// The identifier naming the receiver of the method at `body[i]`:
/// the last path/field segment before the `.`, skipping one balanced
/// call-group (`state().lock()` → `state`, `self.inner.routes.lock()`
/// → `routes`).
fn receiver_ident(body: &[Token], i: usize) -> Option<String> {
    if i < 2 || !body[i - 1].is_punct('.') {
        return None;
    }
    let mut j = i - 2;
    if body[j].kind == TokenKind::Close(')') {
        // Skip the balanced `(…)` backwards.
        let mut depth = 0i32;
        loop {
            match body[j].kind {
                TokenKind::Close(')') => depth += 1,
                TokenKind::Open('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if body[j].kind == TokenKind::Ident {
        Some(body[j].text.clone())
    } else {
        None
    }
}

/// Classification of a call by blocking behaviour, from its name and
/// shape. `None` means not a known blocking primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Can block with no intrinsic bound (`recv()`, `join()`, io).
    Unbounded,
    /// Blocks but with a caller-supplied bound (`recv_timeout`, `sleep`).
    Bounded,
}

pub fn blocking_kind(call: &EventKind) -> Option<Bound> {
    let EventKind::Call {
        name,
        method,
        no_args,
        ..
    } = call
    else {
        return None;
    };
    match name.as_str() {
        // Empty-parens requirement keeps `Path::join(p)` / `Vec::join(sep)`
        // and condvar-free `wait(ms)` helpers out.
        "recv" | "join" | "wait" | "accept" | "flush" if *no_args => Some(Bound::Unbounded),
        "read_exact" | "write_all" | "read_to_end" | "connect" => Some(Bound::Unbounded),
        // io::Read/Write with a buffer argument, method syntax.
        "read" | "write" if *method && !*no_args => Some(Bound::Unbounded),
        "recv_timeout" | "recv_deadline" | "wait_timeout" | "sleep" | "park_timeout" => {
            Some(Bound::Bounded)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_workspace;

    fn lower(src: &str) -> Vec<Event> {
        let ast = syn::parse_file(src).unwrap();
        let mut locks = LockUniverse::default();
        locks.kinds.insert("a".into(), LockKind::Mutex);
        locks.kinds.insert("b".into(), LockKind::Mutex);
        locks.kinds.insert("shared".into(), LockKind::RwLock);
        let mut out = Vec::new();
        crate::scan::for_each_fn(&ast, &mut |ctx| {
            out = lower_body(&ctx.func.body, &locks);
        });
        out
    }

    #[test]
    fn let_bound_guard_extends_to_drop() {
        let ev =
            lower("fn f(&self) { let g = self.a.lock(); self.helper(); drop(g); self.helper2(); }");
        // helper runs with `a` held, helper2 after drop(g) with nothing.
        let helper = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "helper"))
            .unwrap();
        assert_eq!(helper.held.len(), 1);
        assert_eq!(helper.held[0].lock, "a");
        let helper2 = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "helper2"))
            .unwrap();
        assert!(helper2.held.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let ev = lower("fn f(&self) { self.a.lock().insert(1); self.helper(); }");
        let helper = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "helper"))
            .unwrap();
        assert!(helper.held.is_empty());
    }

    #[test]
    fn chained_let_initializer_is_a_temporary() {
        // `let v = a.lock().get(1).cloned();` binds the chain result,
        // not the guard — the guard dies at the `;`.
        let ev = lower("fn f(&self) { let v = self.a.lock().get(1).cloned(); self.helper(); }");
        let helper = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "helper"))
            .unwrap();
        assert!(helper.held.is_empty());
    }

    #[test]
    fn if_let_scrutinee_guard_spans_arms_then_dies() {
        let ev = lower(
            "fn f(&self) { if let Some(v) = self.a.lock().get(1) { self.inside(); } self.after(); }",
        );
        let inside = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "inside"))
            .unwrap();
        assert_eq!(inside.held.len(), 1);
        assert_eq!(inside.held[0].lock, "a");
        let after = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "after"))
            .unwrap();
        assert!(after.held.is_empty());
    }

    #[test]
    fn nested_acquire_sees_outer_guard() {
        let ev = lower("fn f(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }");
        let acquires: Vec<_> = ev
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Acquire { .. }))
            .collect();
        assert_eq!(acquires.len(), 2);
        assert!(acquires[0].held.is_empty());
        assert_eq!(acquires[1].held.len(), 1);
        assert_eq!(acquires[1].held[0].lock, "a");
    }

    #[test]
    fn block_scope_releases_guard() {
        let ev = lower("fn f(&self) { { let g = self.a.lock(); } self.helper(); }");
        let helper = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "helper"))
            .unwrap();
        assert!(helper.held.is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let ev = lower("fn f(&self, s: &mut TcpStream) { let shared = 0; s.read(&mut buf); }");
        assert!(!ev
            .iter()
            .any(|e| matches!(e.kind, EventKind::Acquire { .. })));
    }

    #[test]
    fn rwlock_read_empty_parens_is_acquisition() {
        let ev = lower("fn f(&self) { let g = self.shared.read(); }");
        assert!(ev
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Acquire { lock, .. } if lock == "shared")));
    }

    #[test]
    fn loop_and_unwrap_flags() {
        let ev = lower("fn f(&self) { loop { let g = self.a.lock().unwrap(); self.rx.recv(); } }");
        let acq = ev
            .iter()
            .find(|e| matches!(e.kind, EventKind::Acquire { .. }))
            .unwrap();
        assert!(acq.in_loop);
        assert!(matches!(
            acq.kind,
            EventKind::Acquire {
                unwrapped: true,
                ..
            }
        ));
        let recv = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "recv"))
            .unwrap();
        assert!(recv.in_loop);
        assert_eq!(recv.held.len(), 1);
        assert_eq!(blocking_kind(&recv.kind), Some(Bound::Unbounded));
    }

    #[test]
    fn qualified_call_captures_qualifier() {
        let ev = lower("fn f() { frame::write_frame(&mut s, &env); }");
        let call = ev
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { name, .. } if name == "write_frame"))
            .unwrap();
        assert!(matches!(&call.kind, EventKind::Call { qualifier: Some(q), .. } if q == "frame"));
    }

    #[test]
    fn universe_finds_fields_and_lock_returning_fns() {
        let dir = tempdir();
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(
            dir.join("src/lib.rs"),
            "pub struct S { routes: Mutex<u32>, cache: RwLock<u32> }\n\
             fn state() -> &'static Mutex<State> { loop {} }\n",
        )
        .unwrap();
        let ws = scan_workspace(&dir);
        let uni = LockUniverse::build(&ws);
        assert_eq!(uni.kinds.get("routes"), Some(&LockKind::Mutex));
        assert_eq!(uni.kinds.get("cache"), Some(&LockKind::RwLock));
        assert_eq!(uni.kinds.get("state"), Some(&LockKind::Mutex));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pisa-lint-ir-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
