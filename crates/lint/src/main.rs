//! CLI entry point: `pisa-lint [--root DIR] [--config FILE]
//! [--deny RULES] [--warn RULES] [--json FILE] [--quiet]`.
//!
//! `RULES` is a comma-separated list of rule names or `all`. All rules
//! default to deny; `--warn` downgrades, `--deny` re-upgrades. Exits
//! non-zero when any non-suppressed deny-level finding remains.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use pisa_lint::{parse_config, run_lint, Config, LevelOverrides, RULES};

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pisa-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut levels = LevelOverrides::default();
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(need(&mut args, "--root")?)),
            "--config" => config_path = Some(PathBuf::from(need(&mut args, "--config")?)),
            "--json" => json_path = Some(PathBuf::from(need(&mut args, "--json")?)),
            "--deny" => levels
                .deny
                .extend(parse_rules(&need(&mut args, "--deny")?)?),
            "--warn" => levels
                .warn
                .extend(parse_rules(&need(&mut args, "--warn")?)?),
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let cfg: Config = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
        parse_config(&text).map_err(|e| format!("{}: {e}", config_path.display()))?
    } else {
        return Err(format!(
            "no lint.toml found at {} (pass --config)",
            config_path.display()
        ));
    };

    let report = run_lint(&root, &cfg, &levels);

    if let Some(path) = json_path {
        std::fs::write(&path, report.render_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if !quiet {
        print!("{}", report.render_text());
    }
    Ok(if report.deny_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

const USAGE: &str = "\
usage: pisa-lint [options]
  --root DIR     workspace root (default: nearest ancestor with lint.toml)
  --config FILE  lint config (default: <root>/lint.toml)
  --deny RULES   comma-separated rules (or `all`) to fail the run on
  --warn RULES   comma-separated rules (or `all`) to report without failing
  --json FILE    also write a JSON report
  --quiet        suppress text output (exit code only)

rules: secret-hygiene, panic-freedom, secret-branching, conventions,
       lock-discipline, blocking-call, secret-flow, dead-allow";

fn need(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_rules(list: &str) -> Result<Vec<String>, String> {
    list.split(',')
        .map(|r| {
            let r = r.trim();
            if r == "all" || RULES.contains(&r) {
                Ok(r.to_string())
            } else {
                Err(format!("unknown rule `{r}` (see --help)"))
            }
        })
        .collect()
}

/// Walks up from the current directory to the nearest `lint.toml`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("lint.toml").exists() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no lint.toml in any ancestor directory (pass --root)".to_string());
        }
    }
}
