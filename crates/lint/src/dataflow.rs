//! Fixpoint dataflow over the call graph: concurrency summaries
//! (locks acquired, unbounded blocking reachable) and interprocedural
//! secret taint (params→returns, secret-field reads, laundering
//! helpers).
//!
//! Both analyses compute one summary per workspace function and
//! iterate to a fixpoint (the lattices are finite powersets over
//! locks / parameter indices, so iteration converges; a hard cap
//! bounds pathological call graphs). The secret walker is a superset
//! of the v1 `secret-branching` scan: it tracks, per variable, the
//! parameter indices it derives from, whether it is secret-derived,
//! and whether that secrecy is *v1-visible* (reachable without any
//! call or field-read step). The `secret-flow` rule only reports
//! findings v1 cannot see, so the two rule families never duplicate.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::ir::{blocking_kind, Bound, EventKind, Program};
use crate::scan::{for_each_type, ty_mentions, Workspace};
use syn::{Token, TokenKind};

const MAX_ITERS: usize = 12;
const MAX_NOTES: usize = 5;
const MAX_SPAN_DEPTH: usize = 3;

// ---------------------------------------------------------------------
// Concurrency summaries
// ---------------------------------------------------------------------

/// Locks acquired and blocking reachable from a function, transitively.
#[derive(Debug, Clone, Default)]
pub struct ConcSummary {
    /// Lock name → witness ("acquired at file:line" or "via `f`: …").
    pub acquires: BTreeMap<String, String>,
    /// First unbounded-blocking witness reachable from this fn.
    pub blocks: Option<String>,
}

pub fn conc_summaries(prog: &Program<'_>, graph: &CallGraph) -> Vec<ConcSummary> {
    let mut sums: Vec<ConcSummary> = prog
        .fns
        .iter()
        .map(|f| {
            let mut s = ConcSummary::default();
            for ev in &f.events {
                match &ev.kind {
                    EventKind::Acquire { lock, .. } => {
                        s.acquires
                            .entry(lock.clone())
                            .or_insert_with(|| format!("acquired at {}:{}", f.file, ev.line));
                    }
                    call @ EventKind::Call { name, .. } => {
                        if blocking_kind(call) == Some(Bound::Unbounded) && s.blocks.is_none() {
                            s.blocks = Some(format!("`{name}` at {}:{}", f.file, ev.line));
                        }
                    }
                }
            }
            s
        })
        .collect();

    for _ in 0..MAX_ITERS {
        let mut changed = false;
        for idx in 0..prog.fns.len() {
            let f = &prog.fns[idx];
            let mut add_acquires: Vec<(String, String)> = Vec::new();
            let mut add_blocks: Option<String> = None;
            for ev in &f.events {
                if let call @ EventKind::Call { name, .. } = &ev.kind {
                    for &callee in graph.resolve(call, f.self_ty.as_deref()) {
                        if callee == idx {
                            continue;
                        }
                        let cs = &sums[callee];
                        for (lock, wit) in &cs.acquires {
                            if !sums[idx].acquires.contains_key(lock) {
                                add_acquires.push((lock.clone(), via(name, &f.file, ev.line, wit)));
                            }
                        }
                        if sums[idx].blocks.is_none() && add_blocks.is_none() {
                            if let Some(wit) = &cs.blocks {
                                add_blocks = Some(via(name, &f.file, ev.line, wit));
                            }
                        }
                    }
                }
            }
            for (lock, wit) in add_acquires {
                if sums[idx].acquires.insert(lock, wit).is_none() {
                    changed = true;
                }
            }
            if let Some(wit) = add_blocks {
                sums[idx].blocks = Some(wit);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

fn via(callee: &str, file: &str, line: u32, inner: &str) -> String {
    let s = format!("via `{callee}` ({file}:{line}) → {inner}");
    if s.len() <= 240 {
        return s;
    }
    let cut = s
        .char_indices()
        .map(|(i, _)| i)
        .take_while(|&i| i <= 236)
        .last()
        .unwrap_or(0);
    format!("{}…", &s[..cut])
}

// ---------------------------------------------------------------------
// Secret-flow analysis
// ---------------------------------------------------------------------

/// Per-function secret-flow summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowSummary {
    /// Parameter indices (into `sig.inputs`) that reach a branch
    /// condition in this fn or a transitive callee → witness.
    pub branches_on: BTreeMap<usize, String>,
    /// Parameter indices that reach a `format!`-family escape.
    pub escapes: BTreeMap<usize, String>,
    /// Parameter indices that flow into the return value.
    pub ret_params: BTreeSet<usize>,
    /// Chain when the return value is secret-derived regardless of args.
    pub ret_secret: Option<Vec<String>>,
}

/// One candidate finding from the final (emitting) pass.
#[derive(Debug, Clone)]
pub struct FlowWitness {
    pub file: String,
    pub line: u32,
    pub message: String,
    pub notes: Vec<String>,
    /// `true` for branch-related findings that only apply inside the
    /// configured `[branching] paths` (escapes apply everywhere).
    pub branching_only: bool,
}

/// Workspace secret vocabulary: marked/configured type names and the
/// names of fields that carry them.
pub struct SecretVocab {
    pub types: BTreeSet<String>,
    pub fields: BTreeSet<String>,
}

pub fn secret_vocab(ws: &Workspace, cfg: &Config) -> SecretVocab {
    let mut types: BTreeSet<String> = cfg.secret_types.iter().cloned().collect();
    for file in &ws.files {
        for_each_type(&file.ast, &mut |td| {
            if td.attrs().iter().any(|a| a.contains("pisa_secret")) {
                types.insert(td.ident().to_string());
            }
        });
    }
    // Field names are matched without type information, so a name is a
    // secret marker only when it is unambiguous: either its type
    // mentions a secret type, or *every* type declaring a field of that
    // name is secret-marked. (`n` as both `PaillierSecretKey.n` and the
    // public `Mont.n` modulus must not taint the latter.)
    let mut secret_names = BTreeSet::new();
    let mut public_names = BTreeSet::new();
    let mut typed_secret = BTreeSet::new();
    for file in &ws.files {
        for_each_type(&file.ast, &mut |td| {
            let owner_secret = types.contains(td.ident());
            for f in td.fields() {
                // Tuple-struct "0"/"1" field names are useless as
                // taint markers; skip them.
                if f.name
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(true)
                {
                    continue;
                }
                if types.iter().any(|t| ty_mentions(&f.ty, t)) {
                    typed_secret.insert(f.name.clone());
                } else if owner_secret {
                    secret_names.insert(f.name.clone());
                } else {
                    public_names.insert(f.name.clone());
                }
            }
        });
    }
    let mut fields: BTreeSet<String> = typed_secret;
    fields.extend(secret_names.difference(&public_names).cloned());
    SecretVocab { types, fields }
}

/// Taint lattice value for one variable.
#[derive(Debug, Clone, Default)]
struct Taint {
    params: BTreeSet<usize>,
    /// Chain of notes when secret-derived.
    secret: Option<Vec<String>>,
    /// `true` when the secrecy is visible to the v1 intraprocedural
    /// scan (no call/field-read step involved).
    v1: bool,
}

impl Taint {
    fn merge(&mut self, other: &Taint) {
        self.params.extend(other.params.iter().copied());
        if let Some(chain) = &other.secret {
            if self.secret.is_none() {
                self.secret = Some(chain.clone());
            }
            self.v1 = self.v1 || other.v1;
        }
    }

    fn is_secret(&self) -> bool {
        self.secret.is_some()
    }
}

fn push_note(chain: &mut Vec<String>, note: String) {
    if chain.len() < MAX_NOTES {
        chain.push(note);
    }
}

/// Runs the secret-flow fixpoint. Returns per-fn summaries (indexed
/// like `prog.fns`) and the finding candidates from the final pass.
pub fn flow_analysis(
    prog: &Program<'_>,
    graph: &CallGraph,
    vocab: &SecretVocab,
    cfg: &Config,
) -> (Vec<FlowSummary>, Vec<FlowWitness>) {
    let mut sums: Vec<FlowSummary> = vec![FlowSummary::default(); prog.fns.len()];
    for _ in 0..MAX_ITERS {
        let mut changed = false;
        for idx in 0..prog.fns.len() {
            let next = analyze_fn(prog, graph, vocab, cfg, &sums, idx, None);
            if next != sums[idx] {
                sums[idx] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut witnesses = Vec::new();
    for idx in 0..prog.fns.len() {
        let _ = analyze_fn(prog, graph, vocab, cfg, &sums, idx, Some(&mut witnesses));
    }
    (sums, witnesses)
}

/// Format-family macros whose arguments constitute an escape. The
/// `assert!` family is deliberately absent: asserting on secret data is
/// a branching/panic concern owned by secret-branching and
/// panic-freedom, and treating every size assertion in crypto code as a
/// log escape drowns the signal.
const ESCAPE_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln", "dbg",
];

struct FnCtx<'a, 'p> {
    prog: &'p Program<'a>,
    graph: &'p CallGraph,
    vocab: &'p SecretVocab,
    cfg: &'p Config,
    sums: &'p [FlowSummary],
    idx: usize,
    taint: BTreeMap<String, Taint>,
    summary: FlowSummary,
    /// Dedup for emitted findings: (line, message).
    seen: BTreeSet<(u32, String)>,
}

impl FnCtx<'_, '_> {
    /// Call resolution for the secret analysis. Stricter than the
    /// lock/blocking tiers: a bare method call only resolves when the
    /// receiver is literally `self` (an intra-impl helper) — resolving
    /// `x.len()` to every workspace `len` poisons the whole program
    /// through one secret type's accessor. Getter laundering on tainted
    /// receivers is still caught, because the receiver identifier
    /// itself taints the span. Self-recursion never resolves.
    fn resolve_flow(&self, call: &EventKind, recv: Option<&str>) -> Vec<usize> {
        let EventKind::Call { method, .. } = call else {
            return Vec::new();
        };
        let caller_self_ty = self.prog.fns[self.idx].self_ty.as_deref();
        let candidates: Vec<usize> = if *method {
            if recv != Some("self") {
                return Vec::new();
            }
            let Some(ty) = caller_self_ty else {
                return Vec::new();
            };
            // Reuse the assoc tier by rewriting to a qualified call.
            let EventKind::Call { name, no_args, .. } = call else {
                return Vec::new();
            };
            let qualified = EventKind::Call {
                name: name.clone(),
                method: false,
                qualifier: Some(ty.to_string()),
                no_args: *no_args,
            };
            self.graph.resolve(&qualified, caller_self_ty).to_vec()
        } else {
            self.graph.resolve(call, caller_self_ty).to_vec()
        };
        candidates.into_iter().filter(|&c| c != self.idx).collect()
    }

    /// `true` when the callee's `pi`-th parameter is a v1 taint seed
    /// (secret-typed, secret `self`, or configured): the callee's own
    /// branch is v1's finding, so call sites are not re-reported.
    fn param_is_v1_secret(&self, callee: usize, pi: usize) -> bool {
        let f = &self.prog.fns[callee];
        let Some(arg) = f.sig.inputs.get(pi) else {
            return false;
        };
        let configured = self
            .cfg
            .branching_secret_params
            .iter()
            .any(|sp| sp == &format!("{}.{}", f.name, arg.name));
        if arg.name == "self" {
            return configured
                || f.self_ty
                    .as_deref()
                    .map(|t| self.vocab.types.contains(t))
                    .unwrap_or(false);
        }
        configured || self.vocab.types.iter().any(|s| ty_mentions(&arg.ty, s))
    }
}

fn analyze_fn(
    prog: &Program<'_>,
    graph: &CallGraph,
    vocab: &SecretVocab,
    cfg: &Config,
    sums: &[FlowSummary],
    idx: usize,
    mut emit: Option<&mut Vec<FlowWitness>>,
) -> FlowSummary {
    let f = &prog.fns[idx];
    let mut taint: BTreeMap<String, Taint> = BTreeMap::new();
    for (pi, arg) in f.sig.inputs.iter().enumerate() {
        let mut t = Taint {
            params: BTreeSet::from([pi]),
            secret: None,
            v1: false,
        };
        let configured = cfg
            .branching_secret_params
            .iter()
            .any(|sp| sp == &format!("{}.{}", f.name, arg.name));
        if arg.name == "self" {
            let self_secret = f
                .self_ty
                .as_deref()
                .map(|t| vocab.types.contains(t))
                .unwrap_or(false);
            if self_secret || configured {
                t.secret = Some(vec![format!(
                    "`self` is secret: impl block is for secret type `{}`",
                    f.self_ty.as_deref().unwrap_or("?")
                )]);
                t.v1 = true;
            }
        } else if let Some(s) = vocab.types.iter().find(|s| ty_mentions(&arg.ty, s)) {
            t.secret = Some(vec![format!(
                "parameter `{}: {}` of fn `{}` carries secret type `{s}`",
                arg.name, arg.ty, f.name
            )]);
            t.v1 = true;
        } else if configured {
            t.secret = Some(vec![format!(
                "parameter `{}` of fn `{}` is listed in [branching] secret_params",
                arg.name, f.name
            )]);
            t.v1 = true;
        }
        taint.insert(arg.name.clone(), t);
    }

    let mut ctx = FnCtx {
        prog,
        graph,
        vocab,
        cfg,
        sums,
        idx,
        taint,
        summary: FlowSummary::default(),
        seen: BTreeSet::new(),
    };

    let body = f.body;
    let in_fmt_impl = matches!(f.trait_.as_deref(), Some("Debug") | Some("Display"))
        || (f.name == "fmt" && f.has_self);
    let mut i = 0usize;
    let mut last_top_semi: Option<usize> = None;
    let mut brace = 0i32;
    let mut paren = 0i32;
    while i < body.len() {
        let t = &body[i];
        match t.kind {
            TokenKind::Open('{') => {
                brace += 1;
                i += 1;
            }
            TokenKind::Close('}') => {
                brace -= 1;
                i += 1;
            }
            TokenKind::Open(_) => {
                paren += 1;
                i += 1;
            }
            TokenKind::Close(_) => {
                paren -= 1;
                i += 1;
            }
            TokenKind::Punct if t.text == ";" && brace == 0 && paren == 0 => {
                last_top_semi = Some(i);
                i += 1;
            }
            TokenKind::Ident if t.text == "let" => {
                i = handle_let(&mut ctx, body, i);
            }
            TokenKind::Ident if t.text == "for" => {
                i = handle_for(&mut ctx, body, i);
            }
            TokenKind::Ident if t.text == "return" => {
                let end = span_to_semi(body, i + 1);
                let rt = span_taint(&mut ctx, body, i + 1, end, 0, emit.as_deref_mut());
                merge_ret(&mut ctx.summary, &rt);
                i += 1;
            }
            TokenKind::Ident if t.text == "if" || t.text == "while" || t.text == "match" => {
                let kw = t.text.clone();
                let line = t.line;
                let end = cond_end(body, i + 1);
                let ct = span_taint(&mut ctx, body, i + 1, end, 0, emit.as_deref_mut());
                // Representative tainted identifier for the message.
                let rep = body[i + 1..end]
                    .iter()
                    .find(|c| {
                        c.kind == TokenKind::Ident
                            && ctx
                                .taint
                                .get(&c.text)
                                .map(Taint::is_secret)
                                .unwrap_or(false)
                    })
                    .map(|c| c.text.clone());
                for pi in &ct.params {
                    ctx.summary.branches_on.entry(*pi).or_insert_with(|| {
                        format!(
                            "`{kw}` in fn `{}` at {}:{line} branches on parameter `{}`",
                            f.name,
                            f.file,
                            f.sig
                                .inputs
                                .get(*pi)
                                .map(|a| a.name.as_str())
                                .unwrap_or("?")
                        )
                    });
                }
                if let (Some(chain), Some(out)) = (&ct.secret, emit.as_deref_mut()) {
                    // Only report what v1 cannot: taint with a call or
                    // field-read step. A v1-visible ident in the same
                    // condition means v1 already flags this line.
                    let v1_dup = body[i + 1..end].iter().any(|c| {
                        c.kind == TokenKind::Ident
                            && ctx
                                .taint
                                .get(&c.text)
                                .map(|t| t.is_secret() && t.v1)
                                .unwrap_or(false)
                    });
                    if !ct.v1 && !v1_dup {
                        let what = rep
                            .map(|r| format!("`{r}`"))
                            .unwrap_or_else(|| "a call result".to_string());
                        let mut notes = chain.clone();
                        notes.push(format!(
                            "`{kw}` condition depends on {what}, which is secret-derived \
                             through a helper — make the operation unconditional or branch \
                             on public data only"
                        ));
                        push_witness(
                            &mut ctx.seen,
                            out,
                            &f.file,
                            line,
                            format!(
                                "`{kw}` on laundered secret-derived value in fn `{}`",
                                f.name
                            ),
                            notes,
                            true,
                        );
                    }
                }
                i = end;
            }
            TokenKind::Ident
                if matches!(body.get(i + 1), Some(n) if n.is_punct('!'))
                    && matches!(body.get(i + 2), Some(n) if matches!(n.kind, TokenKind::Open(_)))
                    && ESCAPE_MACROS.contains(&t.text.as_str()) =>
            {
                let close = matching_close(body, i + 2);
                let at = span_taint(&mut ctx, body, i + 3, close, 0, emit.as_deref_mut());
                let mac = t.text.clone();
                for pi in &at.params {
                    ctx.summary.escapes.entry(*pi).or_insert_with(|| {
                        format!(
                            "parameter `{}` of fn `{}` reaches `{mac}!` at {}:{}",
                            f.sig
                                .inputs
                                .get(*pi)
                                .map(|a| a.name.as_str())
                                .unwrap_or("?"),
                            f.name,
                            f.file,
                            t.line
                        )
                    });
                }
                if let (Some(chain), Some(out)) = (&at.secret, emit.as_deref_mut()) {
                    if !in_fmt_impl {
                        let mut notes = chain.clone();
                        notes.push(format!(
                            "secret-derived data must not reach `{mac}!` — log a redacted \
                             or derived-public value instead"
                        ));
                        push_witness(
                            &mut ctx.seen,
                            out,
                            &f.file,
                            t.line,
                            format!(
                                "secret-derived value escapes into `{mac}!` in fn `{}`",
                                f.name
                            ),
                            notes,
                            false,
                        );
                    }
                }
                i += 3;
            }
            TokenKind::Ident
                if matches!(body.get(i + 1), Some(n) if n.kind == TokenKind::Open('('))
                    && !is_keyword(&t.text) =>
            {
                check_call(&mut ctx, body, i, emit.as_deref_mut());
                i += 1;
            }
            _ => i += 1,
        }
    }

    // Tail expression: everything after the last top-level `;` (or the
    // whole body) feeds the return value when the fn returns something.
    if !f.sig.ret_ty.is_empty() {
        let start = last_top_semi.map(|s| s + 1).unwrap_or(0);
        if start < body.len() {
            let rt = span_taint(&mut ctx, body, start, body.len(), 0, emit);
            merge_ret(&mut ctx.summary, &rt);
        }
        if let Some(s) = vocab.types.iter().find(|s| ty_mentions(&f.sig.ret_ty, s)) {
            if ctx.summary.ret_secret.is_none() {
                ctx.summary.ret_secret =
                    Some(vec![format!("fn `{}` returns secret type `{s}`", f.name)]);
            }
        }
    }
    ctx.summary
}

fn merge_ret(summary: &mut FlowSummary, t: &Taint) {
    summary.ret_params.extend(t.params.iter().copied());
    if summary.ret_secret.is_none() {
        if let Some(chain) = &t.secret {
            summary.ret_secret = Some(chain.clone());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_witness(
    seen: &mut BTreeSet<(u32, String)>,
    out: &mut Vec<FlowWitness>,
    file: &str,
    line: u32,
    message: String,
    notes: Vec<String>,
    branching_only: bool,
) {
    if seen.insert((line, message.clone())) {
        out.push(FlowWitness {
            file: file.to_string(),
            line,
            message,
            notes,
            branching_only,
        });
    }
}

/// Evaluates injection facts at the call whose name sits at `body[i]`:
/// secret arguments flowing into parameters the callee branches on or
/// escapes, and parameter-index transitivity for the summary.
fn check_call(
    ctx: &mut FnCtx<'_, '_>,
    body: &[Token],
    i: usize,
    mut emit: Option<&mut Vec<FlowWitness>>,
) {
    let name = body[i].text.clone();
    let line = body[i].line;
    let method = i > 0 && body[i - 1].is_punct('.');
    let qualifier = if i >= 3
        && body[i - 1].is_punct(':')
        && body[i - 2].is_punct(':')
        && body[i - 3].kind == TokenKind::Ident
    {
        Some(body[i - 3].text.clone())
    } else {
        None
    };
    let no_args = matches!(body.get(i + 2), Some(n) if n.kind == TokenKind::Close(')'));
    let call = EventKind::Call {
        name: name.clone(),
        method,
        qualifier,
        no_args,
    };
    let recv = if method { receiver_of(body, i) } else { None };
    let callees = ctx.resolve_flow(&call, recv.as_deref());
    if callees.is_empty() {
        return;
    }
    let args = call_args(body, i + 1);

    for callee in callees {
        let callee_has_self = ctx.prog.fns[callee].has_self;
        let params: Vec<(usize, String)> = {
            let branches: Vec<usize> = ctx.sums[callee].branches_on.keys().copied().collect();
            let escapes: Vec<usize> = ctx.sums[callee].escapes.keys().copied().collect();
            branches
                .into_iter()
                .map(|p| (p, "branch".to_string()))
                .chain(escapes.into_iter().map(|p| (p, "escape".to_string())))
                .collect()
        };
        for (pi, what) in params {
            let at = arg_taint(
                ctx,
                body,
                &args,
                recv.as_deref(),
                callee_has_self,
                pi,
                emit.as_deref_mut(),
            );
            let Some(at) = at else { continue };
            let callee_fn = &ctx.prog.fns[callee];
            let pname = callee_fn
                .sig
                .inputs
                .get(pi)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| "?".to_string());
            let witness = if what == "branch" {
                ctx.sums[callee].branches_on.get(&pi).cloned()
            } else {
                ctx.sums[callee].escapes.get(&pi).cloned()
            }
            .unwrap_or_default();
            // Transitivity for the caller's own summary.
            for caller_p in &at.params {
                let entry = if what == "branch" {
                    ctx.summary.branches_on.entry(*caller_p)
                } else {
                    ctx.summary.escapes.entry(*caller_p)
                };
                entry.or_insert_with(|| format!("via `{}`: {witness}", callee_fn.name));
            }
            // A v1-seeded callee param means the callee's own branch is
            // already v1's (reported or reasoned-allowed) finding;
            // re-reporting every call site would only duplicate it.
            if ctx.param_is_v1_secret(callee, pi) {
                continue;
            }
            if let (Some(chain), Some(out)) = (&at.secret, emit.as_deref_mut()) {
                let f = &ctx.prog.fns[ctx.idx];
                let mut notes = chain.clone();
                notes.push(witness.clone());
                let (msg, branching_only) = if what == "branch" {
                    (
                        format!(
                            "secret-derived value passed to `{name}` (parameter `{pname}`), \
                             which branches on it"
                        ),
                        true,
                    )
                } else {
                    (
                        format!(
                            "secret-derived value passed to `{name}` (parameter `{pname}`), \
                             which formats it"
                        ),
                        false,
                    )
                };
                push_witness(
                    &mut ctx.seen,
                    out,
                    &f.file,
                    line,
                    msg,
                    notes,
                    branching_only,
                );
            }
        }
    }
}

/// Taint of the `pi`-th callee parameter at a call site (receiver for
/// param 0 of a method, else positional argument).
fn arg_taint(
    ctx: &mut FnCtx<'_, '_>,
    body: &[Token],
    args: &[(usize, usize)],
    recv: Option<&str>,
    callee_has_self: bool,
    pi: usize,
    emit: Option<&mut Vec<FlowWitness>>,
) -> Option<Taint> {
    if callee_has_self {
        if pi == 0 {
            let r = recv?;
            return ctx.taint.get(r).cloned();
        }
        let (s, e) = *args.get(pi - 1)?;
        return Some(span_taint(ctx, body, s, e, 1, emit));
    }
    let (s, e) = *args.get(pi)?;
    Some(span_taint(ctx, body, s, e, 1, emit))
}

fn receiver_of(body: &[Token], i: usize) -> Option<String> {
    if i < 2 || !body[i - 1].is_punct('.') {
        return None;
    }
    if body[i - 2].kind == TokenKind::Ident {
        Some(body[i - 2].text.clone())
    } else {
        None
    }
}

/// Union taint of a token span: tainted identifiers, secret field
/// reads, and call results via callee summaries (bounded recursion).
fn span_taint(
    ctx: &mut FnCtx<'_, '_>,
    body: &[Token],
    start: usize,
    end: usize,
    depth: usize,
    mut emit: Option<&mut Vec<FlowWitness>>,
) -> Taint {
    let mut out = Taint::default();
    let end = end.min(body.len());
    let mut j = start;
    while j < end {
        let t = &body[j];
        if t.kind == TokenKind::Ident {
            // Secret field read: `.sk` where `sk` carries secret data.
            if j > start
                && body[j - 1].is_punct('.')
                && ctx.vocab.fields.contains(&t.text)
                && !matches!(body.get(j + 1), Some(n) if n.kind == TokenKind::Open('('))
            {
                if out.secret.is_none() {
                    let mut chain = Vec::new();
                    push_note(
                        &mut chain,
                        format!(
                            "reads secret-carrying field `{}` at line {}",
                            t.text, t.line
                        ),
                    );
                    out.secret = Some(chain);
                }
                j += 1;
                continue;
            }
            // Call result via summary.
            if matches!(body.get(j + 1), Some(n) if n.kind == TokenKind::Open('('))
                && !is_keyword(&t.text)
                && depth < MAX_SPAN_DEPTH
            {
                let method = j > 0 && body[j - 1].is_punct('.');
                let qualifier = if j >= 3
                    && body[j - 1].is_punct(':')
                    && body[j - 2].is_punct(':')
                    && body[j - 3].kind == TokenKind::Ident
                {
                    Some(body[j - 3].text.clone())
                } else {
                    None
                };
                let no_args = matches!(body.get(j + 2), Some(n) if n.kind == TokenKind::Close(')'));
                let call = EventKind::Call {
                    name: t.text.clone(),
                    method,
                    qualifier,
                    no_args,
                };
                let recv = if method { receiver_of(body, j) } else { None };
                let callees = ctx.resolve_flow(&call, recv.as_deref());
                let args = call_args(body, j + 1);
                for callee in callees {
                    let (ret_secret, ret_params, callee_has_self, callee_name) = {
                        let s = &ctx.sums[callee];
                        (
                            s.ret_secret.clone(),
                            s.ret_params.clone(),
                            ctx.prog.fns[callee].has_self,
                            ctx.prog.fns[callee].name.clone(),
                        )
                    };
                    if let Some(chain) = ret_secret {
                        if out.secret.is_none() {
                            let mut c = chain;
                            push_note(
                                &mut c,
                                format!(
                                    "secret-derived value returned by `{callee_name}` \
                                     called at line {}",
                                    t.line
                                ),
                            );
                            out.secret = Some(c);
                        }
                    }
                    for pi in ret_params {
                        if let Some(at) = arg_taint(
                            ctx,
                            body,
                            &args,
                            recv.as_deref(),
                            callee_has_self,
                            pi,
                            emit.as_deref_mut(),
                        ) {
                            out.params.extend(at.params.iter().copied());
                            if let Some(chain) = &at.secret {
                                if out.secret.is_none() {
                                    let mut c = chain.clone();
                                    push_note(
                                        &mut c,
                                        format!(
                                            "flows through `{callee_name}` (param→return) \
                                             at line {}",
                                            t.line
                                        ),
                                    );
                                    out.secret = Some(c);
                                }
                            }
                        }
                    }
                }
                // Fall through: argument identifiers still merge below
                // (v1-compatible direct propagation).
            }
            if let Some(t2) = ctx.taint.get(&t.text) {
                out.merge(t2);
            }
        }
        j += 1;
    }
    out
}

/// `let` handling: taints pattern names from the initializer span.
/// Returns the resume index (inside the initializer, like v1).
fn handle_let(ctx: &mut FnCtx<'_, '_>, body: &[Token], start: usize) -> usize {
    let mut i = start + 1;
    let mut pattern: Vec<String> = Vec::new();
    let mut depth = 0i32;
    let mut in_ty = false;
    while i < body.len() {
        let t = &body[i];
        match t.kind {
            TokenKind::Punct if t.text == "=" && depth == 0 => break,
            TokenKind::Punct if t.text == ";" && depth == 0 => return i + 1,
            TokenKind::Punct if t.text == ":" && depth == 0 => in_ty = true,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            TokenKind::Ident if !in_ty && t.text != "mut" && t.text != "ref" => {
                let ctor = matches!(body.get(i + 1), Some(n) if n.kind == TokenKind::Open('('));
                if !ctor {
                    pattern.push(t.text.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    if i >= body.len() {
        return i;
    }
    let init_start = i + 1;
    let end = span_to_semi(body, init_start);
    let t = span_taint(ctx, body, init_start, end, 0, None);
    if t.is_secret() || !t.params.is_empty() {
        for name in &pattern {
            let mut bound = t.clone();
            if let Some(chain) = &mut bound.secret {
                push_note(
                    chain,
                    format!(
                        "`{name}` bound from secret-derived value at line {}",
                        body[start].line
                    ),
                );
            }
            // Merge rather than overwrite so re-bindings accumulate.
            ctx.taint.entry(name.clone()).or_default().merge(&bound);
            if bound.secret.is_some() {
                let e = ctx.taint.get_mut(name.as_str()).unwrap();
                e.v1 = bound.v1;
                if e.secret.is_none() {
                    e.secret = bound.secret;
                }
            }
        }
    }
    init_start
}

/// `for pat in iterable { … }` — taints pattern names from the iterable.
fn handle_for(ctx: &mut FnCtx<'_, '_>, body: &[Token], start: usize) -> usize {
    let mut i = start + 1;
    let mut pattern: Vec<String> = Vec::new();
    let mut depth = 0i32;
    while i < body.len() {
        let t = &body[i];
        match t.kind {
            TokenKind::Ident if t.text == "in" && depth == 0 => break,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            TokenKind::Ident if t.text != "mut" && t.text != "ref" => {
                let ctor = matches!(body.get(i + 1), Some(n) if n.kind == TokenKind::Open('('));
                if !ctor {
                    pattern.push(t.text.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    if i >= body.len() {
        return i;
    }
    let iter_start = i + 1;
    let end = cond_end(body, iter_start);
    let t = span_taint(ctx, body, iter_start, end, 0, None);
    if t.is_secret() || !t.params.is_empty() {
        for name in &pattern {
            let mut bound = t.clone();
            if let Some(chain) = &mut bound.secret {
                push_note(
                    chain,
                    format!(
                        "`{name}` iterates over secret-derived data at line {}",
                        body[start].line
                    ),
                );
            }
            ctx.taint.entry(name.clone()).or_default().merge(&bound);
        }
    }
    iter_start
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "in"
            | "as"
            | "ref"
            | "mut"
            | "move"
            | "fn"
            | "unsafe"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "Box"
            | "Vec"
    )
}

/// Index of the `;` ending the statement starting at `start` (depth 0),
/// or the end of the body.
fn span_to_semi(body: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < body.len() {
        let t = &body[j];
        match t.kind {
            TokenKind::Punct if t.text == ";" && depth == 0 => return j,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index of the first `{` at depth 0 after `start` (a branch condition
/// or `for` iterable end).
fn cond_end(body: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < body.len() {
        let t = &body[j];
        match t.kind {
            TokenKind::Open('{') if depth == 0 => return j,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Token ranges of the top-level comma-separated arguments inside the
/// group opened at `open_idx`.
fn call_args(body: &[Token], open_idx: usize) -> Vec<(usize, usize)> {
    let close = matching_close(body, open_idx);
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut seg = open_idx + 1;
    let mut j = open_idx + 1;
    while j < close {
        let t = &body[j];
        match t.kind {
            TokenKind::Punct if t.text == "," && depth == 0 => {
                out.push((seg, j));
                seg = j + 1;
            }
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    if seg < close {
        out.push((seg, close));
    }
    out
}

/// Index of the closer matching the opener at `open_idx`.
fn matching_close(body: &[Token], open_idx: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while j < body.len() {
        match body[j].kind {
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    body.len()
}
