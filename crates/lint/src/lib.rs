//! `pisa-lint`: secret-hygiene and panic-freedom static analysis for
//! the PISA workspace.
//!
//! PISA's security argument (PAPER.md §IV–V) requires that the SDC and
//! STP never observe PU reception data, SU locations, or decisions.
//! That argument quietly assumes three code-level invariants that the
//! type system does not enforce: key material is never printed or
//! serialized, adversarial frames cannot turn library panics into an
//! oracle, and constant-time-sensitive arithmetic does not branch on
//! secrets. This crate machine-checks all three (plus some workspace
//! conventions) on every run; see [`rules`] for the four families.
//!
//! The tool parses the workspace with the vendored `syn` shim
//! (`shims/syn`), so it needs no network and no rustc internals.

#![forbid(unsafe_code)]

pub mod allow;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod findings;
pub mod ir;
pub mod rules;
pub mod scan;

use std::path::Path;

pub use config::{parse_config, serialize_config, Config};
pub use findings::{Finding, Level, Report, RULES};

/// Per-rule severity overrides from the CLI.
#[derive(Debug, Clone, Default)]
pub struct LevelOverrides {
    /// Rules forced to deny (`"all"` matches every rule).
    pub deny: Vec<String>,
    /// Rules downgraded to warn (`"all"` matches every rule).
    pub warn: Vec<String>,
}

impl LevelOverrides {
    fn level_for(&self, rule: &str) -> Level {
        // Default is deny (this is a gate); --warn downgrades, --deny
        // re-upgrades (so `--warn all --deny secret-hygiene` works).
        let mut level = Level::Deny;
        if self.warn.iter().any(|r| r == rule || r == "all") {
            level = Level::Warn;
        }
        if self.deny.iter().any(|r| r == rule || r == "all") {
            level = Level::Deny;
        }
        level
    }
}

/// Runs all rule families over the workspace rooted at `root` and
/// returns the report (allowlists already applied).
pub fn run_lint(root: &Path, cfg: &Config, levels: &LevelOverrides) -> Report {
    let ws = scan::scan_workspace(root);
    let mut findings: Vec<Finding> = Vec::new();

    // v1 item-level families.
    rules::secret::run(&ws, cfg, &mut findings);
    rules::panics::run(&ws, cfg, &mut findings);
    rules::branching::run(&ws, cfg, &mut findings);
    rules::conventions::run(&ws, cfg, &mut findings);

    // v2 interprocedural families, sharing one lowered program and
    // call graph.
    let prog = ir::build(&ws);
    let graph = callgraph::CallGraph::build(&prog);
    let conc = dataflow::conc_summaries(&prog, &graph);
    rules::locks::run(&prog, &graph, &conc, cfg, &mut findings);
    rules::blocking::run(&prog, &graph, &conc, cfg, &mut findings);
    let vocab = dataflow::secret_vocab(&ws, cfg);
    let (_sums, witnesses) = dataflow::flow_analysis(&prog, &graph, &vocab, cfg);
    rules::flow::run(&witnesses, cfg, &mut findings);

    let usage = allow::apply_allows(&ws, cfg, &mut findings);
    allow::dead_allow_findings(&ws, cfg, &usage, &mut findings);

    for f in &mut findings {
        f.level = levels.level_for(f.rule);
    }
    // Deterministic order: (file, line, rule) primary, message as the
    // tiebreaker so text and JSON reports are byte-stable across runs.
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });

    let mut parse_failures = ws.failures;
    parse_failures.sort();

    Report {
        findings,
        files_scanned: ws.files.len(),
        parse_failures,
    }
}
