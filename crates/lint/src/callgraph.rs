//! Name-based call resolution over the lowered workspace.
//!
//! The token-level parser has no type information, so calls resolve by
//! name with three precision tiers:
//!
//! * `Qual::name(…)` — resolved inside `Qual`'s impl blocks when
//!   `Qual` is a workspace type (or `Self`, using the caller's impl
//!   type); a qualifier that names no workspace type falls back to
//!   module-path resolution (free fns named `name`), and an unknown
//!   qualifier (`Vec`, `std`, …) makes the call *external* — no
//!   workspace summary is charged to it;
//! * `recv.name(…)` — resolved to **every** workspace method named
//!   `name` (conservative over-approximation, see DESIGN.md §13);
//! * `name(…)` — resolved to free fns named `name`.

use std::collections::{BTreeMap, BTreeSet};

use crate::ir::{EventKind, Program};

pub struct CallGraph {
    /// Impl-block fns by (self type, name).
    assoc: BTreeMap<(String, String), Vec<usize>>,
    /// Fns with a `self` receiver, by name.
    methods: BTreeMap<String, Vec<usize>>,
    /// Free fns by name.
    free: BTreeMap<String, Vec<usize>>,
    /// Workspace type names with impl blocks (qualifier disambiguation).
    types: BTreeSet<String>,
}

impl CallGraph {
    pub fn build(prog: &Program<'_>) -> Self {
        let mut g = CallGraph {
            assoc: BTreeMap::new(),
            methods: BTreeMap::new(),
            free: BTreeMap::new(),
            types: BTreeSet::new(),
        };
        for (idx, f) in prog.fns.iter().enumerate() {
            match &f.self_ty {
                Some(ty) => {
                    g.types.insert(ty.clone());
                    g.assoc
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(idx);
                    if f.has_self {
                        g.methods.entry(f.name.clone()).or_default().push(idx);
                    }
                }
                None => {
                    g.free.entry(f.name.clone()).or_default().push(idx);
                }
            }
        }
        g
    }

    /// Candidate workspace callees for a call event made from a fn whose
    /// impl type is `caller_self_ty`. Empty means external.
    pub fn resolve(&self, call: &EventKind, caller_self_ty: Option<&str>) -> &[usize] {
        const NONE: &[usize] = &[];
        let EventKind::Call {
            name,
            method,
            qualifier,
            ..
        } = call
        else {
            return NONE;
        };
        if let Some(q) = qualifier {
            let q = if q == "Self" {
                match caller_self_ty {
                    Some(ty) => ty,
                    None => return NONE,
                }
            } else {
                q.as_str()
            };
            if let Some(v) = self.assoc.get(&(q.to_string(), name.clone())) {
                return v;
            }
            if self.types.contains(q) {
                // Known workspace type but no such assoc fn: external
                // (e.g. a derived or std trait method).
                return NONE;
            }
            // Module-path call like `frame::write_frame(…)`.
            return self.free.get(name).map(Vec::as_slice).unwrap_or(NONE);
        }
        if *method {
            return self.methods.get(name).map(Vec::as_slice).unwrap_or(NONE);
        }
        self.free.get(name).map(Vec::as_slice).unwrap_or(NONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir;
    use crate::scan::scan_workspace;

    #[test]
    fn resolves_by_tier() {
        let dir = std::env::temp_dir().join(format!("pisa-lint-cg-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(
            dir.join("src/lib.rs"),
            "pub struct Node;\n\
             impl Node {\n\
                 pub fn new() -> Node { Node }\n\
                 pub fn send(&self) { helper(); }\n\
             }\n\
             fn helper() {}\n\
             fn caller(n: &Node) { n.send(); Node::new(); helper(); Vec::new(); }\n",
        )
        .unwrap();
        let ws = scan_workspace(&dir);
        let prog = ir::build(&ws);
        let g = CallGraph::build(&prog);
        let caller = prog.fns.iter().find(|f| f.name == "caller").unwrap();
        let mut resolved: Vec<(String, usize)> = Vec::new();
        for ev in &caller.events {
            if let EventKind::Call { name, .. } = &ev.kind {
                resolved.push((name.clone(), g.resolve(&ev.kind, None).len()));
            }
        }
        // n.send() → Node::send; Node::new() → Node::new (not Vec::new);
        // helper() → free helper; Vec::new() → external.
        assert_eq!(
            resolved,
            vec![
                ("send".to_string(), 1),
                ("new".to_string(), 1),
                ("helper".to_string(), 1),
                ("new".to_string(), 0),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
