//! `lint.toml` parsing and serialization.
//!
//! The build environment is offline, so this is a hand-rolled parser for
//! the small TOML subset the lint configuration needs: `[section]`
//! tables, `[[allow]]` array-of-tables, string values, and (possibly
//! multi-line) arrays of strings. Unknown keys are rejected so typos in
//! the config fail loudly instead of silently disabling a rule.

use std::fmt::Write as _;

/// One file-level suppression from the `[[allow]]` array. A non-empty
/// `reason` is mandatory — unexplained allowlist entries defeat the
/// point of the gate.
#[derive(Debug, Clone, Eq)]
pub struct AllowEntry {
    /// Rule name the entry suppresses, or `"all"`.
    pub rule: String,
    /// Workspace-relative path prefix the entry applies to.
    pub file: String,
    /// Human explanation (mandatory).
    pub reason: String,
    /// 1-based line of the `[[allow]]` header in `lint.toml` (0 for
    /// programmatically-built configs; excluded from equality so the
    /// serialize round-trip stays exact).
    pub line: u32,
}

impl PartialEq for AllowEntry {
    fn eq(&self, other: &Self) -> bool {
        self.rule == other.rule && self.file == other.file && self.reason == other.reason
    }
}

/// Parsed lint configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Type names treated as secret even without a `pisa_secret` marker.
    pub secret_types: Vec<String>,
    /// Secret types exempt from the zeroize-on-drop requirement (e.g.
    /// `Copy` enums that cannot implement `Drop`).
    pub zeroize_exempt: Vec<String>,
    /// Path prefixes where the panic-freedom rule applies.
    pub panic_paths: Vec<String>,
    /// Path prefixes where the secret-branching rule applies.
    pub branching_paths: Vec<String>,
    /// Path prefixes where the lock-discipline and blocking-call rules
    /// apply (the threaded engine surface).
    pub locks_paths: Vec<String>,
    /// Extra taint seeds as `"fn_name.param_name"` pairs.
    pub branching_secret_params: Vec<String>,
    /// Crate path prefixes allowed to use `#![deny(unsafe_code)]` plus
    /// scoped `#[allow(unsafe_code)]` instead of a blanket forbid.
    pub unsafe_exempt: Vec<String>,
    /// Crate path prefixes where `println!`-family output is expected.
    pub print_exempt: Vec<String>,
    /// File-level suppressions.
    pub allows: Vec<AllowEntry>,
}

/// Parses the TOML subset described in the module docs.
pub fn parse_config(src: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = String::new();

    // Pre-pass: join multi-line arrays into single logical lines.
    let lines = join_multiline_arrays(src)?;

    for (lineno, line) in lines {
        let line = strip_comment(&line);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {lineno}: malformed table header"))?
                .trim();
            if name != "allow" {
                return Err(format!("line {lineno}: unknown array-of-tables [[{name}]]"));
            }
            cfg.allows.push(AllowEntry {
                rule: String::new(),
                file: String::new(),
                reason: String::new(),
                line: lineno as u32,
            });
            section = "allow".to_string();
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: malformed section header"))?
                .trim();
            section = name.to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        let value = value.trim();
        match (section.as_str(), key) {
            ("secret", "types") => cfg.secret_types = parse_array(value, lineno)?,
            ("secret", "zeroize_exempt") => cfg.zeroize_exempt = parse_array(value, lineno)?,
            ("panic", "paths") => cfg.panic_paths = parse_array(value, lineno)?,
            ("branching", "paths") => cfg.branching_paths = parse_array(value, lineno)?,
            ("branching", "secret_params") => {
                cfg.branching_secret_params = parse_array(value, lineno)?
            }
            ("locks", "paths") => cfg.locks_paths = parse_array(value, lineno)?,
            ("conventions", "unsafe_exempt") => cfg.unsafe_exempt = parse_array(value, lineno)?,
            ("conventions", "print_exempt") => cfg.print_exempt = parse_array(value, lineno)?,
            ("allow", "rule") => last_allow(&mut cfg, lineno)?.rule = parse_string(value, lineno)?,
            ("allow", "file") => last_allow(&mut cfg, lineno)?.file = parse_string(value, lineno)?,
            ("allow", "reason") => {
                last_allow(&mut cfg, lineno)?.reason = parse_string(value, lineno)?
            }
            (s, k) => return Err(format!("line {lineno}: unknown key `{k}` in section [{s}]")),
        }
    }

    for (i, a) in cfg.allows.iter().enumerate() {
        if a.rule.is_empty() || a.file.is_empty() {
            return Err(format!("[[allow]] entry #{} missing rule or file", i + 1));
        }
        if a.reason.trim().is_empty() {
            return Err(format!(
                "[[allow]] entry for {} ({}) has no reason — a reason is mandatory",
                a.file, a.rule
            ));
        }
    }
    Ok(cfg)
}

/// Serializes a [`Config`] back to TOML. `parse_config(&serialize(&c))`
/// reproduces `c` exactly (the round-trip test relies on this).
pub fn serialize_config(cfg: &Config) -> String {
    let mut out = String::new();
    let arr = |items: &[String]| {
        let quoted: Vec<String> = items.iter().map(|s| format!("\"{s}\"")).collect();
        format!("[{}]", quoted.join(", "))
    };
    let _ = writeln!(out, "[secret]");
    let _ = writeln!(out, "types = {}", arr(&cfg.secret_types));
    let _ = writeln!(out, "zeroize_exempt = {}", arr(&cfg.zeroize_exempt));
    let _ = writeln!(out, "\n[panic]");
    let _ = writeln!(out, "paths = {}", arr(&cfg.panic_paths));
    let _ = writeln!(out, "\n[branching]");
    let _ = writeln!(out, "paths = {}", arr(&cfg.branching_paths));
    let _ = writeln!(out, "secret_params = {}", arr(&cfg.branching_secret_params));
    let _ = writeln!(out, "\n[locks]");
    let _ = writeln!(out, "paths = {}", arr(&cfg.locks_paths));
    let _ = writeln!(out, "\n[conventions]");
    let _ = writeln!(out, "unsafe_exempt = {}", arr(&cfg.unsafe_exempt));
    let _ = writeln!(out, "print_exempt = {}", arr(&cfg.print_exempt));
    for a in &cfg.allows {
        let _ = writeln!(out, "\n[[allow]]");
        let _ = writeln!(out, "rule = \"{}\"", a.rule);
        let _ = writeln!(out, "file = \"{}\"", a.file);
        let _ = writeln!(out, "reason = \"{}\"", a.reason);
    }
    out
}

fn last_allow(cfg: &mut Config, lineno: usize) -> Result<&mut AllowEntry, String> {
    cfg.allows
        .last_mut()
        .ok_or_else(|| format!("line {lineno}: key outside any [[allow]] table"))
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_str = false;
    let mut prev = '\0';
    for c in line.chars() {
        if c == '"' && prev != '\\' {
            in_str = !in_str;
        }
        if c == '#' && !in_str {
            break;
        }
        out.push(c);
        prev = c;
    }
    out
}

/// Joins lines so every logical line has balanced `[` / `]` outside of
/// strings. Returns (first-physical-line-number, joined-text) pairs.
fn join_multiline_arrays(src: &str) -> Result<Vec<(usize, String)>, String> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut buf = String::new();
    let mut start = 0usize;
    let mut depth = 0i32;
    for (i, raw) in src.lines().enumerate() {
        let line = strip_comment(raw);
        if buf.is_empty() {
            start = i + 1;
        } else {
            buf.push(' ');
        }
        buf.push_str(line.trim());
        let mut in_str = false;
        let mut prev = '\0';
        for c in line.chars() {
            match c {
                '"' if prev != '\\' => in_str = !in_str,
                '[' if !in_str => depth += 1,
                ']' if !in_str => depth -= 1,
                _ => {}
            }
            prev = c;
        }
        // Section headers like [secret] balance within the line, so only
        // value arrays can leave depth positive here.
        if depth <= 0 {
            if !buf.trim().is_empty() {
                out.push((start, std::mem::take(&mut buf)));
            } else {
                buf.clear();
            }
            depth = 0;
        }
    }
    if depth > 0 {
        return Err(format!("line {start}: unterminated array"));
    }
    if !buf.trim().is_empty() {
        out.push((start, buf));
    }
    Ok(out)
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|s| s.to_string())
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string, got `{v}`"))
}

fn parse_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected an array, got `{v}`"))?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

/// Splits on commas outside of strings.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut prev = '\0';
    for c in s.chars() {
        match c {
            '"' if prev != '\\' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
        prev = c;
    }
    parts.push(cur);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# secret-hygiene configuration
[secret]
types = ["PaillierSecretKey", "RsaKeyPair"]
zeroize_exempt = ["SignFlip"]

[panic]
paths = [
    "crates/core/src/wire.rs",   # frame decode
    "crates/crypto/src",
]

[branching]
paths = ["crates/crypto/src"]
secret_params = ["pow.exp"]

[locks]
paths = ["crates/net/src"]

[conventions]
unsafe_exempt = ["crates/bigint"]
print_exempt = ["crates/cli"]

[[allow]]
rule = "panic-freedom"
file = "crates/core/src/protocol.rs"
reason = "reference path kept panicking by design"
"#;

    #[test]
    fn parses_sample() {
        let cfg = parse_config(SAMPLE).unwrap();
        assert_eq!(cfg.secret_types.len(), 2);
        assert_eq!(cfg.panic_paths.len(), 2);
        assert_eq!(cfg.panic_paths[1], "crates/crypto/src");
        assert_eq!(cfg.locks_paths, vec!["crates/net/src"]);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].rule, "panic-freedom");
        assert!(cfg.allows[0].line > 0);
    }

    #[test]
    fn reason_is_mandatory() {
        let bad = "[[allow]]\nrule = \"x\"\nfile = \"y\"\n";
        let err = parse_config(bad).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_key_rejected() {
        let bad = "[secret]\ntypos = [\"x\"]\n";
        assert!(parse_config(bad).is_err());
    }

    #[test]
    fn round_trip() {
        let cfg = parse_config(SAMPLE).unwrap();
        let re = parse_config(&serialize_config(&cfg)).unwrap();
        assert_eq!(cfg, re);
    }
}
