//! Workspace discovery and the parsed-source model rules operate on.

use std::fs;
use std::path::{Path, PathBuf};

use syn::{Attribute, File, Item, ItemFn};

/// One parsed source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes).
    pub rel_path: String,
    /// Crate path prefix, e.g. `crates/core` (empty in single-crate mode).
    pub crate_path: String,
    /// `true` for the crate root (`src/lib.rs` or `src/main.rs`).
    pub is_crate_root: bool,
    /// Raw source text (used for inline allow-comment scanning).
    pub source: String,
    /// Parsed item-level view.
    pub ast: File,
}

/// The scanned workspace: all parsed files plus the crate list.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// Crate path prefixes found (e.g. `crates/core`).
    pub crates: Vec<String>,
    /// Files that failed to read or parse.
    pub failures: Vec<(String, String)>,
}

/// Scans `root`. Two layouts are understood:
///
/// * a workspace root containing `crates/*/src/**.rs` (the real repo),
/// * a single crate containing `src/**.rs` (fixture mini-crates).
pub fn scan_workspace(root: &Path) -> Workspace {
    let mut ws = Workspace {
        files: Vec::new(),
        crates: Vec::new(),
        failures: Vec::new(),
    };
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.is_dir())
                    .collect()
            })
            .unwrap_or_default();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let crate_path = format!("crates/{name}");
            ws.crates.push(crate_path.clone());
            scan_crate(&dir, root, &crate_path, &mut ws);
        }
    } else if root.join("src").is_dir() {
        ws.crates.push(String::new());
        scan_crate(root, root, "", &mut ws);
    }
    ws.files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    ws
}

fn scan_crate(dir: &Path, root: &Path, crate_path: &str, ws: &mut Workspace) {
    let src = dir.join("src");
    if !src.is_dir() {
        return;
    }
    let mut rs_files = Vec::new();
    collect_rs(&src, &mut rs_files);
    rs_files.sort();
    for path in rs_files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                ws.failures.push((rel, e.to_string()));
                continue;
            }
        };
        match syn::parse_file(&source) {
            Ok(ast) => {
                let is_crate_root = rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs");
                ws.files.push(SourceFile {
                    rel_path: rel,
                    crate_path: crate_path.to_string(),
                    is_crate_root,
                    source,
                    ast,
                });
            }
            Err(e) => ws.failures.push((rel, e.to_string())),
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
}

/// `true` if any of `attrs` puts the item in test-only code
/// (`#[cfg(test)]`, `#[test]`).
pub fn is_test_scope(attrs: &[Attribute]) -> bool {
    attrs.iter().any(|a| {
        a.path == "test"
            || (a.path == "cfg" && a.tokens.iter().any(|t| t == "test"))
            || (a.path == "cfg_attr" && a.tokens.iter().any(|t| t == "test"))
    })
}

/// A function together with the impl context it appeared in.
pub struct FnInContext<'a> {
    pub func: &'a ItemFn,
    /// `Some(self_ty)` when the fn lives in an impl block.
    pub self_ty: Option<&'a str>,
    /// Trait being implemented, if any (`Debug`, `Drop`, …).
    pub trait_: Option<&'a str>,
}

/// Visits every non-test function in `file` (free fns and impl fns,
/// recursing into non-test inline modules).
pub fn for_each_fn<'a>(file: &'a File, visit: &mut dyn FnMut(FnInContext<'a>)) {
    for_each_fn_in(&file.items, visit);
}

fn for_each_fn_in<'a>(items: &'a [Item], visit: &mut dyn FnMut(FnInContext<'a>)) {
    for item in items {
        match item {
            Item::Fn(f) if !is_test_scope(&f.attrs) => {
                visit(FnInContext {
                    func: f,
                    self_ty: None,
                    trait_: None,
                });
            }
            Item::Impl(i) => {
                if is_test_scope(&i.attrs) {
                    continue;
                }
                for f in &i.fns {
                    if !is_test_scope(&f.attrs) {
                        visit(FnInContext {
                            func: f,
                            self_ty: Some(&i.self_ty),
                            trait_: i.trait_.as_deref(),
                        });
                    }
                }
            }
            Item::Mod(m) if !is_test_scope(&m.attrs) => {
                for_each_fn_in(&m.items, visit);
            }
            _ => {}
        }
    }
}

/// Visits every struct and enum (including ones inside non-test inline
/// modules; test-only types are skipped).
pub enum TypeDef<'a> {
    Struct(&'a syn::ItemStruct),
    Enum(&'a syn::ItemEnum),
}

impl<'a> TypeDef<'a> {
    pub fn ident(&self) -> &'a str {
        match self {
            TypeDef::Struct(s) => &s.ident,
            TypeDef::Enum(e) => &e.ident,
        }
    }

    pub fn attrs(&self) -> &'a [Attribute] {
        match self {
            TypeDef::Struct(s) => &s.attrs,
            TypeDef::Enum(e) => &e.attrs,
        }
    }

    pub fn fields(&self) -> &'a [syn::Field] {
        match self {
            TypeDef::Struct(s) => &s.fields,
            TypeDef::Enum(e) => &e.fields,
        }
    }

    pub fn line(&self) -> u32 {
        match self {
            TypeDef::Struct(s) => s.line,
            TypeDef::Enum(e) => e.line,
        }
    }
}

pub fn for_each_type<'a>(file: &'a File, visit: &mut dyn FnMut(TypeDef<'a>)) {
    for_each_type_in(&file.items, visit);
}

fn for_each_type_in<'a>(items: &'a [Item], visit: &mut dyn FnMut(TypeDef<'a>)) {
    for item in items {
        match item {
            Item::Struct(s) if !is_test_scope(&s.attrs) => {
                visit(TypeDef::Struct(s));
            }
            Item::Enum(e) if !is_test_scope(&e.attrs) => {
                visit(TypeDef::Enum(e));
            }
            Item::Mod(m) if !is_test_scope(&m.attrs) => {
                for_each_type_in(&m.items, visit);
            }
            _ => {}
        }
    }
}

/// Visits every impl block outside test scope.
pub fn for_each_impl<'a>(file: &'a File, visit: &mut dyn FnMut(&'a syn::ItemImpl)) {
    for_each_impl_in(&file.items, visit);
}

fn for_each_impl_in<'a>(items: &'a [Item], visit: &mut dyn FnMut(&'a syn::ItemImpl)) {
    for item in items {
        match item {
            Item::Impl(i) if !is_test_scope(&i.attrs) => {
                visit(i);
            }
            Item::Mod(m) if !is_test_scope(&m.attrs) => {
                for_each_impl_in(&m.items, visit);
            }
            _ => {}
        }
    }
}

/// `true` if `ty_text` mentions `name` as a whole word (so `Ubig`
/// matches `Vec<Ubig>` but not `UbigLike`).
pub fn ty_mentions(ty_text: &str, name: &str) -> bool {
    let bytes = ty_text.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = ty_text[start..].find(name) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let after = at + name.len();
        let after_ok = after >= bytes.len() || {
            let c = bytes[after] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_mentions_word_boundaries() {
        assert!(ty_mentions("Vec<Ubig>", "Ubig"));
        assert!(ty_mentions("&Ubig", "Ubig"));
        assert!(ty_mentions("Option<CrtParams>", "CrtParams"));
        assert!(!ty_mentions("UbigLike", "Ubig"));
        assert!(!ty_mentions("MyUbig", "Ubig"));
    }

    #[test]
    fn fn_visitor_skips_tests() {
        let src = r#"
            fn keep() {}
            #[test]
            fn dropped() {}
            #[cfg(test)]
            mod tests { fn also_dropped() {} }
            impl Foo { fn method(&self) {} }
        "#;
        let ast = syn::parse_file(src).unwrap();
        let mut names = Vec::new();
        for_each_fn(&ast, &mut |ctx| names.push(ctx.func.sig.ident.clone()));
        assert_eq!(names, vec!["keep", "method"]);
    }
}
