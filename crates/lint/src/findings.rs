//! Finding and report types, with rustc-style text rendering and a
//! hand-rolled JSON emitter (the workspace has no serde_json).

use std::fmt::Write as _;

/// All rule families, in the order they run.
pub const RULES: [&str; 8] = [
    "secret-hygiene",
    "panic-freedom",
    "secret-branching",
    "conventions",
    "lock-discipline",
    "blocking-call",
    "secret-flow",
    "dead-allow",
];

/// Severity a finding is reported at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Reported but does not fail the run.
    Warn,
    /// Fails the run (non-zero exit).
    Deny,
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule family name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Main message.
    pub message: String,
    /// Supporting notes (e.g. the taint chain), printed as `note:` lines.
    pub notes: Vec<String>,
    /// Severity after applying CLI overrides.
    pub level: Level,
    /// If suppressed by an allowlist entry, the recorded reason.
    pub allowed: Option<String>,
}

/// The result of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Files that failed to parse (path, error) — reported as warnings.
    pub parse_failures: Vec<(String, String)>,
}

impl Report {
    /// Active (non-suppressed) findings at deny level.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.allowed.is_none() && f.level == Level::Deny)
            .count()
    }

    /// Active (non-suppressed) findings at warn level.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.allowed.is_none() && f.level == Level::Warn)
            .count()
    }

    /// Number of findings suppressed by allowlists.
    pub fn allowed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.allowed.is_some()).count()
    }

    /// Renders rustc-style diagnostics followed by a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.allowed.is_some() {
                continue;
            }
            let head = match f.level {
                Level::Deny => "error",
                Level::Warn => "warning",
            };
            let _ = writeln!(out, "{head}[{}]: {}", f.rule, f.message);
            let _ = writeln!(out, "  --> {}:{}", f.file, f.line);
            for n in &f.notes {
                let _ = writeln!(out, "  note: {n}");
            }
        }
        for (file, err) in &self.parse_failures {
            let _ = writeln!(out, "warning[parse]: could not parse {file}: {err}");
        }
        let _ = writeln!(
            out,
            "pisa-lint: {} file(s) scanned, {} error(s), {} warning(s), {} allowed",
            self.files_scanned,
            self.deny_count(),
            self.warn_count(),
            self.allowed_count(),
        );
        out
    }

    /// Renders the full report (including suppressed findings) as JSON.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"files_scanned\": ");
        let _ = write!(out, "{}", self.files_scanned);
        let _ = write!(
            out,
            ",\n  \"errors\": {},\n  \"warnings\": {},\n  \"allowed\": {},\n  \"findings\": [",
            self.deny_count(),
            self.warn_count(),
            self.allowed_count()
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"rule\": {}", json_str(f.rule));
            let _ = write!(out, ", \"file\": {}", json_str(&f.file));
            let _ = write!(out, ", \"line\": {}", f.line);
            let _ = write!(
                out,
                ", \"level\": {}",
                json_str(match f.level {
                    Level::Deny => "deny",
                    Level::Warn => "warn",
                })
            );
            let _ = write!(out, ", \"message\": {}", json_str(&f.message));
            out.push_str(", \"notes\": [");
            for (j, n) in f.notes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(n));
            }
            out.push(']');
            match &f.allowed {
                Some(reason) => {
                    let _ = write!(out, ", \"allowed\": {}", json_str(reason));
                }
                None => out.push_str(", \"allowed\": null"),
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: "panic-freedom",
                    file: "crates/core/src/wire.rs".into(),
                    line: 10,
                    message: "`.unwrap()` in message-handling path".into(),
                    notes: vec!["convert to a ProtocolError variant".into()],
                    level: Level::Deny,
                    allowed: None,
                },
                Finding {
                    rule: "conventions",
                    file: "crates/cli/src/main.rs".into(),
                    line: 1,
                    message: "missing #![forbid(unsafe_code)]".into(),
                    notes: vec![],
                    level: Level::Deny,
                    allowed: Some("legacy \"quoted\" reason".into()),
                },
            ],
            files_scanned: 2,
            parse_failures: vec![],
        }
    }

    #[test]
    fn text_hides_allowed_and_counts() {
        let r = sample();
        let text = r.render_text();
        assert!(text.contains("error[panic-freedom]"));
        assert!(!text.contains("conventions"));
        assert!(text.contains("1 error(s), 0 warning(s), 1 allowed"));
    }

    #[test]
    fn json_includes_allowed_and_escapes() {
        let r = sample();
        let json = r.render_json();
        assert!(json.contains("\"rule\": \"conventions\""));
        assert!(json.contains("legacy \\\"quoted\\\" reason"));
        assert!(json.contains("\"allowed\": null"));
    }
}
