//! Rule family 4: workspace conventions.
//!
//! * Every crate root must carry `#![forbid(unsafe_code)]`. Crates in
//!   `[conventions] unsafe_exempt` (the bigint crate, whose zeroize
//!   module needs `volatile` writes) may use `#![deny(unsafe_code)]`
//!   with scoped allows instead — but must still carry one of the two.
//! * `dbg!` never ships: it prints whatever it is handed (including
//!   tainted values) to stderr and is a debugging leftover by
//!   definition.
//! * `println!`-family output is confined to the crates listed in
//!   `[conventions] print_exempt` (the CLI and bench harness); library
//!   crates that handle key material must not print at all, which is
//!   the cheap structural way to guarantee they never print a secret.

use crate::config::Config;
use crate::findings::{Finding, Level};
use crate::scan::{for_each_fn, Workspace};
use syn::TokenKind;

const RULE: &str = "conventions";

const PRINT_MACROS: [&str; 4] = ["println", "print", "eprintln", "eprint"];

pub fn run(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    // Check crate roots for the unsafe-code lint attribute.
    for file in &ws.files {
        if !file.is_crate_root {
            continue;
        }
        let exempt = cfg
            .unsafe_exempt
            .iter()
            .any(|c| file.crate_path == *c || file.rel_path.starts_with(c.as_str()));
        let has = |lint_level: &str| {
            file.ast
                .attrs
                .iter()
                .any(|a| a.path == lint_level && a.tokens.iter().any(|t| t == "unsafe_code"))
        };
        let forbids = has("forbid");
        let denies = has("deny");
        if exempt {
            if !forbids && !denies {
                out.push(finding(
                    &file.rel_path,
                    1,
                    "crate root has neither #![forbid(unsafe_code)] nor \
                     #![deny(unsafe_code)]"
                        .to_string(),
                    vec![
                        "this crate is unsafe_exempt, which only relaxes `forbid` to \
                         `deny` + scoped allows"
                            .to_string(),
                    ],
                ));
            }
        } else if !forbids {
            out.push(finding(
                &file.rel_path,
                1,
                "crate root is missing #![forbid(unsafe_code)]".to_string(),
                vec![
                    "every non-bigint crate forbids unsafe code; add the attribute or \
                     add the crate to [conventions] unsafe_exempt with a reason"
                        .to_string(),
                ],
            ));
        }
    }

    // Check function bodies for dbg!/print-family macros.
    for file in &ws.files {
        let print_ok = cfg
            .print_exempt
            .iter()
            .any(|c| file.crate_path == *c || file.rel_path.starts_with(c.as_str()));
        for_each_fn(&file.ast, &mut |ctx| {
            let body = &ctx.func.body;
            for (i, t) in body.iter().enumerate() {
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let bang = matches!(body.get(i + 1), Some(n) if n.is_punct('!'));
                if !bang {
                    continue;
                }
                if t.text == "dbg" {
                    out.push(finding(
                        &file.rel_path,
                        t.line,
                        format!("`dbg!` left in fn `{}`", ctx.func.sig.ident),
                        vec!["dbg! prints its argument (possibly tainted) to stderr".to_string()],
                    ));
                } else if !print_ok && PRINT_MACROS.contains(&t.text.as_str()) {
                    out.push(finding(
                        &file.rel_path,
                        t.line,
                        format!(
                            "`{}!` in library crate (fn `{}`)",
                            t.text, ctx.func.sig.ident
                        ),
                        vec!["library crates must not print; route output through the \
                             CLI crate or add the crate to [conventions] print_exempt"
                            .to_string()],
                    ));
                }
            }
        });
    }
}

fn finding(file: &str, line: u32, message: String, notes: Vec<String>) -> Finding {
    Finding {
        rule: RULE,
        file: file.to_string(),
        line,
        message,
        notes,
        level: Level::Deny,
        allowed: None,
    }
}
