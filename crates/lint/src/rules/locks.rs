//! Rule family 5: lock-discipline (v2, interprocedural).
//!
//! Within the configured concurrency-sensitive paths (`[locks] paths`),
//! the threaded engine must keep its guards short-lived and ordered:
//!
//! * **guard across blocking I/O** — a `Mutex`/`RwLock` guard held at a
//!   direct unbounded-blocking call (`recv()`, `join()`, socket
//!   `read`/`write`/`write_all`, …) stalls every other thread needing
//!   that lock for as long as the peer feels like. A slow or
//!   adversarial peer turns it into a denial of service.
//! * **double acquisition** — re-acquiring a lock already held on the
//!   same path self-deadlocks with `std::sync` primitives.
//! * **lock-order inversion** — two locks acquired in both orders
//!   (directly or through callees, using the interprocedural acquire
//!   summaries) can deadlock two threads against each other.
//! * **poisoning panic** — `.lock().unwrap()` / `.expect(…)` converts a
//!   panic on one thread into a cascading panic on every other, an
//!   adversary-visible crash oracle in message paths.
//!
//! Lock identity is name-based (see DESIGN.md §13 for the soundness
//! trade-offs: same-named fields conflate, closures are charged to the
//! spawning scope).

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::dataflow::ConcSummary;
use crate::findings::{Finding, Level};
use crate::ir::{blocking_kind, Bound, EventKind, Program};

const RULE: &str = "lock-discipline";

pub fn run(
    prog: &Program<'_>,
    graph: &CallGraph,
    conc: &[ConcSummary],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    // Ordered acquisition edges (first, second) → witness, collected
    // from every in-scope fn, both direct and through callee summaries.
    let mut edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();

    for (idx, f) in prog.fns.iter().enumerate() {
        if !in_scope(cfg, &f.file) {
            continue;
        }
        for ev in &f.events {
            match &ev.kind {
                EventKind::Acquire { lock, unwrapped } => {
                    if *unwrapped {
                        out.push(finding(
                            &f.file,
                            ev.line,
                            format!(
                                "`.{}().unwrap()`-style acquisition of `{lock}` in fn `{}`",
                                acquire_verb(prog, lock),
                                f.name
                            ),
                            vec![
                                "a panic on any other thread holding this lock poisons it and \
                                 cascades the crash here — an adversary-visible oracle"
                                    .to_string(),
                                "use a non-poisoning wrapper or handle the `Err` arm explicitly"
                                    .to_string(),
                            ],
                        ));
                    }
                    if ev.held.iter().any(|h| h.lock == *lock) {
                        out.push(finding(
                            &f.file,
                            ev.line,
                            format!(
                                "lock `{lock}` re-acquired while already held in fn `{}`",
                                f.name
                            ),
                            vec!["re-entrant acquisition of a std-style mutex self-deadlocks"
                                .to_string()],
                        ));
                    }
                    for h in &ev.held {
                        if h.lock != *lock {
                            edges.entry((h.lock.clone(), lock.clone())).or_insert((
                                f.file.clone(),
                                ev.line,
                                format!(
                                    "fn `{}` acquires `{lock}` at {}:{} while holding `{}` \
                                     (acquired line {})",
                                    f.name, f.file, ev.line, h.lock, h.line
                                ),
                            ));
                        }
                    }
                }
                call @ EventKind::Call { name, .. } => {
                    if !ev.held.is_empty() && blocking_kind(call) == Some(Bound::Unbounded) {
                        let held: Vec<String> =
                            ev.held.iter().map(|h| format!("`{}`", h.lock)).collect();
                        out.push(finding(
                            &f.file,
                            ev.line,
                            format!(
                                "guard on {} held across blocking `{name}` in fn `{}`",
                                held.join(", "),
                                f.name
                            ),
                            vec![
                                format!(
                                    "`{name}` can block indefinitely on a slow or adversarial \
                                     peer; every thread contending on {} stalls with it",
                                    held.join(", ")
                                ),
                                "copy what you need out of the guard and drop it before \
                                 blocking"
                                    .to_string(),
                            ],
                        ));
                    }
                    // Interprocedural acquisition edges: held locks
                    // order-before anything the callee may acquire.
                    if !ev.held.is_empty() {
                        for &callee in graph.resolve(call, f.self_ty.as_deref()) {
                            if callee == idx {
                                continue;
                            }
                            for (lock, wit) in &conc[callee].acquires {
                                for h in &ev.held {
                                    if h.lock != *lock {
                                        edges.entry((h.lock.clone(), lock.clone())).or_insert((
                                            f.file.clone(),
                                            ev.line,
                                            format!(
                                                "fn `{}` calls `{name}` at {}:{} while \
                                                     holding `{}`; callee path: {wit}",
                                                f.name, f.file, ev.line, h.lock
                                            ),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Inversions: (a, b) and (b, a) both present. Report once per
    // unordered pair, anchored at the lexicographically-first edge.
    for ((a, b), (file, line, wit_ab)) in &edges {
        if a < b {
            if let Some((_, _, wit_ba)) = edges.get(&(b.clone(), a.clone())) {
                out.push(finding(
                    file,
                    *line,
                    format!("lock-order inversion between `{a}` and `{b}`"),
                    vec![
                        format!("order `{a}` → `{b}`: {wit_ab}"),
                        format!("order `{b}` → `{a}`: {wit_ba}"),
                        "two threads taking these paths concurrently deadlock; pick one \
                         global order and stick to it"
                            .to_string(),
                    ],
                ));
            }
        }
    }
}

fn in_scope(cfg: &Config, file: &str) -> bool {
    cfg.locks_paths.iter().any(|p| file.starts_with(p.as_str()))
}

/// `lock` for a Mutex name, `read`/`write` collapsed to `lock` is wrong
/// for RwLock — report the verb that matches the primitive.
fn acquire_verb(prog: &Program<'_>, lock: &str) -> &'static str {
    match prog.locks.kinds.get(lock) {
        Some(crate::ir::LockKind::RwLock) => "read",
        _ => "lock",
    }
}

fn finding(file: &str, line: u32, message: String, notes: Vec<String>) -> Finding {
    Finding {
        rule: RULE,
        file: file.to_string(),
        line,
        message,
        notes,
        level: Level::Deny,
        allowed: None,
    }
}
