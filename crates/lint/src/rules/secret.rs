//! Rule family 1: secret-hygiene.
//!
//! Secret types are seeded from the `#[doc(alias = "pisa_secret")]`
//! marker attribute (anything whose attribute tokens contain
//! `pisa_secret`) or from the `[secret] types` list in `lint.toml`, then
//! closed transitively through struct/enum field types.
//!
//! Directly-marked types must not derive `Debug`/`Serialize`/
//! `Deserialize`, must not implement `Display`, must redact in any
//! manual `Debug` impl (the body must contain a `"redacted"` literal),
//! and must wipe themselves on drop (an `impl Drop`), unless every
//! secret-bearing field is itself a marked type (the wrapper case) or
//! the type is listed in `zeroize_exempt` (e.g. `Copy` enums, which
//! cannot implement `Drop`).
//!
//! Transitively-secret types (types that merely *contain* a marked
//! type) must not derive `Serialize`/`Deserialize`; deriving `Debug` on
//! them is fine because the inner type's `Debug` is guaranteed redacted.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::findings::{Finding, Level};
use crate::scan::{for_each_impl, for_each_type, ty_mentions, Workspace};
use syn::TokenKind;

const RULE: &str = "secret-hygiene";

struct TypeInfo {
    file: String,
    line: u32,
    derives: Vec<String>,
    field_tys: Vec<String>,
    marked: bool,
}

pub fn run(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    // Pass 1: collect every type definition in the workspace. Type names
    // are treated as globally unique (true for this workspace; a clash
    // would only make the lint stricter, never blind).
    let mut types: BTreeMap<String, TypeInfo> = BTreeMap::new();
    for file in &ws.files {
        for_each_type(&file.ast, &mut |td| {
            let marked = td.attrs().iter().any(|a| a.contains("pisa_secret"))
                || cfg.secret_types.iter().any(|t| t == td.ident());
            types.insert(
                td.ident().to_string(),
                TypeInfo {
                    file: file.rel_path.clone(),
                    line: td.line(),
                    derives: td.attrs().iter().flat_map(|a| a.derives()).collect(),
                    field_tys: td.fields().iter().map(|f| f.ty.clone()).collect(),
                    marked,
                },
            );
        });
    }

    // Names configured as secret but never found anywhere: surface as a
    // config problem so the list cannot silently rot.
    for name in &cfg.secret_types {
        if !types.contains_key(name) {
            out.push(Finding {
                rule: RULE,
                file: "lint.toml".to_string(),
                line: 1,
                message: format!("configured secret type `{name}` was not found in the workspace"),
                notes: vec!["remove it from [secret] types or fix the name".to_string()],
                level: Level::Deny,
                allowed: None,
            });
        }
    }

    let marked: BTreeSet<String> = types
        .iter()
        .filter(|(_, t)| t.marked)
        .map(|(n, _)| n.clone())
        .collect();

    // Pass 2: transitive closure — a type whose field types mention any
    // secret type is itself secret-bearing.
    let mut secret_bearing: BTreeSet<String> = marked.clone();
    loop {
        let mut grew = false;
        for (name, info) in &types {
            if secret_bearing.contains(name) {
                continue;
            }
            let carries = info
                .field_tys
                .iter()
                .any(|ty| secret_bearing.iter().any(|s| ty_mentions(ty, s)));
            if carries {
                secret_bearing.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Pass 3: collect trait impls per type: Display, Debug (+ redaction
    // evidence), Drop.
    let mut impl_display: BTreeSet<String> = BTreeSet::new();
    let mut impl_drop: BTreeSet<String> = BTreeSet::new();
    // type -> (file, line, redacts)
    let mut impl_debug: BTreeMap<String, (String, u32, bool)> = BTreeMap::new();
    for file in &ws.files {
        for_each_impl(&file.ast, &mut |imp| {
            let Some(tr) = imp.trait_.as_deref() else {
                return;
            };
            match tr {
                "Display" => {
                    impl_display.insert(imp.self_ty.clone());
                }
                "Drop" => {
                    impl_drop.insert(imp.self_ty.clone());
                }
                "Debug" => {
                    let redacts = imp.fns.iter().any(|f| {
                        f.body
                            .iter()
                            .any(|t| t.kind == TokenKind::Literal && t.text.contains("redacted"))
                    });
                    impl_debug.insert(
                        imp.self_ty.clone(),
                        (file.rel_path.clone(), imp.line, redacts),
                    );
                }
                _ => {}
            }
        });
    }

    // Pass 4: checks on directly-marked types.
    for name in &marked {
        let info = &types[name];
        for bad in ["Debug", "Serialize", "Deserialize"] {
            if info.derives.iter().any(|d| d == bad) {
                out.push(finding(
                    info,
                    format!("secret type `{name}` derives `{bad}`"),
                    vec![format!(
                        "derived `{bad}` exposes key material; write a manual redacted impl \
                         (Debug) or an explicitly named export method instead"
                    )],
                ));
            }
        }
        if impl_display.contains(name) {
            out.push(finding(
                info,
                format!("secret type `{name}` implements `Display`"),
                vec!["secret values must not be printable via `{}`".to_string()],
            ));
        }
        if let Some((file, line, redacts)) = impl_debug.get(name) {
            if !*redacts {
                out.push(Finding {
                    rule: RULE,
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "manual `Debug` impl for secret type `{name}` does not redact"
                    ),
                    notes: vec![
                        "the impl body must print a literal containing \"redacted\" \
                         in place of key material"
                            .to_string(),
                    ],
                    level: Level::Deny,
                    allowed: None,
                });
            }
        }
        let exempt = cfg.zeroize_exempt.iter().any(|t| t == name);
        let wrapper_only = !info.field_tys.is_empty()
            && info
                .field_tys
                .iter()
                .all(|ty| marked.iter().any(|s| ty_mentions(ty, s)));
        if !impl_drop.contains(name) && !exempt && !wrapper_only {
            out.push(finding(
                info,
                format!("secret type `{name}` has no zeroize-on-drop impl"),
                vec![
                    "implement `Drop` and wipe key material (see pisa_bigint::zeroize), \
                     or add the type to [secret] zeroize_exempt with a reason"
                        .to_string(),
                ],
            ));
        }
    }

    // Pass 5: checks on transitively secret-bearing (but unmarked) types.
    for name in secret_bearing.difference(&marked) {
        let info = &types[name];
        for bad in ["Serialize", "Deserialize"] {
            if info.derives.iter().any(|d| d == bad) {
                out.push(finding(
                    info,
                    format!(
                        "type `{name}` transitively contains secret material but derives `{bad}`"
                    ),
                    vec![format!(
                        "`{name}` holds a field of a pisa_secret-marked type; serializing \
                         it would export key material"
                    )],
                ));
            }
        }
    }
}

fn finding(info: &TypeInfo, message: String, notes: Vec<String>) -> Finding {
    Finding {
        rule: RULE,
        file: info.file.clone(),
        line: info.line,
        message,
        notes,
        level: Level::Deny,
        allowed: None,
    }
}
