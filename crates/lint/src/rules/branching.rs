//! Rule family 3: secret-dependent branching.
//!
//! Inside the configured constant-time-sensitive paths (`[branching]
//! paths`, i.e. `crypto/` and `bigint/src/modular/`), control flow must
//! not depend on secret values: a branch taken or skipped based on a key
//! bit shows up in the timing profile (the classic square-and-multiply
//! leak).
//!
//! Taint seeds per function:
//! * parameters whose type mentions a secret-marked type,
//! * `self` when the surrounding impl's type is secret,
//! * `[branching] secret_params` entries of the form `"fn.param"`.
//!
//! Taint propagates through `let` bindings and `for` loop patterns
//! (linear token scan: a `let` whose initializer — or a `for` whose
//! iterable — mentions a tainted identifier taints the bound names,
//! recording the chain). Any `if` / `while` / `match` whose condition
//! mentions a tainted identifier is flagged, with the chain reported
//! as notes.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::config::Config;
use crate::findings::{Finding, Level};
use crate::scan::{for_each_fn, for_each_type, ty_mentions, Workspace};
use syn::{Token, TokenKind};

const RULE: &str = "secret-branching";

pub fn run(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    // Secret type names: markers plus the configured list.
    let mut secret_types: BTreeSet<String> = cfg.secret_types.iter().cloned().collect();
    for file in &ws.files {
        for_each_type(&file.ast, &mut |td| {
            if td.attrs().iter().any(|a| a.contains("pisa_secret")) {
                secret_types.insert(td.ident().to_string());
            }
        });
    }

    for file in &ws.files {
        if !cfg
            .branching_paths
            .iter()
            .any(|p| file.rel_path.starts_with(p.as_str()))
        {
            continue;
        }
        for_each_fn(&file.ast, &mut |ctx| {
            let fn_name = &ctx.func.sig.ident;
            // Seed the taint map: ident -> chain of how it became tainted.
            let mut taint: BTreeMap<String, Vec<String>> = BTreeMap::new();
            for arg in &ctx.func.sig.inputs {
                let secret_ty = secret_types.iter().find(|s| ty_mentions(&arg.ty, s));
                let configured = cfg
                    .branching_secret_params
                    .iter()
                    .any(|sp| sp == &format!("{fn_name}.{}", arg.name));
                if arg.name == "self" {
                    let self_secret = ctx
                        .self_ty
                        .map(|t| secret_types.contains(t))
                        .unwrap_or(false);
                    if self_secret || configured {
                        taint.insert(
                            "self".to_string(),
                            vec![format!(
                                "`self` is secret: impl block is for secret type `{}`",
                                ctx.self_ty.unwrap_or("?")
                            )],
                        );
                    }
                } else if let Some(s) = secret_ty {
                    taint.insert(
                        arg.name.clone(),
                        vec![format!(
                            "parameter `{}: {}` of fn `{fn_name}` carries secret type `{s}`",
                            arg.name, arg.ty
                        )],
                    );
                } else if configured {
                    taint.insert(
                        arg.name.clone(),
                        vec![format!(
                            "parameter `{}` of fn `{fn_name}` is listed in \
                             [branching] secret_params",
                            arg.name
                        )],
                    );
                }
            }
            if taint.is_empty() {
                return;
            }
            scan_body(&file.rel_path, fn_name, &ctx.func.body, &mut taint, out);
        });
    }
}

fn scan_body(
    file: &str,
    fn_name: &str,
    body: &[Token],
    taint: &mut BTreeMap<String, Vec<String>>,
    out: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        match t.kind {
            TokenKind::Ident if t.text == "let" => {
                i = handle_let(file, body, i, taint);
            }
            TokenKind::Ident if t.text == "for" => {
                i = handle_for(body, i, taint);
            }
            TokenKind::Ident if t.text == "if" || t.text == "while" || t.text == "match" => {
                let kw = t.text.clone();
                let line = t.line;
                // Condition runs to the first `{` at relative depth 0.
                let mut j = i + 1;
                let mut depth = 0i32;
                let mut cond_idents: Vec<(String, u32)> = Vec::new();
                while j < body.len() {
                    let c = &body[j];
                    match c.kind {
                        TokenKind::Open('{') if depth == 0 => break,
                        TokenKind::Open(_) => depth += 1,
                        TokenKind::Close(_) => depth -= 1,
                        TokenKind::Ident => cond_idents.push((c.text.clone(), c.line)),
                        _ => {}
                    }
                    j += 1;
                }
                let hit = cond_idents
                    .iter()
                    .find(|(name, _)| taint.contains_key(name));
                if let Some((name, _)) = hit {
                    let mut notes = taint[name].clone();
                    notes.push(format!(
                        "`{kw}` condition reads tainted value `{name}` — make the \
                         operation unconditional or branch on public data only"
                    ));
                    out.push(Finding {
                        rule: RULE,
                        file: file.to_string(),
                        line,
                        message: format!(
                            "`{kw}` on secret-derived value `{name}` in fn `{fn_name}`"
                        ),
                        notes,
                        level: Level::Deny,
                        allowed: None,
                    });
                }
                i = j;
            }
            _ => i += 1,
        }
    }
}

/// Processes a `for` loop starting at `body[start]` (the `for`
/// keyword): taints the loop-pattern bindings when the iterable
/// mentions a tainted identifier (the square-and-multiply shape,
/// `for bit in key.bits { if bit { … } }`). Returns the index of the
/// first iterable token so the main loop still scans the iterable and
/// the loop body.
fn handle_for(body: &[Token], start: usize, taint: &mut BTreeMap<String, Vec<String>>) -> usize {
    // Pattern identifiers: idents between `for` and `in` at depth 0.
    let mut i = start + 1;
    let mut pattern: Vec<String> = Vec::new();
    let mut depth = 0i32;
    while i < body.len() {
        let t = &body[i];
        match t.kind {
            TokenKind::Ident if t.text == "in" && depth == 0 => break,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            TokenKind::Ident if t.text != "mut" && t.text != "ref" => {
                let ctor = matches!(body.get(i + 1), Some(n) if n.kind == TokenKind::Open('('));
                if !ctor {
                    pattern.push(t.text.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    if i >= body.len() {
        return i;
    }
    // Iterable: from after `in` to the loop-body `{` at depth 0.
    let iter_start = i + 1;
    let mut j = iter_start;
    let mut depth = 0i32;
    while j < body.len() {
        let t = &body[j];
        match t.kind {
            TokenKind::Open('{') if depth == 0 => break,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let source: Option<(String, u32)> = body[iter_start..j.min(body.len())]
        .iter()
        .find(|t| t.kind == TokenKind::Ident && taint.contains_key(&t.text))
        .map(|t| (t.text.clone(), t.line));
    if let Some((src_ident, line)) = source {
        let chain = taint[&src_ident].clone();
        for name in &pattern {
            let mut c = chain.clone();
            c.push(format!(
                "`{name}` iterates over tainted `{src_ident}` at line {line}"
            ));
            taint.insert(name.clone(), c);
        }
    }
    iter_start
}

/// Processes a `let` starting at `body[start]` (the `let` keyword).
/// Returns the index to resume scanning from (just past the pattern;
/// the initializer is rescanned by the main loop so nested `if`/`let`
/// inside it are still seen).
fn handle_let(
    file: &str,
    body: &[Token],
    start: usize,
    taint: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let _ = file;
    // Pattern identifiers: idents between `let` and `=` (stopping at `:`
    // to exclude type ascription, and at `;` for uninitialized lets).
    let mut i = start + 1;
    let mut pattern: Vec<String> = Vec::new();
    let mut depth = 0i32;
    let mut in_ty = false;
    while i < body.len() {
        let t = &body[i];
        match t.kind {
            TokenKind::Punct if t.text == "=" && depth == 0 => break,
            TokenKind::Punct if t.text == ";" && depth == 0 => return i + 1,
            TokenKind::Punct if t.text == ":" && depth == 0 => in_ty = true,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            TokenKind::Ident if !in_ty && t.text != "mut" && t.text != "ref" => {
                // Skip enum constructors in patterns (`Some`, `Ok`, …)
                // only when followed by `(`: the payload idents are the
                // bindings.
                let ctor = matches!(body.get(i + 1), Some(n) if n.kind == TokenKind::Open('('));
                if !ctor {
                    pattern.push(t.text.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    if i >= body.len() {
        return i;
    }
    // Initializer: from after `=` to the `;` at depth 0.
    let init_start = i + 1;
    let mut j = init_start;
    let mut depth = 0i32;
    while j < body.len() {
        let t = &body[j];
        match t.kind {
            TokenKind::Punct if t.text == ";" && depth == 0 => break,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let source: Option<(String, u32)> = body[init_start..j.min(body.len())]
        .iter()
        .find(|t| t.kind == TokenKind::Ident && taint.contains_key(&t.text))
        .map(|t| (t.text.clone(), t.line));
    if let Some((src_ident, line)) = source {
        let mut chain = taint[&src_ident].clone();
        for name in &pattern {
            let mut c = chain.clone();
            c.push(format!(
                "`{name}` bound from tainted `{src_ident}` at line {line}"
            ));
            taint.insert(name.clone(), std::mem::take(&mut c));
            chain = taint[&src_ident].clone();
        }
    }
    // Resume *inside* the initializer so nested `if`/`let` expressions
    // are scanned too.
    init_start
}
