//! Rule family 6: blocking-call (v2, interprocedural).
//!
//! The lock-discipline rule catches a guard held across a *direct*
//! blocking primitive. This family catches what it cannot see: a call
//! made while holding a guard that only blocks *transitively* — the
//! callee (or one of its callees) performs an unbounded `recv()`,
//! `join()`, or socket I/O. The witness chain in the notes spells out
//! the path from the call site down to the primitive.
//!
//! It also flags unbounded `join()` inside a service loop while a guard
//! is held at any point in that fn: joining a worker that may itself be
//! blocked waiting for our lock is the classic two-thread deadlock in
//! the netstorm service loops.
//!
//! Scope: the same `[locks] paths` as lock-discipline.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::dataflow::ConcSummary;
use crate::findings::{Finding, Level};
use crate::ir::{blocking_kind, EventKind, Program};

const RULE: &str = "blocking-call";

pub fn run(
    prog: &Program<'_>,
    graph: &CallGraph,
    conc: &[ConcSummary],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    for (idx, f) in prog.fns.iter().enumerate() {
        if !cfg
            .locks_paths
            .iter()
            .any(|p| f.file.starts_with(p.as_str()))
        {
            continue;
        }
        for ev in &f.events {
            let call @ EventKind::Call { name, .. } = &ev.kind else {
                continue;
            };
            if ev.held.is_empty() {
                continue;
            }
            // Direct primitives are lock-discipline's findings; this
            // rule owns the transitive case only, so the two families
            // never double-report one line.
            if blocking_kind(call).is_some() {
                continue;
            }
            let mut reported = false;
            for &callee in graph.resolve(call, f.self_ty.as_deref()) {
                if callee == idx || reported {
                    continue;
                }
                if let Some(wit) = &conc[callee].blocks {
                    let held: Vec<String> =
                        ev.held.iter().map(|h| format!("`{}`", h.lock)).collect();
                    out.push(Finding {
                        rule: RULE,
                        file: f.file.clone(),
                        line: ev.line,
                        message: format!(
                            "call to `{name}` may block unboundedly while fn `{}` holds {}",
                            f.name,
                            held.join(", ")
                        ),
                        notes: vec![
                            format!("blocking path: {wit}"),
                            "drop the guard before the call, or give the blocking \
                             primitive a timeout"
                                .to_string(),
                        ],
                        level: Level::Deny,
                        allowed: None,
                    });
                    reported = true;
                }
            }
        }
    }
}
