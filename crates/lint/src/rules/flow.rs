//! Rule family 7: secret-flow (v2, interprocedural secret taint).
//!
//! The v1 `secret-branching` rule is intraprocedural: it sees a secret
//! parameter branch inside one function but is blind to secrets
//! *laundered* through helpers — a getter returning key material, a
//! helper whose parameter reaches a branch or a `format!`, a secret
//! struct field read through `.sk`. This family reports exactly the
//! findings v1 cannot see (the dataflow layer suppresses anything
//! v1-visible, so the two rules never duplicate a line):
//!
//! * a branch on a value that is secret-derived only through a call or
//!   field read;
//! * a secret-derived argument passed to a callee that branches on the
//!   corresponding parameter (unless that parameter is itself a v1
//!   taint seed — then the callee's own branch is v1's finding);
//! * a secret-derived value reaching a `format!`-family macro, or
//!   passed to a callee that formats it (`fmt` methods of
//!   `Debug`/`Display` impls are exempt because secret-hygiene owns
//!   redaction there).
//!
//! All findings are restricted to `[branching] paths` like v1: the
//! name-based taint is too coarse to gate the whole workspace, and the
//! constant-time-sensitive crates are where laundering matters (see
//! DESIGN.md §13 for the soundness trade).

use crate::config::Config;
use crate::dataflow::FlowWitness;
use crate::findings::{Finding, Level};

const RULE: &str = "secret-flow";

pub fn run(witnesses: &[FlowWitness], cfg: &Config, out: &mut Vec<Finding>) {
    for w in witnesses {
        if !cfg
            .branching_paths
            .iter()
            .any(|p| w.file.starts_with(p.as_str()))
        {
            continue;
        }
        out.push(Finding {
            rule: RULE,
            file: w.file.clone(),
            line: w.line,
            message: w.message.clone(),
            notes: w.notes.clone(),
            level: Level::Deny,
            allowed: None,
        });
    }
}
