//! The four rule families.

pub mod branching;
pub mod conventions;
pub mod panics;
pub mod secret;
