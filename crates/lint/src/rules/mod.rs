//! The rule families. 1–4 are the v1 item-level rules; 5–7 are the v2
//! interprocedural families built on [`crate::ir`] / [`crate::callgraph`]
//! / [`crate::dataflow`]; dead-allow (8) lives in [`crate::allow`].

pub mod blocking;
pub mod branching;
pub mod conventions;
pub mod flow;
pub mod locks;
pub mod panics;
pub mod secret;
