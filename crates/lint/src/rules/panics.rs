//! Rule family 2: panic-freedom.
//!
//! Within the configured message-handling paths (`[panic] paths`), a
//! panic is an adversary-observable oracle: a malformed frame that
//! crashes the SDC/STP leaks which validation step rejected it and can
//! take the service down. Non-test functions in those paths must not
//! contain `.unwrap()`, `.expect(…)`, `panic!`-family macros, direct
//! slice indexing, or truncating integer `as` casts.

use crate::config::Config;
use crate::findings::{Finding, Level};
use crate::scan::{for_each_fn, Workspace};
use syn::{Token, TokenKind};

const RULE: &str = "panic-freedom";

/// `as` targets that can silently truncate or wrap a wider value. Casts
/// *to* 64-bit and wider are accepted (every length/index in the wire
/// format fits).
const TRUNCATING_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn run(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if !cfg
            .panic_paths
            .iter()
            .any(|p| file.rel_path.starts_with(p.as_str()))
        {
            continue;
        }
        for_each_fn(&file.ast, &mut |ctx| {
            scan_body(&file.rel_path, &ctx.func.sig.ident, &ctx.func.body, out);
        });
    }
}

fn scan_body(file: &str, fn_name: &str, body: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in body.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|j| body.get(j));
        let next = body.get(i + 1);
        match t.kind {
            TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let after_dot = prev.map(|p| p.is_punct('.')).unwrap_or(false);
                let called = matches!(next, Some(n) if n.kind == TokenKind::Open('('));
                if after_dot && called {
                    out.push(finding(
                        file,
                        t.line,
                        format!("`.{}(…)` in message-handling path (fn `{fn_name}`)", t.text),
                        vec![
                            "a malformed or adversarial input reaching this call panics the \
                             process — convert to a typed error variant"
                                .to_string(),
                        ],
                    ));
                }
            }
            TokenKind::Ident if PANIC_MACROS.contains(&t.text.as_str()) => {
                if matches!(next, Some(n) if n.is_punct('!')) {
                    out.push(finding(
                        file,
                        t.line,
                        format!("`{}!` in message-handling path (fn `{fn_name}`)", t.text),
                        vec!["return a typed error instead of panicking".to_string()],
                    ));
                }
            }
            TokenKind::Open('[') => {
                // Indexing: `expr[...]` — the `[` directly follows an
                // identifier or a closing `)` / `]`. Array/slice type
                // syntax and attributes follow punctuation instead.
                let indexes = matches!(
                    prev,
                    Some(p) if p.kind == TokenKind::Ident
                        || p.kind == TokenKind::Close(')')
                        || p.kind == TokenKind::Close(']')
                );
                if indexes {
                    out.push(finding(
                        file,
                        t.line,
                        format!("slice indexing in message-handling path (fn `{fn_name}`)"),
                        vec!["out-of-range indices panic; use `.get(…)` and propagate a \
                             typed error"
                            .to_string()],
                    ));
                }
            }
            TokenKind::Ident if t.text == "as" => {
                if let Some(n) = next {
                    if n.kind == TokenKind::Ident && TRUNCATING_TARGETS.contains(&n.text.as_str()) {
                        out.push(finding(
                            file,
                            t.line,
                            format!(
                                "truncating `as {}` cast in message-handling path (fn `{fn_name}`)",
                                n.text
                            ),
                            vec!["use `try_from` (or document boundedness with an inline \
                                 allow and a reason)"
                                .to_string()],
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

fn finding(file: &str, line: u32, message: String, notes: Vec<String>) -> Finding {
    Finding {
        rule: RULE,
        file: file.to_string(),
        line,
        message,
        notes,
        level: Level::Deny,
        allowed: None,
    }
}
