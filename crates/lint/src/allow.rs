//! Finding suppression: inline `// pisa-lint: allow(rule): reason`
//! comments and file-level `[[allow]]` entries from `lint.toml` — plus
//! the `dead-allow` rule, which reports suppressions that no longer
//! match any finding so the allowlist cannot silently rot.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::findings::{Finding, Level};
use crate::scan::Workspace;

/// Which suppressions actually fired during [`apply_allows`].
#[derive(Debug, Default)]
pub struct AllowUsage {
    /// Indices into `cfg.allows` that suppressed at least one finding.
    pub entries: BTreeSet<usize>,
    /// Inline comment sites `(file, comment line)` that suppressed at
    /// least one finding.
    pub inline: BTreeSet<(String, u32)>,
}

/// Marks findings as allowed in place. A finding is suppressed when
///
/// * the line it points at — or the contiguous `//` comment block
///   directly above it — contains `pisa-lint: allow(<rule>)` (or
///   `allow(all)`), or
/// * a `[[allow]]` entry matches its rule (or `all`) and its file by
///   path prefix.
///
/// The suppression reason is recorded on the finding so the JSON report
/// keeps an audit trail; the returned [`AllowUsage`] feeds the
/// `dead-allow` rule.
pub fn apply_allows(ws: &Workspace, cfg: &Config, findings: &mut [Finding]) -> AllowUsage {
    let mut usage = AllowUsage::default();
    for f in findings.iter_mut() {
        if let Some((reason, comment_line)) = inline_allow(ws, f) {
            f.allowed = Some(reason);
            usage.inline.insert((f.file.clone(), comment_line));
            continue;
        }
        if let Some((idx, entry)) = cfg.allows.iter().enumerate().find(|(_, a)| {
            (a.rule == f.rule || a.rule == "all") && f.file.starts_with(a.file.as_str())
        }) {
            f.allowed = Some(format!("lint.toml: {}", entry.reason));
            usage.entries.insert(idx);
        }
    }
    usage
}

/// Emits a `dead-allow` finding for every suppression that fired on
/// nothing: stale `[[allow]]` entries and stale inline comments. The
/// findings get one (non-recursive) suppression pass of their own so a
/// deliberately-kept entry can carry a `dead-allow` allow.
pub fn dead_allow_findings(
    ws: &Workspace,
    cfg: &Config,
    usage: &AllowUsage,
    out: &mut Vec<Finding>,
) {
    let mut dead: Vec<Finding> = Vec::new();
    for (idx, entry) in cfg.allows.iter().enumerate() {
        if !usage.entries.contains(&idx) {
            dead.push(Finding {
                rule: RULE,
                file: "lint.toml".to_string(),
                line: entry.line,
                message: format!(
                    "[[allow]] entry for `{}` ({}) matches no finding",
                    entry.file, entry.rule
                ),
                notes: vec![
                    "the code it excused has been fixed or moved — delete the entry \
                     so the allowlist stays an accurate audit trail"
                        .to_string(),
                ],
                level: Level::Deny,
                allowed: None,
            });
        }
    }
    for (file, line) in inline_sites(ws) {
        if !usage.inline.contains(&(file.clone(), line)) {
            dead.push(Finding {
                rule: RULE,
                file,
                line,
                message: "inline `pisa-lint: allow(…)` comment matches no finding".to_string(),
                notes: vec!["the code it excused has been fixed — delete the comment".to_string()],
                level: Level::Deny,
                allowed: None,
            });
        }
    }
    // One non-recursive pass so lint.toml can carry a reasoned
    // `dead-allow` suppression; its usage is deliberately not tracked.
    let _ = apply_allows(ws, cfg, &mut dead);
    out.append(&mut dead);
}

const RULE: &str = "dead-allow";

/// Every inline allow-comment site in the workspace as `(file, line)`.
/// Doc comments (`///`, `//!`) and occurrences inside string literals
/// are not suppression sites (they *mention* the syntax, e.g. in this
/// crate's own docs and tests) and are skipped.
fn inline_sites(ws: &Workspace) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for file in &ws.files {
        for (i, line) in file.source.lines().enumerate() {
            let Some(pos) = line.find("pisa-lint: allow(") else {
                continue;
            };
            let trimmed = line.trim_start();
            if trimmed.starts_with("///") || trimmed.starts_with("//!") {
                continue;
            }
            // Inside a string literal when an odd number of unescaped
            // quotes precedes the marker.
            let mut quotes = 0usize;
            let mut prev = '\0';
            for c in line[..pos].chars() {
                if c == '"' && prev != '\\' {
                    quotes += 1;
                }
                prev = c;
            }
            if quotes % 2 == 1 {
                continue;
            }
            // Only comment occurrences count as suppression sites.
            if !line[..pos].contains("//") {
                continue;
            }
            out.push((file.rel_path.clone(), (i + 1) as u32));
        }
    }
    out
}

fn inline_allow(ws: &Workspace, f: &Finding) -> Option<(String, u32)> {
    let file = ws.files.iter().find(|sf| sf.rel_path == f.file)?;
    let lines: Vec<&str> = file.source.lines().collect();
    let idx = f.line.checked_sub(1)? as usize;
    // The flagged line itself (trailing comment) …
    if let Some(reason) = lines.get(idx).and_then(|l| parse_inline(l, f.rule)) {
        return Some((reason, f.line));
    }
    // … or any line of the contiguous `//` comment block above it, so a
    // multi-line justification still counts.
    let mut above = idx;
    while above > 0 {
        above -= 1;
        let line = lines.get(above)?.trim_start();
        if !line.starts_with("//") {
            break;
        }
        if let Some(reason) = parse_inline(line, f.rule) {
            return Some((reason, (above + 1) as u32));
        }
    }
    None
}

/// Parses `… pisa-lint: allow(rule): reason` from a source line.
fn parse_inline(line: &str, rule: &str) -> Option<String> {
    let pos = line.find("pisa-lint: allow(")?;
    let rest = &line[pos + "pisa-lint: allow(".len()..];
    let close = rest.find(')')?;
    let named = rest[..close].trim();
    if named != rule && named != "all" {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    Some(if reason.is_empty() {
        "inline allow".to_string()
    } else {
        format!("inline: {reason}")
    })
}

#[cfg(test)]
mod tests {
    use super::parse_inline;

    #[test]
    fn parses_rule_and_reason() {
        let line = "    x as u32 // pisa-lint: allow(panic-freedom): bounded by header check";
        assert_eq!(
            parse_inline(line, "panic-freedom").unwrap(),
            "inline: bounded by header check"
        );
        assert!(parse_inline(line, "conventions").is_none());
    }

    #[test]
    fn allow_all_matches_any_rule() {
        let line = "// pisa-lint: allow(all): fixture";
        assert!(parse_inline(line, "secret-hygiene").is_some());
    }
}
