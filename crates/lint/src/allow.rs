//! Finding suppression: inline `// pisa-lint: allow(rule): reason`
//! comments and file-level `[[allow]]` entries from `lint.toml`.

use crate::config::Config;
use crate::findings::Finding;
use crate::scan::Workspace;

/// Marks findings as allowed in place. A finding is suppressed when
///
/// * the line it points at — or the contiguous `//` comment block
///   directly above it — contains `pisa-lint: allow(<rule>)` (or
///   `allow(all)`), or
/// * a `[[allow]]` entry matches its rule (or `all`) and its file by
///   path prefix.
///
/// The suppression reason is recorded on the finding so the JSON report
/// keeps an audit trail.
pub fn apply_allows(ws: &Workspace, cfg: &Config, findings: &mut [Finding]) {
    for f in findings.iter_mut() {
        if let Some(reason) = inline_allow(ws, f) {
            f.allowed = Some(reason);
            continue;
        }
        if let Some(entry) = cfg
            .allows
            .iter()
            .find(|a| (a.rule == f.rule || a.rule == "all") && f.file.starts_with(a.file.as_str()))
        {
            f.allowed = Some(format!("lint.toml: {}", entry.reason));
        }
    }
}

fn inline_allow(ws: &Workspace, f: &Finding) -> Option<String> {
    let file = ws.files.iter().find(|sf| sf.rel_path == f.file)?;
    let lines: Vec<&str> = file.source.lines().collect();
    let idx = f.line.checked_sub(1)? as usize;
    // The flagged line itself (trailing comment) …
    if let Some(reason) = lines.get(idx).and_then(|l| parse_inline(l, f.rule)) {
        return Some(reason);
    }
    // … or any line of the contiguous `//` comment block above it, so a
    // multi-line justification still counts.
    let mut above = idx;
    while above > 0 {
        above -= 1;
        let line = lines.get(above)?.trim_start();
        if !line.starts_with("//") {
            break;
        }
        if let Some(reason) = parse_inline(line, f.rule) {
            return Some(reason);
        }
    }
    None
}

/// Parses `… pisa-lint: allow(rule): reason` from a source line.
fn parse_inline(line: &str, rule: &str) -> Option<String> {
    let pos = line.find("pisa-lint: allow(")?;
    let rest = &line[pos + "pisa-lint: allow(".len()..];
    let close = rest.find(')')?;
    let named = rest[..close].trim();
    if named != rule && named != "all" {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    Some(if reason.is_empty() {
        "inline allow".to_string()
    } else {
        format!("inline: {reason}")
    })
}

#[cfg(test)]
mod tests {
    use super::parse_inline;

    #[test]
    fn parses_rule_and_reason() {
        let line = "    x as u32 // pisa-lint: allow(panic-freedom): bounded by header check";
        assert_eq!(
            parse_inline(line, "panic-freedom").unwrap(),
            "inline: bounded by header check"
        );
        assert!(parse_inline(line, "conventions").is_none());
    }

    #[test]
    fn allow_all_matches_any_rule() {
        let line = "// pisa-lint: allow(all): fixture";
        assert!(parse_inline(line, "secret-hygiene").is_some());
    }
}
