//! Protection parameters and the protection distance `d^c` of paper
//! equation (1).
//!
//! Equation (1) defines the distance within which SU EIRP must be
//! re-examined when a TV receiver activates on channel `c`:
//!
//! ```text
//! Δ_TV_SINR + Δ_redn = S^PU_sv_min / (S^SU_max · h_max(d^c))
//! ```
//!
//! Solving for `d^c` means inverting the maximum-path-loss curve: find
//! the distance at which an SU transmitting at full power is attenuated
//! enough that even the weakest protectable TV signal keeps its SINR.

use crate::pathloss::{invert_path_loss, LinkGeometry, PathLossModel};
use crate::tv::Channel;
use crate::units::{Db, Dbm};
use serde::{Deserialize, Serialize};

/// Regulatory protection parameters (public data per §III-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtectionParams {
    /// Required TV SINR `Δ_TV_SINR` in dB (ATSC planning factor: 15 dB).
    pub tv_sinr_db: f64,
    /// Aggregate-interference margin `Δ_redn` in dB (protects against
    /// multiple simultaneous SUs).
    pub redn_db: f64,
    /// Minimum protectable TV signal `S^PU_sv_min` (ATSC threshold).
    pub pu_min_signal_dbm: f64,
    /// Maximum SU EIRP `S^SU_max` (FCC part-15-style cap, 36 dBm = 4 W).
    pub su_max_eirp_dbm: f64,
}

impl ProtectionParams {
    /// ATSC / FCC-derived defaults used throughout the evaluation.
    pub fn atsc_defaults() -> Self {
        ProtectionParams {
            tv_sinr_db: 15.0,
            redn_db: 3.0,
            pu_min_signal_dbm: -84.0,
            su_max_eirp_dbm: 36.0,
        }
    }

    /// The combined threshold `X = Δ_TV_SINR + Δ_redn` as a linear power
    /// ratio — the scalar of equations (6) and (11).
    pub fn x_linear(&self) -> f64 {
        Db(self.tv_sinr_db + self.redn_db).as_ratio()
    }

    /// `X` rounded **up** to an integer for the homomorphic scalar
    /// multiplication ⊗ (rounding up is conservative: it can only deny
    /// marginal SUs, never harm a PU).
    pub fn x_integer(&self) -> u64 {
        self.x_linear().ceil() as u64
    }

    /// Minimum protectable TV signal in linear milliwatts.
    pub fn pu_min_signal_mw(&self) -> f64 {
        Dbm(self.pu_min_signal_dbm).to_milliwatts().0
    }

    /// Maximum SU EIRP in linear milliwatts.
    pub fn su_max_eirp_mw(&self) -> f64 {
        Dbm(self.su_max_eirp_dbm).to_milliwatts().0
    }
}

impl Default for ProtectionParams {
    fn default() -> Self {
        Self::atsc_defaults()
    }
}

/// Computes the protection distance `d^c` for channel `channel`:
/// the largest distance at which a full-power SU can still degrade the
/// weakest protectable TV signal below the required SINR (equation 1).
///
/// Blocks farther than `d^c` from a PU need no update when that PU
/// activates.
pub fn protection_distance<M: PathLossModel + ?Sized>(
    model: &M,
    params: &ProtectionParams,
    channel: Channel,
    max_distance_m: f64,
) -> f64 {
    // From eq. (1): h_max(d^c) = S_min / (S_max_SU · X)
    // ⇒ required loss L = 10·log10(S_max_SU · X / S_min)
    let s_min_mw = params.pu_min_signal_mw();
    let s_max_mw = params.su_max_eirp_mw();
    let x = params.x_linear();
    let required_loss = Db(10.0 * (s_max_mw * x / s_min_mw).log10());
    let geom = LinkGeometry::secondary_default(channel.center_freq_mhz());
    invert_path_loss(model, required_loss, &geom, max_distance_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::{ExtendedHata, FreeSpace, PathLossModel};

    #[test]
    fn x_values() {
        let p = ProtectionParams::atsc_defaults();
        // 18 dB → 63.1 linear → ceil 64
        assert!((p.x_linear() - 63.095).abs() < 0.01);
        assert_eq!(p.x_integer(), 64);
    }

    #[test]
    fn x_integer_is_conservative() {
        let p = ProtectionParams::atsc_defaults();
        assert!(p.x_integer() as f64 >= p.x_linear());
    }

    #[test]
    fn protection_distance_is_large_for_weak_signals() {
        // A full-power SU against the weakest protectable TV signal needs
        // kilometres of separation under suburban propagation.
        let p = ProtectionParams::atsc_defaults();
        let d = protection_distance(&ExtendedHata::suburban(), &p, Channel(5), 100_000.0);
        assert!(d > 1000.0, "d^c = {d} m");
    }

    #[test]
    fn harsher_model_shrinks_distance() {
        // Free space attenuates less than Hata, so free-space d^c must be
        // at least as large.
        let p = ProtectionParams::atsc_defaults();
        let d_fs = protection_distance(&FreeSpace, &p, Channel(5), 1e7);
        let d_hata = protection_distance(&ExtendedHata::suburban(), &p, Channel(5), 1e7);
        assert!(d_fs >= d_hata);
    }

    #[test]
    fn loss_at_protection_distance_matches_required() {
        let p = ProtectionParams::atsc_defaults();
        let model = ExtendedHata::suburban();
        let ch = Channel(20);
        let d = protection_distance(&model, &p, ch, 1e6);
        let geom = LinkGeometry::secondary_default(ch.center_freq_mhz());
        // At d^c, SU interference at full power equals S_min / X.
        let interference_mw = p.su_max_eirp_mw() * model.path_gain(d, &geom);
        let budget_mw = p.pu_min_signal_mw() / p.x_linear();
        let ratio = interference_mw / budget_mw;
        assert!((0.99..1.01).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn channel_dependence() {
        // Higher channels (higher frequency) attenuate faster ⇒ smaller d^c.
        let p = ProtectionParams::atsc_defaults();
        let m = ExtendedHata::suburban();
        let d_low = protection_distance(&m, &p, Channel(0), 1e6);
        let d_high = protection_distance(&m, &p, Channel(60), 1e6);
        assert!(d_high <= d_low);
    }
}
