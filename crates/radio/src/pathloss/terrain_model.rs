//! Terrain-adjusted irregular-terrain model (Longley–Rice stand-in).

use super::{ExtendedHata, LinkGeometry, PathLossModel};
use crate::grid::Point;
use crate::terrain::Terrain;
use crate::units::Db;

/// An irregular-terrain propagation model: Extended Hata plus a
/// roughness penalty derived from the interdecile terrain range Δh along
/// the path, in the spirit of the Longley–Rice irregular terrain model
/// the paper uses for TV field strength \[29\].
///
/// The penalty follows the classic Δh correction shape used by
/// terrain-integrated models: `ΔL = k · log₁₀(1 + Δh / Δh₀)` with
/// `Δh₀ = 90 m` (the model family's "average terrain") and `k = 10`.
/// Smooth terrain (Δh → 0) reduces to plain Extended Hata.
///
/// Because the path endpoints matter (terrain is sampled along the
/// path), this model is evaluated through
/// [`IrregularTerrain::path_loss_between`]; the [`PathLossModel`]
/// implementation uses the worst-case roughness of the whole area so
/// that distance-only call sites stay conservative.
#[derive(Debug, Clone)]
pub struct IrregularTerrain {
    hata: ExtendedHata,
    terrain: Terrain,
    worst_case_penalty_db: f64,
}

const DELTA_H0_M: f64 = 90.0;
const ROUGHNESS_GAIN: f64 = 10.0;

impl IrregularTerrain {
    /// Wraps a terrain model around the sub-urban Extended Hata base.
    pub fn new(terrain: Terrain) -> Self {
        IrregularTerrain {
            hata: ExtendedHata::suburban(),
            worst_case_penalty_db: roughness_penalty_db(estimate_relief(&terrain)),
            terrain,
        }
    }

    /// The underlying terrain.
    pub fn terrain(&self) -> &Terrain {
        &self.terrain
    }

    /// Path loss between two concrete points, sampling terrain roughness
    /// along the path.
    pub fn path_loss_between(&self, a: Point, b: Point, geom: &LinkGeometry) -> Db {
        let d = a.distance_m(&b);
        let base = self.hata.path_loss_db(d, geom).0;
        let dh = self.terrain.interdecile_range_m(a, b);
        Db(base + roughness_penalty_db(dh))
    }

    /// Linear path gain between two points.
    pub fn path_gain_between(&self, a: Point, b: Point, geom: &LinkGeometry) -> f64 {
        (-self.path_loss_between(a, b, geom)).as_ratio()
    }
}

impl PathLossModel for IrregularTerrain {
    fn path_loss_db(&self, distance_m: f64, geom: &LinkGeometry) -> Db {
        Db(self.hata.path_loss_db(distance_m, geom).0 + self.worst_case_penalty_db)
    }
}

fn roughness_penalty_db(delta_h_m: f64) -> f64 {
    ROUGHNESS_GAIN * (1.0 + delta_h_m / DELTA_H0_M).log10()
}

fn estimate_relief(terrain: &Terrain) -> f64 {
    // Sample a long diagonal to estimate the area's roughness budget.
    terrain.interdecile_range_m(
        Point { x: 0.0, y: 0.0 },
        Point {
            x: 20_000.0,
            y: 20_000.0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> LinkGeometry {
        LinkGeometry::secondary_default(600.0)
    }

    #[test]
    fn flat_terrain_equals_hata() {
        let model = IrregularTerrain::new(Terrain::flat());
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3000.0, y: 0.0 };
        let via_terrain = model.path_loss_between(a, b, &geom()).0;
        let via_hata = ExtendedHata::suburban().path_loss_db(3000.0, &geom()).0;
        assert!((via_terrain - via_hata).abs() < 1e-9);
    }

    #[test]
    fn rough_terrain_adds_loss() {
        let rough = IrregularTerrain::new(Terrain::new(9, 300.0));
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point {
            x: 5000.0,
            y: 2000.0,
        };
        let l_rough = rough.path_loss_between(a, b, &geom()).0;
        let l_flat = ExtendedHata::suburban()
            .path_loss_db(a.distance_m(&b), &geom())
            .0;
        assert!(l_rough > l_flat, "{l_rough} vs {l_flat}");
    }

    #[test]
    fn distance_only_view_is_conservative() {
        // The PathLossModel impl must never under-predict loss relative
        // to the base Hata (it adds the worst-case penalty).
        let model = IrregularTerrain::new(Terrain::new(5, 150.0));
        let hata = ExtendedHata::suburban();
        for d in [100.0, 1000.0, 5000.0] {
            assert!(model.path_loss_db(d, &geom()).0 >= hata.path_loss_db(d, &geom()).0);
        }
    }

    #[test]
    fn penalty_monotone_in_roughness() {
        assert!(roughness_penalty_db(0.0) == 0.0);
        assert!(roughness_penalty_db(50.0) < roughness_penalty_db(200.0));
    }
}
