//! Path-loss models.
//!
//! The paper's spectrum math consumes a path-loss function `h(·)` (linear
//! path gain) evaluated between blocks; WATCH computes TV field strength
//! with the Longley–Rice irregular terrain model and SU propagation with
//! the Extended Hata sub-urban model. Three models are provided:
//!
//! * [`FreeSpace`] — the physics floor, valid at short range;
//! * [`ExtendedHata`] — empirical sub-urban model (150–1500 MHz), the
//!   paper's SU model \[5\];
//! * [`IrregularTerrain`] — Hata plus a terrain-roughness correction
//!   driven by [`crate::terrain::Terrain`], standing in for Longley–Rice
//!   \[29\] (see DESIGN.md).
//!
//! All models implement [`PathLossModel`]; the protocol code is generic
//! over the trait.

mod freespace;
mod hata;
mod terrain_model;

pub use freespace::FreeSpace;
pub use hata::ExtendedHata;
pub use terrain_model::IrregularTerrain;

use crate::units::Db;

/// Antenna geometry for a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkGeometry {
    /// Transmitter antenna height above ground, meters.
    pub tx_height_m: f64,
    /// Receiver antenna height above ground, meters.
    pub rx_height_m: f64,
    /// Carrier frequency in MHz.
    pub freq_mhz: f64,
}

impl LinkGeometry {
    /// A typical WiFi-in-TV-band secondary link: 10 m base, 1.5 m mobile.
    pub fn secondary_default(freq_mhz: f64) -> Self {
        LinkGeometry {
            tx_height_m: 10.0,
            rx_height_m: 1.5,
            freq_mhz,
        }
    }

    /// A TV broadcast link: 200 m tower, 10 m rooftop antenna.
    pub fn broadcast_default(freq_mhz: f64) -> Self {
        LinkGeometry {
            tx_height_m: 200.0,
            rx_height_m: 10.0,
            freq_mhz,
        }
    }
}

/// A propagation model producing path loss as a function of distance.
///
/// Implementations must be monotonically non-decreasing in distance —
/// [`protection_distance`](crate::protection) inverts them by bisection.
pub trait PathLossModel {
    /// Path loss in dB over `distance_m` meters with the given geometry.
    ///
    /// Distances below 1 m are clamped to 1 m.
    fn path_loss_db(&self, distance_m: f64, geom: &LinkGeometry) -> Db;

    /// Linear path gain `h(d) = 10^(−L/10)` — the `h(·)` of the paper's
    /// equations (1), (2) and (5).
    fn path_gain(&self, distance_m: f64, geom: &LinkGeometry) -> f64 {
        (-self.path_loss_db(distance_m, geom)).as_ratio()
    }
}

impl<M: PathLossModel + ?Sized> PathLossModel for &M {
    fn path_loss_db(&self, distance_m: f64, geom: &LinkGeometry) -> Db {
        (**self).path_loss_db(distance_m, geom)
    }
}

/// Inverts a model: the largest distance at which path loss stays at or
/// below `target` (bisection over `[1 m, max_distance_m]`).
///
/// Returns `max_distance_m` if the loss never reaches `target`, and 1.0
/// if even 1 m exceeds it.
pub fn invert_path_loss<M: PathLossModel + ?Sized>(
    model: &M,
    target: Db,
    geom: &LinkGeometry,
    max_distance_m: f64,
) -> f64 {
    let mut lo = 1.0f64;
    let mut hi = max_distance_m;
    if model.path_loss_db(hi, geom).0 <= target.0 {
        return hi;
    }
    if model.path_loss_db(lo, geom).0 >= target.0 {
        return lo;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if model.path_loss_db(mid, geom).0 <= target.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_brackets_target() {
        let model = FreeSpace;
        let geom = LinkGeometry::secondary_default(600.0);
        let target = Db(100.0);
        let d = invert_path_loss(&model, target, &geom, 100_000.0);
        let at = model.path_loss_db(d, &geom).0;
        assert!((at - 100.0).abs() < 0.01, "loss at inverted d = {at}");
    }

    #[test]
    fn inversion_saturates_at_bounds() {
        let model = FreeSpace;
        let geom = LinkGeometry::secondary_default(600.0);
        assert_eq!(invert_path_loss(&model, Db(1e9), &geom, 5000.0), 5000.0);
        assert_eq!(invert_path_loss(&model, Db(-1e9), &geom, 5000.0), 1.0);
    }

    #[test]
    fn path_gain_matches_loss() {
        let model = FreeSpace;
        let geom = LinkGeometry::secondary_default(600.0);
        let loss = model.path_loss_db(1000.0, &geom);
        let gain = model.path_gain(1000.0, &geom);
        assert!((gain - (-loss).as_ratio()).abs() < 1e-15);
        assert!(gain > 0.0 && gain < 1.0);
    }
}
