//! Free-space path loss.

use super::{LinkGeometry, PathLossModel};
use crate::units::Db;

/// Friis free-space path loss:
/// `L = 20·log₁₀(d_km) + 20·log₁₀(f_MHz) + 32.45` dB.
///
/// # Examples
///
/// ```
/// use pisa_radio::pathloss::{FreeSpace, LinkGeometry, PathLossModel};
///
/// let geom = LinkGeometry::secondary_default(600.0);
/// let l = FreeSpace.path_loss_db(1000.0, &geom);
/// assert!((l.0 - 88.0).abs() < 1.0); // ~88 dB at 1 km, 600 MHz
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FreeSpace;

impl PathLossModel for FreeSpace {
    fn path_loss_db(&self, distance_m: f64, geom: &LinkGeometry) -> Db {
        let d_km = (distance_m.max(1.0)) / 1000.0;
        Db(20.0 * d_km.log10() + 20.0 * geom.freq_mhz.log10() + 32.45)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_value_2_4ghz_100m() {
        // FSPL(100 m, 2400 MHz) ≈ 80.05 dB
        let geom = LinkGeometry::secondary_default(2400.0);
        let l = FreeSpace.path_loss_db(100.0, &geom).0;
        assert!((l - 80.05).abs() < 0.1, "l = {l}");
    }

    #[test]
    fn inverse_square_law() {
        // Doubling distance adds ~6.02 dB.
        let geom = LinkGeometry::secondary_default(600.0);
        let l1 = FreeSpace.path_loss_db(500.0, &geom).0;
        let l2 = FreeSpace.path_loss_db(1000.0, &geom).0;
        assert!((l2 - l1 - 6.0206).abs() < 0.001);
    }

    #[test]
    fn monotone_in_distance() {
        let geom = LinkGeometry::secondary_default(600.0);
        let mut prev = f64::NEG_INFINITY;
        for d in [1.0, 10.0, 100.0, 1000.0, 10_000.0] {
            let l = FreeSpace.path_loss_db(d, &geom).0;
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn sub_meter_clamped() {
        let geom = LinkGeometry::secondary_default(600.0);
        assert_eq!(
            FreeSpace.path_loss_db(0.01, &geom),
            FreeSpace.path_loss_db(1.0, &geom)
        );
    }
}
