//! Extended Hata model (sub-urban), the paper's SU propagation model [5].

use super::{FreeSpace, LinkGeometry, PathLossModel};
use crate::units::Db;

/// Extended Hata path loss for sub-urban environments.
///
/// The classic Okumura–Hata urban formula with the sub-urban correction
/// `−2·(log₁₀(f/28))² − 5.4`, extended to short range by taking the
/// maximum with free-space loss (Hata's empirical fit under-predicts
/// loss below ~100 m where free space is the physical floor; the CEPT
/// "Extended Hata" extension has the same behaviour).
///
/// Validity: 150–1500 MHz, base height 1–200 m (clamped), distances up
/// to 20 km. Within the paper's UHF setting (470–890 MHz) this is the
/// intended domain.
///
/// # Examples
///
/// ```
/// use pisa_radio::pathloss::{ExtendedHata, LinkGeometry, PathLossModel};
///
/// let geom = LinkGeometry::secondary_default(600.0);
/// let l = ExtendedHata::suburban().path_loss_db(1000.0, &geom);
/// assert!(l.0 > 100.0); // substantially above free space at 1 km
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedHata {
    /// Environment correction selector.
    environment: Environment,
}

/// Propagation environment for the Hata correction term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Environment {
    /// Dense urban (no correction).
    Urban,
    /// Sub-urban (the paper's setting).
    Suburban,
    /// Open/rural.
    Open,
}

impl ExtendedHata {
    /// The paper's configuration: sub-urban.
    pub fn suburban() -> Self {
        ExtendedHata {
            environment: Environment::Suburban,
        }
    }

    /// Urban variant (for ablations).
    pub fn urban() -> Self {
        ExtendedHata {
            environment: Environment::Urban,
        }
    }

    /// Open-area variant.
    pub fn open() -> Self {
        ExtendedHata {
            environment: Environment::Open,
        }
    }

    /// The raw Hata formula without the free-space floor (exposed for
    /// tests). Below the model's 40 m validity bound the loss is
    /// extended toward short range with the free-space 20 dB/decade
    /// slope (the CEPT Extended Hata short-range treatment), keeping
    /// the curve strictly monotone in distance.
    pub(crate) fn hata_db(&self, distance_m: f64, geom: &LinkGeometry) -> f64 {
        let d_km_true = distance_m.max(1.0) / 1000.0;
        let short_range_adjust = if d_km_true < 0.04 {
            20.0 * (d_km_true / 0.04).log10()
        } else {
            0.0
        };
        let f = geom.freq_mhz.clamp(150.0, 1500.0);
        let hb = geom.tx_height_m.clamp(1.0, 200.0);
        let hm = geom.rx_height_m.clamp(1.0, 10.0);
        let d_km = d_km_true.max(0.04);

        // Mobile antenna correction a(hm) for small/medium cities.
        let a_hm = (1.1 * f.log10() - 0.7) * hm - (1.56 * f.log10() - 0.8);

        let urban = 69.55 + 26.16 * f.log10() - 13.82 * hb.log10() - a_hm
            + (44.9 - 6.55 * hb.log10()) * d_km.log10();

        let env_corrected = match self.environment {
            Environment::Urban => urban,
            Environment::Suburban => urban - 2.0 * (f / 28.0).log10().powi(2) - 5.4,
            Environment::Open => urban - 4.78 * f.log10().powi(2) + 18.33 * f.log10() - 40.94,
        };
        env_corrected + short_range_adjust
    }
}

impl PathLossModel for ExtendedHata {
    fn path_loss_db(&self, distance_m: f64, geom: &LinkGeometry) -> Db {
        let hata = self.hata_db(distance_m, geom);
        let floor = FreeSpace.path_loss_db(distance_m, geom).0;
        Db(hata.max(floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> LinkGeometry {
        LinkGeometry {
            tx_height_m: 30.0,
            rx_height_m: 1.5,
            freq_mhz: 700.0,
        }
    }

    #[test]
    fn textbook_urban_value() {
        // Okumura-Hata urban, f=900 MHz, hb=30 m, hm=1.5 m, d=1 km is a
        // standard worked example: ≈ 126.4 dB.
        let g = LinkGeometry {
            tx_height_m: 30.0,
            rx_height_m: 1.5,
            freq_mhz: 900.0,
        };
        let l = ExtendedHata::urban().hata_db(1000.0, &g);
        assert!((l - 126.4).abs() < 0.5, "l = {l}");
    }

    #[test]
    fn suburban_below_urban() {
        let l_urban = ExtendedHata::urban().path_loss_db(2000.0, &geom()).0;
        let l_sub = ExtendedHata::suburban().path_loss_db(2000.0, &geom()).0;
        let l_open = ExtendedHata::open().path_loss_db(2000.0, &geom()).0;
        assert!(l_sub < l_urban);
        assert!(l_open < l_sub);
    }

    #[test]
    fn floored_by_free_space_at_short_range() {
        let g = geom();
        let l = ExtendedHata::suburban().path_loss_db(5.0, &g);
        let fs = FreeSpace.path_loss_db(5.0, &g);
        assert!(l.0 >= fs.0);
    }

    #[test]
    fn monotone_nondecreasing() {
        let g = geom();
        let m = ExtendedHata::suburban();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..400 {
            let d = 1.0 + i as f64 * 50.0;
            let l = m.path_loss_db(d, &g).0;
            assert!(l >= prev - 1e-9, "not monotone at d = {d}");
            prev = l;
        }
    }

    #[test]
    fn strictly_monotone_at_short_range() {
        // The 20 dB/decade short-range extension removes the flat
        // plateau below 40 m: gains must strictly decrease block to
        // block (this is what lets a curious party triangulate a
        // *plaintext* interference profile — see pisa::adversary).
        let g = geom();
        let m = ExtendedHata::suburban();
        let mut prev = f64::NEG_INFINITY;
        for d in [2.0, 5.0, 10.0, 20.0, 39.0, 41.0, 80.0] {
            let l = m.path_loss_db(d, &g).0;
            assert!(l > prev, "not strictly monotone at d = {d}");
            prev = l;
        }
    }

    #[test]
    fn higher_base_antenna_reduces_loss() {
        let low = LinkGeometry {
            tx_height_m: 10.0,
            ..geom()
        };
        let high = LinkGeometry {
            tx_height_m: 100.0,
            ..geom()
        };
        let m = ExtendedHata::suburban();
        assert!(m.path_loss_db(3000.0, &high).0 < m.path_loss_db(3000.0, &low).0);
    }
}
