//! Block quantization of the SDC service area.
//!
//! WATCH divides the service region into small blocks (normally
//! 10 m × 10 m per the paper) and computes per-block maximum SU EIRP. The
//! paper's evaluation uses **B = 600** blocks and **C = 100** channels
//! (Table I).

use crate::RadioError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one block in the service area (row-major index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block#{}", self.0)
    }
}

/// A point in the service-area plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`, in meters.
    ///
    /// ```
    /// use pisa_radio::grid::Point;
    /// let a = Point { x: 0.0, y: 0.0 };
    /// let b = Point { x: 3.0, y: 4.0 };
    /// assert_eq!(a.distance_m(&b), 5.0);
    /// ```
    pub fn distance_m(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// The quantized service area: a `rows × cols` grid of square blocks.
///
/// # Examples
///
/// ```
/// use pisa_radio::ServiceArea;
///
/// let area = ServiceArea::paper(); // 20 × 30 = 600 blocks of 10 m
/// assert_eq!(area.num_blocks(), 600);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceArea {
    rows: usize,
    cols: usize,
    block_size_m: f64,
}

impl ServiceArea {
    /// Creates a service area of `rows × cols` blocks with the given
    /// block edge length in meters.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the block size non-positive.
    pub fn new(rows: usize, cols: usize, block_size_m: f64) -> Self {
        assert!(rows > 0 && cols > 0, "service area must have blocks");
        assert!(block_size_m > 0.0, "block size must be positive");
        ServiceArea {
            rows,
            cols,
            block_size_m,
        }
    }

    /// The paper's Table I area: 600 blocks (20 × 30) of 10 m × 10 m.
    pub fn paper() -> Self {
        ServiceArea::new(20, 30, 10.0)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of blocks `B`.
    pub fn num_blocks(&self) -> usize {
        self.rows * self.cols
    }

    /// Block edge length in meters.
    pub fn block_size_m(&self) -> f64 {
        self.block_size_m
    }

    /// Validates a block id.
    ///
    /// # Errors
    ///
    /// [`RadioError::BlockOutOfRange`] if the id is outside the grid.
    pub fn check_block(&self, b: BlockId) -> Result<(), RadioError> {
        if b.0 < self.num_blocks() {
            Ok(())
        } else {
            Err(RadioError::BlockOutOfRange {
                block: b.0,
                blocks: self.num_blocks(),
            })
        }
    }

    /// Center coordinates of a block.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_center(&self, b: BlockId) -> Point {
        self.check_block(b).expect("block in range");
        let row = b.0 / self.cols;
        let col = b.0 % self.cols;
        Point {
            x: (col as f64 + 0.5) * self.block_size_m,
            y: (row as f64 + 0.5) * self.block_size_m,
        }
    }

    /// The block containing a point (points outside the area clamp to
    /// the nearest edge block).
    pub fn block_of(&self, p: Point) -> BlockId {
        let col = ((p.x / self.block_size_m) as isize).clamp(0, self.cols as isize - 1) as usize;
        let row = ((p.y / self.block_size_m) as isize).clamp(0, self.rows as isize - 1) as usize;
        BlockId(row * self.cols + col)
    }

    /// Distance in meters between the centers of two blocks.
    pub fn block_distance_m(&self, a: BlockId, b: BlockId) -> f64 {
        self.block_center(a).distance_m(&self.block_center(b))
    }

    /// Iterates over all block ids.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.num_blocks()).map(BlockId)
    }

    /// Blocks whose centers lie within `radius_m` of the center of
    /// `around` — the paper's "all blocks within d^c" set.
    pub fn blocks_within(&self, around: BlockId, radius_m: f64) -> Vec<BlockId> {
        let center = self.block_center(around);
        self.blocks()
            .filter(|&b| self.block_center(b).distance_m(&center) <= radius_m)
            .collect()
    }

    /// The ids of the first `count` blocks — the paper's location-privacy
    /// trade-off restricts the request matrix to a sub-region like "the
    /// north half of the map" (§VI-A); a row-major prefix is exactly such
    /// a contiguous region.
    pub fn region_prefix(&self, count: usize) -> Vec<BlockId> {
        (0..count.min(self.num_blocks())).map(BlockId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let area = ServiceArea::paper();
        assert_eq!(area.num_blocks(), 600);
        assert_eq!(area.rows(), 20);
        assert_eq!(area.cols(), 30);
        assert_eq!(area.block_size_m(), 10.0);
    }

    #[test]
    fn centers_and_lookup_roundtrip() {
        let area = ServiceArea::new(4, 5, 10.0);
        for b in area.blocks() {
            let c = area.block_center(b);
            assert_eq!(area.block_of(c), b);
        }
    }

    #[test]
    fn block_of_clamps_outside_points() {
        let area = ServiceArea::new(2, 2, 10.0);
        assert_eq!(area.block_of(Point { x: -5.0, y: -5.0 }), BlockId(0));
        assert_eq!(area.block_of(Point { x: 100.0, y: 100.0 }), BlockId(3));
    }

    #[test]
    fn distances_symmetric() {
        let area = ServiceArea::new(3, 3, 10.0);
        let (a, b) = (BlockId(0), BlockId(8));
        assert_eq!(area.block_distance_m(a, b), area.block_distance_m(b, a));
        assert_eq!(area.block_distance_m(a, a), 0.0);
    }

    #[test]
    fn blocks_within_radius() {
        let area = ServiceArea::new(5, 5, 10.0);
        let center = BlockId(12); // middle
        let near = area.blocks_within(center, 10.0);
        // center + 4 orthogonal neighbours at exactly 10 m
        assert_eq!(near.len(), 5);
        let all = area.blocks_within(center, 1000.0);
        assert_eq!(all.len(), 25);
    }

    #[test]
    fn region_prefix_counts() {
        let area = ServiceArea::paper();
        assert_eq!(area.region_prefix(300).len(), 300);
        assert_eq!(area.region_prefix(9999).len(), 600);
        assert_eq!(area.region_prefix(0).len(), 0);
    }

    #[test]
    fn check_block_errors() {
        let area = ServiceArea::new(2, 2, 10.0);
        assert!(area.check_block(BlockId(3)).is_ok());
        assert!(area.check_block(BlockId(4)).is_err());
    }

    #[test]
    #[should_panic(expected = "must have blocks")]
    fn empty_area_rejected() {
        let _ = ServiceArea::new(0, 5, 10.0);
    }
}
