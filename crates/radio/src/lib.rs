//! Radio propagation, terrain and spectrum-geometry substrate for the
//! PISA reproduction.
//!
//! The PISA paper evaluates over the WATCH spectrum-sharing system, which
//! in turn needs a propagation substrate: path-loss models, terrain data,
//! a quantized service-area grid, and TV transmitter/receiver signal
//! computations. The original work used the Extended Hata model, the
//! Longley–Rice irregular terrain model and USGS terrain databases; this
//! crate rebuilds those pieces (with a synthetic terrain generator
//! standing in for USGS data — see DESIGN.md).
//!
//! * [`units`] — dB / dBm / milliwatt newtypes and conversions.
//! * [`quantize`] — the fixed-point integer representation of Table I
//!   (60-bit integers).
//! * [`grid`] — the block quantization of the service area.
//! * [`pathloss`] — free-space, Extended Hata (sub-urban) and a
//!   terrain-roughness-adjusted irregular-terrain model.
//! * [`terrain`] — deterministic synthetic heightmaps.
//! * [`tv`] — TV transmitters, receivers and channel frequencies.
//! * [`protection`] — protection distance `d^c` (paper eq. 1) and the
//!   public matrix **E** of maximum SU EIRP per block and channel.
//! * [`airsim`] — a signal-level simulator reproducing the paper's SDR
//!   experiment scenarios (Figures 8–11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airsim;
mod error;
pub mod grid;
pub mod pathloss;
pub mod protection;
pub mod quantize;
pub mod terrain;
pub mod tv;
pub mod units;
pub mod viewer;

pub use error::RadioError;
pub use grid::{BlockId, ServiceArea};
pub use quantize::Quantizer;
pub use units::{Db, Dbm, MilliWatts};
