//! Synthetic terrain heightmaps.
//!
//! The paper relies on public terrain databases (USGS SRTM) consumed
//! through tools like SPLAT. Those datasets are not available offline, so
//! this module generates deterministic synthetic terrain with realistic
//! roughness using multi-octave value noise. The propagation code only
//! ever asks "what is the elevation at (x, y)" and "how rough is the
//! path from A to B", so any heightmap with plausible statistics
//! exercises the same code paths (see DESIGN.md, substitutions).

use crate::grid::Point;
use serde::{Deserialize, Serialize};

/// A deterministic synthetic terrain model.
///
/// # Examples
///
/// ```
/// use pisa_radio::terrain::Terrain;
/// use pisa_radio::grid::Point;
///
/// let t = Terrain::new(42, 120.0);
/// let e = t.elevation_m(Point { x: 100.0, y: 250.0 });
/// assert!(e >= 0.0 && e <= 120.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Terrain {
    seed: u64,
    /// Peak-to-valley elevation range in meters.
    relief_m: f64,
}

impl Terrain {
    /// Creates a terrain with the given seed and total relief (meters).
    ///
    /// # Panics
    ///
    /// Panics if `relief_m` is negative.
    pub fn new(seed: u64, relief_m: f64) -> Self {
        assert!(relief_m >= 0.0, "relief must be non-negative");
        Terrain { seed, relief_m }
    }

    /// Completely flat terrain (useful as a Hata-only baseline).
    pub fn flat() -> Self {
        Terrain::new(0, 0.0)
    }

    /// Elevation at a point, in `[0, relief_m]`.
    pub fn elevation_m(&self, p: Point) -> f64 {
        if self.relief_m == 0.0 {
            return 0.0;
        }
        // Three octaves of value noise at 1 km / 250 m / 60 m wavelengths.
        let n = 0.55 * self.value_noise(p.x / 1000.0, p.y / 1000.0, 1)
            + 0.30 * self.value_noise(p.x / 250.0, p.y / 250.0, 2)
            + 0.15 * self.value_noise(p.x / 60.0, p.y / 60.0, 3);
        n * self.relief_m
    }

    /// Terrain irregularity Δh along the path from `a` to `b`: the
    /// interdecile range of elevations sampled along the straight path —
    /// the roughness parameter of the Longley–Rice model family.
    pub fn interdecile_range_m(&self, a: Point, b: Point) -> f64 {
        if self.relief_m == 0.0 {
            return 0.0;
        }
        const SAMPLES: usize = 32;
        let mut elevations: Vec<f64> = (0..SAMPLES)
            .map(|i| {
                let t = i as f64 / (SAMPLES - 1) as f64;
                self.elevation_m(Point {
                    x: a.x + (b.x - a.x) * t,
                    y: a.y + (b.y - a.y) * t,
                })
            })
            .collect();
        elevations.sort_by(|x, y| x.partial_cmp(y).expect("finite elevations"));
        let lo = elevations[SAMPLES / 10];
        let hi = elevations[SAMPLES - 1 - SAMPLES / 10];
        hi - lo
    }

    /// Smooth value noise in `[0, 1]` for one octave.
    fn value_noise(&self, x: f64, y: f64, octave: u64) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let (x0, y0) = (x0 as i64, y0 as i64);

        let v00 = self.lattice(x0, y0, octave);
        let v10 = self.lattice(x0 + 1, y0, octave);
        let v01 = self.lattice(x0, y0 + 1, octave);
        let v11 = self.lattice(x0 + 1, y0 + 1, octave);

        let sx = smoothstep(fx);
        let sy = smoothstep(fy);
        let a = v00 + (v10 - v00) * sx;
        let b = v01 + (v11 - v01) * sx;
        a + (b - a) * sy
    }

    /// Deterministic pseudo-random lattice value in `[0, 1]`.
    fn lattice(&self, x: i64, y: i64, octave: u64) -> f64 {
        let mut h = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(octave.wrapping_mul(0xbf58476d1ce4e5b9));
        h ^= (x as u64).wrapping_mul(0x94d049bb133111eb);
        h = h.rotate_left(23).wrapping_mul(0x2545f4914f6cdd1d);
        h ^= (y as u64).wrapping_mul(0xd6e8feb86659fd93);
        h = h.rotate_left(29).wrapping_mul(0x9e3779b97f4a7c15);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = Terrain::new(7, 100.0);
        let b = Terrain::new(7, 100.0);
        let p = Point { x: 123.0, y: 456.0 };
        assert_eq!(a.elevation_m(p), b.elevation_m(p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Terrain::new(1, 100.0);
        let b = Terrain::new(2, 100.0);
        let p = Point { x: 500.0, y: 700.0 };
        assert_ne!(a.elevation_m(p), b.elevation_m(p));
    }

    #[test]
    fn elevation_bounded() {
        let t = Terrain::new(3, 150.0);
        for i in 0..100 {
            let p = Point {
                x: i as f64 * 37.0,
                y: i as f64 * 91.0,
            };
            let e = t.elevation_m(p);
            assert!((0.0..=150.0).contains(&e), "e = {e}");
        }
    }

    #[test]
    fn flat_terrain_is_flat() {
        let t = Terrain::flat();
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point {
            x: 5000.0,
            y: 5000.0,
        };
        assert_eq!(t.elevation_m(b), 0.0);
        assert_eq!(t.interdecile_range_m(a, b), 0.0);
    }

    #[test]
    fn continuity() {
        // Neighbouring samples should not jump by more than a small
        // fraction of the relief.
        let t = Terrain::new(11, 100.0);
        let mut prev = t.elevation_m(Point { x: 0.0, y: 0.0 });
        for i in 1..200 {
            let e = t.elevation_m(Point {
                x: i as f64,
                y: 0.0,
            });
            assert!((e - prev).abs() < 15.0, "jump at {i}: {prev} -> {e}");
            prev = e;
        }
    }

    #[test]
    fn roughness_positive_for_rough_terrain() {
        let t = Terrain::new(5, 200.0);
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point {
            x: 8000.0,
            y: 3000.0,
        };
        let idr = t.interdecile_range_m(a, b);
        assert!(idr > 1.0, "idr = {idr}");
    }
}
