//! Power and gain units: dB, dBm and linear milliwatts.
//!
//! Newtypes keep logarithmic and linear quantities from being mixed up
//! (adding two dBm values is meaningless; adding dB to dBm is a gain).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A relative gain or loss in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(pub f64);

/// An absolute power level in dB-milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(pub f64);

/// An absolute power in linear milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MilliWatts(pub f64);

impl Db {
    /// The linear power ratio `10^(dB/10)`.
    ///
    /// ```
    /// use pisa_radio::Db;
    /// assert!((Db(3.0).as_ratio() - 1.995).abs() < 0.01);
    /// ```
    pub fn as_ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a dB gain from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio <= 0`.
    pub fn from_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0, "power ratio must be positive, got {ratio}");
        Db(10.0 * ratio.log10())
    }
}

impl Dbm {
    /// Converts to linear milliwatts.
    ///
    /// ```
    /// use pisa_radio::Dbm;
    /// assert!((Dbm(0.0).to_milliwatts().0 - 1.0).abs() < 1e-12);
    /// assert!((Dbm(30.0).to_milliwatts().0 - 1000.0).abs() < 1e-9);
    /// ```
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(10f64.powf(self.0 / 10.0))
    }
}

impl MilliWatts {
    /// Converts to dBm.
    ///
    /// # Panics
    ///
    /// Panics if the power is not positive.
    pub fn to_dbm(self) -> Dbm {
        assert!(self.0 > 0.0, "cannot express {} mW in dBm", self.0);
        Dbm(10.0 * self.0.log10())
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl fmt::Display for MilliWatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} mW", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_roundtrip() {
        for v in [-100.0f64, -30.0, 0.0, 10.0, 36.0] {
            let mw = Dbm(v).to_milliwatts();
            assert!((mw.to_dbm().0 - v).abs() < 1e-9, "{v} dBm");
        }
    }

    #[test]
    fn db_ratio_roundtrip() {
        for v in [-40.0f64, -3.0, 0.0, 3.0, 20.0] {
            assert!((Db::from_ratio(Db(v).as_ratio()).0 - v).abs() < 1e-9);
        }
    }

    #[test]
    fn gain_arithmetic() {
        let p = Dbm(20.0) + Db(10.0);
        assert_eq!(p, Dbm(30.0));
        assert_eq!(Dbm(20.0) - Dbm(17.0), Db(3.0));
        assert_eq!(Db(3.0) + Db(4.0), Db(7.0));
        assert_eq!(-Db(5.0), Db(-5.0));
    }

    #[test]
    #[should_panic(expected = "in dBm")]
    fn zero_milliwatts_has_no_dbm() {
        let _ = MilliWatts(0.0).to_dbm();
    }

    #[test]
    fn display_formats() {
        assert_eq!(Db(3.0).to_string(), "3.00 dB");
        assert_eq!(Dbm(-82.5).to_string(), "-82.50 dBm");
    }
}
