//! TV viewer behaviour: virtual channels and switching rates.
//!
//! The paper (§VI-A, citing Ellingsæter et al. \[16\]) argues PU updates
//! are rare enough for PISA to be practical: viewers switch *virtual*
//! channels 2.3–2.7 times per hour on average, but several virtual
//! channels ride on one *physical* channel, and only a physical-channel
//! change requires an (expensive, encrypted) SDC update. This module
//! models that distinction so the claim is simulable.

use crate::tv::Channel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A virtual channel number, what the viewer actually zaps through.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VirtualChannel(pub usize);

/// The virtual → physical channel lineup of a market.
///
/// # Examples
///
/// ```
/// use pisa_radio::viewer::{ChannelLineup, VirtualChannel};
///
/// // 4 physical channels, 3 virtual sub-channels each (like 7.1/7.2/7.3).
/// let lineup = ChannelLineup::uniform(4, 3);
/// assert_eq!(lineup.num_virtual(), 12);
/// assert_eq!(lineup.physical_of(VirtualChannel(4)).0, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelLineup {
    /// `mapping[v]` = physical channel of virtual channel `v`.
    mapping: Vec<Channel>,
}

impl ChannelLineup {
    /// A lineup where every physical channel carries the same number of
    /// virtual sub-channels.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn uniform(physical: usize, virtual_per_physical: usize) -> Self {
        assert!(
            physical > 0 && virtual_per_physical > 0,
            "lineup must be non-empty"
        );
        ChannelLineup {
            mapping: (0..physical * virtual_per_physical)
                .map(|v| Channel(v / virtual_per_physical))
                .collect(),
        }
    }

    /// A custom lineup from an explicit mapping.
    ///
    /// # Panics
    ///
    /// Panics on an empty mapping.
    pub fn from_mapping(mapping: Vec<Channel>) -> Self {
        assert!(!mapping.is_empty(), "lineup must be non-empty");
        ChannelLineup { mapping }
    }

    /// Number of virtual channels.
    pub fn num_virtual(&self) -> usize {
        self.mapping.len()
    }

    /// Number of distinct physical channels.
    pub fn num_physical(&self) -> usize {
        let mut chans: Vec<usize> = self.mapping.iter().map(|c| c.0).collect();
        chans.sort_unstable();
        chans.dedup();
        chans.len()
    }

    /// The physical channel carrying a virtual channel.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn physical_of(&self, v: VirtualChannel) -> Channel {
        self.mapping[v.0]
    }
}

/// A memoryless viewer that switches virtual channels at a fixed hourly
/// rate (the paper's 2.3–2.7/hour) with uniform destination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewerModel {
    /// Average virtual-channel switches per hour.
    pub switches_per_hour: f64,
}

impl ViewerModel {
    /// The paper's cited average: 2.5 switches/hour (middle of 2.3–2.7).
    pub fn paper_average() -> Self {
        ViewerModel {
            switches_per_hour: 2.5,
        }
    }
}

/// Outcome of simulating one viewer over a period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChurnStats {
    /// Virtual-channel switches performed.
    pub virtual_switches: usize,
    /// Switches that crossed a physical channel — each one costs an
    /// encrypted PU update in PISA.
    pub physical_switches: usize,
}

impl ChurnStats {
    /// Fraction of zaps that required an SDC update.
    pub fn update_fraction(&self) -> f64 {
        if self.virtual_switches == 0 {
            0.0
        } else {
            self.physical_switches as f64 / self.virtual_switches as f64
        }
    }
}

/// Simulates `hours` of viewing: returns the churn statistics and the
/// final virtual channel. Switch counts per hour are Poisson-like
/// (binomial over minute slots).
pub fn simulate_viewer<R: Rng + ?Sized>(
    rng: &mut R,
    lineup: &ChannelLineup,
    model: &ViewerModel,
    hours: usize,
    start: VirtualChannel,
) -> (ChurnStats, VirtualChannel) {
    assert!(start.0 < lineup.num_virtual(), "start channel in lineup");
    let per_minute = model.switches_per_hour / 60.0;
    let mut stats = ChurnStats::default();
    let mut current = start;
    for _ in 0..hours * 60 {
        let roll = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        if roll < per_minute {
            let next = VirtualChannel((rng.next_u64() as usize) % lineup.num_virtual());
            if next != current {
                stats.virtual_switches += 1;
                if lineup.physical_of(next) != lineup.physical_of(current) {
                    stats.physical_switches += 1;
                }
                current = next;
            }
        }
    }
    (stats, current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_lineup_structure() {
        let lineup = ChannelLineup::uniform(5, 4);
        assert_eq!(lineup.num_virtual(), 20);
        assert_eq!(lineup.num_physical(), 5);
        assert_eq!(lineup.physical_of(VirtualChannel(0)), Channel(0));
        assert_eq!(lineup.physical_of(VirtualChannel(19)), Channel(4));
    }

    #[test]
    fn custom_mapping() {
        let lineup = ChannelLineup::from_mapping(vec![Channel(7), Channel(7), Channel(9)]);
        assert_eq!(lineup.num_virtual(), 3);
        assert_eq!(lineup.num_physical(), 2);
    }

    #[test]
    fn switch_rate_matches_model() {
        // Over many simulated hours the observed rate approaches the
        // configured 2.5/hour.
        let mut rng = StdRng::seed_from_u64(10);
        let lineup = ChannelLineup::uniform(10, 3);
        let model = ViewerModel::paper_average();
        let hours = 4000;
        let (stats, _) = simulate_viewer(&mut rng, &lineup, &model, hours, VirtualChannel(0));
        let rate = stats.virtual_switches as f64 / hours as f64;
        assert!(
            (2.0..3.0).contains(&rate),
            "observed {rate:.2} switches/hour"
        );
    }

    #[test]
    fn physical_switches_are_a_fraction_of_virtual() {
        // With 3 virtual channels per physical channel and uniform
        // destinations, most zaps still cross physical channels — but a
        // measurable share does not (paper: "the rate of switching
        // between physical channels is much lower").
        let mut rng = StdRng::seed_from_u64(11);
        let lineup = ChannelLineup::uniform(4, 5); // 20 virtual on 4 physical
        let model = ViewerModel::paper_average();
        let (stats, _) = simulate_viewer(&mut rng, &lineup, &model, 2000, VirtualChannel(0));
        assert!(stats.physical_switches < stats.virtual_switches);
        // Uniform destination over 20 channels: P(same physical | switch)
        // = 4/19 ≈ 0.21, so update fraction ≈ 0.79.
        let f = stats.update_fraction();
        assert!((0.7..0.9).contains(&f), "update fraction = {f:.2}");
    }

    #[test]
    fn single_physical_channel_never_updates() {
        let mut rng = StdRng::seed_from_u64(12);
        let lineup = ChannelLineup::uniform(1, 8);
        let model = ViewerModel::paper_average();
        let (stats, _) = simulate_viewer(&mut rng, &lineup, &model, 500, VirtualChannel(2));
        assert!(stats.virtual_switches > 0);
        assert_eq!(stats.physical_switches, 0);
        assert_eq!(stats.update_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_lineup_rejected() {
        let _ = ChannelLineup::uniform(0, 3);
    }
}
