//! Signal-level air interface simulator.
//!
//! The paper's §VI-B validates PISA on a USRP software-defined-radio
//! testbed: two SUs and one PU around channel 6 at 2.437 GHz, observed
//! with GNU Radio (Figures 7–11). This module is the software stand-in:
//! nodes transmit packets on a channel, and an observer samples the
//! received waveform envelope, with amplitude set by free-space loss at
//! the node distance — reproducing the paper's headline observable that
//! the two SUs arrive with visibly different amplitudes because their
//! distances differ (Figure 8).

use crate::grid::Point;
use crate::pathloss::{FreeSpace, LinkGeometry, PathLossModel};
use crate::units::Dbm;
use serde::{Deserialize, Serialize};

/// A radio node in the testbed (USRP stand-in).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name ("SU1", "PU", …).
    pub name: String,
    /// Position in meters.
    pub location: Point,
    /// Transmit power.
    pub tx_power_dbm: f64,
    /// Antenna height (tabletop USRPs: ~1 m).
    pub antenna_height_m: f64,
}

impl Node {
    /// A tabletop USRP-like node: 10 dBm, 1 m antenna.
    pub fn usrp(name: &str, location: Point) -> Self {
        Node {
            name: name.to_owned(),
            location,
            tx_power_dbm: 10.0,
            antenna_height_m: 1.0,
        }
    }
}

/// One packet transmission on the shared channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transmission {
    /// Index of the transmitting node.
    pub node: usize,
    /// Start time in microseconds.
    pub start_us: f64,
    /// Duration in microseconds.
    pub duration_us: f64,
}

/// A packet as seen by the observing node: arrival time and envelope
/// amplitude (normalized so 0 dBm received = 1.0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketObservation {
    /// Name of the transmitting node.
    pub from: String,
    /// Arrival time in microseconds (propagation delay ignored at lab
    /// scale).
    pub time_us: f64,
    /// Duration in microseconds.
    pub duration_us: f64,
    /// Envelope amplitude at the observer.
    pub amplitude: f64,
    /// Received power at the observer.
    pub rx_power_dbm: f64,
}

/// The shared-channel simulator.
///
/// # Examples
///
/// ```
/// use pisa_radio::airsim::{AirSim, Node};
/// use pisa_radio::grid::Point;
///
/// let mut sim = AirSim::wifi_channel6();
/// let su1 = sim.add_node(Node::usrp("SU1", Point { x: 2.0, y: 0.0 }));
/// let pu = sim.add_node(Node::usrp("PU", Point { x: 0.0, y: 0.0 }));
/// sim.transmit(su1, 0.0, 100.0);
/// let seen = sim.observe(pu);
/// assert_eq!(seen.len(), 1);
/// assert_eq!(seen[0].from, "SU1");
/// ```
#[derive(Debug, Clone, Default)]
pub struct AirSim {
    freq_mhz: f64,
    nodes: Vec<Node>,
    schedule: Vec<Transmission>,
}

impl AirSim {
    /// A simulator on the paper's experiment channel: WiFi channel 6,
    /// 2.437 GHz, 22 MHz bandwidth.
    pub fn wifi_channel6() -> Self {
        AirSim {
            freq_mhz: 2437.0,
            nodes: Vec::new(),
            schedule: Vec::new(),
        }
    }

    /// Carrier frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Registers a node and returns its index.
    pub fn add_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// The registered nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Schedules a packet transmission from node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not registered or the duration is
    /// non-positive.
    pub fn transmit(&mut self, node: usize, start_us: f64, duration_us: f64) {
        assert!(node < self.nodes.len(), "unknown node index {node}");
        assert!(duration_us > 0.0, "transmission must have duration");
        self.schedule.push(Transmission {
            node,
            start_us,
            duration_us,
        });
    }

    /// Removes all scheduled transmissions (start of a new scenario).
    pub fn clear_schedule(&mut self) {
        self.schedule.clear();
    }

    /// Received power at `observer` for a packet from `tx`.
    pub fn rx_power_dbm(&self, tx: usize, observer: usize) -> f64 {
        let txn = &self.nodes[tx];
        let obs = &self.nodes[observer];
        let d = txn.location.distance_m(&obs.location);
        let geom = LinkGeometry {
            tx_height_m: txn.antenna_height_m,
            rx_height_m: obs.antenna_height_m,
            freq_mhz: self.freq_mhz,
        };
        (Dbm(txn.tx_power_dbm) - FreeSpace.path_loss_db(d, &geom)).0
    }

    /// Renders the envelope waveform `observer` would display (the
    /// GNU-Radio-style trace of Figure 8): amplitude samples over
    /// `duration_us` at `samples_per_us`, with overlapping packets
    /// summing and a small constant noise floor.
    ///
    /// # Panics
    ///
    /// Panics if the observer is unknown or the parameters are
    /// non-positive.
    pub fn render_trace(&self, observer: usize, duration_us: f64, samples_per_us: f64) -> Vec<f64> {
        assert!(observer < self.nodes.len(), "unknown observer {observer}");
        assert!(
            duration_us > 0.0 && samples_per_us > 0.0,
            "trace needs positive duration and rate"
        );
        const NOISE_FLOOR: f64 = 1e-9;
        let packets = self.observe(observer);
        let n = (duration_us * samples_per_us).ceil() as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 / samples_per_us;
                NOISE_FLOOR
                    + packets
                        .iter()
                        .filter(|p| t >= p.time_us && t < p.time_us + p.duration_us)
                        .map(|p| p.amplitude)
                        .sum::<f64>()
            })
            .collect()
    }

    /// What node `observer` sees: every scheduled packet from other
    /// nodes, sorted by arrival time, with amplitude from the link
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `observer` is not registered.
    pub fn observe(&self, observer: usize) -> Vec<PacketObservation> {
        assert!(observer < self.nodes.len(), "unknown observer {observer}");
        let mut seen: Vec<PacketObservation> = self
            .schedule
            .iter()
            .filter(|t| t.node != observer)
            .map(|t| {
                let rx_dbm = self.rx_power_dbm(t.node, observer);
                PacketObservation {
                    from: self.nodes[t.node].name.clone(),
                    time_us: t.start_us,
                    duration_us: t.duration_us,
                    amplitude: Dbm(rx_dbm).to_milliwatts().0.sqrt(),
                    rx_power_dbm: rx_dbm,
                }
            })
            .collect();
        seen.sort_by(|a, b| a.time_us.partial_cmp(&b.time_us).expect("finite times"));
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_node_sim() -> (AirSim, usize, usize, usize) {
        let mut sim = AirSim::wifi_channel6();
        let su1 = sim.add_node(Node::usrp("SU1", Point { x: 2.0, y: 0.0 }));
        let su2 = sim.add_node(Node::usrp("SU2", Point { x: 6.0, y: 0.0 }));
        let pu = sim.add_node(Node::usrp("PU", Point { x: 0.0, y: 0.0 }));
        (sim, su1, su2, pu)
    }

    #[test]
    fn closer_node_has_larger_amplitude() {
        // Figure 8: the two SU waveforms differ in amplitude because the
        // distances differ.
        let (mut sim, su1, su2, pu) = three_node_sim();
        sim.transmit(su1, 0.0, 100.0);
        sim.transmit(su2, 180.0, 100.0);
        let seen = sim.observe(pu);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].from, "SU1");
        assert!(seen[0].amplitude > seen[1].amplitude);
    }

    #[test]
    fn observer_does_not_hear_itself() {
        let (mut sim, su1, _, pu) = three_node_sim();
        sim.transmit(pu, 0.0, 50.0);
        sim.transmit(su1, 10.0, 50.0);
        let seen = sim.observe(pu);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].from, "SU1");
    }

    #[test]
    fn observations_sorted_by_time() {
        let (mut sim, su1, su2, pu) = three_node_sim();
        sim.transmit(su2, 300.0, 10.0);
        sim.transmit(su1, 100.0, 10.0);
        sim.transmit(su2, 200.0, 10.0);
        let times: Vec<f64> = sim.observe(pu).iter().map(|p| p.time_us).collect();
        assert_eq!(times, vec![100.0, 200.0, 300.0]);
    }

    #[test]
    fn clear_schedule_resets() {
        let (mut sim, su1, _, pu) = three_node_sim();
        sim.transmit(su1, 0.0, 10.0);
        sim.clear_schedule();
        assert!(sim.observe(pu).is_empty());
    }

    #[test]
    fn rx_power_decays_with_distance() {
        let (sim, su1, su2, pu) = three_node_sim();
        assert!(sim.rx_power_dbm(su1, pu) > sim.rx_power_dbm(su2, pu));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_panics() {
        let (mut sim, ..) = three_node_sim();
        sim.transmit(99, 0.0, 10.0);
    }

    #[test]
    fn trace_shows_packets_at_the_right_times() {
        // Figure 8's observable: distinct bursts above the noise floor
        // at the scheduled instants, quiet in between.
        let (mut sim, su1, su2, pu) = three_node_sim();
        sim.transmit(su1, 10.0, 20.0);
        sim.transmit(su2, 60.0, 20.0);
        let trace = sim.render_trace(pu, 100.0, 1.0);
        assert_eq!(trace.len(), 100);

        let noise = trace[0];
        assert!(trace[15] > 10.0 * noise, "SU1 burst missing");
        assert!(trace[70] > 10.0 * noise, "SU2 burst missing");
        assert!(trace[45] < trace[15] / 10.0, "gap not quiet");
        // SU1 (closer) renders taller than SU2.
        assert!(trace[15] > trace[70]);
    }

    #[test]
    fn overlapping_packets_superpose() {
        let (mut sim, su1, su2, pu) = three_node_sim();
        sim.transmit(su1, 0.0, 50.0);
        sim.transmit(su2, 0.0, 50.0);
        let trace = sim.render_trace(pu, 50.0, 1.0);
        let solo1 = sim.rx_power_dbm(su1, pu);
        let a1 = crate::Dbm(solo1).to_milliwatts().0.sqrt();
        let solo2 = sim.rx_power_dbm(su2, pu);
        let a2 = crate::Dbm(solo2).to_milliwatts().0.sqrt();
        assert!((trace[25] - (a1 + a2)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn empty_trace_rejected() {
        let (sim, .., pu) = three_node_sim();
        let _ = sim.render_trace(pu, 0.0, 1.0);
    }
}
