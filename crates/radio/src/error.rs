//! Error type for the radio substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the radio substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RadioError {
    /// A block index is outside the service area.
    BlockOutOfRange {
        /// Offending index.
        block: usize,
        /// Number of blocks in the area.
        blocks: usize,
    },
    /// A channel index is outside the configured channel count.
    ChannelOutOfRange {
        /// Offending index.
        channel: usize,
        /// Number of channels.
        channels: usize,
    },
    /// A quantized value overflowed the configured integer width.
    QuantizationOverflow {
        /// The linear value that overflowed.
        value_mw: f64,
        /// Configured integer width in bits.
        bits: u32,
    },
    /// A model was evaluated outside its validity range and strict mode
    /// is on.
    ModelDomain(String),
}

impl fmt::Display for RadioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadioError::BlockOutOfRange { block, blocks } => {
                write!(f, "block {block} out of range (area has {blocks} blocks)")
            }
            RadioError::ChannelOutOfRange { channel, channels } => {
                write!(f, "channel {channel} out of range ({channels} channels)")
            }
            RadioError::QuantizationOverflow { value_mw, bits } => {
                write!(f, "value {value_mw} mW overflows {bits}-bit representation")
            }
            RadioError::ModelDomain(msg) => write!(f, "model domain violation: {msg}"),
        }
    }
}

impl Error for RadioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        let e = RadioError::BlockOutOfRange {
            block: 700,
            blocks: 600,
        };
        assert!(e.to_string().contains("700"));
        assert!(e.to_string().contains("600"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RadioError>();
    }
}
