//! Fixed-point quantization: the paper's "60-bit integer representation"
//! (Table I).
//!
//! PISA computes over integers inside Paillier, so every linear power
//! value (milliwatts, path gains, products of the two) is mapped to a
//! fixed-point integer `round(value · 2^frac_bits)`. The default
//! configuration gives 60-bit integers, "which satisfies FCC regulation
//! and SPLAT" per §VI-A.

use crate::RadioError;
use serde::{Deserialize, Serialize};

/// A fixed-point quantizer mapping linear milliwatt values to integers.
///
/// # Examples
///
/// ```
/// use pisa_radio::Quantizer;
///
/// let q = Quantizer::paper();
/// let v = q.quantize(1.5).unwrap();
/// assert!((q.dequantize(v) - 1.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quantizer {
    frac_bits: u32,
    total_bits: u32,
}

impl Quantizer {
    /// Creates a quantizer with `frac_bits` fractional bits and a total
    /// width of `total_bits`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frac_bits < total_bits <= 120` (products of two
    /// quantized values must fit in `i128` in the plaintext baseline).
    pub fn new(frac_bits: u32, total_bits: u32) -> Self {
        assert!(
            frac_bits > 0 && frac_bits < total_bits && total_bits <= 120,
            "invalid quantizer configuration ({frac_bits}/{total_bits})"
        );
        Quantizer {
            frac_bits,
            total_bits,
        }
    }

    /// The paper's configuration: 60-bit integers with 40 fractional
    /// bits (values up to ~10⁶ mW, resolution ~10⁻¹² mW).
    pub fn paper() -> Self {
        Quantizer::new(40, 60)
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Total integer width in bits.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Quantizes a non-negative linear value.
    ///
    /// # Errors
    ///
    /// Returns [`RadioError::QuantizationOverflow`] when the result would
    /// exceed the configured width, and [`RadioError::ModelDomain`] for
    /// negative or non-finite inputs.
    pub fn quantize(&self, value_mw: f64) -> Result<i128, RadioError> {
        if !value_mw.is_finite() || value_mw < 0.0 {
            return Err(RadioError::ModelDomain(format!(
                "cannot quantize power value {value_mw}"
            )));
        }
        let scaled = value_mw * (self.frac_bits as f64).exp2();
        if scaled >= (self.total_bits as f64).exp2() {
            return Err(RadioError::QuantizationOverflow {
                value_mw,
                bits: self.total_bits,
            });
        }
        Ok(scaled.round() as i128)
    }

    /// Quantizes, saturating at the maximum representable value instead
    /// of failing (used for headroom-limited public matrices).
    pub fn quantize_saturating(&self, value_mw: f64) -> i128 {
        match self.quantize(value_mw) {
            Ok(v) => v,
            Err(RadioError::QuantizationOverflow { .. }) => self.max_value(),
            Err(_) => 0,
        }
    }

    /// Maps a quantized integer back to the linear domain.
    pub fn dequantize(&self, v: i128) -> f64 {
        v as f64 / (self.frac_bits as f64).exp2()
    }

    /// Largest representable quantized value.
    pub fn max_value(&self) -> i128 {
        (1i128 << self.total_bits) - 1
    }

    /// Quantization resolution in milliwatts.
    pub fn resolution_mw(&self) -> f64 {
        (-(self.frac_bits as f64)).exp2()
    }
}

impl Default for Quantizer {
    fn default() -> Self {
        Quantizer::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings() {
        let q = Quantizer::paper();
        assert_eq!(q.total_bits(), 60);
        assert_eq!(q.frac_bits(), 40);
        assert_eq!(q.max_value(), (1i128 << 60) - 1);
    }

    #[test]
    fn roundtrip_within_resolution() {
        let q = Quantizer::paper();
        for v in [0.0f64, 1e-9, 0.001, 1.0, 1234.567, 1e5] {
            let quantized = q.quantize(v).unwrap();
            assert!(
                (q.dequantize(quantized) - v).abs() <= q.resolution_mw(),
                "v = {v}"
            );
        }
    }

    #[test]
    fn overflow_detected() {
        let q = Quantizer::paper();
        let too_big = 2e6 * 1e12; // far beyond 2^20 mW of headroom
        assert!(matches!(
            q.quantize(too_big),
            Err(RadioError::QuantizationOverflow { .. })
        ));
        assert_eq!(q.quantize_saturating(too_big), q.max_value());
    }

    #[test]
    fn rejects_negative_and_nan() {
        let q = Quantizer::paper();
        assert!(q.quantize(-1.0).is_err());
        assert!(q.quantize(f64::NAN).is_err());
        assert!(q.quantize(f64::INFINITY).is_err());
        assert_eq!(q.quantize_saturating(-1.0), 0);
    }

    #[test]
    fn ordering_preserved() {
        let q = Quantizer::paper();
        let a = q.quantize(0.5).unwrap();
        let b = q.quantize(0.50001).unwrap();
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "invalid quantizer")]
    fn zero_frac_bits_rejected() {
        let _ = Quantizer::new(0, 60);
    }
}
