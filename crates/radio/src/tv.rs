//! TV channels, transmitters and receivers.

use crate::grid::Point;
use crate::pathloss::{IrregularTerrain, LinkGeometry};
use crate::units::{Db, Dbm};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A (physical) TV channel index `c ∈ [0, C)`.
///
/// US UHF channel `14 + c`, 6 MHz wide starting at 470 MHz.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Channel(pub usize);

impl Channel {
    /// Center frequency of the 6-MHz channel, in MHz.
    ///
    /// ```
    /// use pisa_radio::tv::Channel;
    /// assert_eq!(Channel(0).center_freq_mhz(), 473.0);
    /// assert_eq!(Channel(10).center_freq_mhz(), 533.0);
    /// ```
    pub fn center_freq_mhz(self) -> f64 {
        470.0 + 6.0 * self.0 as f64 + 3.0
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A TV broadcast transmitter (public knowledge in WATCH and PISA).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TvTransmitter {
    /// Tower location.
    pub location: Point,
    /// Effective isotropic radiated power.
    pub eirp_dbm: f64,
    /// Antenna height above ground, meters.
    pub antenna_height_m: f64,
    /// Broadcast channel.
    pub channel: Channel,
    /// Nominal service-contour radius, meters.
    pub service_radius_m: f64,
}

impl TvTransmitter {
    /// A typical full-power UHF station: 1 MW EIRP, 200 m tower, ~60 km
    /// service radius.
    pub fn full_power(location: Point, channel: Channel) -> Self {
        TvTransmitter {
            location,
            eirp_dbm: 90.0, // 1 MW
            antenna_height_m: 200.0,
            channel,
            service_radius_m: 60_000.0,
        }
    }

    /// Link geometry from this tower to a ground receiver.
    pub fn geometry(&self) -> LinkGeometry {
        LinkGeometry {
            tx_height_m: self.antenna_height_m,
            rx_height_m: 10.0,
            freq_mhz: self.channel.center_freq_mhz(),
        }
    }

    /// Mean received TV signal strength at `rx` through `model` — the
    /// paper's `S^PU_{c,i}` computed "by the L-R irregular terrain
    /// model".
    pub fn signal_at(&self, model: &IrregularTerrain, rx: Point) -> Dbm {
        let loss: Db = model.path_loss_between(self.location, rx, &self.geometry());
        Dbm(self.eirp_dbm) - loss
    }
}

/// An active TV receiver (a PU in PISA's terminology).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TvReceiver {
    /// Receiver location (fixed and registered — public per §III-D).
    pub location: Point,
    /// Channel currently being received; `None` when switched off.
    ///
    /// This field is exactly the private datum PISA protects.
    pub tuned: Option<Channel>,
}

impl TvReceiver {
    /// A receiver at `location` tuned to `channel`.
    pub fn tuned_to(location: Point, channel: Channel) -> Self {
        TvReceiver {
            location,
            tuned: Some(channel),
        }
    }

    /// A powered-off receiver.
    pub fn off(location: Point) -> Self {
        TvReceiver {
            location,
            tuned: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::Terrain;

    #[test]
    fn channel_frequencies_ascend() {
        for c in 0..99 {
            assert!(Channel(c).center_freq_mhz() < Channel(c + 1).center_freq_mhz());
        }
        assert_eq!(Channel(0).center_freq_mhz(), 473.0);
    }

    #[test]
    fn signal_decays_with_distance() {
        let tx = TvTransmitter::full_power(Point { x: 0.0, y: 0.0 }, Channel(5));
        let model = IrregularTerrain::new(Terrain::flat());
        let near = tx.signal_at(&model, Point { x: 5000.0, y: 0.0 });
        let far = tx.signal_at(
            &model,
            Point {
                x: 50_000.0,
                y: 0.0,
            },
        );
        assert!(near.0 > far.0);
    }

    #[test]
    fn full_power_station_serves_contour() {
        // At the 60 km contour the signal should still exceed the ATSC
        // planning threshold of roughly -84 dBm.
        let tx = TvTransmitter::full_power(Point { x: 0.0, y: 0.0 }, Channel(5));
        let model = IrregularTerrain::new(Terrain::flat());
        let edge = tx.signal_at(
            &model,
            Point {
                x: tx.service_radius_m,
                y: 0.0,
            },
        );
        assert!(edge.0 > -84.0, "edge signal = {edge}");
    }

    #[test]
    fn receiver_states() {
        let rx = TvReceiver::tuned_to(Point { x: 1.0, y: 2.0 }, Channel(3));
        assert_eq!(rx.tuned, Some(Channel(3)));
        let off = TvReceiver::off(Point { x: 1.0, y: 2.0 });
        assert_eq!(off.tuned, None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Channel(7).to_string(), "ch7");
    }
}
