//! Property-based tests for the radio substrate.

use pisa_radio::grid::Point;
use pisa_radio::pathloss::{
    ExtendedHata, FreeSpace, IrregularTerrain, LinkGeometry, PathLossModel,
};
use pisa_radio::protection::{protection_distance, ProtectionParams};
use pisa_radio::terrain::Terrain;
use pisa_radio::tv::Channel;
use pisa_radio::{Dbm, Quantizer, ServiceArea};
use proptest::prelude::*;

fn geometry() -> impl Strategy<Value = LinkGeometry> {
    (150.0f64..1500.0, 1.0f64..200.0, 1.0f64..10.0).prop_map(|(f, tx, rx)| LinkGeometry {
        tx_height_m: tx,
        rx_height_m: rx,
        freq_mhz: f,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantizer_roundtrip_and_order(a in 0.0f64..1e5, b in 0.0f64..1e5) {
        let q = Quantizer::paper();
        let qa = q.quantize(a).unwrap();
        let qb = q.quantize(b).unwrap();
        prop_assert!((q.dequantize(qa) - a).abs() <= q.resolution_mw());
        if a < b - q.resolution_mw() {
            prop_assert!(qa <= qb);
        }
        prop_assert!(qa >= 0);
    }

    #[test]
    fn dbm_mw_roundtrip(dbm in -120.0f64..60.0) {
        let mw = Dbm(dbm).to_milliwatts();
        prop_assert!((mw.to_dbm().0 - dbm).abs() < 1e-9);
        prop_assert!(mw.0 > 0.0);
    }

    #[test]
    fn grid_roundtrip(rows in 1usize..40, cols in 1usize..40, size in 1.0f64..100.0) {
        let area = ServiceArea::new(rows, cols, size);
        for b in area.blocks() {
            prop_assert_eq!(area.block_of(area.block_center(b)), b);
        }
    }

    #[test]
    fn path_loss_monotone_and_gain_bounded(
        geom in geometry(),
        d1 in 1.0f64..20_000.0,
        d2 in 1.0f64..20_000.0,
    ) {
        let models: [&dyn PathLossModel; 2] = [&FreeSpace, &ExtendedHata::suburban()];
        for model in models {
            let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            let l_near = model.path_loss_db(near, &geom).0;
            let l_far = model.path_loss_db(far, &geom).0;
            prop_assert!(l_far >= l_near - 1e-9, "loss not monotone");
            let g = model.path_gain(far, &geom);
            prop_assert!(g > 0.0 && g.is_finite());
        }
    }

    #[test]
    fn hata_never_below_free_space(geom in geometry(), d in 1.0f64..20_000.0) {
        let hata = ExtendedHata::suburban().path_loss_db(d, &geom).0;
        let fs = FreeSpace.path_loss_db(d, &geom).0;
        prop_assert!(hata >= fs - 1e-9);
    }

    #[test]
    fn terrain_model_at_least_hata(
        seed in any::<u64>(),
        relief in 0.0f64..300.0,
        d in 10.0f64..10_000.0,
    ) {
        let geom = LinkGeometry::secondary_default(600.0);
        let model = IrregularTerrain::new(Terrain::new(seed, relief));
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: d, y: 0.0 };
        let with_terrain = model.path_loss_between(a, b, &geom).0;
        let base = ExtendedHata::suburban().path_loss_db(d, &geom).0;
        prop_assert!(with_terrain >= base - 1e-9);
    }

    #[test]
    fn terrain_elevation_bounded_and_deterministic(
        seed in any::<u64>(),
        relief in 0.0f64..500.0,
        x in -10_000.0f64..10_000.0,
        y in -10_000.0f64..10_000.0,
    ) {
        let t = Terrain::new(seed, relief);
        let p = Point { x, y };
        let e = t.elevation_m(p);
        prop_assert!(e >= 0.0 && e <= relief);
        prop_assert_eq!(e, Terrain::new(seed, relief).elevation_m(p));
    }

    #[test]
    fn protection_distance_brackets_threshold(ch in 0usize..100) {
        // At d^c the full-power SU interference sits at (or just below)
        // the protection budget; just inside it exceeds the budget.
        let params = ProtectionParams::atsc_defaults();
        let model = ExtendedHata::suburban();
        let channel = Channel(ch);
        let d = protection_distance(&model, &params, channel, 100_000.0);
        prop_assert!(d >= 1.0);
        if d > 2.0 && d < 99_999.0 {
            let geom = LinkGeometry::secondary_default(channel.center_freq_mhz());
            let budget = params.pu_min_signal_mw() / params.x_linear();
            let at = params.su_max_eirp_mw() * model.path_gain(d, &geom);
            let inside = params.su_max_eirp_mw() * model.path_gain(d * 0.9, &geom);
            prop_assert!(at <= budget * 1.01, "at d^c: {at} vs {budget}");
            prop_assert!(inside >= budget * 0.99, "inside d^c: {inside} vs {budget}");
        }
    }

    #[test]
    fn blocks_within_radius_is_consistent(
        rows in 2usize..10,
        cols in 2usize..10,
        around in 0usize..4,
        radius in 0.0f64..500.0,
    ) {
        let area = ServiceArea::new(rows, cols, 10.0);
        let around = pisa_radio::BlockId(around % area.num_blocks());
        let within = area.blocks_within(around, radius);
        prop_assert!(within.contains(&around) || radius < 0.0);
        for b in area.blocks() {
            let inside = area.block_distance_m(around, b) <= radius;
            prop_assert_eq!(within.contains(&b), inside);
        }
    }
}
