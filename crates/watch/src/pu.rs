//! Primary-user (TV receiver) inputs.

use crate::{IntMatrix, WatchConfig};
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use serde::{Deserialize, Serialize};

/// One PU's operational input: its (public) block and its (private)
/// tuned channel with the mean TV signal strength there.
///
/// # Examples
///
/// ```
/// use pisa_watch::{PuInput, WatchConfig};
/// use pisa_radio::{grid::BlockId, tv::Channel};
///
/// let cfg = WatchConfig::small_test();
/// let pu = PuInput::tuned(&cfg, BlockId(7), Channel(2));
/// assert_eq!(pu.block(), BlockId(7));
/// assert!(pu.t_matrix(&cfg).get(2, 7) > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PuInput {
    block: BlockId,
    /// `None` = receiver off.
    tuned: Option<Channel>,
    /// Quantized `S^PU` at (tuned, block); 0 when off.
    signal_q: i128,
}

impl PuInput {
    /// A receiver at `block` tuned to `channel`; the signal strength is
    /// computed from the configuration's propagation model and clamped
    /// to at least one quantum.
    ///
    /// # Panics
    ///
    /// Panics if the block or channel is out of range for `cfg`.
    pub fn tuned(cfg: &WatchConfig, block: BlockId, channel: Channel) -> Self {
        cfg.area().check_block(block).expect("block in range");
        assert!(channel.0 < cfg.channels(), "channel out of range");
        let mw = cfg.pu_signal_mw(block, channel);
        let signal_q = cfg.quantizer().quantize_saturating(mw).max(1);
        PuInput {
            block,
            tuned: Some(channel),
            signal_q,
        }
    }

    /// A powered-off receiver (contributes nothing).
    pub fn off(block: BlockId) -> Self {
        PuInput {
            block,
            tuned: None,
            signal_q: 0,
        }
    }

    /// The receiver's block (public, registered).
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// The tuned channel (the private datum PISA protects).
    pub fn tuned_channel(&self) -> Option<Channel> {
        self.tuned
    }

    /// Quantized mean TV signal strength at the receiver.
    pub fn signal_q(&self) -> i128 {
        self.signal_q
    }

    /// The matrix **Tᵢ**: `T(c, b) = S^PU` at `(tuned, block)`, zero
    /// elsewhere (paper §III-D input format).
    pub fn t_matrix(&self, cfg: &WatchConfig) -> IntMatrix {
        let mut t = IntMatrix::zeros(cfg.channels(), cfg.blocks());
        if let Some(c) = self.tuned {
            t.set(c.0, self.block.0, self.signal_q);
        }
        t
    }

    /// The matrix **Wᵢ** = **Tᵢ − E** at the tuned entry, zero elsewhere
    /// (the paper's comparison-free encoding, eq. 9): summing all **Wᵢ**
    /// with **E** reproduces **N** without any encrypted equality test.
    pub fn w_matrix(&self, cfg: &WatchConfig, e: &IntMatrix) -> IntMatrix {
        let mut w = IntMatrix::zeros(cfg.channels(), cfg.blocks());
        if let Some(c) = self.tuned {
            w.set(c.0, self.block.0, self.signal_q - e.get(c.0, self.block.0));
        }
        w
    }

    /// The column of `C` values a PU actually transmits in its update
    /// (paper Figure 4 sends `T̃(1,i) … T̃(C,i)` — size ∝ C, not C×B).
    pub fn w_column(&self, cfg: &WatchConfig, e: &IntMatrix) -> Vec<i128> {
        (0..cfg.channels())
            .map(|c| match self.tuned {
                Some(t) if t.0 == c => self.signal_q - e.get(c, self.block.0),
                _ => 0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_e_matrix;

    #[test]
    fn t_matrix_single_entry() {
        let cfg = WatchConfig::small_test();
        let pu = PuInput::tuned(&cfg, BlockId(3), Channel(1));
        let t = pu.t_matrix(&cfg);
        let nonzero: Vec<_> = t.iter().filter(|&(_, _, v)| v != 0).collect();
        assert_eq!(nonzero.len(), 1);
        assert_eq!(nonzero[0].0, 1);
        assert_eq!(nonzero[0].1, 3);
    }

    #[test]
    fn off_receiver_contributes_nothing() {
        let cfg = WatchConfig::small_test();
        let pu = PuInput::off(BlockId(3));
        assert_eq!(pu.t_matrix(&cfg), IntMatrix::zeros(4, 25));
        assert_eq!(pu.signal_q(), 0);
    }

    #[test]
    fn w_plus_e_equals_t_at_entry() {
        let cfg = WatchConfig::small_test();
        let e = compute_e_matrix(&cfg);
        let pu = PuInput::tuned(&cfg, BlockId(10), Channel(2));
        let w = pu.w_matrix(&cfg, &e);
        let n = &w + &e;
        // At the PU entry, N = T; elsewhere N = E (eq. 4 realized via 9–10).
        assert_eq!(n.get(2, 10), pu.signal_q());
        assert_eq!(n.get(0, 0), e.get(0, 0));
        assert_eq!(n.get(2, 11), e.get(2, 11));
    }

    #[test]
    fn w_column_matches_w_matrix() {
        let cfg = WatchConfig::small_test();
        let e = compute_e_matrix(&cfg);
        let pu = PuInput::tuned(&cfg, BlockId(5), Channel(3));
        let col = pu.w_column(&cfg, &e);
        let w = pu.w_matrix(&cfg, &e);
        for (c, v) in col.iter().enumerate() {
            assert_eq!(*v, w.get(c, 5));
        }
        assert_eq!(col.len(), cfg.channels());
    }

    #[test]
    #[should_panic(expected = "channel out of range")]
    fn bad_channel_panics() {
        let cfg = WatchConfig::small_test();
        let _ = PuInput::tuned(&cfg, BlockId(0), Channel(99));
    }
}
