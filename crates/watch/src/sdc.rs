//! The plaintext Spectrum Database Controller.

use crate::{compute_e_matrix, Decision, IntMatrix, PuInput, SuRequest, WatchConfig};
use std::collections::HashMap;

/// Identifier of a registered PU.
pub type PuId = u64;

/// The plaintext WATCH SDC: holds **E**, the per-PU contributions **Wᵢ**
/// and the interference budget matrix **N**, and decides transmission
/// requests (§IV-A).
///
/// # Examples
///
/// ```
/// use pisa_watch::{WatchConfig, WatchSdc, PuInput, SuRequest};
/// use pisa_radio::{grid::BlockId, tv::Channel};
///
/// let cfg = WatchConfig::small_test();
/// let mut sdc = WatchSdc::new(cfg.clone());
/// // No PUs: a request sails through.
/// let su = SuRequest::full_power(&cfg, BlockId(0), &[Channel(0)]);
/// assert!(sdc.process_request(&su).is_granted());
/// ```
#[derive(Debug, Clone)]
pub struct WatchSdc {
    cfg: WatchConfig,
    e: IntMatrix,
    /// Latest **Wᵢ** per PU (eq. 9 keeps the running aggregate).
    contributions: HashMap<PuId, IntMatrix>,
    /// Interference budget **N** = Σᵢ **Wᵢ** + **E** (eq. 10).
    n: IntMatrix,
}

impl WatchSdc {
    /// Initializes the SDC: computes **E** and sets **N = E** (no PUs
    /// yet) — §IV-A1.
    pub fn new(cfg: WatchConfig) -> Self {
        let e = compute_e_matrix(&cfg);
        let n = e.clone();
        WatchSdc {
            cfg,
            e,
            contributions: HashMap::new(),
            n,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WatchConfig {
        &self.cfg
    }

    /// The public matrix **E**.
    pub fn e_matrix(&self) -> &IntMatrix {
        &self.e
    }

    /// The current budget matrix **N** (eq. 4 / 10).
    pub fn n_matrix(&self) -> &IntMatrix {
        &self.n
    }

    /// Number of PUs with a live contribution.
    pub fn active_pus(&self) -> usize {
        self.contributions
            .values()
            .filter(|w| w.iter().any(|(_, _, v)| v != 0))
            .count()
    }

    /// Handles a PU update (channel switch, power-on or power-off):
    /// replaces the PU's contribution and updates **N** incrementally
    /// (eqs. 3–4 via the comparison-free eqs. 9–10).
    pub fn pu_update(&mut self, id: PuId, input: PuInput) {
        let w_new = input.w_matrix(&self.cfg, &self.e);
        let w_old = self
            .contributions
            .insert(id, w_new.clone())
            .unwrap_or_else(|| IntMatrix::zeros(self.cfg.channels(), self.cfg.blocks()));
        self.n = &(&self.n - &w_old) + &w_new;
    }

    /// Processes an SU transmission request (eqs. 5–7): computes
    /// **R = X ⊗ F**, the indicator **I = N − R**, and grants iff every
    /// entry of **I** is strictly positive.
    pub fn process_request(&self, su: &SuRequest) -> Decision {
        self.decide(&su.f_matrix(&self.cfg))
    }

    /// Processes a request from an explicit **F** matrix (used by the
    /// equivalence tests against the encrypted pipeline).
    pub fn decide(&self, f: &IntMatrix) -> Decision {
        let x = self.cfg.params().x_integer() as i128;
        let r = f.scale(x);
        let i = &self.n - &r;
        let violations = i.non_positive_entries();
        if violations.is_empty() {
            Decision::Granted
        } else {
            Decision::Denied { violations }
        }
    }

    /// The indicator matrix **I** for a request — exposed so the
    /// encrypted pipeline can be checked entry-by-entry.
    pub fn indicator(&self, f: &IntMatrix) -> IntMatrix {
        let x = self.cfg.params().x_integer() as i128;
        &self.n - &f.scale(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pisa_radio::tv::Channel;
    use pisa_radio::BlockId;

    fn cfg() -> WatchConfig {
        WatchConfig::small_test()
    }

    #[test]
    fn initial_n_equals_e() {
        let sdc = WatchSdc::new(cfg());
        assert_eq!(sdc.n_matrix(), sdc.e_matrix());
        assert_eq!(sdc.active_pus(), 0);
    }

    #[test]
    fn pu_update_sets_budget_to_signal() {
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        let pu = PuInput::tuned(&cfg, BlockId(12), Channel(1));
        sdc.pu_update(7, pu.clone());
        assert_eq!(sdc.n_matrix().get(1, 12), pu.signal_q());
        assert_eq!(sdc.active_pus(), 1);
        // Other entries untouched.
        assert_eq!(sdc.n_matrix().get(0, 12), sdc.e_matrix().get(0, 12));
    }

    #[test]
    fn switching_channels_restores_old_budget() {
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(1, PuInput::tuned(&cfg, BlockId(6), Channel(0)));
        sdc.pu_update(1, PuInput::tuned(&cfg, BlockId(6), Channel(2)));
        // Old channel back to E, new channel at signal.
        assert_eq!(sdc.n_matrix().get(0, 6), sdc.e_matrix().get(0, 6));
        assert!(sdc.n_matrix().get(2, 6) > 0);
        assert_eq!(sdc.active_pus(), 1);
    }

    #[test]
    fn turn_off_restores_e() {
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(1, PuInput::tuned(&cfg, BlockId(6), Channel(0)));
        sdc.pu_update(1, PuInput::off(BlockId(6)));
        assert_eq!(sdc.n_matrix(), sdc.e_matrix());
        assert_eq!(sdc.active_pus(), 0);
    }

    #[test]
    fn nearby_su_denied_far_su_granted() {
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(1, PuInput::tuned(&cfg, BlockId(12), Channel(1)));

        // Full power right next to the active PU exceeds the budget…
        let near = SuRequest::full_power(&cfg, BlockId(13), &[Channel(1)]);
        assert!(sdc.process_request(&near).is_denied());

        // …while a whisper-power SU is fine.
        let quiet = SuRequest::with_power_dbm(&cfg, BlockId(13), &[Channel(1)], -40.0);
        assert!(sdc.process_request(&quiet).is_granted());

        // And a full-power SU on an unwatched channel is fine too.
        let other = SuRequest::full_power(&cfg, BlockId(13), &[Channel(3)]);
        assert!(sdc.process_request(&other).is_granted());
    }

    #[test]
    fn denial_lists_violated_budget() {
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(1, PuInput::tuned(&cfg, BlockId(12), Channel(1)));
        let near = SuRequest::full_power(&cfg, BlockId(12), &[Channel(1)]);
        match sdc.process_request(&near) {
            Decision::Denied { violations } => {
                assert!(violations.contains(&(1, 12)));
            }
            Decision::Granted => panic!("co-located full-power SU must be denied"),
        }
    }

    #[test]
    fn indicator_matches_decision() {
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(1, PuInput::tuned(&cfg, BlockId(0), Channel(0)));
        let su = SuRequest::full_power(&cfg, BlockId(1), &[Channel(0)]);
        let f = su.f_matrix(&cfg);
        let i = sdc.indicator(&f);
        assert_eq!(i.all_positive(), sdc.decide(&f).is_granted());
    }

    #[test]
    fn multiple_pus_on_different_blocks() {
        let cfg = cfg();
        let mut sdc = WatchSdc::new(cfg.clone());
        sdc.pu_update(1, PuInput::tuned(&cfg, BlockId(0), Channel(0)));
        sdc.pu_update(2, PuInput::tuned(&cfg, BlockId(24), Channel(0)));
        assert_eq!(sdc.active_pus(), 2);
        // Both budgets present simultaneously.
        assert!(sdc.n_matrix().get(0, 0) < sdc.e_matrix().get(0, 0));
        assert!(sdc.n_matrix().get(0, 24) < sdc.e_matrix().get(0, 24));
    }
}
