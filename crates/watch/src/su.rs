//! Secondary-user requests.

use crate::{IntMatrix, WatchConfig};
use pisa_radio::tv::Channel;
use pisa_radio::BlockId;
use serde::{Deserialize, Serialize};

/// A secondary user's transmission request: its block, requested
/// channels and EIRP — all private in PISA.
///
/// The request's payload is the interference profile
/// `F(c, i) = S^SU_c · h(d_{i,j})` (eq. 5): the signal this SU would
/// deposit in every block `i` within the protection distance `d^c` of
/// its own block `j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuRequest {
    block: BlockId,
    /// Requested EIRP per channel in linear milliwatts (0 = channel not
    /// requested).
    eirp_mw: Vec<f64>,
}

impl SuRequest {
    /// A request from `block` with explicit per-channel EIRP values.
    ///
    /// # Panics
    ///
    /// Panics if the EIRP vector length differs from the channel count,
    /// any value is negative/non-finite, or the block is out of range.
    pub fn new(cfg: &WatchConfig, block: BlockId, eirp_mw: Vec<f64>) -> Self {
        cfg.area().check_block(block).expect("block in range");
        assert_eq!(eirp_mw.len(), cfg.channels(), "one EIRP per channel");
        assert!(
            eirp_mw.iter().all(|v| v.is_finite() && *v >= 0.0),
            "EIRP values must be non-negative and finite"
        );
        SuRequest { block, eirp_mw }
    }

    /// A request for the regulatory maximum EIRP on the given channels.
    pub fn full_power(cfg: &WatchConfig, block: BlockId, channels: &[Channel]) -> Self {
        let mut eirp = vec![0.0; cfg.channels()];
        for c in channels {
            assert!(c.0 < cfg.channels(), "channel out of range");
            eirp[c.0] = cfg.params().su_max_eirp_mw();
        }
        SuRequest::new(cfg, block, eirp)
    }

    /// A request for a fixed EIRP in dBm on the given channels.
    pub fn with_power_dbm(
        cfg: &WatchConfig,
        block: BlockId,
        channels: &[Channel],
        power_dbm: f64,
    ) -> Self {
        let mw = pisa_radio::Dbm(power_dbm).to_milliwatts().0;
        let mut eirp = vec![0.0; cfg.channels()];
        for c in channels {
            assert!(c.0 < cfg.channels(), "channel out of range");
            eirp[c.0] = mw;
        }
        SuRequest::new(cfg, block, eirp)
    }

    /// The SU's block.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// Requested EIRP (mW) per channel.
    pub fn eirp_mw(&self) -> &[f64] {
        &self.eirp_mw
    }

    /// Channels with non-zero requested power.
    pub fn requested_channels(&self) -> Vec<Channel> {
        self.eirp_mw
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(c, _)| Channel(c))
            .collect()
    }

    /// The interference-profile matrix **F** (eq. 5), quantized.
    ///
    /// Entries are non-zero only for requested channels and for blocks
    /// within `d^c` of the SU's block.
    pub fn f_matrix(&self, cfg: &WatchConfig) -> IntMatrix {
        self.f_matrix_restricted(cfg, cfg.blocks())
    }

    /// **F** restricted to the first `region_blocks` blocks — the
    /// paper's location-privacy trade-off (§VI-A): exposing the SU's
    /// rough region lets it ship a proportionally smaller matrix.
    pub fn f_matrix_restricted(&self, cfg: &WatchConfig, region_blocks: usize) -> IntMatrix {
        let q = cfg.quantizer();
        let blocks = region_blocks.min(cfg.blocks());
        let mut f = IntMatrix::zeros(cfg.channels(), cfg.blocks());
        for (c, &power_mw) in self.eirp_mw.iter().enumerate() {
            if power_mw == 0.0 {
                continue;
            }
            let channel = Channel(c);
            let dc = cfg.protection_distance_m(channel);
            for b in 0..blocks {
                let target = BlockId(b);
                if cfg.area().block_distance_m(self.block, target) > dc {
                    continue;
                }
                let gain = cfg.path_gain(self.block, target, channel);
                f.set(c, b, q.quantize_saturating(power_mw * gain));
            }
        }
        f
    }

    /// Number of non-zero entries an encrypted request must carry for a
    /// region of `region_blocks` blocks (every entry of the region is
    /// shipped, zero or not, to hide the SU's exact position).
    pub fn request_entries(&self, cfg: &WatchConfig, region_blocks: usize) -> usize {
        cfg.channels() * region_blocks.min(cfg.blocks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_matrix_zero_off_requested_channels() {
        let cfg = WatchConfig::small_test();
        let su = SuRequest::full_power(&cfg, BlockId(12), &[Channel(1)]);
        let f = su.f_matrix(&cfg);
        for (c, _, v) in f.iter() {
            if c != 1 {
                assert_eq!(v, 0);
            }
        }
        assert!(f.get(1, 12) > 0, "own block must carry interference");
    }

    #[test]
    fn interference_decays_with_distance() {
        let cfg = WatchConfig::small_test();
        let su = SuRequest::full_power(&cfg, BlockId(0), &[Channel(0)]);
        let f = su.f_matrix(&cfg);
        assert!(f.get(0, 0) > f.get(0, 24), "corner-to-corner must decay");
    }

    #[test]
    fn zero_power_request_is_all_zero() {
        let cfg = WatchConfig::small_test();
        let su = SuRequest::new(&cfg, BlockId(5), vec![0.0; 4]);
        assert_eq!(su.f_matrix(&cfg), IntMatrix::zeros(4, 25));
        assert!(su.requested_channels().is_empty());
    }

    #[test]
    fn restriction_zeroes_outside_region() {
        let cfg = WatchConfig::small_test();
        let su = SuRequest::full_power(&cfg, BlockId(2), &[Channel(0)]);
        let full = su.f_matrix(&cfg);
        let restricted = su.f_matrix_restricted(&cfg, 10);
        for (c, b, v) in restricted.iter() {
            if b < 10 {
                assert_eq!(v, full.get(c, b));
            } else {
                assert_eq!(v, 0);
            }
        }
    }

    #[test]
    fn request_entry_count_scales_with_region() {
        let cfg = WatchConfig::small_test();
        let su = SuRequest::full_power(&cfg, BlockId(0), &[Channel(0)]);
        assert_eq!(su.request_entries(&cfg, 25), 100);
        assert_eq!(su.request_entries(&cfg, 10), 40);
        assert_eq!(su.request_entries(&cfg, 9999), 100);
    }

    #[test]
    fn dbm_constructor() {
        let cfg = WatchConfig::small_test();
        let su = SuRequest::with_power_dbm(&cfg, BlockId(0), &[Channel(2)], 20.0);
        assert!((su.eirp_mw()[2] - 100.0).abs() < 1e-9);
        assert_eq!(su.requested_channels(), vec![Channel(2)]);
    }

    #[test]
    #[should_panic(expected = "one EIRP per channel")]
    fn wrong_vector_length_panics() {
        let cfg = WatchConfig::small_test();
        let _ = SuRequest::new(&cfg, BlockId(0), vec![1.0; 3]);
    }
}
